// Tests for the multi-peer TCP transport: syscall-level robustness of the
// I/O helpers (EINTR retry, SIGPIPE suppression, frame-size bounds), the
// transport's failure semantics (corrupt/oversize frames, queue overflow,
// partial-write poisoning), and runtime-to-runtime meshes including a
// kill-and-restart reconnect under backoff.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "compart/runtime.hpp"
#include "compart/tcp.hpp"
#include "compart/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace csaw {
namespace {

using namespace std::chrono_literals;

void install_noop_sigusr1() {
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: syscalls DO get interrupted
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, nullptr), 0);
}

Bytes pattern_bytes(std::size_t n) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(i * 131 + 7);
  }
  return b;
}

// Polls `cond` until it holds or `limit` elapses.
template <typename Cond>
bool eventually(Cond cond, std::chrono::milliseconds limit = 10s) {
  const auto deadline = steady_now() + limit;
  while (steady_now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return cond();
}

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

// A port guaranteed to refuse connections for the holder's lifetime: bound
// (so no parallel test can take it) but never listen()ed on, so connect
// attempts fail with ECONNREFUSED just like a dead peer.
class DeadPort {
 public:
  DeadPort() {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port_ = ntohs(addr.sin_port);
  }
  ~DeadPort() { ::close(fd_); }
  std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

int listen_on(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(::listen(fd, 4), 0);
  return fd;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

// Collects envelopes a transport delivers, for assertions.
class Collector {
 public:
  TcpTransport::DeliverFn fn() {
    return [this](Envelope&& env) {
      std::scoped_lock lock(mu_);
      got_.push_back(std::move(env));
    };
  }
  std::size_t count() const {
    std::scoped_lock lock(mu_);
    return got_.size();
  }
  std::vector<Envelope> take() {
    std::scoped_lock lock(mu_);
    return std::move(got_);
  }

 private:
  mutable std::mutex mu_;
  std::vector<Envelope> got_;
};

Envelope test_envelope(std::uint64_t seq, std::size_t payload = 16) {
  Envelope env;
  env.kind = Envelope::Kind::kUpdate;
  env.seq = seq;
  env.from_instance = Symbol("f");
  env.to = JunctionAddr{Symbol("g"), Symbol("j")};
  env.update = Update::write_data(
      Symbol("n"), SerializedValue{Symbol("t"), pattern_bytes(payload)},
      "f::j");
  return env;
}

// --- tcpio: the syscall-level bugfixes -------------------------------------

// Runs `body` on a helper thread and peppers that thread with SIGUSR1 while
// it is still inside `body`, so blocking syscalls keep returning EINTR. The
// handshake (done -> stop signaling -> may_exit -> join) guarantees signals
// never target an exited thread.
class InterruptedWorker {
 public:
  explicit InterruptedWorker(std::function<void()> body) {
    thread_ = std::thread([this, body = std::move(body)] {
      body();
      done_.store(true);
      while (!may_exit_.load()) std::this_thread::sleep_for(1ms);
    });
  }
  ~InterruptedWorker() {
    may_exit_.store(true);
    thread_.join();
  }
  // Sends a burst of signals if the body is still running.
  void pepper() {
    for (int i = 0; i < 3; ++i) {
      if (done_.load()) return;
      ::pthread_kill(thread_.native_handle(), SIGUSR1);
      std::this_thread::sleep_for(1ms);
    }
  }

 private:
  std::atomic<bool> done_{false};
  std::atomic<bool> may_exit_{false};
  std::thread thread_;
};

TEST(TcpIo, ReadExactRetriesEintr) {
  install_noop_sigusr1();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const Bytes sent = pattern_bytes(1 << 20);
  Bytes received(sent.size());
  std::atomic<bool> ok{false};
  {
    // Under the pre-fix helper, the first signal landing while the reader
    // is blocked in read() returned -1/EINTR and silently killed the read.
    InterruptedWorker reader([&] {
      ok.store(tcpio::read_exact(sv[1], received.data(), received.size()));
    });
    // Slow drip so the reader blocks -- and gets signaled -- repeatedly.
    std::size_t off = 0;
    while (off < sent.size()) {
      reader.pepper();
      const std::size_t chunk =
          std::min<std::size_t>(64 * 1024, sent.size() - off);
      ASSERT_TRUE(tcpio::write_exact(sv[0], sent.data() + off, chunk));
      off += chunk;
    }
  }
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(received, sent);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(TcpIo, WriteExactRetriesEintr) {
  install_noop_sigusr1();
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  // Small buffers so the writer blocks (and eats signals) mid-transfer.
  int sz = 4096;
  ::setsockopt(sv[0], SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz));
  ::setsockopt(sv[1], SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz));
  const Bytes sent = pattern_bytes(4 << 20);
  std::atomic<bool> ok{false};
  Bytes received(sent.size());
  {
    InterruptedWorker writer([&] {
      ok.store(tcpio::write_exact(sv[0], sent.data(), sent.size()));
    });
    std::size_t off = 0;
    while (off < received.size()) {
      writer.pepper();
      const auto got =
          ::read(sv[1], received.data() + off,
                 std::min<std::size_t>(64 * 1024, received.size() - off));
      ASSERT_GT(got, 0);
      off += static_cast<std::size_t>(got);
    }
  }
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(received, sent);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST(TcpIo, ClosedPeerYieldsErrorNotSigpipe) {
  // SIGPIPE keeps its default (process-killing) disposition: the write must
  // suppress it via MSG_NOSIGNAL, not rely on a global signal handler.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);
  const Bytes junk = pattern_bytes(1 << 20);
  // Pre-fix (plain write()) this raised SIGPIPE and killed the test binary.
  EXPECT_FALSE(tcpio::write_exact(sv[0], junk.data(), junk.size()));
  ::close(sv[0]);
}

TEST(TcpIo, FrameBoundsEnforcedOnWriteAndRead) {
  constexpr std::size_t kMax = 1024;
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  // Encode-side: an oversize payload is refused without touching the fd.
  EXPECT_EQ(tcpio::write_frame(sv[0], pattern_bytes(kMax + 1), kMax),
            tcpio::FrameStatus::kOversize);

  // In-bounds roundtrip still works.
  const Bytes payload = pattern_bytes(kMax);
  EXPECT_EQ(tcpio::write_frame(sv[0], payload, kMax), tcpio::FrameStatus::kOk);
  Bytes back;
  EXPECT_EQ(tcpio::read_frame(sv[1], &back, kMax), tcpio::FrameStatus::kOk);
  EXPECT_EQ(back, payload);

  // Decode-side: a corrupt header claiming a huge frame is rejected before
  // any allocation (pre-fix: Bytes payload(ntohl(len)) tried to allocate).
  const std::uint32_t huge = htonl(0x7fffffff);
  ASSERT_TRUE(tcpio::write_exact(sv[0], &huge, sizeof(huge)));
  EXPECT_EQ(tcpio::read_frame(sv[1], &back, kMax),
            tcpio::FrameStatus::kOversize);

  // Truncation mid-frame is an error, not a silent short read.
  const std::uint32_t hundred = htonl(100);
  ASSERT_TRUE(tcpio::write_exact(sv[0], &hundred, sizeof(hundred)));
  ASSERT_TRUE(tcpio::write_exact(sv[0], payload.data(), 10));
  ::close(sv[0]);
  EXPECT_EQ(tcpio::read_frame(sv[1], &back, kMax), tcpio::FrameStatus::kError);
  ::close(sv[1]);
}

// --- TcpTransport: routing, frame hygiene, failure accounting --------------

TEST(TcpTransportMesh, DeliversBetweenTwoTransports) {
  obs::Metrics ma, mb;
  Collector got_b;
  TcpTransport b(got_b.fn(), TcpOptions{}, &mb);
  ASSERT_GT(b.port(), 0);

  TcpOptions oa;
  oa.peers["b"] = TcpPeerAddr{"127.0.0.1", b.port()};
  oa.remote_instances[Symbol("g")] = "b";
  Collector got_a;
  TcpTransport a(got_a.fn(), oa, &ma);

  EXPECT_TRUE(a.routes_instance(Symbol("g")));
  EXPECT_FALSE(a.routes_instance(Symbol("elsewhere")));
  EXPECT_TRUE(a.route(test_envelope(1)));
  Envelope unroutable = test_envelope(2);
  unroutable.to.instance = Symbol("elsewhere");
  EXPECT_FALSE(a.route(unroutable));

  ASSERT_TRUE(eventually([&] { return got_b.count() >= 1; }));
  const auto envs = got_b.take();
  ASSERT_EQ(envs.size(), 1u);
  EXPECT_EQ(envs[0].seq, 1u);
  EXPECT_EQ(envs[0].to.instance, Symbol("g"));
  EXPECT_EQ(ma.counter("tcp_frames_sent").value(), 1u);
  EXPECT_EQ(ma.counter("tcp_peer_b_frames_sent").value(), 1u);
  EXPECT_EQ(mb.counter("tcp_frames_received").value(), 1u);
  EXPECT_EQ(mb.counter("tcp_frames_corrupt").value(), 0u);
}

TEST(TcpTransportMesh, CorruptFrameCountedTracedAndStreamSurvives) {
  obs::Metrics metrics;
  obs::Tracer tracer;
  Collector got;
  TcpTransport b(got.fn(), TcpOptions{}, &metrics, &tracer);

  const int fd = connect_loopback(b.port());
  // A well-framed but undecodable payload: counted, traced, NOT fatal to
  // the connection (pre-fix it was dropped with no signal at all).
  const Bytes garbage{0xff, 0xff, 0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(tcpio::write_frame(fd, garbage, 4 << 20), tcpio::FrameStatus::kOk);
  const Bytes good = encode_envelope(test_envelope(7));
  ASSERT_EQ(tcpio::write_frame(fd, good, 4 << 20), tcpio::FrameStatus::kOk);

  ASSERT_TRUE(eventually([&] { return got.count() >= 1; }));
  EXPECT_EQ(got.take()[0].seq, 7u);
  EXPECT_EQ(metrics.counter("tcp_frames_corrupt").value(), 1u);
  EXPECT_EQ(metrics.counter("tcp_frames_received").value(), 2u);
  bool traced = false;
  for (const auto& e : tracer.drain()) {
    if (e.kind == obs::TraceEvent::Kind::kCustom &&
        e.label == Symbol("tcp_frame_corrupt")) {
      traced = true;
    }
  }
  EXPECT_TRUE(traced) << "corrupt frame must emit a trace event";
  ::close(fd);
}

TEST(TcpTransportMesh, OversizeHeaderRejectedAndConnectionClosed) {
  obs::Metrics metrics;
  Collector got;
  TcpOptions opts;
  opts.max_frame_bytes = 64 * 1024;
  TcpTransport b(got.fn(), opts, &metrics);

  const int fd = connect_loopback(b.port());
  const std::uint32_t huge = htonl(0x40000000);  // claims a 1 GiB frame
  ASSERT_TRUE(tcpio::write_exact(fd, &huge, sizeof(huge)));
  // The transport must reject the frame (without attempting the 1 GiB
  // allocation) and close the unrecoverable stream: we observe EOF.
  std::uint8_t byte;
  ASSERT_TRUE(eventually([&] {
    return ::recv(fd, &byte, 1, MSG_DONTWAIT) == 0;
  })) << "transport should close the connection after an oversize header";
  EXPECT_EQ(metrics.counter("tcp_frames_oversize").value(), 1u);
  EXPECT_EQ(got.count(), 0u);
  ::close(fd);
}

TEST(TcpTransportMesh, QueueOverflowDropsCountsAndNacksLocally) {
  // Peer address points at a port with no listener: the connection retries
  // under backoff while sends pile into the bounded queue.
  obs::Metrics metrics;
  Collector got;
  DeadPort dead;
  TcpOptions opts;
  opts.listen_port = -1;  // send-only node
  opts.peers["b"] = TcpPeerAddr{"127.0.0.1", dead.port()};
  opts.remote_instances[Symbol("g")] = "b";
  opts.send_queue_cap = 2;
  opts.backoff_initial = Millis(50);
  TcpTransport a(got.fn(), opts, &metrics);

  for (std::uint64_t seq = 1; seq <= 5; ++seq) {
    EXPECT_TRUE(a.route(test_envelope(seq)));
  }
  // First two queued; three dropped, each surfacing as a local nack so the
  // sender's push fails fast instead of timing out.
  ASSERT_TRUE(eventually([&] { return got.count() >= 3; }));
  const auto nacks = got.take();
  ASSERT_EQ(nacks.size(), 3u);
  for (const auto& n : nacks) {
    EXPECT_EQ(n.kind, Envelope::Kind::kAck);
    EXPECT_TRUE(n.nack);
    EXPECT_NE(n.nack_reason.find("overflow"), std::string::npos)
        << n.nack_reason;
    EXPECT_EQ(n.to.instance, Symbol("f"));
  }
  EXPECT_EQ(metrics.counter("tcp_queue_drops").value(), 3u);
  EXPECT_EQ(metrics.counter("tcp_peer_b_queue_drops").value(), 3u);
  EXPECT_EQ(a.peer_stats().at("b").queue_drops, 3u);
}

TEST(TcpTransportMesh, OversizeSendRefusedAndNackedLocally) {
  obs::Metrics metrics;
  Collector got;
  DeadPort dead;
  TcpOptions opts;
  opts.listen_port = -1;
  opts.peers["b"] = TcpPeerAddr{"127.0.0.1", dead.port()};
  opts.remote_instances[Symbol("g")] = "b";
  opts.max_frame_bytes = 1024;
  TcpTransport a(got.fn(), opts, &metrics);

  ASSERT_TRUE(a.route(test_envelope(1, 4096)));  // encodes past the bound
  ASSERT_TRUE(eventually([&] { return got.count() >= 1; }));
  const auto nacks = got.take();
  ASSERT_EQ(nacks.size(), 1u);
  EXPECT_TRUE(nacks[0].nack);
  EXPECT_NE(nacks[0].nack_reason.find("max_frame_bytes"), std::string::npos);
  EXPECT_EQ(metrics.counter("tcp_frames_oversize").value(), 1u);
  EXPECT_EQ(metrics.counter("tcp_send_failures").value(), 1u);
}

TEST(TcpTransportMesh, PartialWriteOnDeadPeerPoisonsAndFramingSurvives) {
  // A raw accept-then-stall listener: the transport's flush fills the
  // socket buffers and stalls mid-frame, then the peer dies without
  // reading. Pre-fix, the partially-written frame was counted as sent and
  // the retransmit continued from the middle of the frame, desyncing the
  // receiver's framing forever. Post-fix: the death is counted as a send
  // failure, the connection is poisoned, and after the reconnect every
  // frame decodes cleanly because the partial frame restarts from byte 0.
  const std::uint16_t port = pick_free_port();
  const int lfd = listen_on(port);

  obs::Metrics metrics;
  Collector got;
  TcpOptions opts;
  opts.listen_port = -1;
  opts.peers["b"] = TcpPeerAddr{"127.0.0.1", port};
  opts.remote_instances[Symbol("g")] = "b";
  opts.backoff_initial = Millis(10);
  auto a = std::make_unique<TcpTransport>(got.fn(), opts, &metrics);

  const int stalled = ::accept(lfd, nullptr, nullptr);
  ASSERT_GE(stalled, 0);
  int tiny = 4096;
  ::setsockopt(stalled, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));

  // Queue far more than the kernel's socket buffers can hold (sender-side
  // autotuning can grow past 4 MiB): the flush must stall mid-frame.
  constexpr std::uint64_t kFrames = 96;
  for (std::uint64_t seq = 1; seq <= kFrames; ++seq) {
    ASSERT_TRUE(a->route(test_envelope(seq, 256 * 1024)));
  }
  ASSERT_TRUE(eventually([&] { return a->peer_stats().at("b").connected; }));
  std::this_thread::sleep_for(100ms);  // let the flush fill the buffers
  // Kill the stalled receiver without reading: RST lands mid-frame.
  ::close(stalled);
  ASSERT_TRUE(eventually([&] {
    return metrics.counter("tcp_send_failures").value() >= 1;
  })) << "a connection dying mid-frame must count as a send failure";

  // Accept the reconnect and read until the transport has drained its
  // queue; then tear the transport down so the stream ends cleanly. Every
  // frame received on this second connection must decode.
  const int fd2 = ::accept(lfd, nullptr, nullptr);
  ASSERT_GE(fd2, 0);
  std::atomic<std::size_t> decoded{0};
  std::atomic<bool> all_ok{true};
  std::thread drainer([&] {
    while (true) {
      Bytes payload;
      const auto st = tcpio::read_frame(fd2, &payload, 4 << 20);
      if (st != tcpio::FrameStatus::kOk) {
        if (st != tcpio::FrameStatus::kEof) all_ok.store(false);
        return;
      }
      if (!decode_envelope(payload).ok()) all_ok.store(false);
      decoded.fetch_add(1);
    }
  });
  ASSERT_TRUE(eventually([&] { return a->peer_stats().at("b").queued == 0; }));
  const auto stats = a->peer_stats().at("b");
  a.reset();  // closes the connection at a frame boundary (queue was empty)
  drainer.join();
  EXPECT_TRUE(all_ok.load())
      << "a frame failed to decode: framing desynced after the reconnect";
  EXPECT_GE(decoded.load(), 1u);
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GE(metrics.counter("tcp_reconnects").value(), 1u);
  // Fully-sent frame count never exceeds what actually left the socket.
  EXPECT_LE(stats.frames_sent, kFrames);
  ::close(fd2);
  ::close(lfd);
}

TEST(TcpTransportMesh, RemovePeerPurgesRoutesAndDropsQueue) {
  // Dynamic membership leave: the peer disappears from the routing maps
  // immediately, its queued frames are discarded as counted queue drops,
  // and subsequent routes fail fast instead of queueing for a ghost.
  obs::Metrics metrics;
  obs::Tracer tracer;
  Collector got;
  DeadPort dead;  // never connects: frames stay queued until removal
  TcpOptions opts;
  opts.listen_port = -1;
  opts.peers["b"] = TcpPeerAddr{"127.0.0.1", dead.port()};
  opts.remote_instances[Symbol("g")] = "b";
  opts.backoff_initial = Millis(50);
  TcpTransport a(got.fn(), opts, &metrics, &tracer);

  ASSERT_TRUE(a.route(test_envelope(1)));
  ASSERT_TRUE(a.route(test_envelope(2)));
  EXPECT_FALSE(a.remove_peer("nobody"));
  EXPECT_TRUE(a.remove_peer("b"));

  EXPECT_FALSE(a.routes_instance(Symbol("g")));
  EXPECT_FALSE(a.route(test_envelope(3)));
  EXPECT_FALSE(a.send_to("b", test_envelope(4)));
  EXPECT_EQ(a.peer_stats().count("b"), 0u);
  EXPECT_EQ(metrics.counter("tcp_queue_drops").value(), 2u);
  EXPECT_EQ(metrics.counter("tcp_peer_b_queue_drops").value(), 2u);
  bool traced = false;
  for (const auto& e : tracer.drain()) {
    if (e.label == Symbol("tcp_peer_removed")) traced = true;
  }
  EXPECT_TRUE(traced) << "peer removal must emit a trace event";

  // Re-join under the same name works (membership is dynamic both ways).
  Collector got_b;
  TcpTransport b(got_b.fn(), TcpOptions{}, nullptr);
  a.add_peer("b", TcpPeerAddr{"127.0.0.1", b.port()});
  a.map_instance(Symbol("g"), "b");
  ASSERT_TRUE(a.route(test_envelope(5)));
  ASSERT_TRUE(eventually([&] { return got_b.count() >= 1; }));
  EXPECT_EQ(got_b.take()[0].seq, 5u);
}

TEST(TcpTransportMesh, KilledConnectionReconnectsAndRetransmitsWhole) {
  // Chaos kKillConn: the connection drops but the peer stays registered, so
  // the jittered-backoff reconnect machinery heals the link and queued
  // frames go out whole on the new connection.
  obs::Metrics metrics;
  obs::Tracer tracer;
  Collector got_b;
  TcpTransport b(got_b.fn(), TcpOptions{}, nullptr);
  TcpOptions opts;
  opts.listen_port = -1;
  opts.peers["b"] = TcpPeerAddr{"127.0.0.1", b.port()};
  opts.remote_instances[Symbol("g")] = "b";
  opts.backoff_initial = Millis(10);
  Collector got_a;
  TcpTransport a(got_a.fn(), opts, &metrics, &tracer);

  ASSERT_TRUE(a.route(test_envelope(1)));
  ASSERT_TRUE(eventually([&] { return got_b.count() >= 1; }));
  (void)got_b.take();

  EXPECT_FALSE(a.kill_peer_connection("nobody"));
  EXPECT_TRUE(a.kill_peer_connection("b"));
  ASSERT_TRUE(a.route(test_envelope(2)));
  ASSERT_TRUE(eventually([&] { return got_b.count() >= 1; }))
      << "traffic must resume after the killed connection reconnects";
  EXPECT_EQ(got_b.take()[0].seq, 2u);
  EXPECT_GE(metrics.counter("tcp_reconnects").value(), 1u);

  // Reconnect storm: every peer's connection drops and heals the same way.
  a.kill_all_connections();
  ASSERT_TRUE(a.route(test_envelope(3)));
  ASSERT_TRUE(eventually([&] { return got_b.count() >= 1; }));
  EXPECT_EQ(got_b.take()[0].seq, 3u);
  bool killed = false, storm = false;
  for (const auto& e : tracer.drain()) {
    if (e.label == Symbol("tcp_conn_killed")) killed = true;
    if (e.label == Symbol("tcp_reconnect_storm")) storm = true;
  }
  EXPECT_TRUE(killed);
  EXPECT_TRUE(storm);
}

// --- runtime-level mesh: push/ack across two runtimes ----------------------

InstanceDesc noop_instance(const char* name, Symbol prop) {
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{prop, false}};
  j.body = [](JunctionEnv&) {};
  InstanceDesc desc;
  desc.name = Symbol(name);
  desc.type = Symbol("tau");
  desc.junctions.push_back(std::move(j));
  return desc;
}

bool prop_is_true(Runtime& rt, Symbol instance, Symbol prop) {
  auto r = rt.table(instance, Symbol("j")).prop(prop);
  return r.ok() && *r;
}

TEST(TcpMeshRuntime, PushAckRoundtripAcrossRuntimes) {
  const Symbol kProp("P");
  obs::Metrics ma, mb;

  RuntimeOptions ob;
  ob.transport = Transport::kTcpMesh;
  ob.metrics = &mb;
  Runtime rb(ob);
  rb.add_instance(noop_instance("g", kProp));
  ASSERT_TRUE(rb.start(Symbol("g")).ok());

  RuntimeOptions oa;
  oa.transport = Transport::kTcpMesh;
  oa.metrics = &ma;
  oa.tcp.peers["b"] = TcpPeerAddr{"127.0.0.1", rb.tcp_transport()->port()};
  oa.tcp.remote_instances[Symbol("g")] = "b";
  Runtime ra(oa);

  // B needs the reverse route so acks reach A's sender.
  rb.tcp_transport()->add_peer(
      "a", TcpPeerAddr{"127.0.0.1", ra.tcp_transport()->port()});
  rb.tcp_transport()->map_instance(Symbol("f"), "a");

  auto st = ra.push({.to = JunctionAddr{Symbol("g"), Symbol("j")},
                     .update = Update::assert_prop(kProp),
                     .deadline = Deadline::after(10s),
                     .from = Symbol("f")});
  ASSERT_TRUE(st.ok()) << st.error().to_string();
  EXPECT_TRUE(
      eventually([&] { return prop_is_true(rb, Symbol("g"), kProp); }));
  EXPECT_GE(ma.counter("tcp_frames_sent").value(), 1u);
  EXPECT_GE(mb.counter("tcp_frames_received").value(), 1u);

  // A push to an instance neither hosted locally nor mapped to a peer nacks
  // as unknown instead of hanging.
  auto bad = ra.push({.to = JunctionAddr{Symbol("nowhere"), Symbol("j")},
                      .update = Update::assert_prop(kProp),
                      .deadline = Deadline::after(5s),
                      .from = Symbol("f")});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::kUnreachable);
}

TEST(TcpMeshRuntime, ReconnectAfterPeerRestartRecoversPushes) {
  const Symbol kProp("P");
  const std::uint16_t b_port = pick_free_port();

  obs::Metrics ma;
  RuntimeOptions oa;
  oa.transport = Transport::kTcpMesh;
  oa.metrics = &ma;
  oa.tcp.peers["b"] = TcpPeerAddr{"127.0.0.1", b_port};
  oa.tcp.remote_instances[Symbol("g")] = "b";
  oa.tcp.backoff_initial = Millis(10);
  oa.tcp.backoff_max = Millis(200);
  Runtime ra(oa);

  obs::Metrics mb;
  auto make_b = [&] {
    RuntimeOptions ob;
    ob.transport = Transport::kTcpMesh;
    ob.metrics = &mb;
    ob.tcp.listen_port = b_port;
    ob.tcp.peers["a"] = TcpPeerAddr{"127.0.0.1", ra.tcp_transport()->port()};
    ob.tcp.remote_instances[Symbol("f")] = "a";
    auto rb = std::make_unique<Runtime>(ob);
    rb->add_instance(noop_instance("g", kProp));
    EXPECT_TRUE(rb->start(Symbol("g")).ok());
    return rb;
  };
  auto push_once = [&](Nanos deadline) {
    return ra.push({.to = JunctionAddr{Symbol("g"), Symbol("j")},
                    .update = Update::assert_prop(kProp),
                    .deadline = Deadline::after(deadline),
                    .from = Symbol("f")});
  };

  auto rb = make_b();
  // The first pushes may race the initial connect + backoff; retry.
  ASSERT_TRUE(eventually([&] { return push_once(2s).ok(); }, 20s));

  // Kill the peer: pushes must fail (timeout or prompt nack), not wedge.
  rb.reset();
  auto st = push_once(300ms);
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.error().code == Errc::kTimeout ||
              st.error().code == Errc::kUnreachable)
      << st.error().to_string();

  // Restart it on the same port: the transport reconnects under backoff and
  // the failover-style retry loop recovers without rebuilding `ra`.
  rb = make_b();
  ASSERT_TRUE(eventually([&] { return push_once(2s).ok(); }, 30s))
      << "pushes never recovered after peer restart";
  EXPECT_GE(ma.counter("tcp_reconnects").value(), 1u);
  EXPECT_TRUE(
      eventually([&] { return prop_is_true(*rb, Symbol("g"), kProp); }));
}

}  // namespace
}  // namespace csaw
