// Deterministic chaos harness tests: seeded schedules reproduce exactly,
// events fire at precise workload steps, finish() converges the runtime, and
// -- the core property -- two full chaos runs from the same seed end in the
// same final table state.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compart/chaos.hpp"
#include "compart/runtime.hpp"

namespace csaw {
namespace {

using namespace std::chrono_literals;

const std::vector<Symbol> kAll = {Symbol("a"), Symbol("b"), Symbol("c")};

InstanceDesc sink_instance(Symbol name) {
  // One junction that only accumulates pushed updates (its body never
  // runs). The junction thread still drains the pending queue in stamp
  // order, so once drained the applied image is a pure function of the
  // acked pushes.
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{Symbol("Work"), false}};
  j.table_spec.data = {Symbol("v")};
  j.body = [](JunctionEnv&) {};
  InstanceDesc d;
  d.name = name;
  d.type = Symbol("sink");
  d.junctions.push_back(std::move(j));
  return d;
}

// The applied/pending split races with the junction threads (they drain the
// queue on their own schedule), so the fingerprint first waits for every
// queue to empty; what remains -- the applied image and the arrival count --
// is deterministic.
std::string state_fingerprint(Runtime& rt) {
  std::ostringstream os;
  for (const auto& name : kAll) {
    os << name.str() << ":";
    if (!rt.is_running(name)) {
      os << "down;";
      continue;
    }
    auto& table = rt.table(name, Symbol("j"));
    const auto deadline = steady_now() + 5s;
    while (!table.durable_state().pending.empty() && steady_now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
    const auto st = table.durable_state();
    EXPECT_TRUE(st.pending.empty());
    os << "stamp=" << st.max_stamp << ",props=";
    for (const auto& [p, v] : st.image.props) os << p << "=" << v << ",";
    os << "data=";
    for (const auto& d : st.image.data) {
      os << d.key << "="
         << (d.defined ? std::string(d.bytes.begin(), d.bytes.end()) : "undef")
         << ",";
    }
    os << ";";
  }
  return os.str();
}

// One synchronous chaos run: `steps` acked pushes interleaved with the
// seeded schedule; returns the per-push outcome string plus the final state.
std::string run_workload(std::uint64_t seed) {
  Runtime rt;
  for (const auto& name : kAll) {
    rt.add_instance(sink_instance(name));
    EXPECT_TRUE(rt.start(name).ok());
  }
  ChaosSchedule::Options opts;
  opts.steps = 80;
  opts.episodes = 4;
  opts.min_hold = 5;
  opts.max_hold = 25;
  // Only the exact fault kinds: crash/restart and partition/heal land at
  // precise workload steps; delay/drop perturb timing, which is exercised
  // in ExactScheduleFires instead.
  opts.delay_weight = 0.0;
  opts.drop_weight = 0.0;
  opts.crash_weight = 0.5;
  opts.partition_weight = 0.5;
  ChaosHarness chaos(rt, ChaosSchedule::from_seed(seed, kAll, opts));

  std::ostringstream outcomes;
  for (std::uint64_t i = 0; i < opts.steps; ++i) {
    chaos.on_step(i);
    const Symbol to = kAll[i % kAll.size()];
    const Symbol from = kAll[(i + 1) % kAll.size()];
    const std::string payload = "v" + std::to_string(i);
    auto st = rt.push(
        {.to = JunctionAddr{to, Symbol("j")},
         .update = Update::write_data(
             Symbol("v"), SerializedValue{Symbol("str"),
                                          Bytes(payload.begin(),
                                                payload.end())},
             from.str()),
         .deadline = Deadline::after(150ms),
         .from = from});
    outcomes << (st.ok() ? '+' : '-');
  }
  chaos.finish();
  for (const auto& name : kAll) EXPECT_TRUE(rt.is_running(name));
  return outcomes.str() + "|" + state_fingerprint(rt);
}

TEST(ChaosSchedule, SameSeedSameSchedule) {
  auto s1 = ChaosSchedule::from_seed(7, kAll);
  auto s2 = ChaosSchedule::from_seed(7, kAll);
  ASSERT_EQ(s1.events.size(), s2.events.size());
  EXPECT_GT(s1.events.size(), 0u);
  EXPECT_EQ(s1.describe(), s2.describe());
}

TEST(ChaosSchedule, DifferentSeedDifferentSchedule) {
  EXPECT_NE(ChaosSchedule::from_seed(1, kAll).describe(),
            ChaosSchedule::from_seed(2, kAll).describe());
}

TEST(ChaosSchedule, EventsSortedAndPaired) {
  ChaosSchedule::Options opts;
  opts.episodes = 6;
  auto s = ChaosSchedule::from_seed(99, kAll, opts);
  ASSERT_EQ(s.events.size(), 12u);  // one open + one close per episode
  for (std::size_t i = 1; i < s.events.size(); ++i) {
    EXPECT_LE(s.events[i - 1].step, s.events[i].step);
  }
  int opens = 0, closes = 0;
  for (const auto& e : s.events) {
    const bool close = e.kind == ChaosEvent::Kind::kRestart ||
                       e.kind == ChaosEvent::Kind::kHeal;
    (close ? closes : opens)++;
  }
  EXPECT_EQ(opens, 6);
  EXPECT_EQ(closes, 6);
}

TEST(ChaosSchedule, ConnectionFaultsAreSingleEventEpisodes) {
  // kKillConn / kReconnectStorm episodes have no paired close event: the
  // transport's jittered-backoff reconnect is the heal.
  ChaosSchedule::Options opts;
  opts.episodes = 16;
  opts.crash_weight = 0.0;
  opts.partition_weight = 0.0;
  opts.delay_weight = 0.0;
  opts.drop_weight = 0.0;
  opts.kill_conn_weight = 0.5;
  opts.storm_weight = 0.5;
  opts.peers = {"p1", "p2"};
  auto s = ChaosSchedule::from_seed(42, kAll, opts);
  ASSERT_EQ(s.events.size(), 16u);
  bool saw_kill = false, saw_storm = false;
  for (const auto& e : s.events) {
    if (e.kind == ChaosEvent::Kind::kKillConn) {
      saw_kill = true;
      // Targets are transport peer NAMES from opts.peers, not instances.
      EXPECT_TRUE(e.a == Symbol("p1") || e.a == Symbol("p2")) << e.describe();
    } else {
      ASSERT_EQ(e.kind, ChaosEvent::Kind::kReconnectStorm) << e.describe();
      saw_storm = true;
    }
  }
  EXPECT_TRUE(saw_kill);
  EXPECT_TRUE(saw_storm);
  // Seed determinism holds for the connection-fault kinds too.
  EXPECT_EQ(s.describe(), ChaosSchedule::from_seed(42, kAll, opts).describe());
}

TEST(ChaosSchedule, KillConnWeightIgnoredWithoutPeerNames) {
  // With no peer names to target, the kill_conn weight must not produce
  // untargetable events; the weight collapses out of the distribution.
  ChaosSchedule::Options opts;
  opts.episodes = 8;
  opts.crash_weight = 0.0;
  opts.partition_weight = 0.0;
  opts.delay_weight = 0.0;
  opts.drop_weight = 0.0;
  opts.kill_conn_weight = 1.0;
  opts.storm_weight = 0.0;
  auto s = ChaosSchedule::from_seed(7, kAll, opts);
  for (const auto& e : s.events) {
    EXPECT_NE(e.kind, ChaosEvent::Kind::kKillConn) << e.describe();
  }
}

TEST(ChaosHarness, ConnectionFaultsAreNoOpsWithoutTcp) {
  // An in-process runtime has no TCP connections to kill; the harness must
  // fire the events as no-ops (trace only), not crash.
  Runtime rt;
  rt.add_instance(sink_instance(Symbol("a")));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  ChaosSchedule s;
  ChaosEvent kill;
  kill.step = 0;
  kill.kind = ChaosEvent::Kind::kKillConn;
  kill.a = Symbol("peer-b");
  ChaosEvent storm;
  storm.step = 0;
  storm.kind = ChaosEvent::Kind::kReconnectStorm;
  s.events = {kill, storm};
  ChaosHarness chaos(rt, s);
  chaos.on_step(0);
  EXPECT_TRUE(rt.is_running(Symbol("a")));
}

TEST(ChaosHarness, ExactScheduleFires) {
  Runtime rt;
  for (const auto& name : kAll) {
    rt.add_instance(sink_instance(name));
    ASSERT_TRUE(rt.start(name).ok());
  }
  ChaosSchedule sched;
  sched.events.push_back({.step = 3, .kind = ChaosEvent::Kind::kCrash,
                          .a = Symbol("b")});
  sched.events.push_back({.step = 5,
                          .kind = ChaosEvent::Kind::kDelay,
                          .a = Symbol("a"),
                          .b = Symbol("c"),
                          .delay = 1ms});
  sched.events.push_back({.step = 7, .kind = ChaosEvent::Kind::kRestart,
                          .a = Symbol("b")});
  sched.events.push_back({.step = 9, .kind = ChaosEvent::Kind::kHeal,
                          .a = Symbol("a"), .b = Symbol("c")});
  ChaosHarness chaos(rt, sched);

  chaos.on_step(2);
  EXPECT_TRUE(rt.is_running(Symbol("b")));
  EXPECT_EQ(chaos.fired(), 0u);
  chaos.on_step(3);
  EXPECT_FALSE(rt.is_running(Symbol("b")));
  EXPECT_EQ(chaos.fired(), 1u);
  // Steps may skip ahead; everything due fires in order.
  chaos.on_step(8);
  EXPECT_TRUE(rt.is_running(Symbol("b")));
  EXPECT_EQ(chaos.fired(), 3u);
  chaos.finish();
  EXPECT_EQ(chaos.fired(), 4u);
}

TEST(ChaosHarness, FinishHealsWithoutReplayingFaults) {
  Runtime rt;
  for (const auto& name : kAll) {
    rt.add_instance(sink_instance(name));
    ASSERT_TRUE(rt.start(name).ok());
  }
  ChaosSchedule sched;
  sched.events.push_back({.step = 1, .kind = ChaosEvent::Kind::kCrash,
                          .a = Symbol("a")});
  // Both unfired: the crash at step 50 must be skipped, the restart fired.
  sched.events.push_back({.step = 50, .kind = ChaosEvent::Kind::kCrash,
                          .a = Symbol("c")});
  sched.events.push_back({.step = 60, .kind = ChaosEvent::Kind::kRestart,
                          .a = Symbol("a")});
  ChaosHarness chaos(rt, sched);
  chaos.on_step(1);
  EXPECT_FALSE(rt.is_running(Symbol("a")));
  chaos.finish();
  EXPECT_TRUE(rt.is_running(Symbol("a")));
  EXPECT_TRUE(rt.is_running(Symbol("c")));  // skipped crash never fired
}

TEST(ChaosHarness, SameSeedSameFinalState) {
  const auto run1 = run_workload(0xC5A0);
  const auto run2 = run_workload(0xC5A0);
  EXPECT_EQ(run1, run2);
}

}  // namespace
}  // namespace csaw
