// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
//   * the Fig 3 handoff is correct under every channel condition (latency
//     profiles, lossy links, both transports);
//   * sharding invariants hold for any shard count;
//   * keyspace snapshots roundtrip at any scale;
//   * case/reconsider budgets behave for any retry budget.
#include <gtest/gtest.h>

#include <memory>

#include "apps/miniredis/services.hpp"
#include "apps/miniredis/workload.hpp"
#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"
#include "support/rng.hpp"

namespace csaw {
namespace {

// --- handoff under channel conditions -------------------------------------------

struct ChannelCase {
  const char* name;
  LinkModel link;
  Transport transport;
  bool nack_when_down;
};

class HandoffSweep : public ::testing::TestWithParam<ChannelCase> {};

TEST_P(HandoffSweep, Fig3HandoffCompletesAndTransfersData) {
  const auto& param = GetParam();
  ProgramBuilder p(std::string("sweep_") + param.name);
  p.type("tau_f")
      .junction("j")
      .init_prop("Work", false)
      .init_data("n")
      .body(e_seq({
          e_save("n", "sv"),
          e_otherwise(e_fate(e_seq({
                          e_write("n", jref("g", "j")),
                          e_assert(pr("Work"), jref("g", "j")),
                          e_wait({}, f_not(f_prop("Work"))),
                      })),
                      TimeRef::ms(2000), e_host("complain")),
      }));
  p.type("tau_g")
      .junction("j")
      .init_prop("Work", false)
      .init_data("n")
      .guard(f_prop("Work"))
      .auto_schedule()
      .body(e_seq({
          e_restore("n", "rs"),
          e_otherwise(e_retract(pr("Work"), jref("f", "j")), TimeRef::ms(2000),
                      e_skip()),
      }));
  p.instance("f", "tau_f", {{"j", {}}});
  p.instance("g", "tau_g", {{"j", {}}});
  p.main_body(e_par({e_start(inst("f")), e_start(inst("g"))}));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();

  std::atomic<int> received{0}, complaints{0};
  HostBindings b;
  b.saver("sv", [](HostCtx&) -> Result<SerializedValue> {
    return sv_dyn(DynValue(std::string("payload")));
  });
  b.restorer("rs", [&received](HostCtx&, const SerializedValue& sv) -> Status {
    auto v = dyn_sv(sv);
    if (!v || v->as_string() != "payload") {
      return make_error(Errc::kHostFailure, "corrupted payload");
    }
    received.fetch_add(1);
    return Status::ok_status();
  });
  b.block("complain", [&complaints](HostCtx&) {
    complaints.fetch_add(1);
    return Status::ok_status();
  });

  EngineOptions opts;
  opts.runtime.default_link = param.link;
  opts.runtime.transport = param.transport;
  opts.runtime.nack_when_down = param.nack_when_down;
  opts.runtime.seed = 99;
  Engine engine(std::move(compiled).value(), std::move(b), opts);
  ASSERT_TRUE(engine.run_main().ok());

  constexpr int kRounds = 8;
  for (int i = 0; i < kRounds; ++i) {
    auto st = engine.call("f", "j", Deadline::after(std::chrono::seconds(20)));
    ASSERT_TRUE(st.ok()) << param.name << " round " << i;
  }
  // Under loss, some rounds may complain instead of delivering; the
  // invariant is progress + no corruption + accounting consistency.
  EXPECT_EQ(engine.stats(addr("f", "j")).runs.load(),
            static_cast<std::uint64_t>(kRounds));
  EXPECT_GE(received.load() + complaints.load(), 1);
  if (param.link.drop_prob == 0.0) {
    EXPECT_EQ(received.load(), kRounds);
    EXPECT_EQ(complaints.load(), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Channels, HandoffSweep,
    ::testing::Values(
        ChannelCase{"in_process", LinkModel::in_process(),
                    Transport::kInProcess, true},
        ChannelCase{"same_vm", LinkModel::same_vm(), Transport::kInProcess,
                    true},
        ChannelCase{"cross_vm", LinkModel::cross_vm_1gbe(),
                    Transport::kInProcess, true},
        ChannelCase{"lossy10", LinkModel{{}, 0.0, 0.10, 0},
                    Transport::kInProcess, false},
        ChannelCase{"lossy25", LinkModel{{}, 0.0, 0.25, 0},
                    Transport::kInProcess, false},
        ChannelCase{"tcp", LinkModel::in_process(), Transport::kTcpLoopback,
                    true},
        ChannelCase{"tcp_latency", LinkModel::same_vm(),
                    Transport::kTcpLoopback, true}),
    [](const ::testing::TestParamInfo<ChannelCase>& info) {
      return info.param.name;
    });

// --- sharding invariants for any shard count ------------------------------------

class ShardCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardCountSweep, RoutingIsTotalDeterministicAndAnswersMatch) {
  const std::size_t shards = GetParam();
  miniredis::ShardedService::Options opts;
  opts.shards = shards;
  opts.op_cost_ns = 0;
  miniredis::ShardedService svc(opts);

  std::vector<std::uint64_t> expected(shards, 0);
  for (int i = 0; i < 30; ++i) {
    miniredis::Command set;
    set.op = miniredis::Command::Op::kSet;
    set.key = miniredis::key_name(static_cast<std::size_t>(i));
    set.value = "v" + std::to_string(i);
    const auto shard = svc.shard_of(set);
    ASSERT_LT(shard, shards);
    EXPECT_EQ(shard, djb2(set.key) % shards);  // deterministic djb2 routing
    ++expected[shard];
    ASSERT_TRUE(svc.request(set).ok());
  }
  for (int i = 0; i < 30; ++i) {
    miniredis::Command get;
    get.op = miniredis::Command::Op::kGet;
    get.key = miniredis::key_name(static_cast<std::size_t>(i));
    auto r = svc.request(get);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found);
    EXPECT_EQ(r->value, "v" + std::to_string(i));
    ++expected[svc.shard_of(get)];
  }
  EXPECT_EQ(svc.shard_counts(), expected);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardCountSweep,
                         ::testing::Values(2, 3, 4, 8));

// --- snapshot scale sweep ----------------------------------------------------------

class SnapshotScaleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SnapshotScaleSweep, KeyspaceImageRoundtripsAtScale) {
  const std::size_t keys = GetParam();
  miniredis::Store store(0);
  Rng rng(keys);
  for (std::size_t i = 0; i < keys; ++i) {
    store.set(miniredis::key_name(i),
              std::string(rng.below(200) + 1, static_cast<char>('a' + i % 26)));
  }
  const auto image = store.snapshot();
  miniredis::Store replica(0);
  ASSERT_TRUE(replica.restore(image).ok());
  EXPECT_EQ(replica.size(), keys);
  for (std::size_t i = 0; i < keys; i += std::max<std::size_t>(1, keys / 17)) {
    EXPECT_EQ(replica.get(miniredis::key_name(i)),
              store.get(miniredis::key_name(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, SnapshotScaleSweep,
                         ::testing::Values(0, 1, 17, 500, 5000));

// --- retry budget sweep --------------------------------------------------------------

class RetryBudgetSweep : public ::testing::TestWithParam<int> {};

TEST_P(RetryBudgetSweep, RetryRunsExactlyBudgetTimes) {
  const int budget = GetParam();
  ProgramBuilder p("retry_sweep");
  p.type("tau").junction("j").retry_budget(budget).body(
      e_seq({e_host("tick"), e_retry()}));
  p.instance("a", "tau", {{"j", {}}});
  p.main_body(e_start(inst("a")));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok());
  std::atomic<int> ticks{0};
  HostBindings b;
  b.block("tick", [&ticks](HostCtx&) {
    ticks.fetch_add(1);
    return Status::ok_status();
  });
  Engine engine(std::move(compiled).value(), std::move(b));
  ASSERT_TRUE(engine.run_main().ok());
  ASSERT_TRUE(engine.call("a", "j", Deadline::after(std::chrono::seconds(10))).ok());
  // "retry ... can only be invoked a fixed number of times within a single
  // scheduling" (S6): 1 initial run + budget retries.
  EXPECT_EQ(ticks.load(), 1 + budget);
  EXPECT_EQ(engine.stats(addr("a", "j")).retries.load(),
            static_cast<std::uint64_t>(budget));
}

INSTANTIATE_TEST_SUITE_P(Budgets, RetryBudgetSweep, ::testing::Values(0, 1, 5));

}  // namespace
}  // namespace csaw
