// Hybrid logical clock: packing, monotonicity, and merge under clock skew.
#include "obs/hlc.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace csaw::obs {
namespace {

TEST(Hlc, PackedRoundTripPreservesOrder) {
  const Hlc a{1'700'000'000'000'000ull, 0};
  const Hlc b{1'700'000'000'000'000ull, 7};
  const Hlc c{1'700'000'000'000'001ull, 0};

  EXPECT_EQ(Hlc::from_packed(a.packed()), a);
  EXPECT_EQ(Hlc::from_packed(b.packed()), b);
  EXPECT_EQ(Hlc::from_packed(c.packed()), c);

  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a.packed(), b.packed());
  EXPECT_LT(b.packed(), c.packed());
}

TEST(Hlc, PackedCarriesLogicalOverflowIntoPhysical) {
  // logical does not fit in 12 bits: packing must not lose order.
  const Hlc big{1'000'000, 0x1005};
  const Hlc max_lc{1'000'000, 0xfff};
  EXPECT_LT(max_lc.packed(), big.packed());
  // The carry lands in the physical field: one extra microsecond.
  EXPECT_EQ(Hlc::from_packed(big.packed()).physical_us, 1'000'001u);
  EXPECT_EQ(Hlc::from_packed(big.packed()).logical, 0x005u);
}

TEST(Hlc, PackedHoldsCurrentWallClock) {
  // Unix-epoch micros in 2026 need 51 bits; the 52-bit field must round-trip
  // them (a 48-bit field would silently truncate).
  const Hlc now{wall_now_us(), 3};
  EXPECT_EQ(Hlc::from_packed(now.packed()), now);
}

TEST(Hlc, DefaultIsInvalid) {
  EXPECT_FALSE(Hlc{}.valid());
  EXPECT_TRUE((Hlc{1, 0}).valid());
  EXPECT_TRUE((Hlc{0, 1}).valid());
}

TEST(HlcClock, TickIsStrictlyMonotonic) {
  HlcClock clock;
  Hlc prev = clock.tick();
  for (int i = 0; i < 10'000; ++i) {
    const Hlc next = clock.tick();
    ASSERT_LT(prev, next);
    prev = next;
  }
}

TEST(HlcClock, FrozenPhysicalClockStillAdvancesLogically) {
  HlcClock clock([] { return 42ull; });
  Hlc prev = clock.tick();
  EXPECT_EQ(prev.physical_us, 42u);
  for (int i = 0; i < 100; ++i) {
    const Hlc next = clock.tick();
    ASSERT_LT(prev, next);
    ASSERT_EQ(next.physical_us, 42u);  // only the logical part moves
    prev = next;
  }
}

TEST(HlcClock, MergeAdoptsFastRemoteClock) {
  HlcClock clock([] { return 1'000ull; });
  (void)clock.tick();
  // A remote instance whose wall clock is far ahead: the merged timestamp
  // must not be before the remote one, or effects would precede causes.
  const Hlc remote{50'000, 3};
  const Hlc merged = clock.merge(remote);
  EXPECT_LT(remote, merged);
  // And local progress continues from there.
  EXPECT_LT(merged, clock.tick());
}

TEST(HlcClock, MergeIgnoresInvalidRemote) {
  HlcClock clock([] { return 777ull; });
  const Hlc before = clock.tick();
  const Hlc merged = clock.merge(Hlc{});
  EXPECT_LT(before, merged);
  EXPECT_EQ(merged.physical_us, 777u);
}

TEST(HlcClock, MonotonicWhenPhysicalClockStepsBackward) {
  // Simulate NTP stepping the clock back: ticks must never regress.
  std::atomic<std::uint64_t> now{100'000};
  HlcClock clock([&now] { return now.load(); });
  const Hlc high = clock.tick();
  now.store(50'000);  // clock stepped back 50 ms
  Hlc prev = high;
  for (int i = 0; i < 100; ++i) {
    const Hlc next = clock.tick();
    ASSERT_LT(prev, next);
    prev = next;
  }
  EXPECT_GE(prev.physical_us, high.physical_us);
}

TEST(HlcClock, ConcurrentTicksAreUnique) {
  HlcClock clock;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2'000;
  std::vector<std::vector<Hlc>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&clock, &got, t] {
      got[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) got[t].push_back(clock.tick());
    });
  }
  for (auto& t : threads) t.join();
  std::set<std::uint64_t> unique;
  for (const auto& per_thread : got) {
    Hlc prev{};
    for (const Hlc& h : per_thread) {
      ASSERT_LT(prev, h);  // per-thread order
      unique.insert(h.packed());
      prev = h;
    }
  }
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace csaw::obs
