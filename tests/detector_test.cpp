// Unit tests for the failure detector (compart/detector) and the authority-
// epoch wire plumbing: heartbeat-driven liveness, suspicion after missed
// intervals, recovery, and the tagged envelope trailer that carries epochs
// without breaking old decoders.
#include <gtest/gtest.h>

#include "compart/detector.hpp"
#include "compart/wire.hpp"
#include "obs/metrics.hpp"

namespace csaw {
namespace {

using namespace std::chrono_literals;

FailureDetector::Options fast_opts() {
  FailureDetector::Options o;
  o.heartbeat_interval = 10ms;
  o.suspect_after_missed = 3;
  return o;
}

TEST(FailureDetector, SuspectsAfterMissedHeartbeats) {
  obs::Metrics metrics;
  FailureDetector d(fast_opts(), &metrics, nullptr);
  const auto t0 = steady_now();
  d.observe(Symbol("nodeA"), /*epoch=*/1, {Symbol("primary")}, t0);

  // Fresh: alive.
  EXPECT_TRUE(d.instance_alive(Symbol("primary"), t0 + 5ms));
  // Within the suspicion window (3 * 10ms): still alive.
  EXPECT_TRUE(d.instance_alive(Symbol("primary"), t0 + 25ms));
  // Past it: suspected, instance no longer considered alive.
  EXPECT_FALSE(d.instance_alive(Symbol("primary"), t0 + 31ms));
  EXPECT_EQ(metrics.counter("detector_suspicions").value(), 1u);

  auto peers = d.peers(t0 + 31ms);
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_TRUE(peers[0].suspected);
  EXPECT_EQ(peers[0].epoch, 1u);
}

TEST(FailureDetector, RecoversOnNextHeartbeat) {
  obs::Metrics metrics;
  FailureDetector d(fast_opts(), &metrics, nullptr);
  const auto t0 = steady_now();
  d.observe(Symbol("nodeA"), 1, {Symbol("primary")}, t0);
  EXPECT_FALSE(d.instance_alive(Symbol("primary"), t0 + 100ms));
  // A late heartbeat un-suspects the peer.
  d.observe(Symbol("nodeA"), 1, {Symbol("primary")}, t0 + 101ms);
  EXPECT_TRUE(d.instance_alive(Symbol("primary"), t0 + 102ms));
  EXPECT_EQ(metrics.counter("detector_recoveries").value(), 1u);
}

TEST(FailureDetector, TracksRunningSetPerPeer) {
  FailureDetector d(fast_opts(), nullptr, nullptr);
  const auto t0 = steady_now();
  d.observe(Symbol("nodeA"), 1, {Symbol("a1"), Symbol("a2")}, t0);
  d.observe(Symbol("nodeB"), 1, {Symbol("b1")}, t0);
  EXPECT_TRUE(d.instance_alive(Symbol("a2"), t0 + 1ms));
  EXPECT_TRUE(d.instance_alive(Symbol("b1"), t0 + 1ms));
  EXPECT_FALSE(d.instance_alive(Symbol("nowhere"), t0 + 1ms));
  EXPECT_TRUE(d.knows_instance(Symbol("a1")));
  EXPECT_FALSE(d.knows_instance(Symbol("nowhere")));
  // An instance stops being advertised (stopped remotely): no longer alive.
  d.observe(Symbol("nodeA"), 1, {Symbol("a1")}, t0 + 2ms);
  EXPECT_FALSE(d.instance_alive(Symbol("a2"), t0 + 3ms));
}

TEST(FailureDetector, StaleEpochFrameNeitherRefreshesNorUnsuspects) {
  // Regression: a heartbeat carrying an epoch older than the peer's
  // best-known one (a pre-takeover straggler, or a flapping peer's old
  // frames draining late) used to refresh last_seen and clear suspicion,
  // so a fast-flapping peer could wipe its own suspicion forever.
  obs::Metrics metrics;
  FailureDetector d(fast_opts(), &metrics, nullptr);
  const auto t0 = steady_now();
  d.observe(Symbol("nodeA"), 5, {Symbol("primary")}, t0);
  EXPECT_FALSE(d.instance_alive(Symbol("primary"), t0 + 100ms));
  EXPECT_EQ(metrics.counter("detector_suspicions").value(), 1u);

  // The stale-epoch straggler changes nothing: still suspected, no
  // recovery emitted, last_seen not refreshed.
  d.observe(Symbol("nodeA"), 3, {Symbol("primary")}, t0 + 101ms);
  EXPECT_FALSE(d.instance_alive(Symbol("primary"), t0 + 102ms));
  EXPECT_EQ(metrics.counter("detector_recoveries").value(), 0u);

  // A current-epoch heartbeat recovers the peer as usual.
  d.observe(Symbol("nodeA"), 5, {Symbol("primary")}, t0 + 103ms);
  EXPECT_TRUE(d.instance_alive(Symbol("primary"), t0 + 104ms));
  EXPECT_EQ(metrics.counter("detector_recoveries").value(), 1u);

  // Epoch 0 frames are unversioned (single-epoch deployments) and always
  // count as liveness evidence.
  d.observe(Symbol("nodeA"), 0, {Symbol("primary")}, t0 + 200ms);
  EXPECT_TRUE(d.instance_alive(Symbol("primary"), t0 + 201ms));
}

TEST(FailureDetector, ForgetPurgesDepartedPeer) {
  // Regression for dynamic membership: a peer removed from the cluster
  // (TcpTransport::remove_peer -> Runtime::remove_peer -> forget) must be
  // purged from the suspicion map. Before forget() existed, a departed
  // peer's entry aged into "suspected" forever, and its last queued frames
  // draining late would flap it back through detector_recoveries.
  obs::Metrics metrics;
  FailureDetector d(fast_opts(), &metrics, nullptr);
  const auto t0 = steady_now();
  d.observe(Symbol("nodeA"), 1, {Symbol("primary")}, t0);
  EXPECT_FALSE(d.instance_alive(Symbol("primary"), t0 + 100ms));
  EXPECT_EQ(metrics.counter("detector_suspicions").value(), 1u);

  EXPECT_TRUE(d.forget(Symbol("nodeA")));
  EXPECT_FALSE(d.forget(Symbol("nodeA")));  // already gone
  EXPECT_FALSE(d.knows_instance(Symbol("primary")));
  EXPECT_TRUE(d.peers(t0 + 101ms).empty());

  // The departed peer emits no further suspicion/recovery flaps however
  // long we keep querying.
  EXPECT_FALSE(d.instance_alive(Symbol("primary"), t0 + 500ms));
  EXPECT_EQ(metrics.counter("detector_suspicions").value(), 1u);
  EXPECT_EQ(metrics.counter("detector_recoveries").value(), 0u);

  // A heartbeat after removal is a fresh registration (re-join), not a
  // recovery of the old suspected entry.
  d.observe(Symbol("nodeA"), 2, {Symbol("primary")}, t0 + 600ms);
  EXPECT_TRUE(d.instance_alive(Symbol("primary"), t0 + 601ms));
  EXPECT_EQ(metrics.counter("detector_recoveries").value(), 0u);
}

TEST(FailureDetector, KeepsHighestEpochSeen) {
  FailureDetector d(fast_opts(), nullptr, nullptr);
  const auto t0 = steady_now();
  d.observe(Symbol("nodeA"), 5, {}, t0);
  d.observe(Symbol("nodeA"), 3, {}, t0 + 1ms);  // stale epoch doesn't regress
  auto peers = d.peers(t0 + 2ms);
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].epoch, 5u);
}

TEST(Wire, EpochRoundTrips) {
  Envelope env;
  env.kind = Envelope::Kind::kUpdate;
  env.from_instance = Symbol("a");
  env.to = JunctionAddr{Symbol("b"), Symbol("j")};
  env.update = Update::assert_prop(Symbol("P"), "a::j");
  env.seq = 42;
  env.epoch = 9;
  auto decoded = decode_envelope(encode_envelope(env));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded->epoch, 9u);
  EXPECT_EQ(decoded->seq, 42u);
  EXPECT_EQ(decoded->kind, Envelope::Kind::kUpdate);
}

TEST(Wire, EpochZeroIsElided) {
  Envelope env;
  env.kind = Envelope::Kind::kAck;
  env.seq = 1;
  env.epoch = 0;
  auto decoded = decode_envelope(encode_envelope(env));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->epoch, 0u);
}

TEST(Wire, HeartbeatKindRoundTrips) {
  Envelope env;
  env.kind = Envelope::Kind::kHeartbeat;
  env.from_instance = Symbol("node@9");
  env.epoch = 3;
  env.update.kind = Update::Kind::kWriteData;
  env.update.key = Symbol("heartbeat");
  env.update.value.bytes = Bytes{2, 'h', 'i'};
  auto decoded = decode_envelope(encode_envelope(env));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded->kind, Envelope::Kind::kHeartbeat);
  EXPECT_EQ(decoded->epoch, 3u);
  EXPECT_EQ(decoded->from_instance.str(), "node@9");
  EXPECT_EQ(decoded->update.value.bytes, (Bytes{2, 'h', 'i'}));
}

TEST(Wire, TrailerWithBothContextAndEpoch) {
  Envelope env;
  env.kind = Envelope::Kind::kUpdate;
  env.to = JunctionAddr{Symbol("b"), Symbol("j")};
  env.update = Update::assert_prop(Symbol("P"));
  obs::TraceContext ctx;
  ctx.trace_id = 0x1234;
  ctx.span_id = 0x77;
  env.ctx = ctx;
  env.epoch = 11;
  auto decoded = decode_envelope(encode_envelope(env));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  ASSERT_TRUE(decoded->ctx.has_value());
  EXPECT_EQ(decoded->ctx->trace_id, 0x1234u);
  EXPECT_EQ(decoded->epoch, 11u);
}

TEST(Wire, BadKindRejected) {
  Envelope env;
  env.kind = Envelope::Kind::kUpdate;
  env.to = JunctionAddr{Symbol("b"), Symbol("j")};
  auto bytes = encode_envelope(env);
  bytes[0] = 0x7F;  // kind byte is first
  auto decoded = decode_envelope(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::kDecode);
}

}  // namespace
}  // namespace csaw
