// Tests for the loopback-TCP transport: envelope wire encoding, and a full
// Fig 3 handoff where every KV update crosses a real kernel socket.
#include <gtest/gtest.h>

#include <atomic>

#include "compart/wire.hpp"
#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"

namespace csaw {
namespace {

TEST(Wire, EnvelopeRoundtrip) {
  Envelope env;
  env.kind = Envelope::Kind::kUpdate;
  env.seq = 77;
  env.from_instance = Symbol("f");
  env.to = addr("g", "junction");
  env.update = Update::write_data(
      Symbol("n"), SerializedValue{Symbol("t"), Bytes{1, 2, 3}}, "f::j");
  const auto bytes = encode_envelope(env);
  auto back = decode_envelope(bytes);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->seq, 77u);
  EXPECT_EQ(back->to, env.to);
  EXPECT_EQ(back->update.kind, Update::Kind::kWriteData);
  EXPECT_EQ(back->update.value.bytes, (Bytes{1, 2, 3}));
  EXPECT_EQ(back->update.from, "f::j");
}

TEST(Wire, AckRoundtripWithNack) {
  Envelope env;
  env.kind = Envelope::Kind::kAck;
  env.seq = 9;
  env.from_instance = Symbol("g");
  env.to = JunctionAddr{Symbol("f"), Symbol()};
  env.nack = true;
  env.nack_reason = "down";
  auto back = decode_envelope(encode_envelope(env));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, Envelope::Kind::kAck);
  EXPECT_TRUE(back->nack);
  EXPECT_EQ(back->nack_reason, "down");
  EXPECT_FALSE(back->to.junction.valid());
}

TEST(Wire, MalformedFramesRejected) {
  EXPECT_FALSE(decode_envelope(Bytes{}).ok());
  EXPECT_FALSE(decode_envelope(Bytes{0xff, 0xff}).ok());
  auto good = encode_envelope(Envelope{});
  good.push_back(0);  // trailing garbage
  EXPECT_FALSE(decode_envelope(good).ok());
}

TEST(TcpTransport, Fig3HandoffOverRealSockets) {
  ProgramBuilder p("tcp_fig3");
  p.type("tau_f")
      .junction("j")
      .init_prop("Work", false)
      .init_data("n")
      .body(e_seq({
          e_host("H1"),
          e_save("n", "sv"),
          e_write("n", jref("g", "j")),
          e_assert(pr("Work"), jref("g", "j")),
          e_wait({}, f_not(f_prop("Work"))),
      }));
  p.type("tau_g")
      .junction("j")
      .init_prop("Work", false)
      .init_data("n")
      .guard(f_prop("Work"))
      .auto_schedule()
      .body(e_seq({e_host("H2"), e_retract(pr("Work"), jref("f", "j"))}));
  p.instance("f", "tau_f", {{"j", {}}});
  p.instance("g", "tau_g", {{"j", {}}});
  p.main_body(e_par({e_start(inst("f")), e_start(inst("g"))}));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();

  std::atomic<int> h1{0}, h2{0};
  HostBindings b;
  b.block("H1", [&h1](HostCtx&) {
    h1.fetch_add(1);
    return Status::ok_status();
  });
  b.block("H2", [&h2](HostCtx&) {
    h2.fetch_add(1);
    return Status::ok_status();
  });
  b.saver("sv", [](HostCtx&) -> Result<SerializedValue> {
    return sv_dyn(DynValue(std::string("over-tcp")));
  });

  EngineOptions opts;
  opts.runtime.transport = Transport::kTcpLoopback;
  Engine engine(std::move(compiled).value(), std::move(b), opts);
  ASSERT_TRUE(engine.run_main().ok());
  for (int i = 0; i < 10; ++i) {
    auto st = engine.call("f", "j", Deadline::after(std::chrono::seconds(10)));
    ASSERT_TRUE(st.ok()) << "round " << i << ": " << st.error().to_string();
  }
  EXPECT_EQ(h1.load(), 10);
  EXPECT_EQ(h2.load(), 10);
}

TEST(TcpTransport, NackTravelsOverSockets) {
  // Push to a down instance: the nack must make the round trip through the
  // socket path too.
  ProgramBuilder p("tcp_nack");
  p.type("tau").junction("j").init_prop("P", false).body(e_skip());
  p.instance("a", "tau", {{"j", {}}});
  p.main_body(e_skip());  // nothing started
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok());
  EngineOptions opts;
  opts.runtime.transport = Transport::kTcpLoopback;
  Engine engine(std::move(compiled).value(), HostBindings{}, opts);
  ASSERT_TRUE(engine.run_main().ok());
  auto st = engine.runtime().push(
      {.to = addr("a", "j"),
       .update = Update::assert_prop(Symbol("P")),
       .deadline = Deadline::after(std::chrono::seconds(5)),
       .from = Symbol("test")});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::kUnreachable);
}

}  // namespace
}  // namespace csaw
