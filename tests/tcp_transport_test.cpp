// Tests for the loopback-TCP transport: envelope wire encoding, and a full
// Fig 3 handoff where every KV update crosses a real kernel socket.
#include <gtest/gtest.h>

#include <atomic>

#include "compart/wire.hpp"
#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"
#include "obs/trace.hpp"

namespace csaw {
namespace {

TEST(Wire, EnvelopeRoundtrip) {
  Envelope env;
  env.kind = Envelope::Kind::kUpdate;
  env.seq = 77;
  env.from_instance = Symbol("f");
  env.to = addr("g", "junction");
  env.update = Update::write_data(
      Symbol("n"), SerializedValue{Symbol("t"), Bytes{1, 2, 3}}, "f::j");
  const auto bytes = encode_envelope(env);
  auto back = decode_envelope(bytes);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(back->seq, 77u);
  EXPECT_EQ(back->to, env.to);
  EXPECT_EQ(back->update.kind, Update::Kind::kWriteData);
  EXPECT_EQ(back->update.value.bytes, (Bytes{1, 2, 3}));
  EXPECT_EQ(back->update.from, "f::j");
}

TEST(Wire, AckRoundtripWithNack) {
  Envelope env;
  env.kind = Envelope::Kind::kAck;
  env.seq = 9;
  env.from_instance = Symbol("g");
  env.to = JunctionAddr{Symbol("f"), Symbol()};
  env.nack = true;
  env.nack_reason = "down";
  auto back = decode_envelope(encode_envelope(env));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->kind, Envelope::Kind::kAck);
  EXPECT_TRUE(back->nack);
  EXPECT_EQ(back->nack_reason, "down");
  EXPECT_FALSE(back->to.junction.valid());
}

TEST(Wire, MalformedFramesRejected) {
  EXPECT_FALSE(decode_envelope(Bytes{}).ok());
  EXPECT_FALSE(decode_envelope(Bytes{0xff, 0xff}).ok());
  auto good = encode_envelope(Envelope{});
  good.push_back(0);  // trailing garbage
  EXPECT_FALSE(decode_envelope(good).ok());
}

TEST(Wire, TraceContextRoundtrip) {
  Envelope env;
  env.kind = Envelope::Kind::kUpdate;
  env.seq = 5;
  env.from_instance = Symbol("f");
  env.to = addr("g", "j");
  env.update = Update::assert_prop(Symbol("Work"));
  env.ctx = obs::TraceContext{
      0xdeadbeefcafef00dull, 42,
      obs::Hlc{1'700'000'000'000'123ull, 7}};
  auto back = decode_envelope(encode_envelope(env));
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  ASSERT_TRUE(back->ctx.has_value());
  EXPECT_EQ(back->ctx->trace_id, 0xdeadbeefcafef00dull);
  EXPECT_EQ(back->ctx->span_id, 42u);
  EXPECT_EQ(back->ctx->hlc.physical_us, 1'700'000'000'000'123ull);
  EXPECT_EQ(back->ctx->hlc.logical, 7u);
}

TEST(Wire, FrameWithoutContextDecodesAsNullContext) {
  // Old senders (and new untraced ones) end the frame after nack_reason;
  // that must decode as "no context", not as an error. Untraced frames are
  // byte-identical to the pre-tracing wire format, so encoding without a
  // context IS the old format.
  Envelope env;
  env.seq = 3;
  env.from_instance = Symbol("f");
  env.to = addr("g", "j");
  auto back = decode_envelope(encode_envelope(env));
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_FALSE(back->ctx.has_value());
}

TEST(Wire, TruncatedOrCorruptContextRejected) {
  Envelope env;
  env.ctx = obs::TraceContext{1, 2, obs::Hlc{3'000'000, 4}};
  const auto bytes = encode_envelope(env);
  const auto bare = encode_envelope(Envelope{});  // same frame, no trailer
  ASSERT_GT(bytes.size(), bare.size() + 1);
  // Chop anywhere inside the trailer (but not at its boundary): error.
  for (std::size_t len = bare.size() + 1; len < bytes.size(); ++len) {
    Bytes truncated(bytes.begin(),
                    bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(decode_envelope(truncated).ok()) << "len " << len;
  }
  // A corrupt trailer marker is an error too.
  Bytes bad_marker = bytes;
  bad_marker[bare.size()] = 9;
  EXPECT_FALSE(decode_envelope(bad_marker).ok());
}

TEST(TcpTransport, Fig3HandoffOverRealSockets) {
  ProgramBuilder p("tcp_fig3");
  p.type("tau_f")
      .junction("j")
      .init_prop("Work", false)
      .init_data("n")
      .body(e_seq({
          e_host("H1"),
          e_save("n", "sv"),
          e_write("n", jref("g", "j")),
          e_assert(pr("Work"), jref("g", "j")),
          e_wait({}, f_not(f_prop("Work"))),
      }));
  p.type("tau_g")
      .junction("j")
      .init_prop("Work", false)
      .init_data("n")
      .guard(f_prop("Work"))
      .auto_schedule()
      .body(e_seq({e_host("H2"), e_retract(pr("Work"), jref("f", "j"))}));
  p.instance("f", "tau_f", {{"j", {}}});
  p.instance("g", "tau_g", {{"j", {}}});
  p.main_body(e_par({e_start(inst("f")), e_start(inst("g"))}));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();

  std::atomic<int> h1{0}, h2{0};
  HostBindings b;
  b.block("H1", [&h1](HostCtx&) {
    h1.fetch_add(1);
    return Status::ok_status();
  });
  b.block("H2", [&h2](HostCtx&) {
    h2.fetch_add(1);
    return Status::ok_status();
  });
  b.saver("sv", [](HostCtx&) -> Result<SerializedValue> {
    return sv_dyn(DynValue(std::string("over-tcp")));
  });

  EngineOptions opts;
  opts.runtime.transport = Transport::kTcpLoopback;
  Engine engine(std::move(compiled).value(), std::move(b), opts);
  ASSERT_TRUE(engine.run_main().ok());
  for (int i = 0; i < 10; ++i) {
    auto st = engine.call("f", "j", Deadline::after(std::chrono::seconds(10)));
    ASSERT_TRUE(st.ok()) << "round " << i << ": " << st.error().to_string();
  }
  EXPECT_EQ(h1.load(), 10);
  EXPECT_EQ(h2.load(), 10);
}

TEST(TcpTransport, ContextPropagatesAcrossSockets) {
  // Same Fig 3 handoff, traced: g's junction run must be a child span of
  // f's push even though the context crossed a real kernel socket.
  ProgramBuilder p("tcp_ctx");
  p.type("tau_f")
      .junction("j")
      .init_prop("Work", false)
      .body(e_seq({
          e_assert(pr("Work"), jref("g", "j")),
          e_wait({}, f_not(f_prop("Work"))),
      }));
  p.type("tau_g")
      .junction("j")
      .init_prop("Work", false)
      .guard(f_prop("Work"))
      .auto_schedule()
      .body(e_retract(pr("Work"), jref("f", "j")));
  p.instance("f", "tau_f", {{"j", {}}});
  p.instance("g", "tau_g", {{"j", {}}});
  p.main_body(e_par({e_start(inst("f")), e_start(inst("g"))}));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();

  obs::Tracer tracer;
  EngineOptions opts;
  opts.runtime.transport = Transport::kTcpLoopback;
  opts.runtime.trace_sink = &tracer;
  Engine engine(std::move(compiled).value(), HostBindings{}, opts);
  ASSERT_TRUE(engine.run_main().ok());
  ASSERT_TRUE(
      engine.call("f", "j", Deadline::after(std::chrono::seconds(10))).ok());
  engine.runtime().shutdown();

  const auto events = tracer.drain();
  const obs::TraceEvent* push_fg = nullptr;  // f's push of Work to g
  const obs::TraceEvent* ran_g = nullptr;    // g's resulting run
  for (const auto& e : events) {
    if (e.kind == obs::TraceEvent::Kind::kPushSent &&
        e.instance == Symbol("f") && e.peer == Symbol("g") &&
        push_fg == nullptr) {
      push_fg = &e;
    }
    if (e.kind == obs::TraceEvent::Kind::kJunctionRan &&
        e.instance == Symbol("g") && ran_g == nullptr) {
      ran_g = &e;
    }
  }
  ASSERT_NE(push_fg, nullptr);
  ASSERT_NE(ran_g, nullptr);
  EXPECT_NE(push_fg->trace_id, 0u);
  EXPECT_EQ(ran_g->trace_id, push_fg->trace_id)
      << "trace id survived the socket hop";
  EXPECT_EQ(ran_g->parent_span, push_fg->span_id)
      << "g's run is a child of f's push";
  // And the HLC ordered the hop: the child run starts after the push.
  EXPECT_TRUE(push_fg->hlc.valid());
  EXPECT_LT(push_fg->hlc, ran_g->hlc);
}

TEST(TcpTransport, NackTravelsOverSockets) {
  // Push to a down instance: the nack must make the round trip through the
  // socket path too.
  ProgramBuilder p("tcp_nack");
  p.type("tau").junction("j").init_prop("P", false).body(e_skip());
  p.instance("a", "tau", {{"j", {}}});
  p.main_body(e_skip());  // nothing started
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok());
  EngineOptions opts;
  opts.runtime.transport = Transport::kTcpLoopback;
  Engine engine(std::move(compiled).value(), HostBindings{}, opts);
  ASSERT_TRUE(engine.run_main().ok());
  auto st = engine.runtime().push(
      {.to = addr("a", "j"),
       .update = Update::assert_prop(Symbol("P")),
       .deadline = Deadline::after(std::chrono::seconds(5)),
       .from = Symbol("test")});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::kUnreachable);
}

}  // namespace
}  // namespace csaw
