// Integration test of the Fig 7 caching architecture: memoization of a pure
// function, with the back-end (tau_Fun) consulted only on cacheable misses
// and non-cacheable requests.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>

#include "apps/miniredis/command.hpp"
#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"
#include "patterns/caching.hpp"

namespace csaw {
namespace {

using miniredis::Mailbox;

struct Request {
  std::string key;
  bool cacheable = true;
};

struct CacheState {
  Mailbox<Request> requests;
  Mailbox<std::string> responses;
  Request current;
  std::string result;
  std::map<std::string, std::string> cache;
  std::atomic<int> hits{0};
  std::atomic<int> misses{0};
};

struct FunState {
  std::string current_key;
  std::string result;
  std::atomic<int> computed{0};
};

struct Fixture {
  std::unique_ptr<Engine> engine;
  std::shared_ptr<CacheState> cache = std::make_shared<CacheState>();
  std::shared_ptr<FunState> fun = std::make_shared<FunState>();

  Fixture() {
    auto compiled = compile(patterns::caching({}));
    CSAW_CHECK(compiled.ok()) << compiled.error().to_string();

    HostBindings b;
    b.block("complain", [](HostCtx&) { return Status::ok_status(); });
    b.block("CheckCacheable", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<CacheState>();
      auto req = st.requests.pop(Deadline::after(std::chrono::seconds(5)));
      if (!req) return make_error(Errc::kHostFailure, "no request");
      st.current = std::move(*req);
      return ctx.set_prop("Cacheable", st.current.cacheable);
    });
    b.block("LookupCache", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<CacheState>();
      auto it = st.cache.find(st.current.key);
      if (it != st.cache.end()) {
        st.result = it->second;
        st.responses.push(it->second);
        st.hits.fetch_add(1);
        return ctx.set_prop("Cached", true);
      }
      st.misses.fetch_add(1);
      return ctx.set_prop("Cached", false);
    });
    b.block("UpdateCache", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<CacheState>();
      st.cache[st.current.key] = st.result;
      return Status::ok_status();
    });
    b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
      return sv_dyn(DynValue(ctx.state<CacheState>().current.key));
    });
    b.restorer("unpack_request",
               [](HostCtx& ctx, const SerializedValue& sv) -> Status {
                 auto v = dyn_sv(sv);
                 if (!v) return v.error();
                 ctx.state<FunState>().current_key = v->as_string();
                 return Status::ok_status();
               });
    // |_F_|: the pure function being memoized.
    b.block("F", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<FunState>();
      st.result = "f(" + st.current_key + ")";
      st.computed.fetch_add(1);
      return Status::ok_status();
    });
    b.saver("pack_response", [](HostCtx& ctx) -> Result<SerializedValue> {
      return sv_dyn(DynValue(ctx.state<FunState>().result));
    });
    b.restorer("deliver_response",
               [](HostCtx& ctx, const SerializedValue& sv) -> Status {
                 auto v = dyn_sv(sv);
                 if (!v) return v.error();
                 auto& st = ctx.state<CacheState>();
                 st.result = v->as_string();
                 st.responses.push(st.result);
                 return Status::ok_status();
               });

    engine = std::make_unique<Engine>(std::move(compiled).value(), std::move(b));
    engine->set_state(Symbol("Cache"), cache);
    engine->set_state(Symbol("Fun"), fun);
    auto st = engine->run_main();
    CSAW_CHECK(st.ok()) << st.error().to_string();
  }

  std::string request(std::string key, bool cacheable = true) {
    cache->requests.push(Request{std::move(key), cacheable});
    auto st = engine->call("Cache", "j", Deadline::after(std::chrono::seconds(10)));
    CSAW_CHECK(st.ok()) << st.error().to_string();
    auto resp = cache->responses.pop(Deadline::after(std::chrono::seconds(5)));
    CSAW_CHECK(resp.has_value()) << "no response";
    return *resp;
  }
};

TEST(CachingPattern, MissThenHitMemoizes) {
  Fixture fx;
  EXPECT_EQ(fx.request("a"), "f(a)");
  EXPECT_EQ(fx.fun->computed.load(), 1);
  EXPECT_EQ(fx.cache->misses.load(), 1);

  // Second request for the same key: served from cache, F not re-run.
  EXPECT_EQ(fx.request("a"), "f(a)");
  EXPECT_EQ(fx.fun->computed.load(), 1);
  EXPECT_EQ(fx.cache->hits.load(), 1);

  EXPECT_EQ(fx.request("b"), "f(b)");
  EXPECT_EQ(fx.fun->computed.load(), 2);
}

TEST(CachingPattern, NonCacheableAlwaysComputes) {
  Fixture fx;
  EXPECT_EQ(fx.request("x", /*cacheable=*/false), "f(x)");
  EXPECT_EQ(fx.request("x", /*cacheable=*/false), "f(x)");
  EXPECT_EQ(fx.fun->computed.load(), 2);
  EXPECT_TRUE(fx.cache->cache.empty());
}

TEST(CachingPattern, SkewedWorkloadMostlyHits) {
  Fixture fx;
  // 50 requests over 5 keys: 45 hits after the first 5 misses.
  for (int i = 0; i < 50; ++i) {
    const std::string key = "k" + std::to_string(i % 5);
    EXPECT_EQ(fx.request(key), "f(" + key + ")");
  }
  EXPECT_EQ(fx.fun->computed.load(), 5);
  EXPECT_EQ(fx.cache->hits.load(), 45);
}

}  // namespace
}  // namespace csaw
