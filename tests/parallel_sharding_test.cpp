// Integration test of the S7.1 parallel-sharding/replication architecture:
// the front-end fans a request out to a runtime-chosen *subset* of
// back-ends in parallel, tracks per-back-end usability (ActiveBackend), and
// complains only when no back-end remains viable.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "apps/miniredis/command.hpp"
#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"
#include "patterns/sharding.hpp"

namespace csaw {
namespace {

using miniredis::Mailbox;

struct FrontState {
  Mailbox<std::string> requests;
  std::string current;
  std::vector<bool> chosen;  // which back-ends to engage this round
  std::atomic<int> complaints{0};
};

struct BackState {
  std::vector<std::string> received;
  std::atomic<int> runs{0};
};

struct Fixture {
  static constexpr std::size_t kBackends = 3;
  std::unique_ptr<Engine> engine;
  std::shared_ptr<FrontState> front = std::make_shared<FrontState>();
  std::vector<std::shared_ptr<BackState>> backs;

  Fixture() {
    patterns::ParallelShardingOptions opts;
    opts.backends = kBackends;
    opts.timeout_ms = 300;
    auto compiled = compile(patterns::parallel_sharding(opts));
    CSAW_CHECK(compiled.ok()) << compiled.error().to_string();

    HostBindings b;
    b.block("complain", [fs = front](HostCtx&) {
      fs->complaints.fetch_add(1);
      return Status::ok_status();
    });
    b.block("ChooseSet", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<FrontState>();
      auto req = st.requests.pop(Deadline::after(std::chrono::seconds(5)));
      if (!req) return make_error(Errc::kHostFailure, "no request");
      st.current = std::move(*req);
      return ctx.set_subset("tgt", st.chosen);
    });
    b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
      return sv_dyn(DynValue(ctx.state<FrontState>().current));
    });
    b.restorer("unpack_request",
               [](HostCtx& ctx, const SerializedValue& sv) -> Status {
                 auto v = dyn_sv(sv);
                 if (!v) return v.error();
                 ctx.state<BackState>().received.push_back(v->as_string());
                 return Status::ok_status();
               });
    b.block("H_back", [](HostCtx& ctx) {
      ctx.state<BackState>().runs.fetch_add(1);
      return Status::ok_status();
    });

    engine = std::make_unique<Engine>(std::move(compiled).value(), std::move(b));
    engine->set_state(Symbol("Fnt"), front);
    for (std::size_t i = 1; i <= kBackends; ++i) {
      backs.push_back(std::make_shared<BackState>());
      engine->set_state(Symbol("Bck" + std::to_string(i)), backs.back());
    }
    auto st = engine->run_main();
    CSAW_CHECK(st.ok()) << st.error().to_string();
  }

  void replicate(const std::string& payload, std::vector<bool> to) {
    front->chosen = std::move(to);
    front->requests.push(payload);
    auto st = engine->call("Fnt", "j", Deadline::after(std::chrono::seconds(10)));
    CSAW_CHECK(st.ok()) << st.error().to_string();
  }
};

TEST(ParallelSharding, ReplicatesToChosenSubset) {
  Fixture fx;
  fx.replicate("alpha", {true, true, false});
  EXPECT_EQ(fx.backs[0]->received, (std::vector<std::string>{"alpha"}));
  EXPECT_EQ(fx.backs[1]->received, (std::vector<std::string>{"alpha"}));
  EXPECT_TRUE(fx.backs[2]->received.empty());

  fx.replicate("beta", {false, false, true});
  EXPECT_TRUE(fx.backs[0]->received.size() == 1);
  EXPECT_EQ(fx.backs[2]->received, (std::vector<std::string>{"beta"}));
  EXPECT_EQ(fx.front->complaints.load(), 0);
}

TEST(ParallelSharding, FullFanOutReachesAll) {
  Fixture fx;
  for (int i = 0; i < 5; ++i) {
    fx.replicate("msg" + std::to_string(i), {true, true, true});
  }
  for (const auto& back : fx.backs) {
    EXPECT_EQ(back->received.size(), 5u);
  }
}

TEST(ParallelSharding, DeadBackendIsDeactivatedAndOthersCarryOn) {
  Fixture fx;
  fx.engine->runtime().crash(Symbol("Bck2"));
  // The branch to Bck2 fails and ActiveBackend[Bck2] is retracted; the
  // others succeed, so HaveAtLeastOne holds -> no complaint.
  fx.replicate("survivor", {true, true, true});
  EXPECT_EQ(fx.backs[0]->received, (std::vector<std::string>{"survivor"}));
  EXPECT_EQ(fx.backs[2]->received, (std::vector<std::string>{"survivor"}));
  EXPECT_EQ(fx.front->complaints.load(), 0);
  // Deactivation is sticky: subsequent rounds skip Bck2 immediately.
  EXPECT_FALSE(*fx.engine->runtime()
                    .table(Symbol("Fnt"), Symbol("j"))
                    .prop(Symbol("ActiveBackend[Bck2::j]")));
  fx.replicate("again", {true, true, true});
  EXPECT_EQ(fx.backs[0]->received.size(), 2u);
}

TEST(ParallelSharding, AllDeadComplains) {
  Fixture fx;
  for (std::size_t i = 1; i <= Fixture::kBackends; ++i) {
    fx.engine->runtime().crash(Symbol("Bck" + std::to_string(i)));
  }
  fx.replicate("doomed", {true, true, true});
  // No viable back-end: "alert the operator that the computation cannot
  // terminate successfully" (S7.1).
  EXPECT_GE(fx.front->complaints.load(), 1);
}

}  // namespace
}  // namespace csaw
