// Integration test of the Fig 5 sharding pattern over miniredis: a front-end
// routes commands to 4 back-end stores by djb2 key hash (the paper's S10.1
// configuration) and returns responses to the client.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>

#include "apps/miniredis/command.hpp"
#include "apps/miniredis/store.hpp"
#include "apps/miniredis/workload.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"
#include "core/builder.hpp"
#include "core/topology.hpp"
#include "patterns/sharding.hpp"
#include "support/rng.hpp"

namespace csaw {
namespace {

using miniredis::Command;
using miniredis::Mailbox;
using miniredis::Response;
using miniredis::Store;

constexpr std::size_t kShards = 4;

// Host-side state shared by the bench client and the junction host blocks.
struct FrontState {
  Mailbox<Command> requests;
  Mailbox<Response> responses;
  Command current;  // request being processed by the junction
  std::mutex mu;
  std::map<std::string, int> complaints;
};

struct BackState {
  Store store;
  Command current;
  Response response;
};

struct Fixture {
  std::unique_ptr<Engine> engine;
  std::shared_ptr<FrontState> front = std::make_shared<FrontState>();
  std::vector<std::shared_ptr<BackState>> backs;

  static std::size_t shard_of(const std::string& key) {
    return djb2(key) % kShards;
  }

  explicit Fixture(patterns::ShardingOptions opts = {}) {
    opts.backends = kShards;
    auto spec = patterns::sharding(opts);
    auto compiled = compile(spec);
    CSAW_CHECK(compiled.ok()) << compiled.error().to_string();

    auto front_state = front;
    HostBindings b;
    b.block("complain", [front_state](HostCtx& ctx) {
      std::scoped_lock lock(front_state->mu);
      ++front_state->complaints[ctx.instance().str()];
      return Status::ok_status();
    });
    // |_Choose_|{tgt}: pop the next request, pick the shard by key hash.
    b.block("Choose", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<FrontState>();
      auto cmd = st.requests.pop(Deadline::after(std::chrono::seconds(5)));
      if (!cmd) return make_error(Errc::kHostFailure, "no request");
      st.current = std::move(*cmd);
      return ctx.set_idx("tgt", static_cast<std::int64_t>(shard_of(st.current.key)));
    });
    b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
      return pack("miniredis.Command", ctx.state<FrontState>().current);
    });
    b.restorer("unpack_request",
               [](HostCtx& ctx, const SerializedValue& sv) -> Status {
                 auto cmd = unpack<Command>("miniredis.Command", sv);
                 if (!cmd) return cmd.error();
                 ctx.state<BackState>().current = std::move(*cmd);
                 return Status::ok_status();
               });
    b.block("H_back", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<BackState>();
      switch (st.current.op) {
        case Command::Op::kGet: {
          auto v = st.store.get(st.current.key);
          st.response = Response{v.has_value(), v.value_or("")};
          break;
        }
        case Command::Op::kSet:
          st.store.set(st.current.key, st.current.value);
          st.response = Response{true, ""};
          break;
        case Command::Op::kDel:
          st.response = Response{st.store.del(st.current.key), ""};
          break;
      }
      return Status::ok_status();
    });
    b.saver("pack_response", [](HostCtx& ctx) -> Result<SerializedValue> {
      return pack("miniredis.Response", ctx.state<BackState>().response);
    });
    b.restorer("deliver_response",
               [](HostCtx& ctx, const SerializedValue& sv) -> Status {
                 auto resp = unpack<Response>("miniredis.Response", sv);
                 if (!resp) return resp.error();
                 ctx.state<FrontState>().responses.push(std::move(*resp));
                 return Status::ok_status();
               });

    engine = std::make_unique<Engine>(std::move(compiled).value(), std::move(b));
    engine->set_state(Symbol(opts.front_instance), front);
    for (const auto& name : patterns::shard_backend_names(opts)) {
      backs.push_back(std::make_shared<BackState>());
      engine->set_state(Symbol(name), backs.back());
    }
    auto st = engine->run_main();
    CSAW_CHECK(st.ok()) << st.error().to_string();
  }

  Response request(Command cmd) {
    front->requests.push(std::move(cmd));
    auto st = engine->call("Fnt", "j", Deadline::after(std::chrono::seconds(10)));
    CSAW_CHECK(st.ok()) << st.error().to_string();
    auto resp = front->responses.pop(Deadline::after(std::chrono::seconds(5)));
    CSAW_CHECK(resp.has_value()) << "no response";
    return *resp;
  }
};

TEST(ShardingPattern, RoutesByKeyHashAndAnswers) {
  Fixture fx;
  // SET then GET through the architecture.
  for (int i = 0; i < 40; ++i) {
    const std::string key = miniredis::key_name(static_cast<std::size_t>(i));
    Command set;
    set.op = Command::Op::kSet;
    set.key = key;
    set.value = "value-" + std::to_string(i);
    EXPECT_TRUE(fx.request(set).found);
  }
  for (int i = 0; i < 40; ++i) {
    const std::string key = miniredis::key_name(static_cast<std::size_t>(i));
    Command get;
    get.op = Command::Op::kGet;
    get.key = key;
    auto resp = fx.request(get);
    EXPECT_TRUE(resp.found) << key;
    EXPECT_EQ(resp.value, "value-" + std::to_string(i));
  }
  // Every key must live in exactly the shard its hash selects.
  std::vector<std::uint64_t> expected(kShards, 0);
  for (int i = 0; i < 40; ++i) {
    ++expected[Fixture::shard_of(miniredis::key_name(static_cast<std::size_t>(i)))];
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_EQ(fx.backs[s]->store.size(), expected[s]) << "shard " << s;
  }
  EXPECT_TRUE(fx.front->complaints.empty());
}

TEST(ShardingPattern, MissesReportNotFound) {
  Fixture fx;
  Command get;
  get.op = Command::Op::kGet;
  get.key = "absent";
  EXPECT_FALSE(fx.request(get).found);
}

TEST(ShardingPattern, TopologyIsStar) {
  auto spec = patterns::sharding({});
  auto compiled = compile(spec);
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  const auto topo = derive_topology(*compiled);
  // Front reaches every back-end; every back-end reaches only the front.
  const auto front = addr("Fnt", "j");
  for (std::size_t i = 1; i <= 4; ++i) {
    const auto back = addr("Bck" + std::to_string(i), "j");
    EXPECT_TRUE(topo.has_edge(front, back));
    EXPECT_TRUE(topo.has_edge(back, front));
    EXPECT_EQ(topo.targets_of(back).size(), 1u);
  }
}

}  // namespace
}  // namespace csaw
