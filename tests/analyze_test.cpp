// Tests for core/analyze (the csaw-lint passes): seeded-defect fixtures with
// golden-file reports, a clean bill of health over the shipped-app programs,
// and the RuntimeOptions::validate launch gate.
//
// Golden files live in tests/fixtures/analyze/. Each fixture program seeds
// exactly one class of defect; the test compares the full to_text() report
// (deterministic order by construction) against the checked-in golden.
// Regenerate after an intentional report change with:
//   CSAW_UPDATE_GOLDEN=1 ./build/tests/analyze_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/analyze.hpp"
#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"
#include "core/simplify.hpp"
#include "patterns/caching.hpp"
#include "patterns/failover.hpp"
#include "patterns/sharding.hpp"
#include "patterns/snapshot.hpp"
#include "patterns/watched_failover.hpp"

namespace csaw {
namespace {

CompiledProgram must_compile(ProgramSpec spec) {
  auto r = compile(std::move(spec));
  CSAW_CHECK(r.ok()) << "fixture failed to compile: " << r.error().to_string();
  return std::move(*r);
}

// --- seeded-defect fixtures -------------------------------------------------

// CSAW-G001 (dead guard, error) + CSAW-G002 (auto tautology, warning).
ProgramSpec dead_guard_spec() {
  ProgramBuilder p("dead_guard");
  p.type("tau")
      .junction("never")
      .init_prop("P", false)
      .guard(f_and(f_prop("P"), f_not(f_prop("P"))))
      .body(e_skip());
  p.type("tau")
      .junction("spin")
      .init_prop("Q", false)
      .guard(f_or(f_prop("Q"), f_not(f_prop("Q"))))
      .auto_schedule()
      .body(e_skip());
  p.instance("a", "tau", {{"never", {}}, {"spin", {}}});
  p.main_body(e_start(inst("a")));
  return p.build();
}

// CSAW-W001: assert and retract of the same key race on one target table.
ProgramSpec key_race_spec() {
  ProgramBuilder p("key_race");
  p.type("store").junction("cell").init_prop("Flag", false).body(e_skip());
  p.type("setter")
      .junction("run")
      .init_prop("Flag", false)
      .auto_schedule()
      .body(e_assert(pr("Flag"), jref("s", "cell")));
  p.type("clearer")
      .junction("run")
      .init_prop("Flag", false)
      .auto_schedule()
      .body(e_retract(pr("Flag"), jref("s", "cell")));
  p.instance("s", "store", {{"cell", {}}});
  p.instance("w1", "setter", {{"run", {}}});
  p.instance("w2", "clearer", {{"run", {}}});
  p.main_body(
      e_par({e_start(inst("s")), e_start(inst("w1")), e_start(inst("w2"))}));
  return p.build();
}

// CSAW-C001: mutual blocking pushes with no otherwise[t] bound.
ProgramSpec call_cycle_spec() {
  ProgramBuilder p("call_cycle");
  p.type("ping").junction("j").init_prop("P", false).body(
      e_assert(pr("P"), jref("b", "j")));
  p.type("pong").junction("j").init_prop("P", false).body(
      e_assert(pr("P"), jref("a", "j")));
  p.instance("a", "ping", {{"j", {}}});
  p.instance("b", "pong", {{"j", {}}});
  p.main_body(e_par({e_start(inst("a")), e_start(inst("b"))}));
  return p.build();
}

// CSAW-L001 (S(i) watcher over a never-started instance) + CSAW-L002 (the
// never-started instance's junctions are unreachable).
ProgramSpec unreachable_spec() {
  ProgramBuilder p("unreachable");
  p.type("watcher")
      .junction("watch")
      .init_prop("P", false)
      .guard(f_running(inst("ghost")))
      .body(e_skip());
  p.type("ghost_t").junction("idle").init_prop("P", false).body(e_skip());
  p.instance("w", "watcher", {{"watch", {}}});
  p.instance("ghost", "ghost_t", {{"idle", {}}});
  p.main_body(e_start(inst("w")));
  return p.build();
}

// CSAW-K001: a runtime-indexed remote read defeats the wake-set analysis,
// so the junction falls back to wildcard wakes + timer re-polls.
ProgramSpec wildcard_spec() {
  ProgramBuilder p("wildcard");
  p.type("store").junction("cell").init_prop("P", false).body(e_skip());
  p.type("poller")
      .junction("scan")
      .idx("t", SetRef::lit({CtValue(addr("s", "cell"))}))
      .guard(f_prop_at(idxvar("t"), "P"))
      .body(e_skip());
  p.instance("s", "store", {{"cell", {}}});
  p.instance("a", "poller", {{"scan", {}}});
  p.main_body(e_par({e_start(inst("s")), e_start(inst("a"))}));
  return p.build();
}

// --- golden-file plumbing ---------------------------------------------------

std::string golden_path(const std::string& name) {
  return std::string(CSAW_SOURCE_DIR) + "/tests/fixtures/analyze/" + name +
         ".txt";
}

void check_golden(const std::string& name, const AnalysisReport& report) {
  const std::string path = golden_path(name);
  const std::string text = report.to_text();
  if (std::getenv("CSAW_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << text;
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with CSAW_UPDATE_GOLDEN=1)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(text, want.str()) << "report drifted from " << path;
}

bool has_code(const AnalysisReport& r, std::string_view code) {
  for (const auto& d : r.diagnostics) {
    if (d.code == code) return true;
  }
  return false;
}

// --- pass 1 unit coverage (classify_formula) --------------------------------

TEST(Classify, ConstantsAndLiterals) {
  EXPECT_EQ(classify_formula(*f_false()), FormulaClass::kUnsatisfiable);
  EXPECT_EQ(classify_formula(*f_true()), FormulaClass::kTautology);
  EXPECT_EQ(classify_formula(*f_prop("P")), FormulaClass::kSatisfiable);
}

TEST(Classify, ContradictionAndTautology) {
  EXPECT_EQ(classify_formula(*f_and(f_prop("P"), f_not(f_prop("P")))),
            FormulaClass::kUnsatisfiable);
  EXPECT_EQ(classify_formula(*f_or(f_prop("P"), f_not(f_prop("P")))),
            FormulaClass::kTautology);
  // P -> (Q -> P) is a tautology with two distinct atoms.
  EXPECT_EQ(classify_formula(*f_implies(f_prop("P"),
                                        f_implies(f_prop("Q"), f_prop("P")))),
            FormulaClass::kTautology);
}

TEST(Classify, SameAtomByPrintedForm) {
  // Two occurrences of the same printed atom are one truth-table column.
  std::vector<std::string> atoms;
  formula_atoms(*f_and(f_prop("P"), f_or(f_prop("P"), f_prop("Q"))), atoms);
  EXPECT_EQ(atoms.size(), 2u);
}

TEST(Classify, TooWideGivesUp) {
  FormulaPtr f = f_prop("A0");
  for (int i = 1; i < 20; ++i) {
    f = f_or(std::move(f), f_prop("A" + std::to_string(i)));
  }
  EXPECT_EQ(classify_formula(*f, 16), FormulaClass::kTooWide);
  EXPECT_EQ(classify_formula(*f, 32), FormulaClass::kSatisfiable);
}

// --- seeded defects, golden reports -----------------------------------------

TEST(AnalyzeGolden, DeadGuard) {
  auto program = must_compile(dead_guard_spec());
  auto report = analyze_program(program);
  EXPECT_EQ(report.errors(), 1);
  EXPECT_TRUE(has_code(report, "CSAW-G001"));
  EXPECT_TRUE(has_code(report, "CSAW-G002"));
  check_golden("dead_guard", report);
}

TEST(AnalyzeGolden, KeyRace) {
  auto program = must_compile(key_race_spec());
  auto report = analyze_program(program);
  EXPECT_EQ(report.errors(), 0);
  EXPECT_TRUE(has_code(report, "CSAW-W001"));
  check_golden("key_race", report);
}

TEST(AnalyzeGolden, CallCycle) {
  auto program = must_compile(call_cycle_spec());
  auto report = analyze_program(program);
  EXPECT_EQ(report.errors(), 0);
  EXPECT_TRUE(has_code(report, "CSAW-C001"));
  check_golden("call_cycle", report);
}

TEST(AnalyzeGolden, Unreachable) {
  auto program = must_compile(unreachable_spec());
  auto report = analyze_program(program);
  EXPECT_EQ(report.errors(), 0);
  EXPECT_TRUE(has_code(report, "CSAW-L001"));
  EXPECT_TRUE(has_code(report, "CSAW-L002"));
  check_golden("unreachable", report);
}

TEST(AnalyzeGolden, WildcardFallback) {
  auto program = must_compile(wildcard_spec());
  auto report = analyze_program(program);
  EXPECT_EQ(report.errors(), 0);
  EXPECT_TRUE(has_code(report, "CSAW-K001"));
  EXPECT_EQ(report.wildcard_guards, 1u);
  check_golden("wildcard", report);
}

// --- report mechanics -------------------------------------------------------

TEST(Analyze, SuppressDropsDiagnostics) {
  auto program = must_compile(dead_guard_spec());
  AnalyzeOptions opts;
  opts.suppress = {"CSAW-G001", "CSAW-G002"};
  auto report = analyze_program(program, opts);
  EXPECT_FALSE(has_code(report, "CSAW-G001"));
  EXPECT_FALSE(has_code(report, "CSAW-G002"));
  EXPECT_EQ(report.errors(), 0);
}

TEST(Analyze, JsonCarriesCodesAndCoverage) {
  auto program = must_compile(dead_guard_spec());
  auto report = analyze_program(program);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"CSAW-G001\""), std::string::npos);
  EXPECT_NE(json.find("\"coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"program\":\"dead_guard\""), std::string::npos);
}

// --- clean bill: the programs the shipped apps compile ----------------------

TEST(AnalyzeCleanBill, ShippedAppProgramsHaveZeroErrors) {
  struct Shipped {
    const char* name;
    ProgramSpec spec;
  };
  patterns::ShardingOptions shard4;
  shard4.backends = 4;
  patterns::SnapshotOptions audit;
  audit.timeout_ms = 2000;
  Shipped programs[] = {
      // miniredis: checkpointed / sharded / cached store.
      {"miniredis-checkpoint", patterns::remote_snapshot({})},
      {"miniredis-shard", patterns::sharding(shard4)},
      {"miniredis-cache", patterns::caching({})},
      // minisuricata: checkpointed / steered pipeline.
      {"minisuricata-steer", patterns::sharding(shard4)},
      // minicurl: remote audit.
      {"minicurl-audit", patterns::remote_snapshot(audit)},
      // remaining pattern library entries.
      {"parallel-sharding", patterns::parallel_sharding({})},
      {"failover", patterns::failover({})},
      {"watched-failover", patterns::watched_failover({})},
  };
  for (auto& s : programs) {
    auto program = must_compile(std::move(s.spec));
    auto report = analyze_program(program);
    EXPECT_EQ(report.errors(), 0)
        << s.name << " report:\n"
        << report.to_text();
    // Every shipped guard resolves to a precise wake set; the wildcard
    // fallback budget stays at zero (EXPERIMENTS.md wildcard-coverage note).
    EXPECT_EQ(report.wildcard_guards, 0u) << s.name;
  }
}

// --- RuntimeOptions::validate launch gate -----------------------------------

TEST(ValidateMode, StrictRefusesProgramWithErrors) {
  EngineOptions opts;
  opts.runtime.validate = ValidateMode::kStrict;
  Engine engine(must_compile(dead_guard_spec()), {}, opts);
  Status st = engine.run_main();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::kInvalidProgram);
  EXPECT_NE(st.error().message.find("CSAW-G001"), std::string::npos)
      << st.error().to_string();
  // The gate also covers DSL-level starts after the refused main.
  Status again = engine.start_instance("a");
  EXPECT_FALSE(again.ok());
}

TEST(ValidateMode, WarnReportsButLaunches) {
  EngineOptions opts;
  opts.runtime.validate = ValidateMode::kWarn;
  Engine engine(must_compile(key_race_spec()), {}, opts);
  EXPECT_TRUE(engine.run_main().ok());
}

TEST(ValidateMode, StrictAllowsCleanProgram) {
  EngineOptions opts;
  opts.runtime.validate = ValidateMode::kStrict;
  Engine engine(must_compile(patterns::caching({})), {}, opts);
  // caching's program has warnings at most; kStrict only refuses errors.
  EXPECT_TRUE(engine.run_main().ok());
}

}  // namespace
}  // namespace csaw
