// /metrics HTTP endpoint: Prometheus text rendering, routing, and the
// RuntimeOptions::metrics_http_port plumbing.
#include "obs/expose.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>

#include "compart/runtime.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace csaw {
namespace {

// Minimal HTTP client: one request, read to EOF (the server closes).
std::string http_get(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect to 127.0.0.1:" << port << " failed";
    return {};
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string resp;
  char buf[4096];
  for (ssize_t n = ::recv(fd, buf, sizeof(buf), 0); n > 0;
       n = ::recv(fd, buf, sizeof(buf), 0)) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(Exposer, ServesPrometheusMetricsAndHealth) {
  obs::Metrics metrics;
  metrics.counter("push_sent").add(3);
  for (std::uint64_t v = 1; v <= 100; ++v) {
    metrics.histogram("push_latency_ns").record(v * 1000);
  }
  obs::Tracer tracer;
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::kCustom;
  tracer.record(e);

  obs::HttpExposer exposer(&metrics, &tracer, /*port=*/0);
  ASSERT_GT(exposer.port(), 0);

  const std::string metrics_resp = http_get(exposer.port(), "/metrics");
  EXPECT_NE(metrics_resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics_resp.find("text/plain; version=0.0.4"), std::string::npos);
  // Counters with the Prometheus _total convention.
  EXPECT_NE(metrics_resp.find("csaw_push_sent_total 3"), std::string::npos);
  // Histograms as summaries with quantile labels and _sum/_count.
  EXPECT_NE(metrics_resp.find("csaw_push_latency_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(metrics_resp.find("csaw_push_latency_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(metrics_resp.find("csaw_push_latency_ns_count 100"),
            std::string::npos);
  // Tracer ring occupancy and drop gauges (satellite: exported drop counts).
  EXPECT_NE(metrics_resp.find("csaw_trace_dropped_total 0"),
            std::string::npos);
  EXPECT_NE(metrics_resp.find("csaw_trace_buffer_rings 1"), std::string::npos);
  EXPECT_NE(metrics_resp.find("csaw_trace_ring_events{ring=\"0\"} 1"),
            std::string::npos);

  const std::string health = http_get(exposer.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing = http_get(exposer.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);
}

TEST(Exposer, RendersWithoutTracer) {
  obs::Metrics metrics;
  metrics.counter("pings").add();
  const std::string text = obs::render_prometheus(&metrics, nullptr);
  EXPECT_NE(text.find("csaw_pings_total 1"), std::string::npos);
  EXPECT_EQ(text.find("csaw_trace_"), std::string::npos);
}

TEST(RuntimeExposer, MetricsPortOptionBindsEndToEnd) {
  obs::Tracer tracer;
  obs::Metrics metrics;
  RuntimeOptions opts;
  opts.trace_sink = &tracer;
  opts.metrics = &metrics;
  opts.metrics_http_port = 0;  // ephemeral
  Runtime rt(opts);
  const int port = rt.metrics_http_port();
  ASSERT_GT(port, 0);

  const Symbol kWork("Work");
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{kWork, false}};
  j.guard = [kWork](const KvTable& t, const RuntimeView&) {
    return *t.prop(kWork);
  };
  j.body = [kWork](JunctionEnv& env) {
    (void)env.table().set_prop_local(kWork, false);
  };
  j.auto_schedule = true;
  InstanceDesc d;
  d.name = Symbol("a");
  d.type = Symbol("echo");
  d.junctions.push_back(std::move(j));
  rt.add_instance(std::move(d));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  ASSERT_TRUE(rt.push({.to = {Symbol("a"), Symbol("j")},
                       .update = Update::assert_prop(kWork),
                       .deadline = Deadline::after(std::chrono::seconds(5)),
                       .from = Symbol("test")})
                  .ok());

  const std::string resp = http_get(port, "/metrics");
  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("csaw_push_sent_total 1"), std::string::npos);
  EXPECT_NE(resp.find("csaw_push_acked_total 1"), std::string::npos);
  EXPECT_NE(resp.find("csaw_push_latency_ns{quantile="), std::string::npos);

  ASSERT_TRUE(rt.stop(Symbol("a")).ok());
}

TEST(RuntimeExposer, DisabledWithoutMetricsOrByDefault) {
  Runtime plain;
  EXPECT_EQ(plain.metrics_http_port(), -1);

  // Port requested but no metrics registry: stays disabled (documented
  // requirement) rather than serving an empty page.
  RuntimeOptions opts;
  opts.metrics_http_port = 0;
  Runtime rt(opts);
  EXPECT_EQ(rt.metrics_http_port(), -1);
}

}  // namespace
}  // namespace csaw
