// End-to-end test of the paper's Fig 3: the program "H1;H2" typified into
// tau_f (instance f) and tau_g (instance g), coordinating through the Work
// proposition and the named data n.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"

namespace csaw {
namespace {

// Shared observation state for the H1/H2 host blocks.
struct Fig3State {
  std::atomic<int> h1_runs{0};
  std::atomic<int> h2_runs{0};
  std::string transferred;
};

ProgramSpec fig3_spec() {
  ProgramBuilder p("fig3");

  // def tau_f::junction(g) <|
  //   | init prop !Work   | init data n
  //   |_H1_|; save(..., n); write(n, g); assert [g] Work; wait [] !Work
  p.type("tau_f")
      .junction("junction")
      .param("g", ParamDecl::Kind::kJunction)
      .init_prop("Work", false)
      .init_data("n")
      .body(e_seq({
          e_host("H1"),
          e_save("n", "save_n"),
          e_write("n", var("g")),
          e_assert(pr("Work"), var("g")),
          e_wait({}, f_not(f_prop("Work"))),
      }));

  // def tau_g::junction(f) <|
  //   | init prop !Work  | init data n  | guard Work
  //   restore(n, ...); |_H2_|; retract [f] Work
  p.type("tau_g")
      .junction("junction")
      .param("f", ParamDecl::Kind::kJunction)
      .init_prop("Work", false)
      .init_data("n")
      .guard(f_prop("Work"))
      .auto_schedule()
      .body(e_seq({
          e_restore("n", "restore_n"),
          e_host("H2"),
          e_retract(pr("Work"), var("f")),
      }));

  p.instance("f", "tau_f",
             {{"junction", {CtValue(addr("g", "junction"))}}});
  p.instance("g", "tau_g",
             {{"junction", {CtValue(addr("f", "junction"))}}});

  // def main() <| start f + start g
  p.main_body(e_par({e_start(inst("f")), e_start(inst("g"))}));
  return p.build();
}

TEST(Fig3, CompilesAndRunsOneHandoff) {
  auto compiled = compile(fig3_spec());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();

  auto state = std::make_shared<Fig3State>();
  HostBindings bindings;
  bindings.block("H1", [state](HostCtx&) {
    state->h1_runs.fetch_add(1);
    return Status::ok_status();
  });
  bindings.block("H2", [state](HostCtx&) {
    state->h2_runs.fetch_add(1);
    return Status::ok_status();
  });
  bindings.saver("save_n", [](HostCtx&) -> Result<SerializedValue> {
    return sv_dyn(DynValue(std::string("payload-from-H1")));
  });
  bindings.restorer("restore_n",
                    [state](HostCtx&, const SerializedValue& sv) -> Status {
                      auto v = dyn_sv(sv);
                      if (!v) return v.error();
                      state->transferred = v->as_string();
                      return Status::ok_status();
                    });

  Engine engine(std::move(compiled).value(), std::move(bindings));
  ASSERT_TRUE(engine.run_main().ok());
  ASSERT_TRUE(engine.runtime().is_running(Symbol("f")));
  ASSERT_TRUE(engine.runtime().is_running(Symbol("g")));

  // One scheduling of f::junction drives the whole H1 -> g -> H2 handoff:
  // f blocks in `wait [] !Work` until g retracts Work.
  auto st = engine.call("f", "junction",
                        Deadline::after(std::chrono::seconds(5)));
  ASSERT_TRUE(st.ok()) << st.error().to_string();

  EXPECT_EQ(state->h1_runs.load(), 1);
  EXPECT_EQ(state->h2_runs.load(), 1);
  EXPECT_EQ(state->transferred, "payload-from-H1");

  // Work ends retracted on both sides.
  EXPECT_FALSE(
      *engine.runtime().table(Symbol("f"), Symbol("junction")).prop(Symbol("Work")));
  const auto& fstats = engine.stats(addr("f", "junction"));
  EXPECT_EQ(fstats.runs.load(), 1u);
  EXPECT_EQ(fstats.failures.load(), 0u);
}

TEST(Fig3, RepeatedHandoffs) {
  auto compiled = compile(fig3_spec());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();

  auto state = std::make_shared<Fig3State>();
  HostBindings bindings;
  bindings.block("H1", [state](HostCtx&) {
    state->h1_runs.fetch_add(1);
    return Status::ok_status();
  });
  bindings.block("H2", [state](HostCtx&) {
    state->h2_runs.fetch_add(1);
    return Status::ok_status();
  });
  bindings.saver("save_n", [](HostCtx&) -> Result<SerializedValue> {
    return sv_dyn(DynValue(std::int64_t{42}));
  });
  bindings.restorer("restore_n", [](HostCtx&, const SerializedValue&) {
    return Status::ok_status();
  });

  Engine engine(std::move(compiled).value(), std::move(bindings));
  ASSERT_TRUE(engine.run_main().ok());

  constexpr int kRounds = 25;
  for (int i = 0; i < kRounds; ++i) {
    auto st = engine.call("f", "junction",
                          Deadline::after(std::chrono::seconds(5)));
    ASSERT_TRUE(st.ok()) << "round " << i << ": " << st.error().to_string();
  }
  EXPECT_EQ(state->h1_runs.load(), kRounds);
  EXPECT_EQ(state->h2_runs.load(), kRounds);
}

}  // namespace
}  // namespace csaw
