// Integration test of the S7.3 fail-over architecture over a miniredis-like
// store: warm replica back-ends, crash of one back-end mid-workload,
// continued service through the survivor, and re-registration + state
// resynchronization when the crashed back-end restarts (Fig 9's recovery).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "apps/miniredis/command.hpp"
#include "apps/miniredis/store.hpp"
#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"
#include "patterns/failover.hpp"

namespace csaw {
namespace {

using miniredis::Command;
using miniredis::Mailbox;
using miniredis::Response;
using miniredis::Store;

// Front-end host state: the client interface plus the canonical store the
// f::b junction checkpoints (the "canonical state of the system", Fig 8).
struct FrontState {
  Mailbox<Command> requests;
  Mailbox<Response> responses;
  Command current;
  Store canonical{0};  // zero per-op cost: it is a state capsule, not a server
  std::atomic<int> complaints{0};
};

// Back-end host state: the replica store. Factory-made so a crash wipes it.
struct BackState {
  Store store{0};
  Command current;
  Response response;
};

struct Fixture {
  patterns::FailoverOptions opts;
  std::unique_ptr<Engine> engine;
  std::shared_ptr<FrontState> front = std::make_shared<FrontState>();

  explicit Fixture(bool engage_all = true) {
    opts.backends = 2;
    opts.timeout_ms = 400;
    opts.reactivate_ms = 250;
    opts.engage_all = engage_all;
    auto compiled = compile(patterns::failover(opts));
    CSAW_CHECK(compiled.ok()) << compiled.error().to_string();

    auto fs = front;
    HostBindings b;
    b.block("complain", [fs](HostCtx&) {
      fs->complaints.fetch_add(1);
      return Status::ok_status();
    });
    // Peek (don't consume): if the scheduling aborts mid-protocol, the
    // retry must see the same request again; H3 consumes it on success.
    b.block("H1", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<FrontState>();
      auto cmd = st.requests.peek(Deadline::after(std::chrono::seconds(1)));
      if (!cmd) return make_error(Errc::kHostFailure, "no request queued");
      st.current = std::move(*cmd);
      return Status::ok_status();
    });
    b.block("H2", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<BackState>();
      switch (st.current.op) {
        case Command::Op::kGet: {
          auto v = st.store.get(st.current.key);
          st.response = Response{v.has_value(), v.value_or("")};
          break;
        }
        case Command::Op::kSet:
          st.store.set(st.current.key, st.current.value);
          st.response = Response{true, ""};
          break;
        case Command::Op::kDel:
          st.response = Response{st.store.del(st.current.key), ""};
          break;
      }
      return Status::ok_status();
    });
    b.block("H3", [](HostCtx& ctx) {
      ctx.state<FrontState>().requests.try_pop();  // request completed
      return Status::ok_status();
    });
    // Canonical-state management at the front-end. The canonical store is
    // updated from the request stream (H1 side) -- here we fold the current
    // command into it when packing state after a request completes.
    b.saver("init_state", [](HostCtx& ctx) -> Result<SerializedValue> {
      return SerializedValue{Symbol("store.image"),
                             ctx.state<FrontState>().canonical.snapshot()};
    });
    b.saver("pack_state", [](HostCtx& ctx) -> Result<SerializedValue> {
      auto& st = ctx.state<FrontState>();
      if (st.current.op == Command::Op::kSet) {
        st.canonical.set(st.current.key, st.current.value);
      } else if (st.current.op == Command::Op::kDel) {
        st.canonical.del(st.current.key);
      }
      return SerializedValue{Symbol("store.image"), st.canonical.snapshot()};
    });
    b.restorer("unpack_state",
               [](HostCtx& ctx, const SerializedValue& sv) -> Status {
                 if (sv.type != Symbol("store.image")) {
                   return make_error(Errc::kTypeMismatch, "bad state image");
                 }
                 if (ctx.instance() == Symbol("f")) {
                   return ctx.state<FrontState>().canonical.restore(sv.bytes);
                 }
                 return ctx.state<BackState>().store.restore(sv.bytes);
               });
    b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
      return pack("miniredis.Command", ctx.state<FrontState>().current);
    });
    b.restorer("unpack_request",
               [](HostCtx& ctx, const SerializedValue& sv) -> Status {
                 auto cmd = unpack<Command>("miniredis.Command", sv);
                 if (!cmd) return cmd.error();
                 ctx.state<BackState>().current = std::move(*cmd);
                 return Status::ok_status();
               });
    b.saver("pack_preresp", [](HostCtx& ctx) -> Result<SerializedValue> {
      return pack("miniredis.Response", ctx.state<BackState>().response);
    });
    b.restorer("unpack_preresp",
               [](HostCtx& ctx, const SerializedValue& sv) -> Status {
                 auto resp = unpack<Response>("miniredis.Response", sv);
                 if (!resp) return resp.error();
                 ctx.state<FrontState>().responses.push(std::move(*resp));
                 return Status::ok_status();
               });

    EngineOptions eopts;
    eopts.trace = std::getenv("CSAW_TRACE") != nullptr;
    engine = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                      eopts);
    engine->set_state(Symbol("f"), front);
    for (const auto& name : patterns::failover_backend_names(opts)) {
      // Factory: a crash destroys the replica's memory; recovery must come
      // from the architecture's state resynchronization.
      engine->set_state_factory(Symbol(name), [] {
        return std::static_pointer_cast<void>(std::make_shared<BackState>());
      });
    }
    auto st = engine->run_main();
    CSAW_CHECK(st.ok()) << st.error().to_string();
  }

  // Issues one client request: enqueue + assert Req at f::c (Fig 13: "Req
  // is asserted externally"), then wait for the response.
  Result<Response> request(Command cmd, int timeout_s = 10) {
    front->requests.push(std::move(cmd));
    // Clients re-assert Req if a scheduling aborted (e.g. the Call handshake
    // timed out during a re-registration storm); the architecture makes
    // aborted schedulings safe to retry.
    const auto give_up = Deadline::after(std::chrono::seconds(timeout_s));
    while (true) {
      auto st = engine->runtime().inject(addr("f", "c"),
                                         Update::assert_prop(Symbol("Req")));
      if (!st.ok()) return st.error();
      auto resp = front->responses.pop(
          Deadline::after(std::chrono::seconds(2)).min(give_up));
      if (resp) return *resp;
      if (give_up.expired()) {
        auto& rt = engine->runtime();
        std::fprintf(stderr, "WEDGE DIAG:\n  %s\n  %s\n",
                     rt.table(Symbol("f"), Symbol("c")).debug_string().c_str(),
                     rt.table(Symbol("f"), Symbol("b")).debug_string().c_str());
        for (const char* j : {"c", "b"}) {
          const auto& st = engine->stats(addr("f", j));
          std::fprintf(stderr, "  f::%s runs=%llu failures=%llu\n", j,
                       (unsigned long long)st.runs.load(),
                       (unsigned long long)st.failures.load());
        }
        return make_error(Errc::kTimeout, "no response");
      }
    }
  }

  Command set(const std::string& k, const std::string& v) {
    Command c;
    c.op = Command::Op::kSet;
    c.key = k;
    c.value = v;
    return c;
  }
  Command get(const std::string& k) {
    Command c;
    c.op = Command::Op::kGet;
    c.key = k;
    return c;
  }
};

TEST(FailoverPattern, ServesThroughWarmReplicas) {
  Fixture fx;
  for (int i = 0; i < 10; ++i) {
    auto r = fx.request(fx.set("k" + std::to_string(i), "v" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_TRUE(r->found);
  }
  for (int i = 0; i < 10; ++i) {
    auto r = fx.request(fx.get("k" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_TRUE(r->found);
    EXPECT_EQ(r->value, "v" + std::to_string(i));
  }
}

TEST(FailoverPattern, SurvivesBackendCrash) {
  Fixture fx;
  for (int i = 0; i < 5; ++i) {
    auto r = fx.request(fx.set("pre" + std::to_string(i), "x"));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
  }
  // Kill the first back-end. The next requests fan out, time out on b1, and
  // are served by b2 alone (system continues at partial capacity, Fig 9).
  fx.engine->crash("b1");
  for (int i = 0; i < 5; ++i) {
    auto r = fx.request(fx.set("post" + std::to_string(i), "y"), 15);
    ASSERT_TRUE(r.ok()) << r.error().to_string();
  }
  auto r = fx.request(fx.get("pre0"), 15);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(r->found);
}

TEST(FailoverPattern, CrashedBackendReregistersWithState) {
  Fixture fx;
  for (int i = 0; i < 4; ++i) {
    auto r = fx.request(fx.set("durable" + std::to_string(i), "z"));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
  }
  fx.engine->crash("b1");
  // Keep the system warm so the failure is noticed and worked around.
  auto r1 = fx.request(fx.set("while-down", "w"), 15);
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();

  // Restart b1: its startup junction re-registers with f::b, which
  // re-initializes it from the canonical state (arrows (1)/(4) of Fig 8).
  ASSERT_TRUE(fx.engine->start_instance("b1").ok());
  // Give registration + initialization a moment, then verify b1 serves
  // again by checking requests keep completing and the re-registered
  // replica answers GETs for *pre-crash* data.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  for (int i = 0; i < 4; ++i) {
    auto r = fx.request(fx.get("durable" + std::to_string(i)), 15);
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_TRUE(r->found) << "durable" << i;
  }
  // The restarted replica's own store must contain the resynchronized data.
  // (Inspect through the engine's state registry indirectly: issue enough
  // requests that b1 participates, which the HaveAtLeastOne protocol
  // guarantees once Backend[b1::serve] is re-asserted.)
  const auto& stats_b1 = fx.engine->stats(addr("b1", "serve"));
  EXPECT_GT(stats_b1.runs.load(), 0u);
}

TEST(FailoverPattern, FirstSuccessVariantServes) {
  // The S7.3 refinement: back-ends tried in order, first success wins.
  Fixture fx(/*engage_all=*/false);
  for (int i = 0; i < 8; ++i) {
    auto r = fx.request(fx.set("fs" + std::to_string(i), "v"));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
  }
  auto r = fx.request(fx.get("fs0"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
  // Only one back-end serves each request. Client retries and
  // re-registration churn add serve runs, so the robust bound is "clearly
  // below two engagements per request plus churn"; the precise 1.0x-vs-2.0x
  // work comparison lives in bench/ablation_failover.
  const auto b1 = fx.engine->stats(addr("b1", "serve")).runs.load();
  const auto b2 = fx.engine->stats(addr("b2", "serve")).runs.load();
  EXPECT_GE(b1 + b2, 9u);
  EXPECT_LE(b1 + b2, 40u);
}

TEST(FailoverPattern, FirstSuccessFallsOverOnCrash) {
  Fixture fx(/*engage_all=*/false);
  auto r1 = fx.request(fx.set("pre", "x"));
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  fx.engine->crash("b1");
  // b1 branch times out; the fold's next element (b2) serves. But note: in
  // first-success mode b2 only has the state stream if it was initialized;
  // registration gave both replicas the canonical state at startup.
  auto r2 = fx.request(fx.set("post", "y"), 15);
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  auto r3 = fx.request(fx.get("post"), 15);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->found);
}

}  // namespace
}  // namespace csaw
