// Cross-process crash-recovery and watched fail-over over the real TCP
// transport, with real kill -9. The gtest binary doubles as its own child:
//
//   xproc_failover_test                      # gtest runner (parent roles)
//   xproc_failover_test --primary <listen> <parent> <dir>
//       hosts instance "primary", claims the authority epoch on first
//       launch (bump iff epoch==0), then pushes a write workload at the
//       parent's "spare" instance until killed
//   xproc_failover_test --store <listen> <parent> <dir>
//       hosts a durable store instance "s"; on startup reports the
//       recovered table tip into <dir>/recovered.txt, then serves pushes
//
// Covered end to end:
//   * kill -9 of a durable store mid-workload; on restart exactly the
//     acknowledged-write prefix is back (modulo the one in-doubt in-flight
//     write every log-then-ack store has);
//   * heartbeat failure detection: the watcher's is_running() verdict for
//     the remote "primary" flips false after the kill;
//   * split-brain prevention: after the spare's takeover (bump_epoch), the
//     restarted primary's stale-epoch frames are nacked and counted until
//     it adopts the new epoch, then it rejoins.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "compart/runtime.hpp"
#include "compart/tcp.hpp"
#include "obs/metrics.hpp"
#include "support/io.hpp"

namespace csaw {
namespace {

using namespace std::chrono_literals;

const char* g_self = nullptr;  // argv[0], for exec-ing child roles

const Symbol kWork("Work");
const Symbol kV("v");

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/csaw_xproc_test_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path + "'";
    (void)std::system(cmd.c_str());
  }
};

template <typename Cond>
bool eventually(Cond cond, std::chrono::milliseconds limit = 20s) {
  const auto deadline = steady_now() + limit;
  while (steady_now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return cond();
}

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

// Kills the child in the destructor so a failing ASSERT never leaks a
// serve-forever process.
struct Child {
  pid_t pid = -1;
  explicit Child(pid_t p) : pid(p) {}
  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;
  void kill9() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
  ~Child() { kill9(); }
};

pid_t spawn_role(const char* role, std::uint16_t listen_port,
                 std::uint16_t parent_port, const std::string& dir) {
  char listen_arg[16], parent_arg[16];
  std::snprintf(listen_arg, sizeof(listen_arg), "%u", listen_port);
  std::snprintf(parent_arg, sizeof(parent_arg), "%u", parent_port);
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    // Child: only async-signal-safe work between fork and exec.
    char* const argv[] = {const_cast<char*>(g_self), const_cast<char*>(role),
                          listen_arg, parent_arg,
                          const_cast<char*>(dir.c_str()), nullptr};
    ::execv(g_self, argv);
    _exit(127);
  }
  return pid;
}

InstanceDesc store_instance(const char* name) {
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{kWork, false}};
  j.table_spec.data = {kV};
  j.guard = [](const KvTable& t, const RuntimeView&) { return *t.prop(kWork); };
  j.body = [](JunctionEnv& env) {
    (void)env.table().set_prop_local(kWork, false);
  };
  j.auto_schedule = true;
  InstanceDesc d;
  d.name = Symbol(name);
  d.type = Symbol("store");
  d.junctions.push_back(std::move(j));
  return d;
}

SerializedValue str_val(const std::string& s) {
  return SerializedValue{Symbol("str"), Bytes(s.begin(), s.end())};
}

Status push_write(Runtime& rt, Symbol to, Symbol from, const std::string& s,
                  Nanos deadline) {
  auto st = rt.push({.to = JunctionAddr{to, Symbol("j")},
                     .update = Update::write_data(kV, str_val(s), from.str()),
                     .deadline = Deadline::after(deadline),
                     .from = from});
  if (!st.ok()) return st;
  return rt.push({.to = JunctionAddr{to, Symbol("j")},
                  .update = Update::assert_prop(kWork, from.str()),
                  .deadline = Deadline::after(deadline),
                  .from = from});
}

std::string read_value(Runtime& rt, const char* instance) {
  auto v = rt.table(Symbol(instance), Symbol("j")).data(kV);
  if (!v.ok()) return "<undef>";
  return std::string(v->bytes.begin(), v->bytes.end());
}

// The recovered table's logical tip: the applied value of `v`, overridden
// by any recovered pending writes to it (acked but not yet applied --
// durability-wise they are equivalent).
std::string recovered_tip(const KvTable::DurableState& st) {
  std::string tip = "<undef>";
  for (const auto& d : st.image.data) {
    if (d.key == kV.str() && d.defined) {
      tip.assign(d.bytes.begin(), d.bytes.end());
    }
  }
  for (const auto& p : st.pending) {
    if (p.update.kind == Update::Kind::kWriteData && p.update.key == kV) {
      tip.assign(p.update.value.bytes.begin(), p.update.value.bytes.end());
    }
  }
  return tip;
}

}  // namespace

// --- child roles -----------------------------------------------------------

// Durable store host: recover, report the recovered tip, serve until killed.
int run_store(std::uint16_t listen_port, std::uint16_t parent_port,
              const std::string& dir) {
  RuntimeOptions opts;
  opts.transport = Transport::kTcpMesh;
  opts.durability_dir = dir;
  opts.tcp.listen_port = listen_port;
  opts.tcp.peers["parent"] = TcpPeerAddr{"127.0.0.1", parent_port};
  opts.tcp.remote_instances[Symbol("front")] = "parent";
  Runtime rt(opts);
  rt.add_instance(store_instance("s"));
  if (!rt.start(Symbol("s")).ok()) return 2;
  const auto tip =
      recovered_tip(rt.table(Symbol("s"), Symbol("j")).durable_state());
  if (!io::write_file_atomic(dir + "/recovered.txt", tip).ok()) return 2;
  while (true) std::this_thread::sleep_for(1s);
}

// Primary node: claim the epoch on first launch, then hammer the parent's
// "spare" instance with writes until killed.
int run_primary(std::uint16_t listen_port, std::uint16_t parent_port,
                const std::string& dir) {
  RuntimeOptions opts;
  opts.transport = Transport::kTcpMesh;
  opts.durability_dir = dir;
  opts.tcp.listen_port = listen_port;
  opts.tcp.heartbeat_interval = Millis(20);
  opts.tcp.node_name = "primary-node";
  opts.tcp.peers["parent"] = TcpPeerAddr{"127.0.0.1", parent_port};
  opts.tcp.remote_instances[Symbol("spare")] = "parent";
  Runtime rt(opts);
  // First incarnation claims authority; a restart keeps the persisted
  // (now stale) epoch -- exactly the split-brain scenario under test.
  if (rt.epoch() == 0) rt.bump_epoch();
  rt.add_instance(store_instance("primary"));
  if (!rt.start(Symbol("primary")).ok()) return 2;
  for (std::uint64_t i = 0;; ++i) {
    (void)push_write(rt, Symbol("spare"), Symbol("primary"),
                     "k" + std::to_string(i), 500ms);
    std::this_thread::sleep_for(5ms);
  }
}

namespace {

// --- parent-side tests -----------------------------------------------------

TEST(XprocCrashRecovery, Kill9MidWorkloadRestoresAckedPrefix) {
  TempDir dir;
  const std::uint16_t store_port = pick_free_port();

  RuntimeOptions opts;
  opts.transport = Transport::kTcpMesh;
  opts.tcp.peers["store"] = TcpPeerAddr{"127.0.0.1", store_port};
  opts.tcp.remote_instances[Symbol("s")] = "store";
  opts.tcp.backoff_initial = Millis(10);
  opts.tcp.backoff_max = Millis(200);
  Runtime rt(opts);

  Child child(spawn_role("--store", store_port, rt.tcp_transport()->port(),
                         dir.path));

  // Warm up: wait for the mesh, then push acked writes k0..k(N-1).
  ASSERT_TRUE(eventually([&] {
    return push_write(rt, Symbol("s"), Symbol("front"), "k0", 1s).ok();
  })) << "mesh never came up";
  int last_acked = 0;
  for (int i = 1; i <= 40; ++i) {
    if (!push_write(rt, Symbol("s"), Symbol("front"), "k" + std::to_string(i),
                    2s)
             .ok()) {
      break;
    }
    last_acked = i;
    if (i == 25) {
      // kill -9 mid-workload: the next push (k26) is the in-doubt one.
      child.kill9();
    }
  }
  ASSERT_GE(last_acked, 25);
  ASSERT_LT(last_acked, 40) << "pushes kept succeeding after kill -9";

  // Restart with the same durability_dir; the store reports what it
  // recovered. No acked write may be lost; nothing past the last attempted
  // write may appear. The single in-flight write at kill time is allowed
  // either way (it was logged before its ack could be sent, or not at all).
  ASSERT_TRUE(io::remove_file(dir.path + "/recovered.txt").ok());
  Child child2(spawn_role("--store", store_port, rt.tcp_transport()->port(),
                          dir.path));
  std::string tip;
  ASSERT_TRUE(eventually([&] {
    auto got = io::read_file(dir.path + "/recovered.txt");
    if (!got.ok()) return false;
    tip.assign(got->begin(), got->end());
    return true;
  })) << "restarted store never reported its recovered state";
  ASSERT_EQ(tip.rfind("k", 0), 0u) << "recovered tip: " << tip;
  const int recovered = std::atoi(tip.c_str() + 1);
  EXPECT_GE(recovered, last_acked) << "an acknowledged write was lost";
  EXPECT_LE(recovered, last_acked + 1)
      << "a write past the in-doubt window was resurrected";

  // And the recovered store keeps serving: the log tail is appendable.
  ASSERT_TRUE(eventually([&] {
    return push_write(rt, Symbol("s"), Symbol("front"), "post-restart", 1s)
        .ok();
  })) << "restarted store never accepted new writes";
}

TEST(XprocFailover, SpareTakesOverAndStaleEpochIsRejected) {
  TempDir dir;
  const std::uint16_t primary_port = pick_free_port();

  obs::Metrics metrics;
  RuntimeOptions opts;
  opts.transport = Transport::kTcpMesh;
  opts.metrics = &metrics;
  opts.tcp.heartbeat_interval = Millis(20);
  opts.tcp.suspect_after_missed = 5;
  opts.tcp.node_name = "watcher";
  opts.tcp.peers["child"] = TcpPeerAddr{"127.0.0.1", primary_port};
  opts.tcp.remote_instances[Symbol("primary")] = "child";
  opts.tcp.backoff_initial = Millis(10);
  opts.tcp.backoff_max = Millis(200);
  Runtime rt(opts);
  rt.add_instance(store_instance("spare"));
  ASSERT_TRUE(rt.start(Symbol("spare")).ok());

  // Phase 1: primary claims epoch 1 and streams writes; the watchdog sees
  // it alive (S(primary) via heartbeats) and its writes landing.
  Child child(spawn_role("--primary", primary_port,
                         rt.tcp_transport()->port(), dir.path));
  ASSERT_TRUE(eventually([&] { return rt.is_running(Symbol("primary")); }))
      << "heartbeats never marked the primary alive";
  ASSERT_TRUE(eventually([&] {
    return read_value(rt, "spare").rfind("k", 0) == 0;
  })) << "primary's workload never reached the spare";
  ASSERT_TRUE(eventually([&] { return rt.epoch() == 1u; }))
      << "watcher never adopted the primary's epoch";

  // Phase 2: kill -9. The failure detector must flip the verdict -- this is
  // the watchdog's S(i) guard going false, which triggers fail-over.
  child.kill9();
  ASSERT_TRUE(eventually([&] { return !rt.is_running(Symbol("primary")); }))
      << "failure was never detected";
  EXPECT_GE(metrics.counter("detector_suspicions").value(), 1u);

  // Takeover: the spare claims authority. From now on epoch-1 frames are
  // stale.
  EXPECT_EQ(rt.bump_epoch(), 2u);
  const std::string at_takeover = read_value(rt, "spare");

  // Phase 3: restart the primary with its old durability dir. It wakes at
  // its persisted epoch 1, gets rejected (split-brain prevented), adopts
  // epoch 2 from the nacks, and rejoins as a subordinate writer.
  Child child2(spawn_role("--primary", primary_port,
                          rt.tcp_transport()->port(), dir.path));
  ASSERT_TRUE(eventually([&] {
    return metrics.counter("epoch_rejected").value() >= 1u;
  })) << "no stale-epoch frame was rejected";
  ASSERT_TRUE(eventually([&] {
    const auto v = read_value(rt, "spare");
    return v.rfind("k", 0) == 0 && v != at_takeover;
  })) << "restarted primary never rejoined after adopting the new epoch";
  // The verdict recovers too: the node is back (at the new epoch).
  ASSERT_TRUE(eventually([&] { return rt.is_running(Symbol("primary")); }));
}

}  // namespace
}  // namespace csaw

// Custom main: child roles must be dispatched before gtest sees argv.
int main(int argc, char** argv) {
  csaw::g_self = argv[0];
  if (argc == 5 && std::strcmp(argv[1], "--store") == 0) {
    return csaw::run_store(static_cast<std::uint16_t>(std::atoi(argv[2])),
                           static_cast<std::uint16_t>(std::atoi(argv[3])),
                           argv[4]);
  }
  if (argc == 5 && std::strcmp(argv[1], "--primary") == 0) {
    return csaw::run_primary(static_cast<std::uint16_t>(std::atoi(argv[2])),
                             static_cast<std::uint16_t>(std::atoi(argv[3])),
                             argv[4]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
