// Runtime control-flow semantics: case (break/next/reconsider), retry
// budgets, fate vs transactional blocks, otherwise deadlines, verify's
// ternary logic, parallel fate-sharing, and loop break.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"

namespace csaw {
namespace {

// Shared log of which host blocks ran, in order.
struct RunLog {
  std::mutex mu;
  std::vector<std::string> events;
  void add(const std::string& e) {
    std::scoped_lock lock(mu);
    events.push_back(e);
  }
  std::vector<std::string> snapshot() {
    std::scoped_lock lock(mu);
    return events;
  }
};

// Builds a one-instance program with the given junction body/decls, binds
// each named host block to a log entry (a block named "fail:X" logs X and
// fails), runs the junction once, and returns the log.
struct Harness {
  std::shared_ptr<RunLog> log = std::make_shared<RunLog>();
  std::unique_ptr<Engine> engine;

  explicit Harness(ExprPtr body,
                   std::function<void(JunctionBuilder&)> configure = nullptr,
                   int retry_budget = 3) {
    ProgramBuilder p("harness");
    auto j = p.type("tau").junction("j").retry_budget(retry_budget);
    j.init_prop("P", false).init_prop("Q", false).init_data("n");
    if (configure) configure(j);
    j.body(std::move(body));
    p.instance("a", "tau", {{"j", {}}});
    p.main_body(e_start(inst("a")));
    auto compiled = compile(p.build());
    CSAW_CHECK(compiled.ok()) << compiled.error().to_string();

    HostBindings b;
    auto lg = log;
    for (const char* name :
         {"h1", "h2", "h3", "h4", "fail:x", "fail:y", "complain"}) {
      const std::string n = name;
      const bool fails = n.rfind("fail:", 0) == 0;
      b.block(n, [lg, n, fails](HostCtx&) -> Status {
        lg->add(n);
        if (fails) return make_error(Errc::kHostFailure, "scripted failure");
        return Status::ok_status();
      });
    }
    b.saver("sv", [](HostCtx&) -> Result<SerializedValue> {
      return sv_dyn(DynValue(1));
    });
    engine = std::make_unique<Engine>(std::move(compiled).value(), std::move(b));
    CSAW_CHECK(engine->run_main().ok());
  }

  void run_once() {
    auto st = engine->call("a", "j", Deadline::after(std::chrono::seconds(10)));
    CSAW_CHECK(st.ok()) << st.error().to_string();
  }

  KvTable& table() { return engine->runtime().table(Symbol("a"), Symbol("j")); }
  const JunctionStats& stats() { return engine->stats(addr("a", "j")); }
};

TEST(ControlFlow, CaseBreakLeavesCase) {
  // P false -> arm 2 (!P) matches, breaks; h3 after the case still runs.
  std::vector<CaseArm> arms;
  arms.push_back(case_arm(f_prop("P"), e_host("h1"), Terminator::kBreak));
  arms.push_back(case_arm(f_not(f_prop("P")), e_host("h2"), Terminator::kBreak));
  Harness h(e_seq({e_case(std::move(arms), e_host("h4")), e_host("h3")}));
  h.run_once();
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h2", "h3"}));
}

TEST(ControlFlow, CaseOtherwiseWhenNothingMatches) {
  std::vector<CaseArm> arms;
  arms.push_back(case_arm(f_prop("P"), e_host("h1"), Terminator::kBreak));
  Harness h(e_case(std::move(arms), e_host("h4")));
  h.run_once();
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h4"}));
}

TEST(ControlFlow, CaseNextMatchesOnlyLaterArms) {
  // Arm 1 matches (!P), asserts P, says next; arm 2's guard (P) is checked
  // only among arms AFTER arm 1 -- and matches.
  std::vector<CaseArm> arms;
  arms.push_back(case_arm(f_not(f_prop("P")),
                         e_seq({e_host("h1"), e_assert(pr("P"))}),
                         Terminator::kNext));
  arms.push_back(case_arm(f_prop("P"), e_host("h2"), Terminator::kBreak));
  Harness h(e_case(std::move(arms), e_host("h4")));
  h.run_once();
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h1", "h2"}));
}

TEST(ControlFlow, CaseNextFallsToOtherwiseIfNoLaterMatch) {
  std::vector<CaseArm> arms;
  arms.push_back(case_arm(f_not(f_prop("P")), e_host("h1"), Terminator::kNext));
  arms.push_back(case_arm(f_prop("P"), e_host("h2"), Terminator::kBreak));
  // h1's arm does not change P, so arm 2 (P) cannot match.
  Harness h(e_case(std::move(arms), e_host("h4")));
  h.run_once();
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h1", "h4"}));
}

TEST(ControlFlow, ReconsiderWithChangedMatchReruns) {
  // Arm 1 (!P) asserts P then reconsiders; the new match is arm 2 (P).
  std::vector<CaseArm> arms;
  arms.push_back(case_arm(f_not(f_prop("P")),
                         e_seq({e_host("h1"), e_assert(pr("P"))}),
                         Terminator::kReconsider));
  arms.push_back(case_arm(f_prop("P"), e_host("h2"), Terminator::kBreak));
  Harness h(e_case(std::move(arms), e_host("h4")));
  h.run_once();
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h1", "h2"}));
}

TEST(ControlFlow, ReconsiderWithUnchangedMatchFails) {
  // "otherwise the expression fails" (S6): the body fails, recorded in
  // junction stats.
  std::vector<CaseArm> arms;
  arms.push_back(case_arm(f_not(f_prop("P")), e_host("h1"),
                         Terminator::kReconsider));
  Harness h(e_case(std::move(arms), e_host("h4")));
  h.run_once();
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h1"}));
  EXPECT_EQ(h.stats().failures.load(), 1u);
}

TEST(ControlFlow, RetryRestartsJunctionBoundedTimes) {
  // Body: h1; retry. Budget 2 -> h1 runs 1 + 2 times, then the junction
  // gives up (failure recorded).
  Harness h(e_seq({e_host("h1"), e_retry()}), nullptr, /*retry_budget=*/2);
  h.run_once();
  EXPECT_EQ(h.log->snapshot().size(), 3u);
  EXPECT_EQ(h.stats().retries.load(), 2u);
  EXPECT_EQ(h.stats().failures.load(), 1u);
}

TEST(ControlFlow, OtherwiseRunsFallbackOnFailure) {
  Harness h(e_otherwise(e_host("fail:x"), TimeRef::ms(1000), e_host("h2")));
  h.run_once();
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"fail:x", "h2"}));
  EXPECT_EQ(h.stats().failures.load(), 0u);
}

TEST(ControlFlow, OtherwiseDeadlineBoundsWait) {
  const auto before = steady_now();
  Harness h(e_otherwise(e_wait({}, f_prop("P")), TimeRef::ms(80), e_host("h2")));
  h.run_once();
  EXPECT_GE(steady_now() - before, std::chrono::milliseconds(75));
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h2"}));
}

TEST(ControlFlow, NestedOtherwiseTakesTighterDeadline) {
  const auto before = steady_now();
  Harness h(e_otherwise(
      e_otherwise(e_wait({}, f_prop("P")), TimeRef::ms(5000), e_host("h1")),
      TimeRef::ms(80), e_host("h2")));
  h.run_once();
  const auto elapsed = steady_now() - before;
  EXPECT_LT(elapsed, std::chrono::milliseconds(3000));
  // The inner wait fails on the OUTER deadline; the inner otherwise handles
  // it first (h1), which completes fine... but the outer deadline has
  // passed, so anything after still fails outward. The inner fallback runs.
  EXPECT_FALSE(h.log->snapshot().empty());
}

TEST(ControlFlow, TxnRollsBackOnFailure) {
  // <| assert P; fail |> otherwise h2: P must be rolled back.
  Harness h(e_otherwise(e_txn(e_seq({e_assert(pr("P")), e_verify(f_false())})),
                        TimeRef::ms(1000), e_host("h2")));
  h.run_once();
  EXPECT_FALSE(*h.table().prop(Symbol("P")));
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h2"}));
}

TEST(ControlFlow, FateBlockDoesNotRollBack) {
  Harness h(e_otherwise(e_fate(e_seq({e_assert(pr("P")), e_verify(f_false())})),
                        TimeRef::ms(1000), e_host("h2")));
  h.run_once();
  EXPECT_TRUE(*h.table().prop(Symbol("P")));  // persists despite failure
}

TEST(ControlFlow, ReturnLeavesFateScope) {
  // < h1; return; h2 >; h3  --  return exits the block; h3 still runs.
  Harness h(e_seq({e_fate(e_seq({e_host("h1"), e_return(), e_host("h2")})),
                   e_host("h3")}));
  h.run_once();
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h1", "h3"}));
}

TEST(ControlFlow, TopLevelReturnEndsJunction) {
  Harness h(e_seq({e_host("h1"), e_return(), e_host("h2")}));
  h.run_once();
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h1"}));
  EXPECT_EQ(h.stats().failures.load(), 0u);
}

TEST(ControlFlow, ParallelBranchesAllRun) {
  Harness h(e_par({e_host("h1"), e_host("h2"), e_host("h3")}));
  h.run_once();
  auto events = h.log->snapshot();
  std::sort(events.begin(), events.end());
  EXPECT_EQ(events, (std::vector<std::string>{"h1", "h2", "h3"}));
}

TEST(ControlFlow, ParallelFateSharing) {
  // One branch fails -> the composition fails -> otherwise runs.
  Harness h(e_otherwise(e_par({e_host("h1"), e_host("fail:x")}),
                        TimeRef::ms(1000), e_host("h2")));
  h.run_once();
  auto events = h.log->snapshot();
  EXPECT_EQ(events.back(), "h2");
}

TEST(ControlFlow, BreakExitsUnrolledLoopEarly) {
  // for x in {1,2,3} ; { h1; break }  -- h1 runs once.
  Harness h(e_for("x", SetRef::lit({CtValue(1), CtValue(2), CtValue(3)}),
                  Expr::Kind::kSeq, e_seq({e_host("h1"), e_break()})));
  h.run_once();
  EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h1"}));
}

TEST(ControlFlow, VerifyTrueSucceedsFalseFails) {
  {
    Harness h(e_seq({e_verify(f_not(f_prop("P"))), e_host("h1")}));
    h.run_once();
    EXPECT_EQ(h.log->snapshot(), (std::vector<std::string>{"h1"}));
  }
  {
    Harness h(e_seq({e_verify(f_prop("P")), e_host("h1")}));
    h.run_once();
    EXPECT_TRUE(h.log->snapshot().empty());
    EXPECT_EQ(h.stats().verify_failures.load(), 1u);
  }
}

TEST(ControlFlow, VerifyTernaryShortCircuit) {
  // S(ghost) -> ghost@P: ghost is not even declared; but the implication
  // short-circuits on S(ghost)=false, so the verify is decidable and true.
  ProgramBuilder p("tern");
  p.type("tau").junction("j").init_prop("P", false).body(
      e_verify(f_implies(f_running(inst("ghost2")),
                         f_prop_at(jref("ghost2", "j"), "P"))));
  p.type("ghost_t").junction("j").init_prop("P", false).body(e_skip());
  p.instance("a", "tau", {{"j", {}}});
  p.instance("ghost2", "ghost_t", {{"j", {}}});
  p.main_body(e_start(inst("a")));  // ghost2 never started
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  Engine engine(std::move(compiled).value(), HostBindings{});
  ASSERT_TRUE(engine.run_main().ok());
  ASSERT_TRUE(engine.call("a", "j", Deadline::after(std::chrono::seconds(5))).ok());
  EXPECT_EQ(engine.stats(addr("a", "j")).verify_failures.load(), 0u);
  // The direct (non-guarded) remote read of a down instance is undecidable:
  // "verify will return an error" (S6).
}

TEST(ControlFlow, HostWriteSetEnforced) {
  ProgramBuilder p("ws");
  p.type("tau").junction("j").init_prop("P", false).init_prop("Q", false).body(
      e_host("writer", {Symbol("P")}));
  p.instance("a", "tau", {{"j", {}}});
  p.main_body(e_start(inst("a")));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok());
  std::atomic<bool> p_ok{false}, q_rejected{false};
  HostBindings b;
  b.block("writer", [&](HostCtx& ctx) -> Status {
    p_ok = ctx.set_prop("P", true).ok();
    q_rejected = !ctx.set_prop("Q", true).ok();
    return Status::ok_status();
  });
  Engine engine(std::move(compiled).value(), std::move(b));
  ASSERT_TRUE(engine.run_main().ok());
  ASSERT_TRUE(engine.call("a", "j", Deadline::after(std::chrono::seconds(5))).ok());
  EXPECT_TRUE(p_ok.load());
  EXPECT_TRUE(q_rejected.load());
}

}  // namespace
}  // namespace csaw
