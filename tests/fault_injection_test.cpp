// Failure-injection tests: lossy and partitioned links exercising the
// failure-awareness machinery the patterns rely on -- Fig 4's timeout +
// Retried retry, nack-vs-timeout discovery, and recovery after healing.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "patterns/snapshot.hpp"

namespace csaw {
namespace {

struct Counters {
  std::atomic<int> complaints{0};
  std::atomic<int> audited{0};
};

struct Fixture {
  std::unique_ptr<Engine> engine;
  std::shared_ptr<Counters> counters = std::make_shared<Counters>();

  explicit Fixture(RuntimeOptions ropts, std::int64_t timeout_ms = 150) {
    patterns::SnapshotOptions opts;
    opts.timeout_ms = timeout_ms;
    auto compiled = compile(patterns::remote_snapshot(opts));
    CSAW_CHECK(compiled.ok()) << compiled.error().to_string();

    HostBindings b;
    auto c = counters;
    b.block("complain", [c](HostCtx&) {
      c->complaints.fetch_add(1);
      return Status::ok_status();
    });
    b.block("H1", [](HostCtx&) { return Status::ok_status(); });
    b.block("H2", [c](HostCtx&) {
      c->audited.fetch_add(1);
      return Status::ok_status();
    });
    b.saver("capture_state", [](HostCtx&) -> Result<SerializedValue> {
      return sv_dyn(DynValue(1));
    });
    b.restorer("ingest_state", [](HostCtx&, const SerializedValue&) {
      return Status::ok_status();
    });

    EngineOptions eopts;
    eopts.runtime = ropts;
    engine = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                      eopts);
    engine->set_state(Symbol("Act"), counters);
    engine->set_state(Symbol("Aud"), counters);
    CSAW_CHECK(engine->run_main().ok());
  }

  Status snapshot_once(int timeout_s = 10) {
    return engine->call("Act", "j",
                        Deadline::after(std::chrono::seconds(timeout_s)));
  }
};

TEST(FaultInjection, LossyLinkStillMakesProgress) {
  // 30% message loss with timeout-based discovery: the architecture's
  // otherwise/Retried logic keeps snapshots flowing, at the cost of
  // complaints for rounds whose retries also failed.
  RuntimeOptions ropts;
  ropts.nack_when_down = false;
  ropts.default_link.drop_prob = 0.30;
  ropts.seed = 7;
  Fixture fx(ropts);
  constexpr int kRounds = 12;
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(fx.snapshot_once(20).ok()) << "round " << i;
  }
  // Despite the losses, a solid majority of rounds audited successfully.
  EXPECT_GE(fx.counters->audited.load(), kRounds / 2);
  // And the runs never wedge: every call() returned.
}

TEST(FaultInjection, PartitionComplainsHealReconnects) {
  RuntimeOptions ropts;
  ropts.nack_when_down = false;  // partitions look like silence
  Fixture fx(ropts, /*timeout_ms=*/120);
  ASSERT_TRUE(fx.snapshot_once().ok());
  EXPECT_EQ(fx.counters->complaints.load(), 0);
  const int audited_before = fx.counters->audited.load();

  fx.engine->runtime().router().set_partition(Symbol("Act"), Symbol("Aud"),
                                              true);
  ASSERT_TRUE(fx.snapshot_once().ok());
  // The write/assert to Aud timed out; Act complained.
  EXPECT_GE(fx.counters->complaints.load(), 1);

  fx.engine->runtime().router().set_partition(Symbol("Act"), Symbol("Aud"),
                                              false);
  ASSERT_TRUE(fx.snapshot_once().ok());
  EXPECT_GT(fx.counters->audited.load(), audited_before);
}

TEST(FaultInjection, RetriedFlagRetriesRemoteRetraction) {
  // Drop exactly the auditor's first retraction: Aud's `retract [Act] Work
  // otherwise[t] ...assert Retried...reconsider` must retry and succeed the
  // second time (Fig 4's annotated behavior / Fig 22's structure).
  RuntimeOptions ropts;
  ropts.nack_when_down = false;
  Fixture fx(ropts, /*timeout_ms=*/150);

  // Drop Aud->Act traffic only for the retraction window: partition just
  // after the snapshot lands at Aud. Simplest deterministic approximation:
  // a 100%-lossy Aud->Act link for the first attempt, healed before the
  // retry would give a clean two-phase test; instead exercise it
  // statistically with a half-lossy directed link.
  fx.engine->runtime().router().set_link(Symbol("Aud"), Symbol("Act"),
                                         LinkModel{{}, 0.0, 0.5, 0});
  int ok_rounds = 0;
  for (int i = 0; i < 10; ++i) {
    if (fx.snapshot_once(20).ok()) ++ok_rounds;
  }
  EXPECT_EQ(ok_rounds, 10);             // the junction call itself never wedges
  EXPECT_GE(fx.counters->audited.load(), 5);
  const auto& aud_stats = fx.engine->stats(addr("Aud", "j"));
  // The retry path ran at least once across 10 half-lossy rounds.
  EXPECT_GT(aud_stats.runs.load(), 0u);
}

TEST(FaultInjection, TimedOutPushesAreTracedAndCounted) {
  // Partitioned link + silent failure mode: the snapshot's write/assert to
  // Aud expires its deadline. Every such push must surface as a
  // push_timeout event and bump the push_timeout counter.
  obs::Tracer tracer;
  obs::Metrics metrics;
  RuntimeOptions ropts;
  ropts.nack_when_down = false;
  ropts.trace_sink = &tracer;
  ropts.metrics = &metrics;
  Fixture fx(ropts, /*timeout_ms=*/120);
  fx.engine->runtime().router().set_partition(Symbol("Act"), Symbol("Aud"),
                                              true);
  ASSERT_TRUE(fx.snapshot_once().ok());
  EXPECT_GE(fx.counters->complaints.load(), 1);

  EXPECT_GE(metrics.counter("push_timeout").value(), 1u);
  int timeouts = 0, sends = 0;
  for (const auto& e : tracer.drain()) {
    if (e.kind == obs::TraceEvent::Kind::kPushTimeout) {
      ++timeouts;
      EXPECT_EQ(e.instance, Symbol("Act"));  // the sender
      EXPECT_EQ(e.peer, Symbol("Aud"));      // the unreachable target
      EXPECT_GT(e.seq, 0u);                  // ack'd pushes carry a seq
    }
    if (e.kind == obs::TraceEvent::Kind::kPushSent) ++sends;
  }
  EXPECT_GE(timeouts, 1);
  EXPECT_GE(sends, timeouts);  // every timeout had a matching send
}

TEST(FaultInjection, NackedPushesAreTracedAndCounted) {
  // Crash the auditor with nack-when-down enabled: Act's next write is
  // refused immediately (the nack path, not the timeout path) and must be
  // traced as push_nacked.
  obs::Tracer tracer;
  obs::Metrics metrics;
  RuntimeOptions ropts;
  ropts.nack_when_down = true;
  ropts.trace_sink = &tracer;
  ropts.metrics = &metrics;
  Fixture fx(ropts, /*timeout_ms=*/150);
  fx.engine->runtime().crash(Symbol("Aud"));
  ASSERT_TRUE(fx.snapshot_once().ok());
  EXPECT_GE(fx.counters->complaints.load(), 1);

  EXPECT_GE(metrics.counter("push_nacked").value(), 1u);
  EXPECT_EQ(metrics.counter("push_timeout").value(), 0u);
  bool saw_nack = false, saw_crash = false;
  for (const auto& e : tracer.drain()) {
    if (e.kind == obs::TraceEvent::Kind::kPushNacked) {
      saw_nack = true;
      EXPECT_EQ(e.instance, Symbol("Act"));
      EXPECT_EQ(e.peer, Symbol("Aud"));
    }
    if (e.kind == obs::TraceEvent::Kind::kInstanceCrashed) {
      saw_crash = true;
      EXPECT_EQ(e.instance, Symbol("Aud"));
    }
  }
  EXPECT_TRUE(saw_nack);
  EXPECT_TRUE(saw_crash);
}

}  // namespace
}  // namespace csaw
