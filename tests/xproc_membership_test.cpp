// Cross-process dynamic membership smoke over the real TCP transport, with
// real fork+exec children. The gtest binary doubles as its own child:
//
//   xproc_membership_test                        # gtest runner (parent)
//   xproc_membership_test --member <listen> <parent> <name>
//       hosts one store instance <name>, heartbeats as node <name>, serves
//       pushes until killed
//
// Covered end to end:
//   * scale-out 2 -> 4: two members join AT RUNTIME via
//     TcpTransport::add_peer/map_instance (no restart, no config reload),
//     heartbeats mark them alive, and writes routed to them are acked;
//   * scale-in: a killed member is removed via Runtime::remove_peer -- the
//     transport drops its routes, the failure detector forgets it (no
//     further detector_* flaps), and routing to it fails fast.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "compart/runtime.hpp"
#include "compart/tcp.hpp"
#include "obs/metrics.hpp"

namespace csaw {
namespace {

using namespace std::chrono_literals;

const char* g_self = nullptr;  // argv[0], for exec-ing child roles

const Symbol kWork("Work");
const Symbol kV("v");

template <typename Cond>
bool eventually(Cond cond, std::chrono::milliseconds limit = 20s) {
  const auto deadline = steady_now() + limit;
  while (steady_now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return cond();
}

std::uint16_t pick_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

// Kills the child in the destructor so a failing ASSERT never leaks a
// serve-forever process.
struct Child {
  pid_t pid = -1;
  explicit Child(pid_t p) : pid(p) {}
  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;
  void kill9() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
  }
  ~Child() { kill9(); }
};

pid_t spawn_member(std::uint16_t listen_port, std::uint16_t parent_port,
                   const std::string& name) {
  char listen_arg[16], parent_arg[16];
  std::snprintf(listen_arg, sizeof(listen_arg), "%u", listen_port);
  std::snprintf(parent_arg, sizeof(parent_arg), "%u", parent_port);
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0);
  if (pid == 0) {
    // Child: only async-signal-safe work between fork and exec.
    char* const argv[] = {const_cast<char*>(g_self),
                          const_cast<char*>("--member"), listen_arg,
                          parent_arg, const_cast<char*>(name.c_str()),
                          nullptr};
    ::execv(g_self, argv);
    _exit(127);
  }
  return pid;
}

InstanceDesc store_instance(const std::string& name) {
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{kWork, false}};
  j.table_spec.data = {kV};
  j.guard = [](const KvTable& t, const RuntimeView&) { return *t.prop(kWork); };
  j.body = [](JunctionEnv& env) {
    (void)env.table().set_prop_local(kWork, false);
  };
  j.auto_schedule = true;
  InstanceDesc d;
  d.name = Symbol(name);
  d.type = Symbol("store");
  d.junctions.push_back(std::move(j));
  return d;
}

Status push_write(Runtime& rt, Symbol to, const std::string& s,
                  Nanos deadline) {
  const Symbol from("hub");
  auto st = rt.push(
      {.to = JunctionAddr{to, Symbol("j")},
       .update = Update::write_data(
           kV, SerializedValue{Symbol("str"), Bytes(s.begin(), s.end())},
           from.str()),
       .deadline = Deadline::after(deadline),
       .from = from});
  if (!st.ok()) return st;
  return rt.push({.to = JunctionAddr{to, Symbol("j")},
                  .update = Update::assert_prop(kWork, from.str()),
                  .deadline = Deadline::after(deadline),
                  .from = from});
}

}  // namespace

// --- child role ------------------------------------------------------------

// Member node: host one store instance, heartbeat as <name>, serve forever.
int run_member(std::uint16_t listen_port, std::uint16_t parent_port,
               const std::string& name) {
  RuntimeOptions opts;
  opts.transport = Transport::kTcpMesh;
  opts.tcp.listen_port = listen_port;
  opts.tcp.node_name = name;
  opts.tcp.heartbeat_interval = Millis(20);
  opts.tcp.peers["parent"] = TcpPeerAddr{"127.0.0.1", parent_port};
  // Acks are routed by the originating instance; the parent pushes as "hub".
  opts.tcp.remote_instances[Symbol("hub")] = "parent";
  Runtime rt(opts);
  rt.add_instance(store_instance(name));
  if (!rt.start(Symbol(name)).ok()) return 2;
  while (true) std::this_thread::sleep_for(1s);
}

namespace {

// --- parent-side test ------------------------------------------------------

TEST(XprocMembership, ScaleOutTwoToFourThenRemoveDepartedPeer) {
  obs::Metrics metrics;
  RuntimeOptions opts;
  opts.transport = Transport::kTcpMesh;
  opts.metrics = &metrics;
  opts.tcp.node_name = "parent";
  opts.tcp.heartbeat_interval = Millis(20);
  opts.tcp.suspect_after_missed = 5;
  opts.tcp.backoff_initial = Millis(10);
  opts.tcp.backoff_max = Millis(200);
  Runtime rt(opts);
  auto* tcp = rt.tcp_transport();
  ASSERT_NE(tcp, nullptr);

  // Phase 1: the initial 2-member cluster. Even these join dynamically --
  // nothing about the membership is baked into RuntimeOptions.
  std::vector<std::uint16_t> ports;
  std::vector<std::unique_ptr<Child>> members;
  auto join = [&](const std::string& name) {
    const std::uint16_t port = pick_free_port();
    ports.push_back(port);
    members.push_back(
        std::make_unique<Child>(spawn_member(port, tcp->port(), name)));
    tcp->add_peer(name, TcpPeerAddr{"127.0.0.1", port});
    tcp->map_instance(Symbol(name), name);
  };
  join("m1");
  join("m2");
  for (const char* name : {"m1", "m2"}) {
    ASSERT_TRUE(eventually([&] { return rt.is_running(Symbol(name)); }))
        << name << " never became alive via heartbeats";
    ASSERT_TRUE(eventually([&] {
      return push_write(rt, Symbol(name), "hello", 1s).ok();
    })) << name << " never acked a routed write";
  }

  // Phase 2: scale-out 2 -> 4 at runtime. add_peer/map_instance on the live
  // transport is the whole join protocol; heartbeats do the rest.
  join("m3");
  join("m4");
  for (const char* name : {"m1", "m2", "m3", "m4"}) {
    ASSERT_TRUE(eventually([&] { return rt.is_running(Symbol(name)); }))
        << name << " not alive after scale-out";
    ASSERT_TRUE(eventually([&] {
      return push_write(rt, Symbol(name), std::string("post-grow-") + name, 1s)
          .ok();
    })) << name << " not serving after scale-out";
  }
  EXPECT_EQ(tcp->peer_stats().size(), 4u);

  // Phase 3: scale-in. Kill m4, let the detector notice, then remove it
  // from the cluster for good.
  members[3]->kill9();
  ASSERT_TRUE(eventually([&] { return !rt.is_running(Symbol("m4")); }))
      << "killed member never suspected";
  EXPECT_GE(metrics.counter("detector_suspicions").value(), 1u);

  EXPECT_TRUE(rt.remove_peer("m4"));
  EXPECT_FALSE(rt.remove_peer("m4"));  // already gone
  EXPECT_EQ(tcp->peer_stats().count("m4"), 0u);
  EXPECT_FALSE(rt.is_running(Symbol("m4")));
  EXPECT_FALSE(push_write(rt, Symbol("m4"), "ghost", 100ms).ok());

  // The departed peer stops flapping detector counters: both totals are
  // stable over many would-be heartbeat intervals.
  const auto suspicions = metrics.counter("detector_suspicions").value();
  const auto recoveries = metrics.counter("detector_recoveries").value();
  std::this_thread::sleep_for(300ms);
  EXPECT_EQ(metrics.counter("detector_suspicions").value(), suspicions);
  EXPECT_EQ(metrics.counter("detector_recoveries").value(), recoveries);

  // The survivors keep serving.
  for (const char* name : {"m1", "m2", "m3"}) {
    EXPECT_TRUE(push_write(rt, Symbol(name), "post-remove", 1s).ok()) << name;
  }
}

}  // namespace
}  // namespace csaw

// Custom main: the child role must be dispatched before gtest sees argv.
int main(int argc, char** argv) {
  csaw::g_self = argv[0];
  if (argc == 5 && std::strcmp(argv[1], "--member") == 0) {
    return csaw::run_member(static_cast<std::uint16_t>(std::atoi(argv[2])),
                            static_cast<std::uint16_t>(std::atoi(argv[3])),
                            argv[4]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
