// Unit tests for the support layer: symbols, RNG/hashes, statistics, time.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "support/clock.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/symbol.hpp"

namespace csaw {
namespace {

TEST(Symbol, InterningIsStableAndEqualByContent) {
  const Symbol a("Work");
  const Symbol b("Work");
  const Symbol c("Retried");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.str(), "Work");
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(Symbol().valid());
  EXPECT_EQ(Symbol().str(), "<invalid>");
}

TEST(Symbol, ConcurrentInterningYieldsConsistentIds) {
  std::vector<std::thread> threads;
  std::vector<std::uint32_t> ids(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([i, &ids] {
      ids[static_cast<std::size_t>(i)] = Symbol("concurrent-test-sym").id();
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < 8; ++i) EXPECT_EQ(ids[0], ids[static_cast<std::size_t>(i)]);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Zipf, SkewsTowardLowRanks) {
  Rng rng(11);
  Zipf zipf(1000, 1.0);
  std::size_t low = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.sample(rng) < 100) ++low;
  }
  // With s=1, the first 10% of ranks draw well over half the mass.
  EXPECT_GT(low, static_cast<std::size_t>(kSamples) / 2);
}

TEST(Hashes, Djb2MatchesKnownValues) {
  // djb2("") == 5381; djb2 is deterministic and spreads.
  EXPECT_EQ(djb2(""), 5381u);
  EXPECT_NE(djb2("a"), djb2("b"));
  EXPECT_EQ(djb2("key:123"), djb2("key:123"));
}

TEST(Stats, RunningStatMeanAndStddev) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, CdfQuantiles) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_EQ(cdf.quantile(0.5), 50);
  EXPECT_EQ(cdf.quantile(0.99), 99);
  EXPECT_EQ(cdf.quantile(1.0), 100);
  auto pts = cdf.points(10);
  ASSERT_EQ(pts.size(), 10u);
  EXPECT_DOUBLE_EQ(pts.back().cumulative, 1.0);
  EXPECT_EQ(pts.back().value, 100);
}

TEST(Stats, SeriesAggregateAveragesRuns) {
  SeriesAggregate agg;
  agg.add_run({1.0, 2.0, 3.0});
  agg.add_run({3.0, 4.0, 5.0});
  ASSERT_EQ(agg.ticks(), 3u);
  EXPECT_DOUBLE_EQ(agg.mean_at(0), 2.0);
  EXPECT_DOUBLE_EQ(agg.mean_at(2), 4.0);
  EXPECT_GT(agg.stddev_at(0), 0.0);
}

TEST(Stats, TablePrinterAligns) {
  TablePrinter t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.50"});
  const auto out = t.render();
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Deadline, InfiniteNeverExpires) {
  const Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), Nanos::max());
}

TEST(Deadline, FiniteExpiresAndMins) {
  const auto near = Deadline::after(std::chrono::milliseconds(1));
  const auto far = Deadline::after(std::chrono::seconds(60));
  EXPECT_FALSE(far.expired());
  EXPECT_EQ(near.min(far).when(), near.when());
  EXPECT_EQ(far.min(near).when(), near.when());
  EXPECT_EQ(Deadline().min(near).when(), near.when());
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(near.expired());
  EXPECT_EQ(near.remaining(), Nanos::zero());
}

TEST(Strings, JoinAndSplit) {
  EXPECT_EQ(join(std::vector<std::string>{"a", "b", "c"}, ","), "a,b,c");
  const auto parts = split("x::y::z", ':');
  ASSERT_EQ(parts.size(), 5u);  // "x", "", "y", "", "z"
  EXPECT_EQ(parts[0], "x");
  EXPECT_EQ(parts[4], "z");
}

}  // namespace
}  // namespace csaw
