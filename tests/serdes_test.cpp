// Unit tests for the serialization framework (paper S9): buffers, the
// C-strider-style field traversal, depth-limited recursion, dynamic values,
// and type-tagged payloads.
#include <gtest/gtest.h>

#include <memory>

#include "serdes/archive.hpp"
#include "serdes/buffer.hpp"
#include "serdes/registry.hpp"
#include "serdes/value.hpp"

namespace csaw {
namespace {

TEST(Buffer, VarintRoundtripEdges) {
  ByteWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 16383, 16384,
                                  0xffffffffull, ~0ull};
  for (auto v : values) w.uvarint(v);
  ByteReader r(w.bytes());
  for (auto v : values) {
    auto got = r.uvarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.exhausted());
}

TEST(Buffer, ZigzagHandlesNegatives) {
  ByteWriter w;
  const std::int64_t values[] = {0, -1, 1, -64, 63, INT64_MIN, INT64_MAX};
  for (auto v : values) w.svarint(v);
  ByteReader r(w.bytes());
  for (auto v : values) {
    auto got = r.svarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
}

TEST(Buffer, MalformedStreamsAreRejectedNotUB) {
  {
    const Bytes empty;
    ByteReader r(empty);
    EXPECT_FALSE(r.u8().ok());
    EXPECT_FALSE(r.uvarint().ok());
  }
  {
    // Truncated varint (continuation bit set, no next byte).
    Bytes data{0x80};
    ByteReader r(data);
    EXPECT_FALSE(r.uvarint().ok());
  }
  {
    // Length prefix beyond buffer.
    ByteWriter w;
    w.uvarint(100);
    ByteReader r(w.bytes());
    EXPECT_FALSE(r.str().ok());
  }
  {
    // Varint overflow (>10 bytes of continuation).
    Bytes data(11, 0xff);
    ByteReader r(data);
    EXPECT_FALSE(r.uvarint().ok());
  }
}

// A representative "C struct" shape: nested records, containers, strings.
struct Inner {
  std::int32_t a = 0;
  std::string label;
  bool operator==(const Inner&) const = default;
};

template <typename Ar>
void serdes_fields(Ar& ar, Inner& v) {
  ar.field(v.a);
  ar.field(v.label);
}

struct Outer {
  double x = 0;
  std::vector<Inner> items;
  std::map<std::string, std::uint64_t> counts;
  std::optional<Inner> maybe;
  bool operator==(const Outer&) const = default;
};

template <typename Ar>
void serdes_fields(Ar& ar, Outer& v) {
  ar.field(v.x);
  ar.field(v.items);
  ar.field(v.counts);
  ar.field(v.maybe);
}

TEST(Archive, NestedStructRoundtrip) {
  Outer o;
  o.x = 3.25;
  o.items = {{1, "one"}, {2, "two"}};
  o.counts = {{"k", 7}, {"j", 9}};
  o.maybe = Inner{42, "present"};
  auto bytes = encode(o);
  auto back = decode<Outer>(bytes);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  EXPECT_EQ(*back, o);
}

TEST(Archive, TrailingBytesRejected) {
  auto bytes = encode(Inner{5, "x"});
  bytes.push_back(0);
  EXPECT_FALSE(decode<Inner>(bytes).ok());
}

// The paper's depth-limited linked-list case.
struct ListNode {
  std::int64_t value = 0;
  std::unique_ptr<ListNode> next;
};

template <typename Ar>
void serdes_fields(Ar& ar, ListNode& v) {
  ar.field(v.value);
  ar.field(v.next);
}

ListNode make_list(int length) {
  ListNode head;
  ListNode* cur = &head;
  for (int i = 0; i < length; ++i) {
    cur->value = i;
    if (i + 1 < length) {
      cur->next = std::make_unique<ListNode>();
      cur = cur->next.get();
    }
  }
  return head;
}

int list_length(const ListNode& head) {
  int n = 1;
  const ListNode* cur = &head;
  while (cur->next) {
    cur = cur->next.get();
    ++n;
  }
  return n;
}

TEST(Archive, LinkedListWithinDepthRoundtrips) {
  SerdesLimits limits;
  limits.max_depth = 64;
  auto head = make_list(50);
  Encoder enc(limits);
  enc.field(head);
  EXPECT_FALSE(enc.truncated());
  const Bytes bytes50 = enc.take();
  auto back = decode<ListNode>(bytes50, limits);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(list_length(*back), 50);
}

TEST(Archive, LinkedListBeyondDepthIsTruncatedNotOverflowed) {
  // "linked lists are only serialized up to a maximum length ... it
  // protects against overflowing the serialization buffer" (S9).
  SerdesLimits limits;
  limits.max_depth = 10;
  auto head = make_list(100);
  Encoder enc(limits);
  enc.field(head);
  EXPECT_TRUE(enc.truncated());
  const Bytes bytes100 = enc.take();
  auto back = decode<ListNode>(bytes100, limits);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(list_length(*back), 11);  // head + max_depth hops
}

TEST(Archive, DecodeRejectsDeeperThanLimit) {
  SerdesLimits wide;
  wide.max_depth = 64;
  auto head = make_list(30);
  Encoder enc(wide);
  enc.field(head);
  const auto bytes = enc.take();
  SerdesLimits narrow;
  narrow.max_depth = 5;
  EXPECT_FALSE(decode<ListNode>(bytes, narrow).ok());
}

TEST(Archive, OversizedContainerCountRejected) {
  ByteWriter w;
  w.uvarint(1u << 30);  // claims a billion elements
  SerdesLimits limits;
  limits.max_elems = 1000;
  const Bytes huge = w.take();
  EXPECT_FALSE(decode<std::vector<std::int32_t>>(huge, limits).ok());
}

TEST(DynValue, AllShapesRoundtrip) {
  DynMap m;
  m["b"] = DynValue(true);
  m["i"] = DynValue(std::int64_t{-42});
  m["d"] = DynValue(2.5);
  m["s"] = DynValue(std::string("text"));
  m["bytes"] = DynValue(Bytes{1, 2, 3});
  m["arr"] = DynValue(DynArray{DynValue(1), DynValue("two"), DynValue()});
  const DynValue v(std::move(m));
  auto back = DynValue::from_bytes(v.to_bytes());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, v);
}

TEST(DynValue, MalformedTagRejected) {
  Bytes data{0x77};
  EXPECT_FALSE(DynValue::from_bytes(data).ok());
}

TEST(DynValue, ToStringIsReadable) {
  DynMap m;
  m["n"] = DynValue(3);
  EXPECT_EQ(DynValue(std::move(m)).to_string(), "{\"n\":3}");
}

TEST(Registry, PackUnpackChecksTypeTag) {
  auto sv = pack("test.Inner", Inner{9, "tagged"});
  auto ok = unpack<Inner>("test.Inner", sv);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->label, "tagged");
  auto bad = unpack<Inner>("test.Other", sv);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, Errc::kTypeMismatch);
}

TEST(Registry, SerializedValueNestsInMessages) {
  struct Envelope {
    SerializedValue payload;
  };
  auto sv = pack("test.Inner", Inner{1, "deep"});
  Encoder enc;
  enc.field(sv);
  const Bytes bytes = enc.take();
  Decoder dec(bytes);
  SerializedValue back;
  dec.field(back);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(back, sv);
}

}  // namespace
}  // namespace csaw
