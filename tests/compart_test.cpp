// Unit tests for the compart runtime: router link models, lifecycle rules,
// ack'd pushes, nack-vs-timeout failure discovery, crash injection, guards.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "compart/runtime.hpp"

namespace csaw {
namespace {

const Symbol kWork("Work");

InstanceDesc echo_instance(std::string_view name,
                           std::atomic<int>* runs = nullptr) {
  // One auto junction guarded on Work: each delivery of `assert Work`
  // triggers one run that retracts it locally.
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{kWork, false}};
  j.guard = [](const KvTable& t, const RuntimeView&) { return *t.prop(kWork); };
  j.body = [runs](JunctionEnv& env) {
    if (runs != nullptr) runs->fetch_add(1);
    (void)env.table().set_prop_local(kWork, false);
  };
  j.auto_schedule = true;
  InstanceDesc d;
  d.name = Symbol(name);
  d.type = Symbol("echo");
  d.junctions.push_back(std::move(j));
  return d;
}

TEST(Runtime, LifecycleRules) {
  Runtime rt;
  rt.add_instance(echo_instance("a"));
  EXPECT_FALSE(rt.is_running(Symbol("a")));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  EXPECT_TRUE(rt.is_running(Symbol("a")));
  // "Once started, an instance cannot be started again until it is stopped."
  auto twice = rt.start(Symbol("a"));
  ASSERT_FALSE(twice.ok());
  EXPECT_EQ(twice.error().code, Errc::kLifecycle);
  ASSERT_TRUE(rt.stop(Symbol("a")).ok());
  // "Similarly, a stopped instance cannot be stopped."
  auto again = rt.stop(Symbol("a"));
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, Errc::kLifecycle);
  // Restart is allowed.
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  EXPECT_TRUE(rt.is_running(Symbol("a")));
}

TEST(Runtime, ConcurrentRegistrationIsSafe) {
  // Regression: add_instance built scheduler entities *before* taking the
  // registry lock, so concurrent registration (dynamic membership, the
  // chaos harness) raced the wake-plan path -- TSan flagged it, and a
  // losing duplicate left entities whose callbacks dangled. The whole
  // operation is now serialized under the registry lock; this hammers it
  // from many threads, including post-start registration.
  Runtime rt;
  rt.add_instance(echo_instance("seed"));
  ASSERT_TRUE(rt.start(Symbol("seed")).ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::atomic<int> runs{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&rt, &runs, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const std::string name = "w" + std::to_string(t * kPerThread + i);
          rt.add_instance(echo_instance(name, &runs));
          ASSERT_TRUE(rt.start(Symbol(name)).ok());
        }
      });
    }
  }
  // Every registered instance is live and its guarded junction still fires.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      const Symbol name("w" + std::to_string(t * kPerThread + i));
      ASSERT_TRUE(rt.is_running(name));
      ASSERT_TRUE(rt.push({.to = JunctionAddr{name, Symbol("j")},
                           .update = Update::assert_prop(kWork),
                           .deadline = Deadline::after(std::chrono::seconds(5)),
                           .from = Symbol("test")})
                      .ok());
    }
  }
  // The acks mean the tables applied every assert; the runs follow shortly.
  constexpr int kExpected = kThreads * kPerThread;
  for (int i = 0; i < 500 && runs.load() < kExpected; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(runs.load(), kExpected);
}

TEST(Runtime, UnknownInstanceErrors) {
  Runtime rt;
  EXPECT_EQ(rt.start(Symbol("ghost")).error().code, Errc::kUndefinedName);
  EXPECT_EQ(rt.stop(Symbol("ghost")).error().code, Errc::kUndefinedName);
  EXPECT_FALSE(rt.is_running(Symbol("ghost")));
}

TEST(Runtime, PushIsAckedAndDrivesGuardedJunction) {
  std::atomic<int> runs{0};
  Runtime rt;
  rt.add_instance(echo_instance("a", &runs));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  auto st = rt.push({.to = {Symbol("a"), Symbol("j")},
                     .update = Update::assert_prop(kWork),
                     .deadline = Deadline::after(std::chrono::seconds(5)),
                     .from = Symbol("test")});
  ASSERT_TRUE(st.ok()) << st.error().to_string();
  // The ack means the table applied the update; the run follows shortly.
  for (int i = 0; i < 200 && runs.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(runs.load(), 1);
}

TEST(Runtime, PushToDownInstanceNacksWhenConfigured) {
  Runtime rt;  // nack_when_down defaults to true
  rt.add_instance(echo_instance("a"));
  auto st = rt.push({.to = {Symbol("a"), Symbol("j")},
                     .update = Update::assert_prop(kWork),
                     .deadline = Deadline::after(std::chrono::seconds(5)),
                     .from = Symbol("test")});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::kUnreachable);
}

TEST(Runtime, PushToDownInstanceTimesOutInDistributedMode) {
  RuntimeOptions opts;
  opts.nack_when_down = false;  // failure discovered only by timeout
  Runtime rt(opts);
  rt.add_instance(echo_instance("a"));
  const auto before = steady_now();
  auto st = rt.push({.to = {Symbol("a"), Symbol("j")},
                     .update = Update::assert_prop(kWork),
                     .deadline = Deadline::after(std::chrono::milliseconds(80)),
                     .from = Symbol("test")});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::kTimeout);
  EXPECT_GE(steady_now() - before, std::chrono::milliseconds(75));
}

TEST(Runtime, PushToUnknownJunctionNacks) {
  Runtime rt;
  rt.add_instance(echo_instance("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  auto st = rt.push({.to = {Symbol("a"), Symbol("nope")},
                     .update = Update::assert_prop(kWork),
                     .deadline = Deadline::after(std::chrono::seconds(5)),
                     .from = Symbol("test")});
  EXPECT_FALSE(st.ok());
}

TEST(Runtime, FireAndForgetModeNeverBlocks) {
  RuntimeOptions opts;
  opts.acks_enabled = false;  // the ablation configuration
  Runtime rt(opts);
  rt.add_instance(echo_instance("a"));
  // Target is down; the push still "succeeds" (failure is undetectable).
  auto st = rt.push({.to = {Symbol("a"), Symbol("j")},
                     .update = Update::assert_prop(kWork),
                     .deadline = Deadline::infinite(),
                     .from = Symbol("test")});
  EXPECT_TRUE(st.ok());
}

TEST(Runtime, LinkLatencyDelaysDelivery) {
  RuntimeOptions opts;
  opts.default_link.latency = std::chrono::milliseconds(60);
  std::atomic<int> runs{0};
  Runtime rt(opts);
  rt.add_instance(echo_instance("a", &runs));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  const auto before = steady_now();
  auto st = rt.push({.to = {Symbol("a"), Symbol("j")},
                     .update = Update::assert_prop(kWork),
                     .deadline = Deadline::after(std::chrono::seconds(5)),
                     .from = Symbol("test")});
  ASSERT_TRUE(st.ok());
  // Round trip: update latency + ack latency.
  EXPECT_GE(steady_now() - before, std::chrono::milliseconds(110));
}

TEST(Runtime, PartitionMakesPeerUnreachable) {
  RuntimeOptions opts;
  opts.nack_when_down = false;
  Runtime rt(opts);
  rt.add_instance(echo_instance("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  rt.router().set_partition(Symbol("test"), Symbol("a"), true);
  auto st = rt.push({.to = {Symbol("a"), Symbol("j")},
                     .update = Update::assert_prop(kWork),
                     .deadline = Deadline::after(std::chrono::milliseconds(60)),
                     .from = Symbol("test")});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::kTimeout);
  // Heal the partition: reachable again.
  rt.router().set_partition(Symbol("test"), Symbol("a"), false);
  EXPECT_TRUE(rt.push({.to = {Symbol("a"), Symbol("j")},
                       .update = Update::assert_prop(kWork),
                       .deadline = Deadline::after(std::chrono::seconds(5)),
                       .from = Symbol("test")})
                  .ok());
}

TEST(Runtime, DropProbabilityLosesMessages) {
  RuntimeOptions opts;
  opts.nack_when_down = false;
  opts.default_link.drop_prob = 1.0;  // everything vanishes
  Runtime rt(opts);
  rt.add_instance(echo_instance("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  auto st = rt.push({.to = {Symbol("a"), Symbol("j")},
                     .update = Update::assert_prop(kWork),
                     .deadline = Deadline::after(std::chrono::milliseconds(50)),
                     .from = Symbol("test")});
  EXPECT_FALSE(st.ok());
  EXPECT_GE(rt.router().counters().dropped, 1u);
}

TEST(Runtime, CrashAbortsAndAllowsRestart) {
  std::atomic<int> runs{0};
  Runtime rt;
  rt.add_instance(echo_instance("a", &runs));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  rt.crash(Symbol("a"));
  EXPECT_FALSE(rt.is_running(Symbol("a")));
  // Crash of a non-running instance is a no-op.
  rt.crash(Symbol("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  EXPECT_TRUE(rt.is_running(Symbol("a")));
  // Fresh tables after restart: Work is back to its declared initial.
  EXPECT_FALSE(*rt.table(Symbol("a"), Symbol("j")).prop(kWork));
}

TEST(Runtime, ManualSchedulingViaCall) {
  std::atomic<int> runs{0};
  JunctionDesc j;
  j.name = Symbol("j");
  j.body = [&runs](JunctionEnv&) { runs.fetch_add(1); };
  j.auto_schedule = false;
  InstanceDesc d;
  d.name = Symbol("m");
  d.type = Symbol("manual");
  d.junctions.push_back(std::move(j));

  Runtime rt;
  rt.add_instance(std::move(d));
  ASSERT_TRUE(rt.start(Symbol("m")).ok());
  // Without scheduling, a manual junction never runs.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(runs.load(), 0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rt.call(Symbol("m"), Symbol("j"),
                        Deadline::after(std::chrono::seconds(5)))
                    .ok());
  }
  EXPECT_EQ(runs.load(), 3);
  EXPECT_EQ(rt.runs_completed(Symbol("m"), Symbol("j")), 3u);
}

TEST(Runtime, CallDistinguishesGuardRejectionFromTimeout) {
  // A manual junction whose guard requires Work: calling it while Work is
  // false must fail with kGuardRejected (the junction saw the request and
  // said no), not kTimeout (the junction never got a chance).
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{kWork, false}};
  j.guard = [](const KvTable& t, const RuntimeView&) { return *t.prop(kWork); };
  j.body = [](JunctionEnv&) {};
  j.auto_schedule = false;
  InstanceDesc d;
  d.name = Symbol("g");
  d.type = Symbol("guarded");
  d.junctions.push_back(std::move(j));

  Runtime rt;
  rt.add_instance(std::move(d));
  ASSERT_TRUE(rt.start(Symbol("g")).ok());

  auto rejected = rt.call(Symbol("g"), Symbol("j"),
                          Deadline::after(std::chrono::milliseconds(150)));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error().code, Errc::kGuardRejected);

  // With the guard satisfied, the same call succeeds.
  ASSERT_TRUE(rt.table(Symbol("g"), Symbol("j"))
                  .set_prop_local(kWork, true)
                  .ok());
  EXPECT_TRUE(rt.call(Symbol("g"), Symbol("j"),
                      Deadline::after(std::chrono::seconds(5)))
                  .ok());
}

TEST(Runtime, RemotePropReadsRequireRunningInstance) {
  Runtime rt;
  rt.add_instance(echo_instance("a"));
  auto down = rt.view().remote_prop(JunctionAddr{Symbol("a"), Symbol("j")},
                                    kWork);
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.error().code, Errc::kUnreachable);
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  auto up = rt.view().remote_prop(JunctionAddr{Symbol("a"), Symbol("j")},
                                  kWork);
  ASSERT_TRUE(up.ok());
  EXPECT_FALSE(*up);
}

}  // namespace
}  // namespace csaw
