// Cost-profiler tests: body CPU attributed to the junction that burned it,
// ready-queue delay visible under a starved one-worker pool (and exported
// through the sched_* metrics histograms), CostProfile JSON round-trips,
// cross-process merge preserves CPU/eval totals exactly, the destructor
// writes profile_out, and --diff flags regressions in both document modes.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "compart/runtime.hpp"
#include "obs/profile.hpp"
#include "support/clock.hpp"
#include "support/io.hpp"

namespace csaw {
namespace {

using namespace std::chrono_literals;

const Symbol kWork("Work");

// Burns ~`ns` of this thread's CPU time (not wall time).
void burn_cpu(std::uint64_t ns) {
  const std::uint64_t until = thread_cpu_ns() + ns;
  volatile std::uint64_t sink = 0;
  while (thread_cpu_ns() < until) {
    for (int i = 0; i < 1000; ++i) sink = sink + static_cast<std::uint64_t>(i);
  }
}

InstanceDesc worker_instance(std::string_view name, std::uint64_t burn_ns,
                             std::chrono::milliseconds sleep = {}) {
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{kWork, false}};
  j.guard = [](const KvTable& t, const RuntimeView&) { return *t.prop(kWork); };
  j.body = [burn_ns, sleep](JunctionEnv& env) {
    if (burn_ns > 0) burn_cpu(burn_ns);
    if (sleep.count() > 0) std::this_thread::sleep_for(sleep);
    (void)env.table().set_prop_local(kWork, false);
  };
  j.auto_schedule = true;
  InstanceDesc d;
  d.name = Symbol(name);
  d.type = Symbol("worker");
  d.junctions.push_back(std::move(j));
  return d;
}

Status push_work(Runtime& rt, std::string_view inst) {
  return rt.push({.to = {Symbol(inst), Symbol("j")},
                  .update = Update::assert_prop(kWork),
                  .deadline = Deadline::after(5s),
                  .from = Symbol("test")});
}

bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds budget = 10s) {
  const auto deadline = steady_now() + budget;
  while (steady_now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

const obs::JunctionCost* find_junction(const obs::CostProfile& p,
                                       std::string_view instance) {
  for (const auto& j : p.junctions) {
    if (j.instance == instance) return &j;
  }
  return nullptr;
}

// --- CPU attribution -------------------------------------------------------

TEST(ProfileTest, BodyCpuAttributedToTheBurningJunction) {
  obs::Profiler profiler;
  RuntimeOptions opts;
  opts.profiler = &profiler;
  Runtime rt(opts);
  // "hog" burns ~2ms of CPU per run; "idle" does nothing measurable.
  rt.add_instance(worker_instance("hog", 2'000'000));
  rt.add_instance(worker_instance("idle", 0));
  ASSERT_TRUE(rt.start(Symbol("hog")).ok());
  ASSERT_TRUE(rt.start(Symbol("idle")).ok());
  constexpr int kRuns = 5;
  for (int i = 0; i < kRuns; ++i) {
    // push() acks at table-enqueue time, not after the body runs, and
    // back-to-back asserts of the same prop coalesce into one run -- wait
    // for each run to land before asserting again.
    ASSERT_TRUE(push_work(rt, "hog").ok());
    ASSERT_TRUE(push_work(rt, "idle").ok());
    const auto runs = static_cast<std::uint64_t>(i) + 1;
    ASSERT_TRUE(eventually([&] {
      return rt.runs_completed(Symbol("hog"), Symbol("j")) >= runs &&
             rt.runs_completed(Symbol("idle"), Symbol("j")) >= runs;
    }));
  }
  // The profiler records body CPU after the eval returns; poll until the
  // final run's sample is visible rather than racing the worker.
  ASSERT_TRUE(eventually([&] {
    const auto p = profiler.snapshot();
    const auto* h = find_junction(p, "hog");
    return h != nullptr && h->fires >= static_cast<std::uint64_t>(kRuns) &&
           h->body_cpu_ns >= static_cast<std::uint64_t>(kRuns) * 2'000'000;
  }));
  rt.shutdown();

  const auto profile = profiler.snapshot();
  const auto* hog = find_junction(profile, "hog");
  const auto* idle = find_junction(profile, "idle");
  ASSERT_NE(hog, nullptr);
  ASSERT_NE(idle, nullptr);
  EXPECT_GE(hog->fires, static_cast<std::uint64_t>(kRuns));
  EXPECT_GE(hog->evals, hog->fires);
  // The hog burned >= kRuns * 2ms of CPU; the idle junction's whole life
  // (guard checks + prop flips) is far below one burn.
  EXPECT_GE(hog->body_cpu_ns, static_cast<std::uint64_t>(kRuns) * 2'000'000);
  EXPECT_LT(idle->body_cpu_ns, 2'000'000u);
  EXPECT_GT(hog->body_cpu_ns, 10 * idle->body_cpu_ns);
  // Wall covers CPU (no blocking in the hog's body).
  EXPECT_GE(hog->body_wall_ns, hog->body_cpu_ns / 2);
}

// --- queue delay under a starved pool --------------------------------------

TEST(ProfileTest, QueueDelayNonzeroUnderOneWorker) {
  obs::Metrics metrics;
  obs::Profiler profiler;
  RuntimeOptions opts;
  opts.profiler = &profiler;
  opts.metrics = &metrics;
  opts.scheduler.workers = 1;
  Runtime rt(opts);
  // A 20ms CPU-spinning body on a one-worker pool: the sibling's wake sits
  // in the ready queue for most of that spin. (A sleeping body would grow
  // a spare via the blocking hooks; spinning keeps the pool at one.)
  rt.add_instance(worker_instance("spin", 20'000'000));
  rt.add_instance(worker_instance("other", 0));
  ASSERT_TRUE(rt.start(Symbol("spin")).ok());
  ASSERT_TRUE(rt.start(Symbol("other")).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(push_work(rt, "spin").ok());
    ASSERT_TRUE(push_work(rt, "other").ok());
    const auto runs = static_cast<std::uint64_t>(i) + 1;
    ASSERT_TRUE(eventually([&] {
      return rt.runs_completed(Symbol("spin"), Symbol("j")) >= runs &&
             rt.runs_completed(Symbol("other"), Symbol("j")) >= runs;
    }));
  }
  // Delay samples are recorded when the starved wake finally dequeues; poll
  // for one that waited out a meaningful slice of a 20ms spin.
  ASSERT_TRUE(eventually([&] {
    const auto p = profiler.snapshot();
    const auto* o = find_junction(p, "other");
    return o != nullptr && o->queue_delay_ns.count > 0 &&
           o->queue_delay_ns.max > 1'000'000;
  }));
  rt.shutdown();

  const auto profile = profiler.snapshot();
  const auto* other = find_junction(profile, "other");
  ASSERT_NE(other, nullptr);
  ASSERT_GT(other->queue_delay_ns.count, 0u);
  // At least one wake waited out a meaningful slice of the 20ms spin.
  EXPECT_GT(other->queue_delay_ns.max, 1'000'000u);
  // Satellite: the same signals flow through the Metrics histograms (and
  // from there /metrics).
  EXPECT_GT(metrics.histogram("sched_queue_delay_us").count(), 0u);
  EXPECT_GT(metrics.histogram("sched_body_cpu_us").count(), 0u);
  EXPECT_GT(metrics.histogram("sched_body_cpu_us").sum(), 0u);
}

// --- serialization & merge -------------------------------------------------

TEST(ProfileTest, JsonRoundTripPreservesTotals) {
  obs::CostProfile p;
  p.nodes = {"nodeA"};
  p.duration_ns = 123456789;
  obs::JunctionCost j;
  j.node = "nodeA";
  j.instance = "i";
  j.junction = "j";
  j.evals = 10;
  j.fires = 7;
  j.body_cpu_ns = 41'000'000;
  j.blocked_ns = 5;
  j.queue_delay_ns = {10, 1000, 400, 50.0, 300.0, 390.0};
  p.junctions.push_back(j);
  obs::LinkCost l;
  l.node = "nodeA";
  l.peer = "nodeB";
  l.frames_sent = 17;
  l.bytes_sent = 4096;
  l.rtt_ns = {3, 900, 500, 200.0, 450.0, 495.0};
  p.links.push_back(l);
  obs::TableCost t;
  t.node = "nodeA";
  t.instance = "i";
  t.keys = 4;
  t.writes = 99;
  t.wal_bytes = 2048;
  p.tables.push_back(t);

  const auto parsed = obs::parse_cost_profile(obs::cost_profile_json(p));
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  ASSERT_EQ(parsed->junctions.size(), 1u);
  EXPECT_EQ(parsed->duration_ns, p.duration_ns);
  EXPECT_EQ(parsed->junctions[0].body_cpu_ns, j.body_cpu_ns);
  EXPECT_EQ(parsed->junctions[0].evals, j.evals);
  EXPECT_EQ(parsed->junctions[0].queue_delay_ns.count, 10u);
  EXPECT_DOUBLE_EQ(parsed->junctions[0].queue_delay_ns.p99, 390.0);
  ASSERT_EQ(parsed->links.size(), 1u);
  EXPECT_EQ(parsed->links[0].bytes_sent, 4096u);
  ASSERT_EQ(parsed->tables.size(), 1u);
  EXPECT_EQ(parsed->tables[0].wal_bytes, 2048u);
}

TEST(ProfileTest, MergePreservesCpuAndEvalTotalsAcrossNodes) {
  // Two runtimes with distinct node names and private profilers, as two
  // shard processes would run; merge through the same library call
  // csaw-profile uses.
  auto run_node = [](const char* node, const char* inst,
                     std::uint64_t burn_ns) {
    obs::Profiler profiler;
    RuntimeOptions opts;
    opts.profiler = &profiler;
    opts.tcp.node_name = node;
    Runtime rt(opts);
    rt.add_instance(worker_instance(inst, burn_ns));
    EXPECT_TRUE(rt.start(Symbol(inst)).ok());
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(push_work(rt, inst).ok());
    rt.shutdown();
    return profiler.snapshot();
  };
  const auto pa = run_node("nodeA", "front", 1'000'000);
  const auto pb = run_node("nodeB", "back", 2'000'000);

  // Round-trip through JSON first: the tool merges parsed files.
  const auto ra = obs::parse_cost_profile(obs::cost_profile_json(pa));
  const auto rb = obs::parse_cost_profile(obs::cost_profile_json(pb));
  ASSERT_TRUE(ra.ok() && rb.ok());
  const auto merged = obs::merge_profiles({*ra, *rb});

  auto cpu_total = [](const obs::CostProfile& p) {
    std::uint64_t sum = 0;
    for (const auto& j : p.junctions) sum += j.body_cpu_ns;
    return sum;
  };
  auto eval_total = [](const obs::CostProfile& p) {
    std::uint64_t sum = 0;
    for (const auto& j : p.junctions) sum += j.evals;
    return sum;
  };
  ASSERT_EQ(merged.nodes.size(), 2u);
  EXPECT_EQ(cpu_total(merged), cpu_total(pa) + cpu_total(pb));
  EXPECT_EQ(eval_total(merged), eval_total(pa) + eval_total(pb));
  EXPECT_NE(find_junction(merged, "front"), nullptr);
  EXPECT_NE(find_junction(merged, "back"), nullptr);
  // Per-instance table rows from both nodes survive the merge.
  EXPECT_EQ(merged.tables.size(), 2u);
}

TEST(ProfileTest, DestructorWritesProfileOut) {
  const std::string path =
      ::testing::TempDir() + "/csaw_profile_test_out.json";
  (void)std::remove(path.c_str());
  {
    RuntimeOptions opts;
    opts.profile_out = path;
    Runtime rt(opts);
    rt.add_instance(worker_instance("solo", 500'000));
    ASSERT_TRUE(rt.start(Symbol("solo")).ok());
    ASSERT_TRUE(push_work(rt, "solo").ok());
  }
  const auto loaded = obs::load_cost_profile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().to_string();
  const auto* solo = find_junction(*loaded, "solo");
  ASSERT_NE(solo, nullptr);
  EXPECT_GE(solo->fires, 1u);
  EXPECT_GT(solo->body_cpu_ns, 0u);
  // No TCP transport: node defaults to "local", and the stop-time fold
  // captured the table row.
  EXPECT_EQ(solo->node, "local");
  ASSERT_EQ(loaded->tables.size(), 1u);
  EXPECT_GT(loaded->tables[0].writes, 0u);
}

// --- regression diffing ----------------------------------------------------

TEST(ProfileTest, DiffFlagsCostProfileRegressions) {
  auto profile_text = [](std::uint64_t cpu_ns) {
    obs::CostProfile p;
    p.nodes = {"n"};
    p.duration_ns = 1'000'000'000;
    obs::JunctionCost j;
    j.node = "n";
    j.instance = "i";
    j.junction = "j";
    j.evals = 100;
    j.body_cpu_ns = cpu_ns;
    p.junctions.push_back(j);
    return obs::cost_profile_json(p);
  };
  const std::string before = profile_text(100'000'000);
  const std::string after = profile_text(200'000'000);  // 2x cpu per eval

  obs::DiffOptions opts;
  opts.threshold_pct = 25.0;
  auto diff = obs::diff_documents(before, after, opts);
  ASSERT_TRUE(diff.ok()) << diff.error().to_string();
  EXPECT_FALSE(diff->regressions.empty());

  // Same comparison under a 150% threshold: within budget.
  opts.threshold_pct = 150.0;
  diff = obs::diff_documents(before, after, opts);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->regressions.empty());

  // Improvement direction never counts as a regression.
  diff = obs::diff_documents(after, before, {});
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->regressions.empty());
  EXPECT_FALSE(diff->improvements.empty());
}

TEST(ProfileTest, MergeOfIdleProfilesProducesNoNaN) {
  // Regression: merging two zero-count summaries used to compute the
  // count-weighted percentile average as 0/0, poisoning the merged document
  // with NaN (which json rejects and --diff chokes on).
  obs::HistSummary idle_a;
  obs::HistSummary idle_b;
  const auto m = obs::merge_summaries(idle_a, idle_b);
  EXPECT_EQ(m.count, 0u);
  EXPECT_FALSE(std::isnan(m.p50));
  EXPECT_FALSE(std::isnan(m.p90));
  EXPECT_FALSE(std::isnan(m.p99));
  EXPECT_EQ(m.p50, 0.0);

  // A zero-count input must not drag down the carrying side's percentiles.
  obs::HistSummary busy;
  busy.count = 4;
  busy.sum = 400;
  busy.max = 200;
  busy.p50 = 100.0;
  busy.p90 = 180.0;
  busy.p99 = 198.0;
  const auto carried = obs::merge_summaries(idle_a, busy);
  EXPECT_EQ(carried.count, 4u);
  EXPECT_EQ(carried.p50, 100.0);
  EXPECT_EQ(carried.p99, 198.0);

  // End to end: two idle profiles (fresh junction, no evals) merge to a
  // document that round-trips through json and diffs cleanly against
  // itself -- the CI perf gate path for a quiescent run.
  auto idle_profile = [](const std::string& node) {
    obs::CostProfile p;
    p.nodes = {node};
    p.duration_ns = 1'000'000;
    obs::JunctionCost j;
    j.node = node;
    j.instance = "i";
    j.junction = "j";
    p.junctions.push_back(j);
    return p;
  };
  const auto merged =
      obs::merge_profiles({idle_profile("n0"), idle_profile("n1")});
  const std::string text = obs::cost_profile_json(merged);
  EXPECT_EQ(text.find("nan"), std::string::npos);
  auto parsed = obs::parse_cost_profile(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  auto diff = obs::diff_documents(text, text, {});
  ASSERT_TRUE(diff.ok()) << diff.error().to_string();
  EXPECT_TRUE(diff->regressions.empty());
}

TEST(ProfileTest, DiffHandlesBenchSnapshotsAndMinAbs) {
  const std::string before =
      R"({"bench":"sched_scale","metrics":{"p99_scale":0.010,"ops_per_s_event":100000}})";
  const std::string worse =
      R"({"bench":"sched_scale","metrics":{"p99_scale":0.020,"ops_per_s_event":60000}})";
  auto diff = obs::diff_documents(before, worse, {});
  ASSERT_TRUE(diff.ok()) << diff.error().to_string();
  // Latency doubled and throughput dropped 40%: both flagged.
  EXPECT_EQ(diff->regressions.size(), 2u);

  // A large relative but tiny absolute latency jitter is damped by the
  // absolute floor (the CI perf gate uses this on millisecond metrics).
  obs::DiffOptions opts;
  opts.min_abs = 0.050;
  diff = obs::diff_documents(before, worse, opts);
  ASSERT_TRUE(diff.ok());
  for (const auto& f : diff->regressions) {
    EXPECT_NE(f.metric.find("ops_per_s"), std::string::npos) << f.metric;
  }

  // Mixing document kinds is a usage error, not a silent zero-diff.
  const std::string profile_doc =
      R"({"csaw_profile":1,"nodes":[],"duration_ns":1,"junctions":[],"links":[],"tables":[]})";
  EXPECT_FALSE(obs::diff_documents(before, profile_doc, {}).ok());
}

}  // namespace
}  // namespace csaw
