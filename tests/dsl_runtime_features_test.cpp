// Runtime coverage for the remaining DSL features: keep, ||n composition,
// start/stop from DSL bodies, runtime-indexed propositions in formulas and
// waits, subset iteration, and undef-data failure modes.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"

namespace csaw {
namespace {

constexpr auto kD = std::chrono::seconds(10);

TEST(RuntimeFeatures, KeepDiscardsQueuedUpdates) {
  // A junction that keeps P before applying pending updates: an update
  // pushed while it was idle is discarded by keep at its next run.
  ProgramBuilder p("keep");
  p.type("tau")
      .junction("j")
      .init_prop("P", false)
      .init_prop("Ran", false)
      .body(e_seq({e_keep({Symbol("P")}), e_assert(pr("Ran"))}));
  p.instance("a", "tau", {{"j", {}}});
  p.main_body(e_start(inst("a")));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  Engine engine(std::move(compiled).value(), HostBindings{});
  ASSERT_TRUE(engine.run_main().ok());
  // keep() discards only *queued* updates: inject while the junction is
  // idle, then run. Note apply_pending happens before the body, so to test
  // keep we inject DURING the run via a second injection... simplest
  // observable: keep of nothing is a no-op and the body completes.
  ASSERT_TRUE(engine.call("a", "j", Deadline::after(kD)).ok());
  EXPECT_TRUE(*engine.runtime().table(Symbol("a"), Symbol("j")).prop(Symbol("Ran")));
  EXPECT_EQ(engine.stats(addr("a", "j")).failures.load(), 0u);
}

TEST(RuntimeFeatures, ParNRunsAllBranches) {
  std::atomic<int> runs{0};
  ProgramBuilder p("parn");
  p.type("tau").junction("j").body(
      e_parn("three", {e_host("h"), e_host("h"), e_host("h")}));
  p.instance("a", "tau", {{"j", {}}});
  p.main_body(e_start(inst("a")));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok());
  HostBindings b;
  b.block("h", [&runs](HostCtx&) {
    runs.fetch_add(1);
    return Status::ok_status();
  });
  Engine engine(std::move(compiled).value(), std::move(b));
  ASSERT_TRUE(engine.run_main().ok());
  ASSERT_TRUE(engine.call("a", "j", Deadline::after(kD)).ok());
  EXPECT_EQ(runs.load(), 3);
}

TEST(RuntimeFeatures, StartStopFromDslBody) {
  // A controller junction stops and restarts a worker instance; the
  // lifecycle rules of S6 are enforced through the DSL path.
  ProgramBuilder p("lifecycle");
  p.type("ctl")
      .junction("j")
      .init_prop("DidIt", false)
      .body(e_seq({
          e_stop(inst("worker")),
          e_start(inst("worker")),
          // A second start must fail -> otherwise branch marks DidIt.
          e_otherwise(e_start(inst("worker")), TimeRef::ms(1000),
                      e_assert(pr("DidIt"))),
      }));
  p.type("wrk").junction("j").body(e_skip());
  p.instance("c", "ctl", {{"j", {}}});
  p.instance("worker", "wrk", {{"j", {}}});
  p.main_body(e_par({e_start(inst("c")), e_start(inst("worker"))}));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  Engine engine(std::move(compiled).value(), HostBindings{});
  ASSERT_TRUE(engine.run_main().ok());
  ASSERT_TRUE(engine.call("c", "j", Deadline::after(kD)).ok());
  EXPECT_TRUE(engine.runtime().is_running(Symbol("worker")));
  EXPECT_TRUE(*engine.runtime().table(Symbol("c"), Symbol("j")).prop(Symbol("DidIt")));
  EXPECT_EQ(engine.stats(addr("c", "j")).failures.load(), 0u);
}

TEST(RuntimeFeatures, RuntimeIndexedWaitFollowsIdx) {
  // wait [] !Work[tgt] where tgt is a runtime idx: the wait must watch the
  // proposition of the *chosen* element.
  ProgramBuilder p("idxwait");
  CtList backs{CtValue(addr("b1", "j")), CtValue(addr("b2", "j"))};
  p.config("Backs", CtValue(backs));
  p.type("front")
      .junction("j")
      .init_data("n")
      .for_init_prop("x", SetRef::named(Symbol("Backs")), "Work", false)
      .idx("tgt", SetRef::named(Symbol("Backs")))
      .body(e_seq({
          e_host("choose", {Symbol("tgt")}),
          e_assert(pr_idx("Work", idxvar("tgt")), idxvar("tgt")),
          e_wait({}, f_not(f_prop_idx("Work", idxvar("tgt")))),
      }));
  p.type("back")
      .junction("j")
      .param("selfset", ParamDecl::Kind::kSet)
      .for_init_prop("s", SetRef::named(Symbol("selfset")), "Work", false)
      .guard(f_for(Formula::Kind::kOr, "s", "selfset",
                   f_prop_idx("Work", var("s"))))
      .auto_schedule()
      .body(e_retract(pr_idx("Work", NameTerm::me_junction()),
                      jref("front", "j")));
  p.instance("front", "front", {{"j", {}}});
  for (const char* b : {"b1", "b2"}) {
    const CtValue self(addr(b, "j"));
    p.instance(b, "back", {{"j", {CtValue(CtList{self})}}});
  }
  p.main_body(e_par({e_start(inst("front")), e_start(inst("b1")),
                     e_start(inst("b2"))}));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();

  std::atomic<int> round{0};
  HostBindings b;
  b.block("choose", [&round](HostCtx& ctx) {
    return ctx.set_idx("tgt", round.fetch_add(1) % 2);
  });
  Engine engine(std::move(compiled).value(), std::move(b));
  ASSERT_TRUE(engine.run_main().ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(engine.call("front", "j", Deadline::after(kD)).ok()) << i;
  }
  // Both back-ends were engaged (alternating idx choice).
  EXPECT_EQ(engine.stats(addr("b1", "j")).runs.load(), 3u);
  EXPECT_EQ(engine.stats(addr("b2", "j")).runs.load(), 3u);
}

TEST(RuntimeFeatures, WriteOfUndefDataFails) {
  ProgramBuilder p("undef");
  p.type("tau").junction("j").init_data("n").body(
      e_write("n", jref("peer", "j")));
  p.type("peer_t").junction("j").init_data("n").body(e_skip());
  p.instance("a", "tau", {{"j", {}}});
  p.instance("peer", "peer_t", {{"j", {}}});
  p.main_body(e_par({e_start(inst("a")), e_start(inst("peer"))}));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok());
  Engine engine(std::move(compiled).value(), HostBindings{});
  ASSERT_TRUE(engine.run_main().ok());
  ASSERT_TRUE(engine.call("a", "j", Deadline::after(kD)).ok());
  // "trying to write or restore [undef] results in an error" (S6).
  EXPECT_EQ(engine.stats(addr("a", "j")).failures.load(), 1u);
}

TEST(RuntimeFeatures, SubsetIterationSkipsNonMembers) {
  ProgramBuilder p("subset");
  CtList backs{CtValue(addr("b1", "j")), CtValue(addr("b2", "j")),
               CtValue(addr("b3", "j"))};
  p.config("Backs", CtValue(backs));
  p.type("front")
      .junction("j")
      .init_data("n")
      .subset("chosen", SetRef::named(Symbol("Backs")))
      .body(e_seq({
          e_host("pick", {Symbol("chosen")}),
          e_host("seed", {Symbol("n")}),
          e_for("b", SetRef::named(Symbol("chosen")), Expr::Kind::kSeq,
                e_write("n", var("b"))),
      }));
  p.type("back").junction("j").init_data("n").body(e_skip());
  p.instance("front", "front", {{"j", {}}});
  for (const char* b : {"b1", "b2", "b3"}) p.instance(b, "back", {{"j", {}}});
  p.main_body(e_par({e_start(inst("front")), e_start(inst("b1")),
                     e_start(inst("b2")), e_start(inst("b3"))}));
  auto compiled = compile(p.build());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();

  HostBindings b;
  b.block("pick", [](HostCtx& ctx) {
    return ctx.set_subset("chosen", {true, false, true});
  });
  b.block("seed", [](HostCtx& ctx) {
    return ctx.save_dyn("n", DynValue(std::string("payload")));
  });
  Engine engine(std::move(compiled).value(), std::move(b));
  ASSERT_TRUE(engine.run_main().ok());
  ASSERT_TRUE(engine.call("front", "j", Deadline::after(kD)).ok());
  EXPECT_EQ(engine.stats(addr("front", "j")).failures.load(), 0u);
  // b1 and b3 received the data; b2 did not.
  auto& rt = engine.runtime();
  EXPECT_TRUE(rt.table(Symbol("b1"), Symbol("j")).data_defined(Symbol("n")) ||
              [&] {  // delivery is asynchronous; allow a beat
                std::this_thread::sleep_for(std::chrono::milliseconds(50));
                return rt.table(Symbol("b1"), Symbol("j"))
                    .data_defined(Symbol("n"));
              }());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(rt.table(Symbol("b3"), Symbol("j")).data_defined(Symbol("n")));
  EXPECT_FALSE(rt.table(Symbol("b2"), Symbol("j")).data_defined(Symbol("n")));
}

}  // namespace
}  // namespace csaw
