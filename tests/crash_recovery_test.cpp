// Crash-recovery and split-brain-prevention tests at the Runtime level:
// durable tables survive restarts and crash()+start(), acked-but-unapplied
// updates recover into the pending queue, the authority epoch persists, and
// a stale-epoch writer is rejected (and counted) until it learns the new
// epoch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "compart/runtime.hpp"
#include "compart/tcp.hpp"
#include "kv/wal.hpp"
#include "obs/metrics.hpp"

namespace csaw {
namespace {

using namespace std::chrono_literals;

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/csaw_recovery_test_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path + "'";
    (void)std::system(cmd.c_str());
  }
};

template <typename Cond>
bool eventually(Cond cond, std::chrono::milliseconds limit = 10s) {
  const auto deadline = steady_now() + limit;
  while (steady_now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(2ms);
  }
  return cond();
}

const Symbol kWork("Work");
const Symbol kV("v");

// Auto junction that applies pushed updates (assert Work + write v) and
// retracts Work, like a tiny single-key store.
InstanceDesc store_instance(const char* name) {
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{kWork, false}};
  j.table_spec.data = {kV};
  j.guard = [](const KvTable& t, const RuntimeView&) { return *t.prop(kWork); };
  j.body = [](JunctionEnv& env) {
    (void)env.table().set_prop_local(kWork, false);
  };
  j.auto_schedule = true;
  InstanceDesc d;
  d.name = Symbol(name);
  d.type = Symbol("store");
  d.junctions.push_back(std::move(j));
  return d;
}

Status push_value(Runtime& rt, const char* instance, const std::string& s,
                  bool with_work = true) {
  if (with_work) {
    auto st = rt.push({.to = JunctionAddr{Symbol(instance), Symbol("j")},
                       .update = Update::write_data(
                           kV, SerializedValue{Symbol("str"),
                                               Bytes(s.begin(), s.end())},
                           "test"),
                       .deadline = Deadline::after(5s),
                       .from = Symbol("test")});
    if (!st.ok()) return st;
    return rt.push({.to = JunctionAddr{Symbol(instance), Symbol("j")},
                    .update = Update::assert_prop(kWork, "test"),
                    .deadline = Deadline::after(5s),
                    .from = Symbol("test")});
  }
  return rt.push({.to = JunctionAddr{Symbol(instance), Symbol("j")},
                  .update = Update::write_data(
                      kV, SerializedValue{Symbol("str"),
                                          Bytes(s.begin(), s.end())},
                      "test"),
                  .deadline = Deadline::after(5s),
                  .from = Symbol("test")});
}

std::string read_value(Runtime& rt, const char* instance) {
  auto v = rt.table(Symbol(instance), Symbol("j")).data(kV);
  if (!v.ok()) return "<undef>";
  return std::string(v->bytes.begin(), v->bytes.end());
}

TEST(CrashRecovery, RestartOfProcessRecoversAppliedState) {
  TempDir dir;
  {
    RuntimeOptions opts;
    opts.durability_dir = dir.path;
    Runtime rt(opts);
    rt.add_instance(store_instance("a"));
    ASSERT_TRUE(rt.start(Symbol("a")).ok());
    ASSERT_TRUE(push_value(rt, "a", "before-crash").ok());
    ASSERT_TRUE(eventually([&] { return read_value(rt, "a") ==
                                        "before-crash"; }));
  }  // runtime destroyed: "the process died"
  RuntimeOptions opts;
  opts.durability_dir = dir.path;
  Runtime rt2(opts);
  rt2.add_instance(store_instance("a"));
  ASSERT_TRUE(rt2.start(Symbol("a")).ok());
  EXPECT_EQ(read_value(rt2, "a"), "before-crash");
  EXPECT_FALSE(*rt2.table(Symbol("a"), Symbol("j")).prop(kWork));
}

TEST(CrashRecovery, CrashedInstanceRecoversStateWhenDurable) {
  TempDir dir;
  RuntimeOptions opts;
  opts.durability_dir = dir.path;
  obs::Metrics metrics;
  opts.metrics = &metrics;
  Runtime rt(opts);
  rt.add_instance(store_instance("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  ASSERT_TRUE(push_value(rt, "a", "survives").ok());
  ASSERT_TRUE(eventually([&] { return read_value(rt, "a") == "survives"; }));

  rt.crash(Symbol("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  EXPECT_EQ(read_value(rt, "a"), "survives");
  EXPECT_GE(metrics.counter("wal_recoveries").value(), 2u);  // both starts
}

TEST(CrashRecovery, CrashWipesStateWithoutDurability) {
  // The paper's baseline semantics are unchanged when durability is off:
  // restart re-initializes from the declarations.
  Runtime rt;
  rt.add_instance(store_instance("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  ASSERT_TRUE(push_value(rt, "a", "volatile").ok());
  ASSERT_TRUE(eventually([&] { return read_value(rt, "a") == "volatile"; }));
  rt.crash(Symbol("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  EXPECT_EQ(read_value(rt, "a"), "<undef>");
}

TEST(CrashRecovery, AckedButUnappliedUpdatesRecoverAsPending) {
  TempDir dir;
  std::atomic<bool> parked{false};
  {
    RuntimeOptions opts;
    opts.durability_dir = dir.path;
    Runtime rt(opts);
    // A junction whose body parks until the crash: while it runs, the
    // junction thread cannot drain the pending queue, so a pushed update is
    // acked (and logged) but never applied -- the window where the ack's
    // durability promise is all the client has.
    JunctionDesc j;
    j.name = Symbol("j");
    j.table_spec.props = {{kWork, false}};
    j.table_spec.data = {kV};
    j.body = [&parked](JunctionEnv& env) {
      parked.store(true);
      while (!env.aborted()) std::this_thread::sleep_for(1ms);
    };
    j.auto_schedule = true;
    InstanceDesc d;
    d.name = Symbol("a");
    d.type = Symbol("parked");
    d.junctions.push_back(std::move(j));
    rt.add_instance(std::move(d));
    ASSERT_TRUE(rt.start(Symbol("a")).ok());
    ASSERT_TRUE(eventually([&] { return parked.load(); }));
    ASSERT_TRUE(push_value(rt, "a", "queued-write", /*with_work=*/false).ok());
    rt.crash(Symbol("a"));
  }
  // The raw recovered state shows exactly what the ack promised: nothing
  // applied, one pending write to v.
  auto rec = wal_recover(dir.path, "a__j");
  ASSERT_TRUE(rec.ok()) << rec.error().to_string();
  for (const auto& datum : rec->image.data) EXPECT_FALSE(datum.defined);
  ASSERT_EQ(rec->pending.size(), 1u);
  EXPECT_EQ(rec->pending[0].update.key, kV);
  // And a restarted runtime applies it like any other queued arrival.
  RuntimeOptions opts;
  opts.durability_dir = dir.path;
  Runtime rt2(opts);
  rt2.add_instance(store_instance("a"));
  ASSERT_TRUE(rt2.start(Symbol("a")).ok());
  ASSERT_TRUE(eventually([&] { return read_value(rt2, "a") == "queued-write"; }));
}

TEST(CrashRecovery, WalCompactionKeepsRecoveryIntact) {
  TempDir dir;
  {
    RuntimeOptions opts;
    opts.durability_dir = dir.path;
    opts.wal_compact_bytes = 512;  // force frequent snapshot+truncate cycles
    Runtime rt(opts);
    rt.add_instance(store_instance("a"));
    ASSERT_TRUE(rt.start(Symbol("a")).ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(push_value(rt, "a", "val-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(eventually([&] { return read_value(rt, "a") == "val-49"; }));
  }
  obs::Metrics metrics;
  RuntimeOptions opts;
  opts.durability_dir = dir.path;
  opts.metrics = &metrics;
  Runtime rt2(opts);
  rt2.add_instance(store_instance("a"));
  ASSERT_TRUE(rt2.start(Symbol("a")).ok());
  EXPECT_EQ(read_value(rt2, "a"), "val-49");
}

TEST(CrashRecovery, EpochPersistsAcrossRestartWithoutBumping) {
  TempDir dir;
  {
    RuntimeOptions opts;
    opts.durability_dir = dir.path;
    Runtime rt(opts);
    EXPECT_EQ(rt.epoch(), 0u);
    EXPECT_EQ(rt.bump_epoch(), 1u);
    EXPECT_EQ(rt.bump_epoch(), 2u);
  }
  RuntimeOptions opts;
  opts.durability_dir = dir.path;
  Runtime rt2(opts);
  // Restart resumes the persisted epoch -- it does NOT advance it; only an
  // explicit takeover (bump_epoch) does. A restarted old primary therefore
  // still speaks its stale epoch until it learns better.
  EXPECT_EQ(rt2.epoch(), 2u);
}

TEST(CrashRecovery, StaleEpochWriterRejectedThenRejoins) {
  TempDir dir_a, dir_b;
  obs::Metrics ma, mb;

  // A: the new authority at epoch 2 (it took over twice).
  RuntimeOptions oa;
  oa.transport = Transport::kTcpMesh;
  oa.metrics = &ma;
  oa.durability_dir = dir_a.path;
  Runtime ra(oa);
  ra.bump_epoch();
  ra.bump_epoch();
  ra.add_instance(store_instance("g"));
  ASSERT_TRUE(ra.start(Symbol("g")).ok());

  // B: a restarted old primary still at epoch 1.
  RuntimeOptions ob;
  ob.transport = Transport::kTcpMesh;
  ob.metrics = &mb;
  ob.durability_dir = dir_b.path;
  ob.tcp.peers["a"] = TcpPeerAddr{"127.0.0.1", ra.tcp_transport()->port()};
  ob.tcp.remote_instances[Symbol("g")] = "a";
  Runtime rb(ob);
  rb.bump_epoch();
  ASSERT_EQ(rb.epoch(), 1u);

  // Reverse route so A's acks reach B.
  ra.tcp_transport()->add_peer(
      "b", TcpPeerAddr{"127.0.0.1", rb.tcp_transport()->port()});
  ra.tcp_transport()->map_instance(Symbol("test"), "b");

  // B's stale-epoch write is rejected -- this is the split-brain window the
  // epoch closes: the old primary cannot scribble on the new view. Retry
  // until the mesh link is up (first attempts may race the connect).
  Status st = make_error(Errc::kUnreachable, "not sent");
  ASSERT_TRUE(eventually([&] {
    st = push_value(rb, "g", "stale-write", /*with_work=*/false);
    return !st.ok() && st.error().code != Errc::kTimeout;
  }, 20s)) << (st.ok() ? "push unexpectedly succeeded" : "");
  EXPECT_NE(st.error().to_string().find("stale epoch"), std::string::npos)
      << st.error().to_string();
  const auto rejected = ma.counter("epoch_rejected").value();
  EXPECT_GE(rejected, 1u);

  // The nack carried A's epoch, so B has adopted it and rejoins cleanly.
  ASSERT_TRUE(eventually([&] { return rb.epoch() == 2u; }));
  EXPECT_GE(mb.counter("epoch_adopted").value(), 1u);
  auto ok = push_value(rb, "g", "rejoined");
  ASSERT_TRUE(ok.ok()) << ok.error().to_string();
  ASSERT_TRUE(eventually([&] { return read_value(ra, "g") == "rejoined"; }));
  // Every rejected frame is accounted for: the counter moved only for the
  // stale pushes, not the post-adoption ones.
  EXPECT_EQ(ma.counter("epoch_rejected").value(), rejected);
}

TEST(CrashRecovery, HeartbeatsDriveRemoteFailureDetection) {
  obs::Metrics ma, mb;

  RuntimeOptions oa;
  oa.transport = Transport::kTcpMesh;
  oa.metrics = &ma;
  oa.tcp.heartbeat_interval = Millis(20);
  oa.tcp.suspect_after_missed = 3;
  oa.tcp.node_name = "watcher";
  Runtime ra(oa);

  auto make_b = [&] {
    RuntimeOptions ob;
    ob.transport = Transport::kTcpMesh;
    ob.metrics = &mb;
    ob.tcp.heartbeat_interval = Millis(20);
    ob.tcp.node_name = "worker";
    ob.tcp.peers["a"] = TcpPeerAddr{"127.0.0.1", ra.tcp_transport()->port()};
    auto rb = std::make_unique<Runtime>(ob);
    rb->add_instance(store_instance("g"));
    EXPECT_TRUE(rb->start(Symbol("g")).ok());
    return rb;
  };

  // "g" is not hosted by A; with no heartbeats seen yet it reads as down.
  EXPECT_FALSE(ra.is_running(Symbol("g")));
  auto rb = make_b();
  // B's heartbeats advertise its running instances; A's detector marks "g"
  // alive -- the watched-failover S(i) guard now works across processes.
  ASSERT_TRUE(eventually([&] { return ra.is_running(Symbol("g")); }));
  EXPECT_GE(ma.counter("detector_heartbeats").value(), 1u);

  // Kill B: heartbeats stop, suspicion flips the verdict.
  rb.reset();
  ASSERT_TRUE(eventually([&] { return !ra.is_running(Symbol("g")); }));
  EXPECT_GE(ma.counter("detector_suspicions").value(), 1u);

  // Revive B: the detector recovers on the next heartbeat.
  rb = make_b();
  ASSERT_TRUE(eventually([&] { return ra.is_running(Symbol("g")); }));
  EXPECT_GE(ma.counter("detector_recoveries").value(), 1u);
}

}  // namespace
}  // namespace csaw
