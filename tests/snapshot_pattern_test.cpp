// Integration test of the Fig 4 remote-snapshot architecture: one-time and
// continuous snapshots (use-cases (2)/(3) of Fig 1), plus failure handling
// when the auditor is unreachable.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "apps/miniredis/store.hpp"
#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"
#include "core/topology.hpp"
#include "patterns/snapshot.hpp"

namespace csaw {
namespace {

struct ActState {
  miniredis::Store store{0};
  std::atomic<int> h1_runs{0};
  std::atomic<int> complaints{0};
};

struct AudState {
  std::vector<Bytes> snapshots;  // every state image received
  std::atomic<int> h2_runs{0};
};

struct Fixture {
  std::unique_ptr<Engine> engine;
  std::shared_ptr<ActState> act = std::make_shared<ActState>();
  std::shared_ptr<AudState> aud = std::make_shared<AudState>();

  explicit Fixture(std::int64_t timeout_ms = 300) {
    patterns::SnapshotOptions opts;
    opts.timeout_ms = timeout_ms;
    auto compiled = compile(patterns::remote_snapshot(opts));
    CSAW_CHECK(compiled.ok()) << compiled.error().to_string();

    HostBindings b;
    b.block("complain", [s = act](HostCtx&) {
      s->complaints.fetch_add(1);
      return Status::ok_status();
    });
    b.block("H1", [](HostCtx& ctx) {
      auto& st = ctx.state<ActState>();
      st.store.set("tick", std::to_string(st.h1_runs.fetch_add(1)));
      return Status::ok_status();
    });
    b.block("H2", [](HostCtx& ctx) {
      ctx.state<AudState>().h2_runs.fetch_add(1);
      return Status::ok_status();
    });
    b.saver("capture_state", [](HostCtx& ctx) -> Result<SerializedValue> {
      return SerializedValue{Symbol("store.image"),
                             ctx.state<ActState>().store.snapshot()};
    });
    b.restorer("ingest_state",
               [](HostCtx& ctx, const SerializedValue& sv) -> Status {
                 ctx.state<AudState>().snapshots.push_back(sv.bytes);
                 return Status::ok_status();
               });

    engine = std::make_unique<Engine>(std::move(compiled).value(), std::move(b));
    engine->set_state(Symbol("Act"), act);
    engine->set_state(Symbol("Aud"), aud);
    auto st = engine->run_main();
    CSAW_CHECK(st.ok()) << st.error().to_string();
  }
};

TEST(SnapshotPattern, OneTimeSnapshotReachesAuditor) {
  Fixture fx;
  ASSERT_TRUE(fx.engine->call("Act", "j",
                              Deadline::after(std::chrono::seconds(5))).ok());
  ASSERT_EQ(fx.aud->snapshots.size(), 1u);
  // The audited image decodes back into the application state.
  miniredis::Store replica(0);
  ASSERT_TRUE(replica.restore(fx.aud->snapshots[0]).ok());
  EXPECT_EQ(replica.get("tick"), "0");
  EXPECT_EQ(fx.act->complaints.load(), 0);
}

TEST(SnapshotPattern, ContinuousSnapshots) {
  Fixture fx;
  // Use-case (3): "repeatedly invoke Act and Aud during a single execution".
  constexpr int kRounds = 20;
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(fx.engine->call("Act", "j",
                                Deadline::after(std::chrono::seconds(5))).ok());
  }
  EXPECT_EQ(fx.aud->snapshots.size(), static_cast<std::size_t>(kRounds));
  EXPECT_EQ(fx.aud->h2_runs.load(), kRounds);
  // The last image reflects the latest state.
  miniredis::Store replica(0);
  ASSERT_TRUE(replica.restore(fx.aud->snapshots.back()).ok());
  EXPECT_EQ(replica.get("tick"), std::to_string(kRounds - 1));
}

TEST(SnapshotPattern, AuditorDownTriggersComplain) {
  Fixture fx(/*timeout_ms=*/150);
  ASSERT_TRUE(fx.engine->runtime().stop(Symbol("Aud")).ok());
  ASSERT_TRUE(fx.engine->call("Act", "j",
                              Deadline::after(std::chrono::seconds(5))).ok());
  // The write/assert to Aud nacks or times out; the otherwise branch runs.
  EXPECT_GE(fx.act->complaints.load(), 1);
  EXPECT_TRUE(fx.aud->snapshots.empty());
  const auto& stats = fx.engine->stats(addr("Act", "j"));
  EXPECT_EQ(stats.failures.load(), 0u);  // complain() handled the failure
}

TEST(SnapshotPattern, TopologyIsBidirectionalPair) {
  auto compiled = compile(patterns::remote_snapshot({}));
  ASSERT_TRUE(compiled.ok());
  const auto topo = derive_topology(*compiled);
  EXPECT_TRUE(topo.has_edge(addr("Act", "j"), addr("Aud", "j")));
  EXPECT_TRUE(topo.has_edge(addr("Aud", "j"), addr("Act", "j")));
  EXPECT_EQ(topo.edges.size(), 2u);
}

}  // namespace
}  // namespace csaw
