// Integration test of the S7.4 "watched" fail-over: a watchdog instance
// arbitrates which back-end serves; killing the preferred back-end o drives
// the system through Fig 15's orange states into serving from the spare s.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "apps/miniredis/command.hpp"
#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/interp.hpp"
#include "patterns/watched_failover.hpp"

namespace csaw {
namespace {

using miniredis::Mailbox;

struct FrontState {
  Mailbox<std::string> requests;
  Mailbox<std::string> responses;
  std::string current;
  std::string reply;
  std::atomic<int> complaints{0};
};

struct BackState {
  std::string current;
  std::string reply;
  std::atomic<int> served{0};
};

struct Fixture {
  std::unique_ptr<Engine> engine;
  std::shared_ptr<FrontState> front = std::make_shared<FrontState>();
  std::shared_ptr<BackState> back_o = std::make_shared<BackState>();
  std::shared_ptr<BackState> back_s = std::make_shared<BackState>();

  Fixture() {
    patterns::WatchedFailoverOptions opts;
    opts.timeout_ms = 300;
    auto compiled = compile(patterns::watched_failover(opts));
    CSAW_CHECK(compiled.ok()) << compiled.error().to_string();

    HostBindings b;
    b.block("complain", [fs = front](HostCtx&) {
      fs->complaints.fetch_add(1);
      return Status::ok_status();
    });
    b.block("H1", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<FrontState>();
      auto req = st.requests.peek(Deadline::after(std::chrono::seconds(1)));
      if (!req) return make_error(Errc::kHostFailure, "no request");
      st.current = std::move(*req);
      return Status::ok_status();
    });
    b.block("H2", [](HostCtx& ctx) {
      auto& st = ctx.state<BackState>();
      st.reply = ctx.instance().str() + ":" + st.current;
      st.served.fetch_add(1);
      return Status::ok_status();
    });
    b.block("H3", [](HostCtx& ctx) {
      auto& st = ctx.state<FrontState>();
      st.requests.try_pop();
      st.responses.push(st.reply);
      return Status::ok_status();
    });
    b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
      return sv_dyn(DynValue(ctx.state<FrontState>().current));
    });
    b.restorer("unpack_request",
               [](HostCtx& ctx, const SerializedValue& sv) -> Status {
                 auto v = dyn_sv(sv);
                 if (!v) return v.error();
                 ctx.state<BackState>().current = v->as_string();
                 return Status::ok_status();
               });
    b.saver("pack_reply", [](HostCtx& ctx) -> Result<SerializedValue> {
      return sv_dyn(DynValue(ctx.state<BackState>().reply));
    });
    b.restorer("unpack_reply",
               [](HostCtx& ctx, const SerializedValue& sv) -> Status {
                 auto v = dyn_sv(sv);
                 if (!v) return v.error();
                 ctx.state<FrontState>().reply = v->as_string();
                 return Status::ok_status();
               });

    EngineOptions eopts;
    eopts.trace = std::getenv("CSAW_TRACE") != nullptr;
    engine = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                      eopts);
    engine->set_state(Symbol("f"), front);
    engine->set_state(Symbol("o"), back_o);
    engine->set_state(Symbol("s"), back_s);
    auto st = engine->run_main();
    CSAW_CHECK(st.ok()) << st.error().to_string();
  }

  Result<std::string> request(const std::string& text, int timeout_s = 10) {
    front->requests.push(text);
    const auto give_up = Deadline::after(std::chrono::seconds(timeout_s));
    while (true) {
      auto st = engine->schedule("f", "j");
      if (!st.ok()) return st.error();
      auto resp = front->responses.pop(
          Deadline::after(std::chrono::seconds(2)).min(give_up));
      if (resp) return *resp;
      if (give_up.expired()) return make_error(Errc::kTimeout, "no reply");
    }
  }
};

TEST(WatchedFailover, NormalOperationPrefersReplier) {
  Fixture fx;
  for (int i = 0; i < 6; ++i) {
    auto r = fx.request("req" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    // With both back-ends alive the watchdog asserts neither flag; both run
    // the request and o's reply is taken (s only replies under fail-over).
    EXPECT_EQ(*r, "o:req" + std::to_string(i));
  }
  EXPECT_GT(fx.back_o->served.load(), 0);
}

TEST(WatchedFailover, SpareTakesOverWhenPrimaryDies) {
  Fixture fx;
  auto r1 = fx.request("before");
  ASSERT_TRUE(r1.ok()) << r1.error().to_string();
  EXPECT_EQ(*r1, "o:before");

  fx.engine->crash("o");
  // Give the watchdog a moment to notice !S(o) and assert failover at s & f.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  auto r2 = fx.request("after", 15);
  ASSERT_TRUE(r2.ok()) << r2.error().to_string();
  EXPECT_EQ(*r2, "s:after");
  EXPECT_GT(fx.back_s->served.load(), 0);
}

}  // namespace
}  // namespace csaw
