// Tests for the application substrates: miniredis, minicurl, minisuricata.
#include <gtest/gtest.h>

#include <set>

#include "apps/minicurl/transfer.hpp"
#include "apps/miniredis/store.hpp"
#include "apps/miniredis/workload.hpp"
#include "apps/minisuricata/packet.hpp"
#include "apps/minisuricata/pipeline.hpp"

namespace csaw {
namespace {

// --- miniredis -----------------------------------------------------------------

TEST(MiniRedis, GetSetDelAndStats) {
  miniredis::Store store(0);
  EXPECT_FALSE(store.get("a").has_value());
  store.set("a", "1");
  store.set("b", "2");
  EXPECT_EQ(store.get("a"), "1");
  EXPECT_TRUE(store.del("a"));
  EXPECT_FALSE(store.del("a"));
  EXPECT_FALSE(store.get("a").has_value());
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().sets, 2u);
  EXPECT_EQ(store.stats().hits, 1u);
  EXPECT_EQ(store.stats().misses, 2u);
  EXPECT_EQ(store.object_size("b"), 1u);
  EXPECT_EQ(store.object_size("zz"), 0u);
}

TEST(MiniRedis, SnapshotRestoreRoundtrip) {
  miniredis::Store store(0);
  for (int i = 0; i < 100; ++i) {
    store.set("k" + std::to_string(i), std::string(static_cast<size_t>(i), 'x'));
  }
  const auto image = store.snapshot();
  miniredis::Store replica(0);
  ASSERT_TRUE(replica.restore(image).ok());
  EXPECT_EQ(replica.size(), 100u);
  EXPECT_EQ(replica.get("k7"), std::string(7, 'x'));
  // Malformed image rejected.
  Bytes garbage{0xff, 0xff, 0xff};
  EXPECT_FALSE(replica.restore(garbage).ok());
}

TEST(MiniRedisWorkload, UniformCoversKeyspace) {
  miniredis::WorkloadOptions opts;
  opts.keyspace = 50;
  opts.get_fraction = 0.5;
  miniredis::Workload w(opts, 1);
  std::set<std::string> keys;
  int gets = 0;
  for (int i = 0; i < 5000; ++i) {
    auto c = w.next();
    keys.insert(c.key);
    if (c.op == miniredis::Command::Op::kGet) ++gets;
  }
  EXPECT_EQ(keys.size(), 50u);
  EXPECT_NEAR(gets / 5000.0, 0.5, 0.05);
}

TEST(MiniRedisWorkload, Skewed90_10) {
  miniredis::WorkloadOptions opts;
  opts.keyspace = 1000;
  opts.popularity = miniredis::WorkloadOptions::Popularity::kSkewed90_10;
  miniredis::Workload w(opts, 2);
  int hot = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    auto c = w.next();
    const auto idx = std::stoull(c.key.substr(4));
    if (idx < 100) ++hot;
  }
  EXPECT_NEAR(hot / static_cast<double>(kN), 0.9, 0.02);
}

TEST(MiniRedisWorkload, WeightedSlices) {
  // The paper's uneven sharding workload: pressure ratio ~4:3:2:1.
  miniredis::WorkloadOptions opts;
  opts.keyspace = 4000;
  opts.popularity = miniredis::WorkloadOptions::Popularity::kWeighted;
  opts.slice_weights = {4, 3, 2, 1};
  miniredis::Workload w(opts, 3);
  std::vector<int> counts(4, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    ++counts[w.slice_of_key(w.next().key)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(counts[3]), 4.0, 0.5);
  EXPECT_NEAR(counts[1] / static_cast<double>(counts[3]), 3.0, 0.4);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[3]), 2.0, 0.3);
}

TEST(MiniRedisWorkload, SizeClasses) {
  miniredis::WorkloadOptions opts;
  opts.keyspace = 100;
  opts.get_fraction = 0.0;  // all SETs
  opts.size_classes = {64, 4096, 65536};
  opts.size_class_mass = {0.7, 0.2, 0.1};
  miniredis::Workload w(opts, 4);
  std::map<std::size_t, int> seen;
  for (int i = 0; i < 5000; ++i) ++seen[w.next().value.size()];
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_NEAR(seen[64] / 5000.0, 0.7, 0.05);
  EXPECT_NEAR(seen[65536] / 5000.0, 0.1, 0.03);
}

// --- minicurl -----------------------------------------------------------------

TEST(MiniCurl, TransferTimeScalesWithSize) {
  minicurl::TransferOptions opts;
  opts.time_scale = 2000.0;
  minicurl::Client client(opts);
  auto t1 = client.download("u", 1 << 20);   // 1 MB
  auto t4 = client.download("u", 4 << 20);   // 4 MB
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t4.ok());
  // 4x the bytes ~= 4x the (simulated) time, within scheduling noise.
  EXPECT_GT(*t4, *t1 * 2.0);
  // 1 MB over 1GbE ~ 8.4 ms simulated.
  EXPECT_GT(*t1, 2.0);
  EXPECT_LT(*t1, 80.0);
}

TEST(MiniCurl, ProgressHookFiresAndCanAbort) {
  minicurl::TransferOptions opts;
  opts.time_scale = 5000.0;
  opts.chunk_bytes = 64 * 1024;
  opts.progress_every = 4;
  minicurl::Client client(opts);
  int calls = 0;
  std::uint64_t last = 0;
  auto t = client.download("u", 1 << 20, [&](const minicurl::Progress& p) {
    ++calls;
    EXPECT_GT(p.transferred, last);
    last = p.transferred;
    EXPECT_EQ(p.total_bytes, 1u << 20);
    return Status::ok_status();
  });
  ASSERT_TRUE(t.ok());
  EXPECT_GE(calls, 4);  // 16 chunks / every-4 = 4 calls
  EXPECT_EQ(last, 1u << 20);

  // A failing hook aborts the transfer (like a cURL write callback).
  auto aborted = client.download("u", 1 << 20, [](const minicurl::Progress&) {
    return Status(make_error(Errc::kHostFailure, "abort"));
  });
  EXPECT_FALSE(aborted.ok());
}

// --- minisuricata ---------------------------------------------------------------

TEST(MiniSuricata, FlowGeneratorProducesManyFlows) {
  minisuricata::FlowGenerator gen({}, 5);
  std::set<std::uint64_t> flows;
  for (int i = 0; i < 20000; ++i) flows.insert(gen.next().tuple.hash());
  // Churning concurrent flows: far more distinct flows than the live set.
  EXPECT_GT(flows.size(), 200u);
}

TEST(MiniSuricata, FiveTupleHashSpreadsOverShards) {
  minisuricata::FlowGenerator gen({}, 6);
  std::vector<int> counts(4, 0);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    ++counts[gen.next().tuple.hash() % 4];
  }
  for (int c : counts) {
    EXPECT_NEAR(c / static_cast<double>(kN), 0.25, 0.08);
  }
}

TEST(MiniSuricata, SameFlowAlwaysSameShard) {
  minisuricata::FiveTuple t{0x0a000001, 0x0a000002, 1234, 443, 6};
  const auto h = t.hash();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(t.hash(), h);
  minisuricata::FiveTuple t2 = t;
  t2.src_port = 1235;
  EXPECT_NE(t2.hash(), h);
}

TEST(MiniSuricata, PipelineTracksFlowsAndCheckpoints) {
  minisuricata::Pipeline pipe(0);
  minisuricata::FlowGenerator gen({}, 7);
  for (int i = 0; i < 5000; ++i) pipe.process(gen.next());
  EXPECT_EQ(pipe.stats().packets, 5000u);
  EXPECT_GT(pipe.flow_count(), 50u);
  const auto image = pipe.snapshot();

  minisuricata::Pipeline replica(0);
  ASSERT_TRUE(replica.restore(image).ok());
  EXPECT_EQ(replica.flow_count(), pipe.flow_count());
  EXPECT_EQ(replica.stats().packets, 5000u);

  pipe.clear();
  EXPECT_EQ(pipe.flow_count(), 0u);
  EXPECT_EQ(pipe.stats().packets, 0u);
}

}  // namespace
}  // namespace csaw
