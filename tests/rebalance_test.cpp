// Dynamic membership + live bucket handoff (RebalancedService over
// patterns/rebalance): versioned bucket routing, kWrongOwner nack/retry
// with a bounded client-observed routing-error window, live handoff under
// concurrent writers, the crash matrix (donor down, receiver down,
// partition-then-heal), abort purge (no key resurrection), double-rebalance
// idempotence, journaled flips surviving restart, and the acceptance story:
// scale-out 2 -> 8 shards mid-workload with zero lost acknowledged writes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "apps/miniredis/services.hpp"
#include "compart/membership.hpp"
#include "support/io.hpp"

namespace csaw {
namespace {

using namespace std::chrono_literals;
using miniredis::Command;
using miniredis::RebalancedService;

Command set_cmd(const std::string& k, const std::string& v) {
  Command c;
  c.op = Command::Op::kSet;
  c.key = k;
  c.value = v;
  return c;
}

Command get_cmd(const std::string& k) {
  Command c;
  c.op = Command::Op::kGet;
  c.key = k;
  return c;
}

Command del_cmd(const std::string& k) {
  Command c;
  c.op = Command::Op::kDel;
  c.key = k;
  return c;
}

RebalancedService::Options fast_options(std::size_t shards = 2) {
  RebalancedService::Options o;
  o.shards = shards;
  o.buckets = 16;
  o.op_cost_ns = 0;
  o.timeout_ms = 500;  // fail fast when an owner is down
  o.max_retries = 12;
  o.backoff_initial = 200us;
  o.backoff_max = 5ms;
  return o;
}

struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/csaw_rebalance_test_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    std::string cmd = "rm -rf '" + path + "'";
    (void)std::system(cmd.c_str());
  }
};

// Seeds `n` keys and returns them grouped by bucket (the same djb2-mod the
// router uses), so tests can pick a populated bucket to move.
std::unordered_map<std::size_t, std::vector<std::string>> seed_keys(
    RebalancedService& svc, int n, std::size_t buckets,
    const std::string& prefix = "k") {
  std::unordered_map<std::size_t, std::vector<std::string>> by_bucket;
  for (int i = 0; i < n; ++i) {
    const std::string key = prefix + std::to_string(i);
    auto r = svc.request(set_cmd(key, "v" + std::to_string(i)));
    EXPECT_TRUE(r.ok()) << r.error().to_string();
    by_bucket[BucketMap::bucket_of(key, buckets)].push_back(key);
  }
  return by_bucket;
}

void expect_all_readable(RebalancedService& svc, int n,
                         const std::string& prefix = "k") {
  for (int i = 0; i < n; ++i) {
    auto r = svc.request(get_cmd(prefix + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_TRUE(r->found) << prefix << i;
    EXPECT_EQ(r->value, "v" + std::to_string(i));
  }
}

// First bucket owned by shard `i` that holds at least one seeded key.
std::size_t populated_bucket_of(
    RebalancedService& svc, std::size_t i,
    const std::unordered_map<std::size_t, std::vector<std::string>>& keys) {
  for (std::size_t b : svc.owned_buckets(i)) {
    auto it = keys.find(b);
    if (it != keys.end() && !it->second.empty()) return b;
  }
  ADD_FAILURE() << "shard " << i << " owns no populated bucket";
  return 0;
}

// --- membership primitives -------------------------------------------------

TEST(BucketMapUnit, EvenSpreadIsBalancedAndTotal) {
  const std::vector<std::string> owners = {"Shd1", "Shd2", "Shd3"};
  const auto m = BucketMap::even(7, owners, 16);
  EXPECT_EQ(m.version, 7u);
  ASSERT_EQ(m.buckets(), 16u);
  std::unordered_map<std::string, int> per_owner;
  for (const auto& o : m.owners) per_owner[o]++;
  ASSERT_EQ(per_owner.size(), owners.size());
  for (const auto& [o, n] : per_owner) {
    EXPECT_GE(n, 5) << o;  // 16 over 3: 6/5/5
    EXPECT_LE(n, 6) << o;
  }
  // Every key routes somewhere, deterministically.
  for (int i = 0; i < 64; ++i) {
    const std::string key = "key" + std::to_string(i);
    const std::size_t b = m.bucket_of(key);
    EXPECT_LT(b, 16u);
    EXPECT_EQ(b, BucketMap::bucket_of(key, 16));
    EXPECT_EQ(m.owner_of(key), m.owners[b]);
  }
  // buckets_of partitions the bucket space.
  std::size_t total = 0;
  for (const auto& o : owners) total += m.buckets_of(o).size();
  EXPECT_EQ(total, 16u);
}

TEST(BucketMapUnit, CodecRoundTripsAndRejectsGarbage) {
  const auto m = BucketMap::even(42, {"a", "b"}, 8);
  auto decoded = BucketMap::decode(m.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded->version, 42u);
  EXPECT_EQ(decoded->owners, m.owners);
  EXPECT_FALSE(BucketMap::decode(Bytes{0xde, 0xad, 0xbe, 0xef}).ok());
}

TEST(RoutingTableUnit, AdoptsOnlyStrictlyNewerMaps) {
  RoutingTable rt(BucketMap::even(3, {"a", "b"}, 4));
  EXPECT_EQ(rt.version(), 3u);
  // Stale and same-version maps are fenced out...
  EXPECT_FALSE(rt.adopt(BucketMap::even(2, {"c"}, 4)));
  EXPECT_FALSE(rt.adopt(BucketMap::even(3, {"c"}, 4)));
  EXPECT_EQ(rt.owner_of_bucket(0), "a");
  // ...a newer one is adopted, and install is the authority's override.
  EXPECT_TRUE(rt.adopt(BucketMap::even(4, {"c"}, 4)));
  EXPECT_EQ(rt.owner_of_bucket(0), "c");
  rt.install(BucketMap::even(9, {"d"}, 4));
  EXPECT_EQ(rt.version(), 9u);
}

// --- serving and live handoff ----------------------------------------------

TEST(Rebalance, ServesAcrossShardsAndRoutesEveryBucket) {
  RebalancedService svc(fast_options());
  EXPECT_EQ(svc.name(), "rebalanced");
  EXPECT_EQ(svc.shard_count(), 2u);
  EXPECT_GE(svc.routing_version(), 1u);
  seed_keys(svc, 32, 16);
  expect_all_readable(svc, 32);
  auto miss = svc.request(get_cmd("absent"));
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->found);
  ASSERT_TRUE(svc.request(del_cmd("k3")).ok());
  auto gone = svc.request(get_cmd("k3"));
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(gone->found);
  // Ownership partitions the full bucket space between the two shards.
  EXPECT_EQ(svc.owned_buckets(0).size() + svc.owned_buckets(1).size(), 16u);
}

TEST(Rebalance, HandoffMovesBucketAndBoundsTheRoutingErrorWindow) {
  RebalancedService svc(fast_options());
  const auto keys = seed_keys(svc, 64, 16);
  const std::size_t bucket = populated_bucket_of(svc, 0, keys);
  const std::uint64_t v0 = svc.routing_version();

  ASSERT_TRUE(svc.handoff(bucket, 1).ok());
  EXPECT_EQ(svc.handoffs_completed(), 1u);
  EXPECT_EQ(svc.handoffs_aborted(), 0u);
  EXPECT_GT(svc.routing_version(), v0);

  // The moved bucket now belongs to shard 1 (and to it alone).
  const auto owned = svc.owned_buckets(1);
  EXPECT_NE(std::find(owned.begin(), owned.end(), bucket), owned.end());

  // Every key is still readable -- including the moved ones, whose first
  // read after the flip hits the stale client view, gets the kWrongOwner
  // nack with the new routing version, and retries against the refreshed
  // table. That retry episode is the routing-error window.
  expect_all_readable(svc, 64);
  EXPECT_GE(svc.wrong_owner_nacks(), 1u);
  EXPECT_GE(svc.client_retries(), 1u);
  const auto windows = svc.routing_error_windows();
  ASSERT_FALSE(windows.empty());
  for (const auto w : windows) {
    EXPECT_GT(w, Nanos(0));
    EXPECT_LT(w, Nanos(2s)) << "routing-error window unbounded";
  }
}

TEST(Rebalance, ConcurrentWritesDuringHandoffAreNeverLost) {
  auto opts = fast_options();
  opts.chunk_keys = 1;  // many chunks => a long streaming phase to race
  RebalancedService svc(opts);
  const auto keys = seed_keys(svc, 128, 16);
  const std::size_t bucket = populated_bucket_of(svc, 0, keys);

  // A writer hammers counters at keys inside the moving bucket (so every
  // write lands in the delta log or the drain tail) while the handoff
  // streams. `acked[key]` is the last value whose response we saw.
  std::atomic<bool> stop{false};
  std::mutex acked_mu;
  std::unordered_map<std::string, int> acked;
  const auto& bucket_keys = keys.at(bucket);
  std::thread writer([&] {
    int n = 0;
    while (!stop.load()) {
      const std::string& key = bucket_keys[n % bucket_keys.size()];
      ++n;
      if (svc.request(set_cmd(key, "c" + std::to_string(n))).ok()) {
        std::scoped_lock lock(acked_mu);
        acked[key] = n;
      }
    }
  });

  ASSERT_TRUE(svc.handoff(bucket, 1).ok());
  stop.store(true);
  writer.join();

  // No acked write may be lost: each key reads back at least its last
  // acked counter (a later in-doubt write may have applied -- at-least-once
  // is fine, regression is not).
  std::scoped_lock lock(acked_mu);
  EXPECT_FALSE(acked.empty()) << "writer never got a single ack";
  for (const auto& [key, n] : acked) {
    auto r = svc.request(get_cmd(key));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    ASSERT_TRUE(r->found) << key << " lost after handoff";
    ASSERT_EQ(r->value.rfind("c", 0), 0u);
    EXPECT_GE(std::atoi(r->value.c_str() + 1), n)
        << key << " regressed past its acked write";
  }
}

// --- the crash matrix ------------------------------------------------------

TEST(Rebalance, DonorCrashAbortsHandoffAndRetryAfterRestartSucceeds) {
  RebalancedService svc(fast_options());
  const auto keys = seed_keys(svc, 64, 16);
  const std::size_t bucket = populated_bucket_of(svc, 0, keys);
  const std::uint64_t v0 = svc.routing_version();

  ASSERT_TRUE(svc.crash_shard(0).ok());
  auto st = svc.handoff(bucket, 1);
  EXPECT_FALSE(st.ok());
  EXPECT_GE(svc.handoffs_aborted(), 1u);
  // Ownership never flipped: the bucket still routes to the (dead) donor.
  EXPECT_EQ(svc.routing_version(), v0);

  ASSERT_TRUE(svc.restart_shard(0).ok());
  ASSERT_TRUE(svc.handoff(bucket, 1).ok());
  EXPECT_GT(svc.routing_version(), v0);
  expect_all_readable(svc, 64);
}

TEST(Rebalance, ReceiverCrashAbortsHandoffWithoutFlippingOwnership) {
  RebalancedService svc(fast_options());
  const auto keys = seed_keys(svc, 64, 16);
  const std::size_t bucket = populated_bucket_of(svc, 0, keys);
  const std::uint64_t v0 = svc.routing_version();

  ASSERT_TRUE(svc.crash_shard(1).ok());
  EXPECT_FALSE(svc.handoff(bucket, 1).ok());
  EXPECT_GE(svc.handoffs_aborted(), 1u);
  EXPECT_EQ(svc.routing_version(), v0);
  EXPECT_EQ(svc.handoffs_completed(), 0u);

  ASSERT_TRUE(svc.restart_shard(1).ok());
  ASSERT_TRUE(svc.handoff(bucket, 1).ok());
  expect_all_readable(svc, 64);
}

TEST(Rebalance, MidStreamReceiverCrashNeverResurrectsDeletedKeys) {
  // A receiver crash after some chunks already shipped leaves a partial
  // bucket copy behind; the abort must purge it, or a key deleted at the
  // donor before the retry would come back from the dead.
  auto opts = fast_options();
  opts.chunk_keys = 1;  // hundreds of chunks => the crash lands mid-stream
  RebalancedService svc(opts);
  const auto keys = seed_keys(svc, 600, 16);
  const std::size_t bucket = populated_bucket_of(svc, 0, keys);
  const auto& bucket_keys = keys.at(bucket);
  ASSERT_GE(bucket_keys.size(), 8u);

  std::thread killer([&] {
    std::this_thread::sleep_for(3ms);
    (void)svc.crash_shard(1);
  });
  auto st = svc.handoff(bucket, 1);
  killer.join();
  ASSERT_TRUE(svc.restart_shard(1).ok());

  if (st.ok()) {
    // The crash landed after the flip; nothing mid-stream to verify, the
    // handoff is simply done and the data intact.
    expect_all_readable(svc, 600);
    return;
  }
  EXPECT_GE(svc.handoffs_aborted(), 1u);

  // Delete a spread of the bucket's keys at the donor (still the owner),
  // then retry the handoff. If the purge on abort were missing, the
  // receiver's partial copy would resurrect whichever of them had already
  // shipped before the crash.
  std::vector<std::string> deleted;
  for (std::size_t i = 0; i < bucket_keys.size(); i += 2) {
    deleted.push_back(bucket_keys[i]);
    ASSERT_TRUE(svc.request(del_cmd(bucket_keys[i])).ok());
  }
  ASSERT_TRUE(svc.handoff(bucket, 1).ok());
  for (const auto& key : deleted) {
    auto r = svc.request(get_cmd(key));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_FALSE(r->found) << key << " resurrected by the aborted stream";
  }
  // The surviving keys made the trip.
  for (std::size_t i = 1; i < bucket_keys.size(); i += 2) {
    auto r = svc.request(get_cmd(bucket_keys[i]));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found) << bucket_keys[i];
  }
}

TEST(Rebalance, PartitionAbortsHandoffAndHealedRetrySucceeds) {
  RebalancedService svc(fast_options());
  const auto keys = seed_keys(svc, 64, 16);
  const std::size_t bucket = populated_bucket_of(svc, 0, keys);
  const std::uint64_t v0 = svc.routing_version();

  // Cut the mover off from the receiver: chunks cannot be acknowledged, so
  // the handoff must abort rather than flip ownership over unshipped data.
  svc.runtime().router().set_partition(Symbol("Mov"), Symbol("Shd2"), true);
  EXPECT_FALSE(svc.handoff(bucket, 1).ok());
  EXPECT_GE(svc.handoffs_aborted(), 1u);
  EXPECT_EQ(svc.routing_version(), v0);

  svc.runtime().router().set_partition(Symbol("Mov"), Symbol("Shd2"), false);
  ASSERT_TRUE(svc.handoff(bucket, 1).ok());
  EXPECT_GT(svc.routing_version(), v0);
  expect_all_readable(svc, 64);
}

TEST(Rebalance, DoubleRebalanceIsIdempotent) {
  RebalancedService svc(fast_options());
  seed_keys(svc, 64, 16);
  ASSERT_TRUE(svc.add_shard().ok());
  ASSERT_TRUE(svc.add_shard().ok());
  EXPECT_EQ(svc.shard_count(), 4u);

  ASSERT_TRUE(svc.rebalance().ok());
  const std::uint64_t v = svc.routing_version();
  const std::uint64_t done = svc.handoffs_completed();
  EXPECT_GT(done, 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(svc.owned_buckets(i).size(), 4u) << "shard " << i;
  }

  // Already balanced: a second rebalance is a pure no-op -- no handoffs, no
  // version churn, no data movement.
  ASSERT_TRUE(svc.rebalance().ok());
  EXPECT_EQ(svc.routing_version(), v);
  EXPECT_EQ(svc.handoffs_completed(), done);
  expect_all_readable(svc, 64);
}

// --- the acceptance story: scale-out mid-workload --------------------------

TEST(Rebalance, ScaleOutTwoToEightMidWorkloadLosesNoAckedWrite) {
  RebalancedService svc(fast_options());
  seed_keys(svc, 64, 16);

  // Four writers with disjoint key spaces push monotone counters while the
  // control plane grows the cluster 2 -> 8 and rebalances after each join.
  // Each writer records the last counter that was ACKNOWLEDGED per key.
  constexpr int kWriters = 4;
  std::atomic<bool> stop{false};
  std::mutex acked_mu;
  std::unordered_map<std::string, int> acked;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      int n = 0;
      while (!stop.load()) {
        ++n;
        const std::string key =
            "w" + std::to_string(w) + "-k" + std::to_string(n % 32);
        if (svc.request(set_cmd(key, "c" + std::to_string(n))).ok()) {
          std::scoped_lock lock(acked_mu);
          acked[key] = n;
        }
      }
    });
  }

  for (int join = 0; join < 6; ++join) {
    ASSERT_TRUE(svc.add_shard().ok());
    ASSERT_TRUE(svc.rebalance().ok()) << "rebalance after join " << join;
    std::this_thread::sleep_for(2ms);  // let the workload breathe mid-grow
  }
  stop.store(true);
  for (auto& t : writers) t.join();

  EXPECT_EQ(svc.shard_count(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(svc.owned_buckets(i).size(), 2u) << "shard " << i;
  }

  // Zero lost acked writes: every acknowledged key reads back at least its
  // last acked counter.
  std::scoped_lock lock(acked_mu);
  EXPECT_FALSE(acked.empty());
  for (const auto& [key, n] : acked) {
    auto r = svc.request(get_cmd(key));
    ASSERT_TRUE(r.ok()) << key << ": " << r.error().to_string();
    ASSERT_TRUE(r->found) << key << " lost during scale-out";
    EXPECT_GE(std::atoi(r->value.c_str() + 1), n) << key << " regressed";
  }

  // The routing-error window stayed bounded for every retry episode the
  // writers hit across six ownership flips.
  const auto windows = svc.routing_error_windows();
  for (const auto w : windows) {
    EXPECT_LT(w, Nanos(2s)) << "routing-error window unbounded";
  }
  expect_all_readable(svc, 64);  // the seeded keys all survived too
}

// --- journaled recovery across restart -------------------------------------

TEST(Rebalance, JournaledFlipAndMembershipSurviveRestart) {
  TempDir dir;
  std::uint64_t version = 0;
  std::size_t moved_bucket = 0;
  {
    auto opts = fast_options();
    opts.journal_dir = dir.path;
    RebalancedService svc(opts);
    const auto keys = seed_keys(svc, 32, 16);
    ASSERT_TRUE(svc.add_shard().ok());
    moved_bucket = populated_bucket_of(svc, 0, keys);
    ASSERT_TRUE(svc.handoff(moved_bucket, 2).ok());
    version = svc.routing_version();
  }
  // A new incarnation over the same journal dir restores the persisted
  // routing map: same version, same owner for the moved bucket, and the
  // membership grown to cover every owner the map names (the third shard
  // exists even though Options still says two).
  auto opts = fast_options();
  opts.journal_dir = dir.path;
  RebalancedService svc(opts);
  EXPECT_EQ(svc.shard_count(), 3u);
  EXPECT_EQ(svc.routing_version(), version);
  const auto owned = svc.owned_buckets(2);
  EXPECT_NE(std::find(owned.begin(), owned.end(), moved_bucket), owned.end());
  // The restored shard serves its bucket (stores are volatile; routing and
  // membership are what persist).
  const std::string key = "restart-probe";
  ASSERT_TRUE(svc.request(set_cmd(key, "v")).ok());
  auto r = svc.request(get_cmd(key));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(r->found);
}

}  // namespace
}  // namespace csaw
