// Distributed trace collection: JSON parse/merge round trips, the Perfetto
// writer + checker (causal order across a 3-instance push chain), and the
// live TraceShipper -> TraceCollector socket path.
#include "obs/collect.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "compart/runtime.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace csaw {
namespace {

using obs::TraceDoc;
using obs::TraceEvent;

const Symbol kWork("Work");
const Symbol kJ("j");

// a --push--> b --push--> c. b and c are auto junctions guarded on Work;
// each body lowers its own flag, and b forwards the work to c.
InstanceDesc relay_instance(std::string_view name, Symbol next) {
  JunctionDesc j;
  j.name = kJ;
  j.table_spec.props = {{kWork, false}};
  j.guard = [](const KvTable& t, const RuntimeView&) { return *t.prop(kWork); };
  j.body = [next](JunctionEnv& env) {
    (void)env.table().set_prop_local(kWork, false);
    if (next.valid()) {
      (void)env.push({.to = {next, kJ},
                      .update = Update::assert_prop(kWork),
                      .deadline = Deadline::after(std::chrono::seconds(5))});
    }
  };
  j.auto_schedule = true;
  InstanceDesc d;
  d.name = Symbol(name);
  d.type = Symbol("relay");
  d.junctions.push_back(std::move(j));
  return d;
}

// Runs the 3-instance chain once and returns the drained trace.
std::vector<TraceEvent> run_chain(obs::Tracer& tracer) {
  RuntimeOptions opts;
  opts.trace_sink = &tracer;
  Runtime rt(opts);
  rt.add_instance(relay_instance("a", Symbol("b")));
  rt.add_instance(relay_instance("b", Symbol("c")));
  rt.add_instance(relay_instance("c", Symbol()));
  for (const char* n : {"a", "b", "c"}) {
    EXPECT_TRUE(rt.start(Symbol(n)).ok());
  }
  EXPECT_TRUE(rt.push({.to = {Symbol("a"), kJ},
                       .update = Update::assert_prop(kWork),
                       .deadline = Deadline::after(std::chrono::seconds(5)),
                       .from = Symbol("driver")})
                  .ok());
  // The chain is done once c has run; b's push blocks on c's ack, and a's
  // push on b's, so polling c is enough.
  const auto deadline = steady_now() + std::chrono::seconds(10);
  while (rt.runs_completed(Symbol("c"), kJ) < 1 && steady_now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(rt.runs_completed(Symbol("c"), kJ), 1u);
  rt.shutdown();
  return tracer.drain();
}

// Splits a drained trace into per-instance documents, round-tripping each
// through its JSON file form -- exactly what a multi-process deployment
// produces (one --trace-out file per process) and csaw-trace consumes.
std::vector<TraceDoc> per_instance_docs(const std::vector<TraceEvent>& events,
                                        SteadyTime epoch) {
  // The driver's own push events land in "a"'s file: the driver lives in
  // the same process as the instance it pokes.
  std::vector<Symbol> names = {Symbol("a"), Symbol("b"), Symbol("c")};
  auto doc_of = [&](Symbol instance) {
    return instance == Symbol("driver") ? Symbol("a") : instance;
  };
  std::vector<TraceDoc> docs;
  for (const Symbol name : names) {
    std::vector<TraceEvent> mine;
    for (const TraceEvent& e : events) {
      if (doc_of(e.instance) == name) mine.push_back(e);
    }
    std::ostringstream os;
    obs::write_trace_json(os, mine, epoch, 0, {}, nullptr);
    auto doc = obs::parse_trace_json(os.str());
    EXPECT_TRUE(doc.ok()) << doc.error().to_string();
    docs.push_back(*std::move(doc));
  }
  return docs;
}

TEST(TraceJson, ParseRejectsGarbage) {
  EXPECT_FALSE(obs::parse_trace_json("not json").ok());
  EXPECT_FALSE(obs::parse_trace_json("{\"events\": [").ok());
  EXPECT_FALSE(obs::parse_trace_json("[1,2,3]").ok());
  EXPECT_FALSE(obs::parse_trace_json("{\"events\": 7}").ok());
}

TEST(TraceJson, ParsePreservesFullPrecisionIds) {
  // 64-bit ids must not go through a double; check a value above 2^53.
  const std::string text =
      "{\"dropped\": 3, \"events\": [{\"t_us\": 1.5, \"kind\": \"push_sent\","
      " \"instance\": \"a\", \"junction\": \"j\", \"peer\": \"b\","
      " \"label\": \"\", \"seq\": 9, \"value_ns\": 100,"
      " \"trace_id\": 18446744073709551615, \"span_id\": 9007199254740995,"
      " \"parent_span\": 0, \"hlc_us\": 1700000000000001, \"hlc_lc\": 2}]}";
  auto doc = obs::parse_trace_json(text);
  ASSERT_TRUE(doc.ok()) << doc.error().to_string();
  EXPECT_EQ(doc->dropped, 3u);
  ASSERT_EQ(doc->events.size(), 1u);
  const TraceEvent& e = doc->events[0];
  EXPECT_EQ(e.kind, TraceEvent::Kind::kPushSent);
  EXPECT_EQ(e.trace_id, 18446744073709551615ull);
  EXPECT_EQ(e.span_id, 9007199254740995ull);
  EXPECT_EQ(e.instance, Symbol("a"));
  EXPECT_EQ(e.peer, Symbol("b"));
  EXPECT_EQ(e.hlc.physical_us, 1700000000000001ull);
  EXPECT_EQ(e.hlc.logical, 2u);
}

TEST(TraceJson, ExportParseRoundTrip) {
  obs::Tracer tracer;
  const auto events = run_chain(tracer);
  ASSERT_FALSE(events.empty());

  std::ostringstream os;
  obs::write_trace_json(os, events, SteadyTime{}, 0, {}, nullptr);
  auto doc = obs::parse_trace_json(os.str());
  ASSERT_TRUE(doc.ok()) << doc.error().to_string();
  ASSERT_EQ(doc->events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(doc->events[i].kind, events[i].kind) << i;
    EXPECT_EQ(doc->events[i].instance, events[i].instance) << i;
    EXPECT_EQ(doc->events[i].span_id, events[i].span_id) << i;
    EXPECT_EQ(doc->events[i].parent_span, events[i].parent_span) << i;
    EXPECT_EQ(doc->events[i].hlc, events[i].hlc) << i;
  }
}

TEST(TraceJson, MergeOrdersOldHlcFreeDocsAfterHlcDocs) {
  // An old-format file (no hlc_* fields) merges without error; its events
  // keep relative order and sort after the HLC-stamped ones.
  auto old_doc = obs::parse_trace_json(
      "{\"events\": ["
      "{\"t_us\": 2.0, \"kind\": \"custom\", \"instance\": \"old\"},"
      "{\"t_us\": 5.0, \"kind\": \"custom\", \"instance\": \"old\"}]}");
  ASSERT_TRUE(old_doc.ok()) << old_doc.error().to_string();
  auto new_doc = obs::parse_trace_json(
      "{\"events\": [{\"t_us\": 0.5, \"kind\": \"custom\","
      " \"instance\": \"new\", \"hlc_us\": 1000, \"hlc_lc\": 0}]}");
  ASSERT_TRUE(new_doc.ok());
  const auto merged = obs::merge_events({*old_doc, *new_doc});
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].instance, Symbol("new"));
  EXPECT_EQ(merged[1].instance, Symbol("old"));
  EXPECT_LT(merged[1].at, merged[2].at);
}

TEST(TracePerfetto, ThreeInstanceChainMergesCausally) {
  obs::Tracer tracer;
  const SteadyTime epoch = tracer.epoch();
  const auto events = run_chain(tracer);

  // The causal chain must be present in the raw trace: b's run caused by
  // a's push, c's run caused by b's push, all in one trace.
  const TraceEvent* push_ab = nullptr;
  const TraceEvent* push_bc = nullptr;
  const TraceEvent* ran_b = nullptr;
  const TraceEvent* ran_c = nullptr;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kPushSent) {
      if (e.instance == Symbol("a") && e.peer == Symbol("b")) push_ab = &e;
      if (e.instance == Symbol("b") && e.peer == Symbol("c")) push_bc = &e;
    }
    if (e.kind == TraceEvent::Kind::kJunctionRan) {
      // First run only: a later idle re-run would root a fresh trace.
      if (e.instance == Symbol("b") && ran_b == nullptr) ran_b = &e;
      if (e.instance == Symbol("c") && ran_c == nullptr) ran_c = &e;
    }
  }
  ASSERT_NE(push_ab, nullptr);
  ASSERT_NE(push_bc, nullptr);
  ASSERT_NE(ran_b, nullptr);
  ASSERT_NE(ran_c, nullptr);
  EXPECT_EQ(ran_b->parent_span, push_ab->span_id);
  EXPECT_EQ(ran_c->parent_span, push_bc->span_id);
  EXPECT_EQ(push_ab->trace_id, ran_c->trace_id) << "one trace end to end";
  EXPECT_EQ(push_bc->trace_id, push_ab->trace_id);
  // HLC causality: no effect timestamps before its cause.
  EXPECT_LT(push_ab->hlc, ran_b->hlc);
  EXPECT_LT(push_bc->hlc, ran_c->hlc);
  EXPECT_LT(ran_b->hlc, push_bc->hlc);

  // Now the offline path: 3 per-instance files -> merge -> Perfetto.
  const auto docs = per_instance_docs(events, epoch);
  const auto merged = obs::merge_events(docs);
  ASSERT_EQ(merged.size(), events.size());
  // Merged order is causal: a's push precedes b's run precedes b's push...
  auto index_of = [&](const TraceEvent& needle) -> std::size_t {
    for (std::size_t i = 0; i < merged.size(); ++i) {
      if (merged[i].span_id == needle.span_id &&
          merged[i].kind == needle.kind) {
        return i;
      }
    }
    return merged.size();
  };
  EXPECT_LT(index_of(*push_ab), index_of(*ran_b));
  EXPECT_LT(index_of(*ran_b), index_of(*push_bc));
  EXPECT_LT(index_of(*push_bc), index_of(*ran_c));

  std::ostringstream perfetto;
  obs::write_perfetto_json(perfetto, merged);
  const std::string text = perfetto.str();
  // One track per instance, flow arrows present.
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"f\""), std::string::npos);
  auto st = obs::check_perfetto_json(text);
  EXPECT_TRUE(st.ok()) << st.error().to_string();
}

TEST(TracePerfetto, CheckerRejectsAcausalDocuments) {
  // Flow finish with no start.
  EXPECT_FALSE(obs::check_perfetto_json(
                   "{\"traceEvents\": [{\"ph\": \"f\", \"id\": 1, \"pid\": 1,"
                   " \"tid\": 1, \"ts\": 5.0}]}")
                   .ok());
  // Flow finish before its start.
  EXPECT_FALSE(
      obs::check_perfetto_json(
          "{\"traceEvents\": ["
          "{\"ph\": \"s\", \"id\": 1, \"pid\": 1, \"tid\": 1, \"ts\": 9.0},"
          "{\"ph\": \"f\", \"id\": 1, \"pid\": 1, \"tid\": 1, \"ts\": 5.0}]}")
          .ok());
  // Child span HLC-timestamped before its parent.
  EXPECT_FALSE(
      obs::check_perfetto_json(
          "{\"traceEvents\": ["
          "{\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": 1, \"ts\": 1,"
          " \"args\": {\"span_id\": 10, \"parent_span\": 0,"
          " \"hlc_us\": 2000, \"hlc_lc\": 0}},"
          "{\"ph\": \"i\", \"s\": \"t\", \"pid\": 1, \"tid\": 1, \"ts\": 2,"
          " \"args\": {\"span_id\": 11, \"parent_span\": 10,"
          " \"hlc_us\": 1000, \"hlc_lc\": 0}}]}")
          .ok());
  // Not JSON at all.
  EXPECT_FALSE(obs::check_perfetto_json("perfetto?").ok());
  // The same shapes, consistent, pass.
  EXPECT_TRUE(
      obs::check_perfetto_json(
          "{\"traceEvents\": ["
          "{\"ph\": \"s\", \"id\": 1, \"pid\": 1, \"tid\": 1, \"ts\": 5.0},"
          "{\"ph\": \"f\", \"id\": 1, \"pid\": 1, \"tid\": 1, \"ts\": 9.0}]}")
          .ok());
}

TEST(TraceCollector, ShipsEventsAcrossTheSocket) {
  obs::TraceCollector collector;
  ASSERT_GT(collector.port(), 0);

  obs::Tracer tracer;
  for (int i = 0; i < 50; ++i) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kCustom;
    e.instance = Symbol("shipper");
    e.value_ns = static_cast<std::uint64_t>(i);
    e.span_id = static_cast<std::uint64_t>(1000 + i);
    e.hlc = obs::Hlc{static_cast<std::uint64_t>(1'000'000 + i), 0};
    tracer.record(e);
  }

  auto shipper = obs::TraceShipper::connect(collector.port());
  ASSERT_TRUE(shipper.ok()) << shipper.error().to_string();
  auto shipped = shipper->ship(tracer);
  ASSERT_TRUE(shipped.ok()) << shipped.error().to_string();
  EXPECT_EQ(*shipped, 50u);

  // Delivery is asynchronous; poll until the collector has everything.
  const auto deadline = steady_now() + std::chrono::seconds(10);
  while (collector.count() < 50 && steady_now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(collector.count(), 50u);
  EXPECT_EQ(collector.malformed(), 0u);
  const auto got = collector.take();
  ASSERT_EQ(got.size(), 50u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].kind, TraceEvent::Kind::kCustom);
    EXPECT_EQ(got[i].instance, Symbol("shipper"));
    EXPECT_EQ(got[i].value_ns, i);
    EXPECT_EQ(got[i].span_id, 1000 + i);
    EXPECT_EQ(got[i].hlc.physical_us, 1'000'000 + i);
  }
  EXPECT_EQ(collector.count(), 0u) << "take() is destructive";

  // Nothing listening: connect reports unreachable instead of hanging.
  auto bad = obs::TraceShipper::connect(1);  // port 1: nothing there
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace csaw
