// Tests for the deployment-level service harnesses (miniredis/minisuricata
// behind each architecture) and the direct-C++ baselines used as Table 2's
// control -- both must behave identically to the DSL versions at the
// request/response level.
#include <gtest/gtest.h>

#include "apps/miniredis/services.hpp"
#include "apps/miniredis/workload.hpp"
#include "apps/minisuricata/services.hpp"
#include "patterns/baselines.hpp"

namespace csaw {
namespace {

using miniredis::Command;

Command set_cmd(const std::string& k, const std::string& v) {
  Command c;
  c.op = Command::Op::kSet;
  c.key = k;
  c.value = v;
  return c;
}

Command get_cmd(const std::string& k) {
  Command c;
  c.op = Command::Op::kGet;
  c.key = k;
  return c;
}

// Exercises any Service-shaped object with the same script.
template <typename S>
void exercise_kv(S& svc) {
  for (int i = 0; i < 20; ++i) {
    auto r = svc.request(set_cmd("k" + std::to_string(i), "v" + std::to_string(i)));
    ASSERT_TRUE(r.ok());
  }
  for (int i = 0; i < 20; ++i) {
    auto r = svc.request(get_cmd("k" + std::to_string(i)));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found);
    EXPECT_EQ(r->value, "v" + std::to_string(i));
  }
  auto miss = svc.request(get_cmd("absent"));
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->found);
}

TEST(Services, BaselineServesRequests) {
  miniredis::BaselineService svc(0);
  exercise_kv(svc);
}

TEST(Services, ShardedByKeyServesRequests) {
  miniredis::ShardedService::Options opts;
  opts.op_cost_ns = 0;
  miniredis::ShardedService svc(opts);
  exercise_kv(svc);
  // All four shards should hold some load for 20 spread keys.
  std::uint64_t total = 0;
  for (auto c : svc.shard_counts()) total += c;
  EXPECT_EQ(total, 41u);  // 20 sets + 20 gets + 1 miss
}

TEST(Services, ShardedBySizeKeepsKeyAffinity) {
  miniredis::ShardedService::Options opts;
  opts.mode = miniredis::ShardedService::Mode::kByObjectSize;
  opts.op_cost_ns = 0;
  miniredis::ShardedService svc(opts);
  auto small = set_cmd("small", std::string(100, 'a'));
  auto big = set_cmd("big", std::string(100 * 1024, 'b'));
  EXPECT_EQ(svc.shard_of(small), 0u);
  EXPECT_EQ(svc.shard_of(big), 3u);
  ASSERT_TRUE(svc.request(small).ok());
  ASSERT_TRUE(svc.request(big).ok());
  // GETs must follow the SET's class so they find the data.
  EXPECT_EQ(svc.shard_of(get_cmd("big")), 3u);
  auto r = svc.request(get_cmd("big"));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
}

TEST(Services, CheckpointedCrashLosesOnlyPostCheckpointWrites) {
  miniredis::CheckpointedService svc;
  ASSERT_TRUE(svc.request(set_cmd("durable", "1")).ok());
  ASSERT_TRUE(svc.checkpoint().ok());
  EXPECT_EQ(svc.checkpoints_taken(), 1u);
  ASSERT_TRUE(svc.request(set_cmd("volatile", "2")).ok());
  ASSERT_TRUE(svc.crash_and_resume().ok());
  auto durable = svc.request(get_cmd("durable"));
  ASSERT_TRUE(durable.ok());
  EXPECT_TRUE(durable->found);  // restored from the checkpoint
  auto lost = svc.request(get_cmd("volatile"));
  ASSERT_TRUE(lost.ok());
  EXPECT_FALSE(lost->found);  // written after the checkpoint: gone
}

TEST(Services, CachedHitsSkipBackend) {
  miniredis::CachedService::Options opts;
  opts.op_cost_ns = 0;
  miniredis::CachedService svc(opts);
  ASSERT_TRUE(svc.request(set_cmd("x", "1")).ok());
  for (int i = 0; i < 5; ++i) {
    auto r = svc.request(get_cmd("x"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value, "1");
  }
  EXPECT_EQ(svc.misses(), 1u);
  EXPECT_EQ(svc.hits(), 4u);
  // A write invalidates; the next GET misses and sees the new value.
  ASSERT_TRUE(svc.request(set_cmd("x", "2")).ok());
  auto r = svc.request(get_cmd("x"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value, "2");
  EXPECT_EQ(svc.misses(), 2u);
}

TEST(Services, CacheDisabledAlwaysMisses) {
  miniredis::CachedService::Options opts;
  opts.cache_enabled = false;
  opts.op_cost_ns = 0;
  miniredis::CachedService svc(opts);
  ASSERT_TRUE(svc.request(set_cmd("x", "1")).ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(svc.request(get_cmd("x")).ok());
  }
  EXPECT_EQ(svc.hits(), 0u);
}

TEST(Services, SuricataCheckpointedSurvivesCrash) {
  minisuricata::CheckpointedService svc;
  minisuricata::FlowGenerator gen({}, 42);
  for (int i = 0; i < 3000; ++i) ASSERT_TRUE(svc.process(gen.next()).ok());
  const auto flows_before = svc.flow_count();
  ASSERT_GT(flows_before, 10u);
  ASSERT_TRUE(svc.checkpoint().ok());
  ASSERT_TRUE(svc.crash_and_resume().ok());
  EXPECT_EQ(svc.flow_count(), flows_before);
}

TEST(Services, SuricataSteeringPreservesEveryPacket) {
  minisuricata::SteeredService::Options opts;
  opts.batch_size = 32;
  opts.cost_ns = 0;
  minisuricata::SteeredService svc(opts);
  minisuricata::FlowGenerator gen({}, 43);
  constexpr int kPackets = 500;
  for (int i = 0; i < kPackets; ++i) ASSERT_TRUE(svc.process(gen.next()).ok());
  ASSERT_TRUE(svc.flush().ok());
  std::uint64_t total = 0;
  for (auto c : svc.shard_packet_counts()) total += c;
  EXPECT_EQ(total, static_cast<std::uint64_t>(kPackets));
}

// --- direct-C++ baselines (Table 2 control) -----------------------------------

TEST(Baselines, CheckpointedRedisMatchesDslBehavior) {
  baseline::CheckpointedRedis svc(0);
  EXPECT_TRUE(svc.request(set_cmd("a", "1")).found);
  ASSERT_TRUE(svc.checkpoint().ok());
  EXPECT_EQ(svc.checkpoints_taken(), 1u);
  (void)svc.request(set_cmd("b", "2"));
  ASSERT_TRUE(svc.crash_and_resume().ok());
  EXPECT_TRUE(svc.request(get_cmd("a")).found);
  EXPECT_FALSE(svc.request(get_cmd("b")).found);
}

TEST(Baselines, ShardedRedisRoutesAndAnswers) {
  baseline::ShardedRedis svc(4, 0);
  exercise_kv(svc);
  std::uint64_t total = 0;
  for (auto c : svc.shard_counts()) total += c;
  EXPECT_EQ(total, 41u);
}

TEST(Baselines, CachedRedisMemoizes) {
  baseline::CachedRedis svc(64, 0);
  ASSERT_TRUE(svc.request(set_cmd("x", "1")).ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(svc.request(get_cmd("x")).ok());
  EXPECT_EQ(svc.hits(), 3u);
}

}  // namespace
}  // namespace csaw
