// Unit tests for compilation: template expansion, for-unrolling identities
// (S6), name resolution/mangling, and the static validity rules.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/compile.hpp"
#include "core/pretty.hpp"

namespace csaw {
namespace {

// A minimal two-instance skeleton whose junction body we vary per test.
ProgramSpec skeleton(ExprPtr body, std::vector<Decl> extra_decls = {}) {
  ProgramBuilder p("skeleton");
  auto j = p.type("tau").junction("j").init_prop("P", false).init_prop(
      "Q", true);
  j.init_data("n");
  for (auto& d : extra_decls) {
    if (d.kind == Decl::Kind::kGuard) {
      j.guard(d.guard);
    }
  }
  j.body(std::move(body));
  p.type("tau_peer").junction("j").init_prop("P", false).init_data("n").body(
      e_skip());
  p.instance("a", "tau", {{"j", {}}});
  p.instance("b", "tau_peer", {{"j", {}}});
  p.main_body(e_par({e_start(inst("a")), e_start(inst("b"))}));
  return p.build();
}

Error compile_error(ProgramSpec spec) {
  auto r = compile(spec);
  CSAW_CHECK(!r.ok()) << "expected compilation to fail";
  return r.error();
}

const Expr& junction_body(const CompiledProgram& p, std::string_view instance) {
  const auto* inst = p.find_instance(Symbol(instance));
  CSAW_CHECK(inst != nullptr) << "no instance";
  return *inst->junctions.front().body;
}

TEST(Compile, SkeletonCompiles) {
  auto r = compile(skeleton(e_skip()));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r->instances.size(), 2u);
}

// --- for-unrolling identities (S6 "Template-based Recursion") ---------------

TEST(Compile, ForOverEmptySetIsSkip) {
  auto spec = skeleton(
      e_for("x", SetRef::lit({}), Expr::Kind::kSeq, e_assert(pr("P"))));
  auto r = compile(spec);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(junction_body(*r, "a").kind, Expr::Kind::kSkip);
}

TEST(Compile, ForOverSingletonIsOneInstantiation) {
  auto spec = skeleton(e_for("x", SetRef::lit({CtValue(addr("b", "j"))}),
                             Expr::Kind::kSeq, e_write("n", var("x"))));
  auto r = compile(spec);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const Expr& body = junction_body(*r, "a");
  // Loop scope wrapping exactly one write with the element substituted.
  ASSERT_EQ(body.kind, Expr::Kind::kLoopScope);
  const Expr& inner = *body.children[0];
  ASSERT_EQ(inner.kind, Expr::Kind::kWrite);
  EXPECT_EQ(inner.target->addr, addr("b", "j"));
}

TEST(Compile, ForUnrollsInOrderWithSeq) {
  // Two elements: body must appear twice, in set order.
  ProgramBuilder p("two");
  p.type("tau").junction("j").init_prop("P", false).init_data("n").body(
      e_for("x",
            SetRef::lit({CtValue(addr("b", "j")), CtValue(addr("c", "j"))}),
            Expr::Kind::kSeq, e_write("n", var("x"))));
  p.type("tau_peer").junction("j").init_data("n").init_prop("P", false).body(
      e_skip());
  p.instance("a", "tau", {{"j", {}}});
  p.instance("b", "tau_peer", {{"j", {}}});
  p.instance("c", "tau_peer", {{"j", {}}});
  p.main_body(e_start(inst("a")));
  auto r = compile(p.build());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const Expr& body = junction_body(*r, "a");
  ASSERT_EQ(body.kind, Expr::Kind::kLoopScope);
  const Expr& seq = *body.children[0];
  ASSERT_EQ(seq.kind, Expr::Kind::kSeq);
  ASSERT_EQ(seq.children.size(), 2u);
  EXPECT_EQ(seq.children[0]->target->addr, addr("b", "j"));
  EXPECT_EQ(seq.children[1]->target->addr, addr("c", "j"));
}

TEST(Compile, FormulaForFoldIdentities) {
  // empty & or -> false ; empty & and -> !false (S6). One identity per
  // junction: combining them in one guard would let the compile-time
  // simplifier fold the whole thing away before we can observe the shapes.
  ProgramBuilder p("folds");
  p.config("empty", CtValue(CtList{}));
  p.type("tau")
      .junction("jor")
      .init_prop("P", false)
      .guard(f_for(Formula::Kind::kOr, "x", "empty", f_prop("P")))
      .body(e_skip());
  p.type("tau")
      .junction("jand")
      .init_prop("P", false)
      .guard(f_for(Formula::Kind::kAnd, "x", "empty", f_prop("P")))
      .body(e_skip());
  p.instance("a", "tau", {{"jor", {}}, {"jand", {}}});
  p.main_body(e_start(inst("a")));
  auto r = compile(p.build());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const auto& jor = *r->find_junction({Symbol("a"), Symbol("jor")})->guard;
  EXPECT_EQ(jor.kind, Formula::Kind::kFalse);
  const auto& jand = *r->find_junction({Symbol("a"), Symbol("jand")})->guard;
  ASSERT_EQ(jand.kind, Formula::Kind::kNot);
  EXPECT_EQ(jand.lhs->kind, Formula::Kind::kFalse);
}

TEST(Compile, PropMangling) {
  EXPECT_EQ(mangle_prop(Symbol("Backend"), CtValue(addr("b1", "serve"))),
            "Backend[b1::serve]");
  EXPECT_EQ(mangle_prop(Symbol("Run"),
                        CtValue(JunctionAddr{Symbol("o"), Symbol()})),
            "Run[o]");
}

TEST(Compile, ForInitPropDeclaresMangledFamily) {
  ProgramBuilder p("fam");
  p.config("S", CtValue(CtList{CtValue(addr("b", "j")), CtValue(addr("c", "j"))}));
  p.type("tau")
      .junction("j")
      .for_init_prop("x", SetRef::named(Symbol("S")), "Ready", true)
      .body(e_skip());
  p.instance("a", "tau", {{"j", {}}});
  p.instance("b", "tau", {{"j", {}}});
  p.instance("c", "tau", {{"j", {}}});
  p.main_body(e_start(inst("a")));
  auto r = compile(p.build());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const auto& props = r->instances[0].junctions[0].table_spec.props;
  ASSERT_EQ(props.size(), 2u);
  EXPECT_EQ(props[0].first.str(), "Ready[b::j]");
  EXPECT_TRUE(props[0].second);
}

// --- validity rules -----------------------------------------------------------

TEST(Compile, CaseNextBeforeOtherwiseRejected) {
  std::vector<CaseArm> arms;
  arms.push_back(case_arm(f_prop("P"), e_skip(), Terminator::kNext));
  auto err = compile_error(skeleton(e_case(std::move(arms), e_skip())));
  EXPECT_NE(err.message.find("next"), std::string::npos);
}

TEST(Compile, EmptyCaseRejected) {
  auto err = compile_error(skeleton(e_case({}, e_skip())));
  EXPECT_EQ(err.code, Errc::kInvalidProgram);
}

TEST(Compile, WriteToSelfRejected) {
  auto err = compile_error(skeleton(e_write("n", jref("a", "j"))));
  EXPECT_NE(err.message.find("self"), std::string::npos);
}

TEST(Compile, AssertToSelfRejected) {
  auto err = compile_error(skeleton(e_assert(pr("P"), jref("a", "j"))));
  EXPECT_NE(err.message.find("self"), std::string::npos);
}

TEST(Compile, HostBlockInsideTxnRejected) {
  // "The |_..._| syntax is not allowed in <|E|> since roll-back is
  // undefined for it" (S6).
  auto err = compile_error(skeleton(e_txn(e_host("H"))));
  EXPECT_NE(err.message.find("host"), std::string::npos);
}

TEST(Compile, WaitFormulaMustBeLocal) {
  auto err = compile_error(
      skeleton(e_wait({}, f_prop_at(jref("b", "j"), "P"))));
  EXPECT_NE(err.message.find("local"), std::string::npos);
}

TEST(Compile, WriteOfUndeclaredDataRejected) {
  auto err = compile_error(skeleton(e_write("ghost", jref("b", "j"))));
  EXPECT_NE(err.message.find("undeclared"), std::string::npos);
}

TEST(Compile, BreakOutsideLoopRejected) {
  auto err = compile_error(skeleton(e_break()));
  EXPECT_NE(err.message.find("break"), std::string::npos);
}

TEST(Compile, RetryInMainRejected) {
  ProgramBuilder p("bad");
  p.type("tau").junction("j").body(e_skip());
  p.instance("a", "tau", {{"j", {}}});
  p.main_body(e_retry());
  auto r = compile(p.build());
  ASSERT_FALSE(r.ok());
}

TEST(Compile, StartOfUndeclaredInstanceRejected) {
  ProgramBuilder p("bad");
  p.type("tau").junction("j").body(e_skip());
  p.instance("a", "tau", {{"j", {}}});
  p.main_body(e_start(inst("ghost")));
  EXPECT_FALSE(compile(p.build()).ok());
}

TEST(Compile, ArityMismatchRejected) {
  ProgramBuilder p("bad");
  p.type("tau").junction("j").param("t", ParamDecl::Kind::kTime).body(e_skip());
  p.instance("a", "tau", {{"j", {}}});  // expects one arg
  p.main_body(e_start(inst("a")));
  auto r = compile(p.build());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("args"), std::string::npos);
}

TEST(Compile, UnknownFunctionRejected) {
  auto err = compile_error(skeleton(e_call("nope")));
  EXPECT_NE(err.message.find("undefined function"), std::string::npos);
}

TEST(Compile, IndicesMustNotBeTransmitted) {
  // "Neither indices nor sets should be serialized or transmitted between
  // junctions" (S6).
  ProgramBuilder p("bad");
  p.config("S", CtValue(CtList{CtValue(addr("b", "j"))}));
  p.type("tau")
      .junction("j")
      .idx("i", SetRef::named(Symbol("S")))
      .body(e_write("i", jref("b", "j")));
  p.type("tau_peer").junction("j").init_data("i").body(e_skip());
  p.instance("a", "tau", {{"j", {}}});
  p.instance("b", "tau_peer", {{"j", {}}});
  p.main_body(e_start(inst("a")));
  auto r = compile(p.build());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("transmitted"), std::string::npos);
}

TEST(Compile, FunctionDeclsMergeIntoJunction) {
  // Watch-style: a function declaring a proposition used by the junction.
  ProgramBuilder p("merge");
  p.function("flagit").init_prop("Flag", false).body(e_assert(pr("Flag")));
  p.type("tau").junction("j").body(e_call("flagit"));
  p.instance("a", "tau", {{"j", {}}});
  p.main_body(e_start(inst("a")));
  auto r = compile(p.build());
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const auto& props = r->instances[0].junctions[0].table_spec.props;
  ASSERT_EQ(props.size(), 1u);
  EXPECT_EQ(props[0].first.str(), "Flag");
}

TEST(Compile, SetsMayNotContainSets) {
  ProgramBuilder p("bad");
  p.config("S", CtValue(CtList{CtValue(CtList{})}));
  p.type("tau").junction("j").body(
      e_for("x", SetRef::named(Symbol("S")), Expr::Kind::kSeq, e_skip()));
  p.instance("a", "tau", {{"j", {}}});
  p.main_body(e_start(inst("a")));
  auto r = compile(p.build());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("sets"), std::string::npos);
}

TEST(Compile, ConflictingPropRedeclarationRejected) {
  ProgramBuilder p("bad");
  p.type("tau")
      .junction("j")
      .init_prop("P", true)
      .init_prop("P", false)
      .body(e_skip());
  p.instance("a", "tau", {{"j", {}}});
  p.main_body(e_start(inst("a")));
  auto r = compile(p.build());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("conflicting"), std::string::npos);
}

TEST(Pretty, RendersProgramAndCountsLoc) {
  auto spec = skeleton(e_seq({
      e_host("H1", {Symbol("P")}),
      e_save("n", "sv"),
      e_write("n", jref("b", "j")),
      e_wait({}, f_not(f_prop("P"))),
  }));
  const auto text = pretty_program(spec);
  EXPECT_NE(text.find("def tau::j"), std::string::npos);
  EXPECT_NE(text.find("wait [] !P"), std::string::npos);
  EXPECT_NE(text.find("InstanceTypes"), std::string::npos);
  EXPECT_GT(pretty_loc(spec), 10u);
}

}  // namespace
}  // namespace csaw
