// Event-driven scheduler tests: wake-set precision (an unrelated key write
// must not evaluate a subscriber), wildcard fallback for hand-written
// guards, no lost wakeups under sustained load, blocked-worker pool growth,
// call() deadline-edge accounting, and the guard-formula simplifier
// feeding the dependency analyzer.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "compart/runtime.hpp"
#include "core/interp.hpp"
#include "core/simplify.hpp"

namespace csaw {
namespace {

const Symbol kWork("Work");
const Symbol kNoise("Noise");
const Symbol kDone("Done");

using namespace std::chrono_literals;

bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds budget = 5s) {
  const auto deadline = steady_now() + budget;
  while (steady_now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return pred();
}

InstanceDesc echo_instance(std::string_view name,
                           std::atomic<int>* runs = nullptr) {
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{kWork, false}};
  j.guard = [](const KvTable& t, const RuntimeView&) { return *t.prop(kWork); };
  j.body = [runs](JunctionEnv& env) {
    if (runs != nullptr) runs->fetch_add(1);
    (void)env.table().set_prop_local(kWork, false);
  };
  j.auto_schedule = true;
  InstanceDesc d;
  d.name = Symbol(name);
  d.type = Symbol("echo");
  d.junctions.push_back(std::move(j));
  return d;
}

Status push_assert(Runtime& rt, std::string_view inst, Symbol key) {
  return rt.push({.to = {Symbol(inst), Symbol("j")},
                  .update = Update::assert_prop(key),
                  .deadline = Deadline::after(5s),
                  .from = Symbol("test")});
}

// --- wake-set precision ----------------------------------------------------

TEST(SchedPrecision, UnrelatedKeyWriteDoesNotEvalSubscriber) {
  // "src::j" hosts Work and Noise. "watch::j" is an auto junction whose
  // guard remote-reads src::j@Work; its wake plan subscribes it to exactly
  // that key. With a 10 s timer tick, only a precise event wake can explain
  // the watcher reacting quickly -- and Noise traffic must not evaluate it
  // at all.
  RuntimeOptions opts;
  opts.scheduler.timer_resolution = 10s;
  Runtime rt(opts);

  {
    JunctionDesc j;
    j.name = Symbol("j");
    j.table_spec.props = {{kWork, false}, {kNoise, false}};
    // No guard: src only ever applies pushed updates.
    InstanceDesc d;
    d.name = Symbol("src");
    d.type = Symbol("src");
    d.junctions.push_back(std::move(j));
    rt.add_instance(std::move(d));
  }
  std::atomic<int> watcher_runs{0};
  {
    JunctionDesc j;
    j.name = Symbol("j");
    j.table_spec.props = {{kDone, false}};
    const JunctionAddr src{Symbol("src"), Symbol("j")};
    j.guard = [src](const KvTable& t, const RuntimeView& rtv) {
      auto remote = rtv.remote_prop(src, kWork);
      return remote.ok() && *remote && !*t.prop(kDone);
    };
    j.body = [&watcher_runs](JunctionEnv& env) {
      watcher_runs.fetch_add(1);
      (void)env.table().set_prop_local(kDone, true);
    };
    j.auto_schedule = true;
    // The wake plan the analyzer would produce for
    //   guard src::j@Work & !Done
    j.wake_plan.analyzed = true;
    j.wake_plan.keys = {kDone};
    j.wake_plan.remote.push_back({src, {kWork}});
    InstanceDesc d;
    d.name = Symbol("watch");
    d.type = Symbol("watch");
    d.junctions.push_back(std::move(j));
    rt.add_instance(std::move(d));
  }
  ASSERT_TRUE(rt.start(Symbol("src")).ok());
  ASSERT_TRUE(rt.start(Symbol("watch")).ok());

  // Let the initial start-wake evals settle, then snapshot.
  std::this_thread::sleep_for(50ms);
  const auto baseline = rt.junction_evals(Symbol("watch"), Symbol("j"));

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(push_assert(rt, "src", kNoise).ok());
  }
  std::this_thread::sleep_for(100ms);
  // Noise wakes src (it must apply the updates) but never the watcher.
  EXPECT_EQ(rt.junction_evals(Symbol("watch"), Symbol("j")), baseline);
  EXPECT_EQ(watcher_runs.load(), 0);

  // The subscribed key does wake it -- far faster than the 10 s timer tick.
  ASSERT_TRUE(push_assert(rt, "src", kWork).ok());
  EXPECT_TRUE(eventually([&] { return watcher_runs.load() == 1; }, 2s));
}

TEST(SchedPrecision, HandGuardFallsBackToWildcard) {
  // No wake plan at all (analyzed = false): pushes must still drive the
  // junction promptly even with the timer effectively disabled, because
  // unanalyzed guards get wildcard wakes on every owner-table change.
  RuntimeOptions opts;
  opts.scheduler.timer_resolution = 10s;
  std::atomic<int> runs{0};
  Runtime rt(opts);
  rt.add_instance(echo_instance("a", &runs));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(push_assert(rt, "a", kWork).ok());
    ASSERT_TRUE(eventually([&] { return runs.load() >= i; }, 2s))
        << "push " << i << " lost; runs = " << runs.load();
  }
}

// --- no lost wakeups -------------------------------------------------------

TEST(SchedWakeups, SustainedPushesNeverLoseARun) {
  std::atomic<int> runs{0};
  Runtime rt;
  rt.add_instance(echo_instance("a", &runs));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  for (int i = 1; i <= 300; ++i) {
    ASSERT_TRUE(push_assert(rt, "a", kWork).ok());
    // The body retracts Work, so every push needs exactly one fresh run;
    // a single lost wakeup stalls this loop forever.
    ASSERT_TRUE(eventually([&] { return runs.load() >= i; }))
        << "push " << i << " lost; runs = " << runs.load();
  }
  EXPECT_EQ(runs.load(), 300);
}

TEST(SchedWakeups, ConcurrentCallsAllComplete) {
  JunctionDesc j;
  j.name = Symbol("j");
  std::atomic<int> runs{0};
  j.body = [&runs](JunctionEnv&) { runs.fetch_add(1); };
  InstanceDesc d;
  d.name = Symbol("a");
  d.type = Symbol("manual");
  d.junctions.push_back(std::move(j));
  Runtime rt;
  rt.add_instance(std::move(d));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  constexpr int kThreads = 4;
  constexpr int kCalls = 50;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kCalls; ++i) {
        if (rt.call(Symbol("a"), Symbol("j"), Deadline::after(10s)).ok()) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), kThreads * kCalls);
  EXPECT_GE(runs.load(), kThreads * kCalls);
}

// --- blocked workers -------------------------------------------------------

TEST(SchedPool, BlockedBodyDoesNotStarveRunnableJunctions) {
  // One worker. "blocker::j" parks its body in a 2 s ack wait (the target
  // is down and nacks are disabled, so the push blocks until its deadline).
  // The pool must notice the announced block and spawn a spare so that
  // "free::j" still runs.
  RuntimeOptions opts;
  opts.scheduler.workers = 1;
  opts.nack_when_down = false;
  Runtime rt(opts);
  {
    JunctionDesc j;
    j.name = Symbol("j");
    j.body = [&rt](JunctionEnv&) {
      (void)rt.push({.to = {Symbol("ghost"), Symbol("j")},
                     .update = Update::assert_prop(kWork),
                     .deadline = Deadline::after(2s),
                     .from = Symbol("blocker")});
    };
    InstanceDesc d;
    d.name = Symbol("blocker");
    d.type = Symbol("blocker");
    d.junctions.push_back(std::move(j));
    rt.add_instance(std::move(d));
  }
  rt.add_instance(echo_instance("ghost"));  // never started: push target
  std::atomic<int> free_runs{0};
  rt.add_instance(echo_instance("free", &free_runs));
  ASSERT_TRUE(rt.start(Symbol("blocker")).ok());
  ASSERT_TRUE(rt.start(Symbol("free")).ok());

  ASSERT_TRUE(rt.schedule(Symbol("blocker"), Symbol("j")).ok());
  std::this_thread::sleep_for(50ms);  // let the blocker occupy the worker
  ASSERT_TRUE(push_assert(rt, "free", kWork).ok());
  // Well inside the blocker's 2 s park: only a spare can run this.
  EXPECT_TRUE(eventually([&] { return free_runs.load() >= 1; }, 1500ms));
}

// --- call() deadline edge --------------------------------------------------

TEST(SchedCall, RunCompletingAfterDeadlineIsOkNotTimeout) {
  // The guard passes before the deadline and the body is still running when
  // it expires. call() must wait out the in-flight eval and report the
  // completed run instead of a spurious kTimeout.
  JunctionDesc j;
  j.name = Symbol("j");
  j.body = [](JunctionEnv&) { std::this_thread::sleep_for(200ms); };
  InstanceDesc d;
  d.name = Symbol("a");
  d.type = Symbol("slow");
  d.junctions.push_back(std::move(j));
  Runtime rt;
  rt.add_instance(std::move(d));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  auto st = rt.call(Symbol("a"), Symbol("j"), Deadline::after(50ms));
  EXPECT_TRUE(st.ok()) << st.error().to_string();
}

TEST(SchedCall, ClosedGuardIsGuardRejectedNotTimeout) {
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{kWork, false}};
  j.guard = [](const KvTable& t, const RuntimeView&) { return *t.prop(kWork); };
  j.body = [](JunctionEnv&) {};
  InstanceDesc d;
  d.name = Symbol("a");
  d.type = Symbol("gated");
  d.junctions.push_back(std::move(j));
  Runtime rt;
  rt.add_instance(std::move(d));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  auto st = rt.call(Symbol("a"), Symbol("j"), Deadline::after(150ms));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::kGuardRejected);
}

TEST(SchedCall, GuardOpeningAtTheDeadlineNeverReportsTimeout) {
  // The racing case the accounting fix targets: the guard opens right at
  // the deadline. Whichever side wins, the verdict must be a real one --
  // ok (the run landed) or kGuardRejected (the guard was seen closed) --
  // never kTimeout, because the junction demonstrably got its chance.
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{kWork, false}};
  j.guard = [](const KvTable& t, const RuntimeView&) { return *t.prop(kWork); };
  j.body = [](JunctionEnv&) {};
  InstanceDesc d;
  d.name = Symbol("a");
  d.type = Symbol("edge");
  d.junctions.push_back(std::move(j));
  Runtime rt;
  rt.add_instance(std::move(d));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  for (int i = 0; i < 10; ++i) {
    (void)rt.inject({Symbol("a"), Symbol("j")}, Update::retract_prop(kWork));
    std::this_thread::sleep_for(10ms);
    const auto deadline = Deadline::after(60ms);
    std::thread opener([&] {
      std::this_thread::sleep_for(60ms);
      (void)rt.inject({Symbol("a"), Symbol("j")}, Update::assert_prop(kWork));
    });
    auto st = rt.call(Symbol("a"), Symbol("j"), deadline);
    opener.join();
    if (!st.ok()) {
      EXPECT_EQ(st.error().code, Errc::kGuardRejected)
          << "iteration " << i << ": " << st.error().to_string();
    }
  }
}

// --- late registration ------------------------------------------------------

TEST(SchedModes, InstancesAddedAfterPoolStartWork) {
  // The chaos harness interleaves add_instance and start; entities must be
  // registrable while the pool runs, with conservative wake resolution.
  std::atomic<int> runs_a{0};
  std::atomic<int> runs_b{0};
  Runtime rt;
  rt.add_instance(echo_instance("a", &runs_a));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());  // pool starts here
  rt.add_instance(echo_instance("b", &runs_b));
  ASSERT_TRUE(rt.start(Symbol("b")).ok());
  ASSERT_TRUE(push_assert(rt, "a", kWork).ok());
  ASSERT_TRUE(push_assert(rt, "b", kWork).ok());
  EXPECT_TRUE(eventually([&] { return runs_a.load() >= 1; }));
  EXPECT_TRUE(eventually([&] { return runs_b.load() >= 1; }));
}

// --- wildcard fallback accounting -------------------------------------------

TEST(SchedFallback, WildcardGaugeCountsUnanalyzedGuards) {
  // Two guarded junctions: one with a precise analyzed wake plan, one
  // hand-written (unanalyzed). Only the latter is a wildcard fallback, and
  // the gauge is the analyzer's runtime twin: it must read exactly 1 after
  // wake-plan resolution.
  obs::Metrics metrics;
  RuntimeOptions opts;
  opts.metrics = &metrics;
  Runtime rt(opts);

  rt.add_instance(echo_instance("fallback"));  // hand guard, no wake plan
  {
    JunctionDesc j;
    j.name = Symbol("j");
    j.table_spec.props = {{kWork, false}};
    j.guard = [](const KvTable& t, const RuntimeView&) {
      return *t.prop(kWork);
    };
    j.wake_plan.analyzed = true;
    j.wake_plan.keys = {kWork};
    j.auto_schedule = true;
    InstanceDesc d;
    d.name = Symbol("precise");
    d.type = Symbol("precise");
    d.junctions.push_back(std::move(j));
    rt.add_instance(std::move(d));
  }
  ASSERT_TRUE(rt.start(Symbol("fallback")).ok());  // resolves wake plans
  ASSERT_TRUE(rt.start(Symbol("precise")).ok());
  EXPECT_EQ(metrics.gauge("sched_wildcard_guards").value(), 1);
}

TEST(SchedFallback, StuckRepollTracesOneAnomalyPerStretch) {
  // A wildcard guard whose verdict nothing flips re-polls on the timer
  // wheel forever. After `wildcard_anomaly_repolls` fruitless re-polls the
  // runtime emits one `wildcard_repoll_stuck` custom event -- once per
  // stuck stretch, not per re-poll.
  obs::Tracer tracer;
  RuntimeOptions opts;
  opts.trace_sink = &tracer;
  opts.scheduler.timer_resolution = 1ms;
  opts.scheduler.wildcard_anomaly_repolls = 8;
  std::atomic<int> runs{0};
  Runtime rt(opts);
  rt.add_instance(echo_instance("a", &runs));  // Work=false: guard stuck
  ASSERT_TRUE(rt.start(Symbol("a")).ok());

  std::vector<obs::TraceEvent> anomalies;
  auto drain_anomalies = [&] {
    for (auto& e : tracer.drain()) {
      if (e.kind == obs::TraceEvent::Kind::kCustom &&
          e.label == Symbol("wildcard_repoll_stuck")) {
        anomalies.push_back(e);
      }
    }
  };
  ASSERT_TRUE(eventually([&] {
    drain_anomalies();
    return !anomalies.empty();
  }));
  EXPECT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].instance, Symbol("a"));
  EXPECT_GE(anomalies[0].value_ns, 8u);

  // Give the re-poll loop time to fire well past the threshold again: the
  // stretch is still the same one, so no second event may appear.
  std::this_thread::sleep_for(50ms);
  drain_anomalies();
  EXPECT_EQ(anomalies.size(), 1u);

  // The guard passing ends the stretch and re-arms the detector.
  ASSERT_TRUE(push_assert(rt, "a", kWork).ok());
  ASSERT_TRUE(eventually([&] { return runs.load() >= 1; }));
  ASSERT_TRUE(eventually([&] {
    drain_anomalies();
    return anomalies.size() == 2u;
  }));
}

// --- guard-formula simplifier ---------------------------------------------

std::string simp(FormulaPtr f) { return simplify_formula(std::move(f))->to_string(); }

TEST(Simplify, ConstantFolding) {
  const auto p = f_prop("P");
  const auto q = f_prop("Q");
  // Golden pretty-printer round-trips.
  EXPECT_EQ(simp(f_and(f_true(), p)), p->to_string());
  EXPECT_EQ(simp(f_and(p, f_true())), p->to_string());
  EXPECT_EQ(simp(f_and(f_false(), p)), f_false()->to_string());
  EXPECT_EQ(simp(f_or(f_false(), p)), p->to_string());
  EXPECT_EQ(simp(f_or(p, f_false())), p->to_string());
  EXPECT_EQ(simp(f_or(f_true(), p)), f_true()->to_string());
  EXPECT_EQ(simp(f_implies(f_false(), p)), f_true()->to_string());
  EXPECT_EQ(simp(f_implies(f_true(), p)), p->to_string());
  EXPECT_EQ(simp(f_implies(p, f_false())), f_not(p)->to_string());
  EXPECT_EQ(simp(f_not(f_not(p))), p->to_string());
  EXPECT_EQ(simp(f_not(f_true())), f_false()->to_string());
  // Nested: ((!false & P) | false) -> P.
  EXPECT_EQ(simp(f_or(f_and(f_true(), p), f_false())), p->to_string());
  // Non-constant structure is preserved.
  EXPECT_EQ(simp(f_and(p, q)), f_and(p, q)->to_string());
  // Error-preserving non-folds: an erroring P must keep the guard closed.
  EXPECT_EQ(simp(f_or(p, f_true())), f_or(p, f_true())->to_string());
  EXPECT_EQ(simp(f_and(p, f_false())), f_and(p, f_false())->to_string());
  EXPECT_EQ(simp(f_implies(p, f_true())), f_implies(p, f_true())->to_string());
}

TEST(Simplify, TruthTableEquivalence) {
  // Every simplification must preserve the guard verdict for all
  // assignments of the mentioned propositions.
  const auto p = f_prop("P");
  const auto q = f_prop("Q");
  const std::vector<FormulaPtr> cases = {
      f_and(f_true(), f_or(p, f_false())),
      f_or(f_and(p, f_true()), f_and(f_false(), q)),
      f_implies(f_or(f_false(), p), f_and(q, f_true())),
      f_not(f_not(f_and(p, q))),
      f_implies(f_implies(p, f_false()), q),
      f_or(f_not(f_true()), f_not(f_not(p))),
  };
  KvTable::Spec spec;
  spec.props = {{Symbol("P"), false}, {Symbol("Q"), false}};
  for (const auto& f : cases) {
    const auto s = simplify_formula(f);
    for (int bits = 0; bits < 4; ++bits) {
      KvTable table(spec, "simplify_test");
      ASSERT_TRUE(table.set_prop_local(Symbol("P"), (bits & 1) != 0).ok());
      ASSERT_TRUE(table.set_prop_local(Symbol("Q"), (bits & 2) != 0).ok());
      auto orig = eval_formula(*f, table, nullptr, nullptr);
      auto simplified = eval_formula(*s, table, nullptr, nullptr);
      ASSERT_TRUE(orig.ok() && simplified.ok());
      EXPECT_EQ(*orig, *simplified)
          << f->to_string() << " vs " << s->to_string() << " at bits "
          << bits;
    }
  }
}

}  // namespace
}  // namespace csaw
