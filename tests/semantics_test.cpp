// Tests for the event-structure semantics (paper S8): axioms, composition
// operators, DNF, and the denotation of the paper's own examples.
#include <gtest/gtest.h>

#include "core/builder.hpp"
#include "core/compile.hpp"
#include "patterns/snapshot.hpp"
#include "semantics/denote.hpp"
#include "semantics/dnf.hpp"
#include "semantics/structure.hpp"
#include "support/rng.hpp"

namespace csaw {
namespace {

TEST(EventStructure, LeftRightPeriphery) {
  EventStructure es;
  const auto a = es.add_event(SemLabel::ad_hoc("a"));
  const auto b = es.add_event(SemLabel::ad_hoc("b"));
  const auto c = es.add_event(SemLabel::ad_hoc("c"));
  es.add_enable(a, b);
  es.add_enable(b, c);
  EXPECT_EQ(es.leftmost(), std::vector<EventId>{a});
  EXPECT_EQ(es.rightmost(), std::vector<EventId>{c});
  EXPECT_TRUE(es.le(a, c));
  EXPECT_FALSE(es.le(c, a));
  EXPECT_TRUE(es.validate().ok());
}

TEST(EventStructure, ConflictInheritance) {
  // a # b and b <= c  implies  a # c (computed via causes).
  EventStructure es;
  const auto a = es.add_event(SemLabel::ad_hoc("a"));
  const auto b = es.add_event(SemLabel::ad_hoc("b"));
  const auto c = es.add_event(SemLabel::ad_hoc("c"));
  es.add_enable(b, c);
  es.add_conflict(a, b);
  EXPECT_TRUE(es.in_conflict(a, b));
  EXPECT_TRUE(es.in_conflict(a, c));
  EXPECT_FALSE(es.in_conflict(b, c));
}

TEST(EventStructure, ConcurrencyDefinition) {
  // Concurrent: incomparable by <= and not conflicting (S8.1).
  EventStructure es;
  const auto a = es.add_event(SemLabel::ad_hoc("a"));
  const auto b = es.add_event(SemLabel::ad_hoc("b"));
  const auto c = es.add_event(SemLabel::ad_hoc("c"));
  es.add_enable(a, b);
  EXPECT_TRUE(es.concurrent(b, c));
  EXPECT_FALSE(es.concurrent(a, b));  // ordered
  es.add_conflict(b, c);
  EXPECT_FALSE(es.concurrent(b, c));  // conflicting
}

TEST(EventStructure, ValidateRejectsCycles) {
  EventStructure es;
  const auto a = es.add_event(SemLabel::ad_hoc("a"));
  const auto b = es.add_event(SemLabel::ad_hoc("b"));
  es.add_enable(a, b);
  es.add_enable(b, a);
  EXPECT_FALSE(es.validate().ok());
}

TEST(EventStructure, SeqComposesRightmostToLeftmost) {
  EventStructure a;
  const auto a1 = a.add_event(SemLabel::wr("f", "n", "*"));
  EventStructure b;
  const auto b1 = b.add_event(SemLabel::rd("g", "n", "*"));
  auto seq = es_seq(std::move(a), b);
  EXPECT_TRUE(seq.le(a1, b1));
  EXPECT_TRUE(seq.validate().ok());
}

TEST(EventStructure, PlusIsDisjointUnion) {
  EventStructure a;
  const auto a1 = a.add_event(SemLabel::ad_hoc("a"));
  EventStructure b;
  const auto b1 = b.add_event(SemLabel::ad_hoc("b"));
  auto plus = es_plus(std::move(a), b);
  EXPECT_EQ(plus.size(), 2u);
  EXPECT_TRUE(plus.concurrent(a1, b1));
}

TEST(EventStructure, TxnPrefixesSynchAndIsolates) {
  EventStructure body;
  const auto w = body.add_event(SemLabel::wr("f", "P", "tt"));
  auto txn = es_txn(std::move(body), "f");
  EXPECT_EQ(txn.size(), 2u);
  const auto synchs = txn.find(SemLabel::synch("f"));
  ASSERT_EQ(synchs.size(), 1u);
  EXPECT_TRUE(txn.le(synchs[0], w));
  EXPECT_FALSE(txn.events().at(w).outward);  // isolated
}

TEST(EventStructure, OtherwiseHangsFallbackInConflict) {
  EventStructure a;
  const auto a1 = a.add_event(SemLabel::ad_hoc("try"));
  EventStructure b;
  b.add_event(SemLabel::ad_hoc("complain"));
  auto comb = es_otherwise(std::move(a), b);
  // One fallback copy per event of a; the copy conflicts with its event.
  ASSERT_EQ(comb.size(), 2u);
  const auto complains = comb.find(SemLabel::ad_hoc("complain"));
  ASSERT_EQ(complains.size(), 1u);
  EXPECT_TRUE(comb.in_conflict(a1, complains[0]));
  EXPECT_TRUE(comb.validate().ok());
}

TEST(EventStructure, FreshCopyPreservesShape) {
  EventStructure es;
  const auto a = es.add_event(SemLabel::ad_hoc("a"));
  const auto b = es.add_event(SemLabel::ad_hoc("b"));
  es.add_enable(a, b);
  auto [copy, remap] = es.fresh_copy();
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_TRUE(copy.le(remap.at(a), remap.at(b)));
  EXPECT_NE(remap.at(a), a);  // fresh ids
}

TEST(EventStructure, DotOutputHasNodesAndEdges) {
  EventStructure es;
  const auto a = es.add_event(SemLabel::sched("f"));
  const auto b = es.add_event(SemLabel::unsched("f"));
  es.add_enable(a, b);
  const auto dot = es.to_dot();
  EXPECT_NE(dot.find("Sched_f"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(EventStructure, ConfigurationPredicate) {
  // a -> b, c # b: {} , {a}, {a,b}, {a,c} are configurations; {b} is not
  // (not downward-closed); {a,b,c} is not (conflict).
  EventStructure es;
  const auto a = es.add_event(SemLabel::ad_hoc("a"));
  const auto b = es.add_event(SemLabel::ad_hoc("b"));
  const auto c = es.add_event(SemLabel::ad_hoc("c"));
  es.add_enable(a, b);
  es.add_conflict(b, c);
  EXPECT_TRUE(es.is_configuration({}));
  EXPECT_TRUE(es.is_configuration({a}));
  EXPECT_TRUE(es.is_configuration({a, b}));
  EXPECT_TRUE(es.is_configuration({a, c}));
  EXPECT_FALSE(es.is_configuration({b}));
  EXPECT_FALSE(es.is_configuration({a, b, c}));
  EXPECT_FALSE(es.is_configuration({a, EventId{999999}}));
}

TEST(EventStructure, ConfigurationEnumerationSmall) {
  // a -> b, b # c: configurations are {}, {a}, {c}, {a,b}, {a,c}.
  EventStructure es;
  const auto a = es.add_event(SemLabel::ad_hoc("a"));
  const auto b = es.add_event(SemLabel::ad_hoc("b"));
  const auto c = es.add_event(SemLabel::ad_hoc("c"));
  es.add_enable(a, b);
  es.add_conflict(b, c);
  auto configs = es.configurations();
  EXPECT_EQ(configs.size(), 5u);
  for (const auto& config : configs) {
    EXPECT_TRUE(es.is_configuration(config));
  }
}

TEST(EventStructure, SnapshotComplainOnlyOnFailureBranches) {
  // Model exploration of Fig 4's Act junction: every configuration
  // containing a complain event must exclude the success path's final
  // read (Rd(Work,ff)) -- complain and completion are alternatives.
  auto compiled = compile(patterns::remote_snapshot({}));
  ASSERT_TRUE(compiled.ok());
  const auto* act = compiled->find_junction(addr("Act", "j"));
  ASSERT_NE(act, nullptr);
  auto es = denote_junction(*act);
  ASSERT_TRUE(es.ok());
  const auto complains = es->find(SemLabel::ad_hoc("complain"));
  ASSERT_FALSE(complains.empty());
  const auto success_reads = es->find(SemLabel::rd("Act", "Work", "ff"));
  ASSERT_FALSE(success_reads.empty());
  std::size_t with_complain = 0;
  for (const auto& config : es->configurations(20000)) {
    bool has_complain = false;
    for (EventId e : complains) has_complain |= config.contains(e);
    if (!has_complain) continue;
    ++with_complain;
    for (EventId r : success_reads) {
      EXPECT_FALSE(config.contains(r))
          << "complain configuration contains the success read";
    }
  }
  EXPECT_GT(with_complain, 0u);
}

// --- DNF -----------------------------------------------------------------------

// Evaluates a formula under an assignment (props indexed by name).
bool eval_assignment(const Formula& f, const std::map<std::string, bool>& a) {
  switch (f.kind) {
    case Formula::Kind::kFalse: return false;
    case Formula::Kind::kProp: return a.at(f.prop.str());
    case Formula::Kind::kNot: return !eval_assignment(*f.lhs, a);
    case Formula::Kind::kAnd:
      return eval_assignment(*f.lhs, a) && eval_assignment(*f.rhs, a);
    case Formula::Kind::kOr:
      return eval_assignment(*f.lhs, a) || eval_assignment(*f.rhs, a);
    case Formula::Kind::kImplies:
      return !eval_assignment(*f.lhs, a) || eval_assignment(*f.rhs, a);
    default: return false;
  }
}

bool eval_dnf(const Dnf& dnf, const std::map<std::string, bool>& a) {
  for (const auto& clause : dnf) {
    bool all = true;
    for (const auto& lit : clause) {
      if (a.at(lit.prop) != lit.positive) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

// Property: to_dnf preserves truth over all assignments of 3 props.
class DnfProperty : public ::testing::TestWithParam<int> {};

FormulaPtr random_formula(Rng& rng, int depth) {
  const char* props[] = {"A", "B", "C"};
  if (depth == 0 || rng.chance(0.3)) {
    if (rng.chance(0.1)) return f_false();
    return f_prop(props[rng.below(3)]);
  }
  switch (rng.below(4)) {
    case 0: return f_not(random_formula(rng, depth - 1));
    case 1:
      return f_and(random_formula(rng, depth - 1),
                   random_formula(rng, depth - 1));
    case 2:
      return f_or(random_formula(rng, depth - 1),
                  random_formula(rng, depth - 1));
    default:
      return f_implies(random_formula(rng, depth - 1),
                       random_formula(rng, depth - 1));
  }
}

TEST_P(DnfProperty, DnfEquivalentToFormula) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const auto f = random_formula(rng, 4);
  auto dnf = to_dnf(*f);
  ASSERT_TRUE(dnf.ok()) << dnf.error().to_string();
  for (int mask = 0; mask < 8; ++mask) {
    const std::map<std::string, bool> a{{"A", (mask & 1) != 0},
                                        {"B", (mask & 2) != 0},
                                        {"C", (mask & 4) != 0}};
    EXPECT_EQ(eval_dnf(*dnf, a), eval_assignment(*f, a))
        << f->to_string() << " vs " << dnf_to_string(*dnf) << " mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomFormulas, DnfProperty, ::testing::Range(0, 50));

TEST(Dnf, DropsContradictoryClauses) {
  // A & !A -> empty DNF (false).
  auto dnf = to_dnf(*f_and(f_prop("A"), f_not(f_prop("A"))));
  ASSERT_TRUE(dnf.ok());
  EXPECT_TRUE(dnf->empty());
}

// --- denotation of the paper's examples ---------------------------------------

ProgramSpec fig3_like() {
  ProgramBuilder p("fig3");
  p.type("tau_f")
      .junction("junction")
      .init_prop("Work", false)
      .init_data("n")
      .body(e_seq({
          e_host("H1"),
          e_save("n", "sv"),
          e_write("n", jref("g", "junction")),
          e_assert(pr("Work"), jref("g", "junction")),
          e_wait({}, f_not(f_prop("Work"))),
      }));
  p.type("tau_g")
      .junction("junction")
      .init_prop("Work", false)
      .init_data("n")
      .guard(f_prop("Work"))
      .body(e_seq({
          e_restore("n", "rs"),
          e_host("H2"),
          e_retract(pr("Work"), jref("f", "junction")),
      }));
  p.instance("f", "tau_f", {{"junction", {}}});
  p.instance("g", "tau_g", {{"junction", {}}});
  p.main_body(e_par({e_start(inst("f")), e_start(inst("g"))}));
  return p.build();
}

TEST(EventStructure, SuccessfulHandoffIsAConfiguration) {
  // The Fig 3 success trace -- Sched, write n (local+remote), assert Work
  // (local+remote), read Work=ff, Unsched -- forms a configuration of f's
  // denotation; mixing in a conflicting branch does not.
  auto compiled = compile(fig3_like());
  ASSERT_TRUE(compiled.ok());
  const auto* f = compiled->find_junction(addr("f", "junction"));
  ASSERT_NE(f, nullptr);
  auto es = denote_junction(*f);
  ASSERT_TRUE(es.ok());
  std::set<EventId> trace;
  for (const auto& [id, ev] : es->events()) {
    trace.insert(id);
  }
  // The full event set of a conflict-free straight-line junction would be a
  // configuration; f has a wait whose DNF here is a single disjunct, so the
  // whole structure is conflict-free and downward-closing the full set
  // trivially holds.
  EXPECT_TRUE(es->is_configuration(trace));
}

TEST(Denote, Fig3JunctionStructureMatchesFig18) {
  auto compiled = compile(fig3_like());
  ASSERT_TRUE(compiled.ok()) << compiled.error().to_string();
  const auto* f = compiled->find_junction(addr("f", "junction"));
  ASSERT_NE(f, nullptr);
  auto es = denote_junction(*f);
  ASSERT_TRUE(es.ok()) << es.error().to_string();
  ASSERT_TRUE(es->validate().ok());

  // The Fig 18 chain: Sched_f <= Wr_f(n,*) <= Wr_g(n,*) <= Wr(Work,tt)
  // <= Rd_f(Work,ff) <= Unsched_f.
  auto one = [&](const SemLabel& l) {
    auto ids = es->find(l);
    CSAW_CHECK(ids.size() == 1) << l.to_string() << ": " << ids.size();
    return ids[0];
  };
  const auto sched = one(SemLabel::sched("f"));
  const auto wr_n_local = one(SemLabel::wr("f", "n", "*"));
  const auto wr_n_remote = one(SemLabel::wr("g", "n", "*"));
  const auto wr_work_local = one(SemLabel::wr("f", "Work", "tt"));
  const auto wr_work_remote = one(SemLabel::wr("g", "Work", "tt"));
  const auto unsched = one(SemLabel::unsched("f"));
  EXPECT_TRUE(es->le(sched, wr_n_local));
  EXPECT_TRUE(es->le(wr_n_local, wr_n_remote));
  EXPECT_TRUE(es->le(wr_n_remote, wr_work_local));
  EXPECT_TRUE(es->le(wr_work_local, unsched));
  EXPECT_TRUE(es->concurrent(wr_work_local, wr_work_remote) ||
              es->le(wr_work_local, wr_work_remote) ||
              es->le(wr_work_remote, wr_work_local));
  // The wait's read of Work=ff precedes Unsched.
  const auto rd = one(SemLabel::rd("f", "Work", "ff"));
  EXPECT_TRUE(es->le(rd, unsched));
}

TEST(Denote, ProgramLevelStartupConnectsInitialization) {
  auto compiled = compile(fig3_like());
  ASSERT_TRUE(compiled.ok());
  auto es = denote_program(*compiled);
  ASSERT_TRUE(es.ok()) << es.error().to_string();
  ASSERT_TRUE(es->validate().ok());
  // main enables Start_init(f) which enables f's Work=ff initialization
  // write (S8.4's start-up portion).
  const auto mains = es->find(SemLabel::ad_hoc("main"));
  ASSERT_EQ(mains.size(), 1u);
  const auto starts = es->find(SemLabel::start("init", "f"));
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_TRUE(es->le(mains[0], starts[0]));
  bool found_init_write = false;
  for (const auto& [id, ev] : es->events()) {
    if (ev.label.kind == SemLabel::Kind::kWr && ev.label.junction == "f" &&
        ev.label.key == "Work" && ev.label.value == "ff" &&
        es->le(starts[0], id)) {
      found_init_write = true;
    }
  }
  EXPECT_TRUE(found_init_write);
}

TEST(Denote, SnapshotPatternDenotesAndValidates) {
  // The Fig 4 architecture's full event structure satisfies the axioms,
  // and the otherwise-based failure handling shows up as conflicts.
  auto compiled = compile(patterns::remote_snapshot({}));
  ASSERT_TRUE(compiled.ok());
  const auto* act = compiled->find_junction(addr("Act", "j"));
  ASSERT_NE(act, nullptr);
  auto es = denote_junction(*act);
  ASSERT_TRUE(es.ok()) << es.error().to_string();
  EXPECT_TRUE(es->validate().ok());
  EXPECT_FALSE(es->conflicts().empty());  // failure branches conflict
  EXPECT_GT(es->size(), 5u);
}

TEST(Denote, EveryPatternJunctionSatisfiesAxioms) {
  auto compiled = compile(patterns::remote_snapshot({}));
  ASSERT_TRUE(compiled.ok());
  for (const auto& inst : compiled->instances) {
    for (const auto& j : inst.junctions) {
      auto es = denote_junction(j);
      ASSERT_TRUE(es.ok()) << j.addr.qualified() << ": "
                           << es.error().to_string();
      EXPECT_TRUE(es->validate().ok()) << j.addr.qualified();
    }
  }
}

}  // namespace
}  // namespace csaw
