// Unit tests for the durability layer: EINTR-safe atomic file I/O
// (support/io), the CRC-framed write-ahead log and its snapshot/compaction
// machinery (kv/wal), and KvTable's WAL hooks (log-then-ack, recovery of
// both applied state and the pending queue).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdlib>
#include <string>

#include "kv/table.hpp"
#include "kv/wal.hpp"
#include "support/io.hpp"

namespace csaw {
namespace {

// Self-cleaning temp dir per test.
struct TempDir {
  std::string path;
  TempDir() {
    char tmpl[] = "/tmp/csaw_wal_test_XXXXXX";
    char* p = ::mkdtemp(tmpl);
    EXPECT_NE(p, nullptr);
    path = p;
  }
  ~TempDir() {
    // Tests create a handful of flat files; no recursion needed.
    std::string cmd = "rm -rf '" + path + "'";
    (void)std::system(cmd.c_str());
  }
};

SerializedValue val(const std::string& s) {
  return SerializedValue{Symbol("str"), Bytes(s.begin(), s.end())};
}

TEST(Io, WriteFileAtomicRoundTrip) {
  TempDir dir;
  const std::string path = dir.path + "/f";
  ASSERT_TRUE(io::write_file_atomic(path, "hello").ok());
  auto got = io::read_file(path);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(got->begin(), got->end()), "hello");
  // Replacement is atomic: rewriting leaves exactly the new content.
  ASSERT_TRUE(io::write_file_atomic(path, "second").ok());
  got = io::read_file(path);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(got->begin(), got->end()), "second");
}

TEST(Io, ReadMissingFileFails) {
  TempDir dir;
  auto got = io::read_file(dir.path + "/nope");
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.error().code, Errc::kHostFailure);
}

TEST(Io, EnsureDirNested) {
  TempDir dir;
  ASSERT_TRUE(io::ensure_dir(dir.path + "/a/b/c").ok());
  ASSERT_TRUE(io::write_file_atomic(dir.path + "/a/b/c/f", "x").ok());
  // Idempotent.
  ASSERT_TRUE(io::ensure_dir(dir.path + "/a/b/c").ok());
}

TEST(Wal, Crc32KnownProperties) {
  const char a[] = "123456789";
  // The classic CRC-32 (IEEE, reflected) check value.
  EXPECT_EQ(wal_crc32(a, 9), 0xCBF43926u);
  EXPECT_NE(wal_crc32("x", 1), wal_crc32("y", 1));
}

TEST(Wal, EmptyDirRecoversEmpty) {
  TempDir dir;
  auto rec = wal_recover(dir.path, "t");
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->had_snapshot);
  EXPECT_FALSE(rec->tail_torn);
  EXPECT_EQ(rec->records_replayed, 0u);
  EXPECT_TRUE(rec->image.props.empty());
  EXPECT_TRUE(rec->pending.empty());
}

TEST(Wal, AppendRecoverRoundTrip) {
  TempDir dir;
  {
    auto wal = Wal::open(dir.path, "t", {}, nullptr, 1);
    ASSERT_TRUE(wal.ok());
    WalRecord r;
    r.kind = WalRecord::Kind::kApply;
    r.update = Update::assert_prop(Symbol("P"), "sender");
    ASSERT_TRUE((*wal)->append(std::move(r)).ok());
    r = WalRecord{};
    r.kind = WalRecord::Kind::kApply;
    r.update = Update::write_data(Symbol("v"), val("payload"), "sender");
    ASSERT_TRUE((*wal)->append(std::move(r)).ok());
    r = WalRecord{};
    r.kind = WalRecord::Kind::kQueue;
    r.update = Update::retract_prop(Symbol("P"));
    r.stamp = 7;
    ASSERT_TRUE((*wal)->append(std::move(r)).ok());
  }
  auto rec = wal_recover(dir.path, "t");
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->records_replayed, 3u);
  EXPECT_FALSE(rec->tail_torn);
  EXPECT_EQ(rec->last_lsn, 3u);
  ASSERT_EQ(rec->image.props.size(), 1u);
  EXPECT_EQ(rec->image.props[0].first, "P");
  EXPECT_TRUE(rec->image.props[0].second);
  ASSERT_EQ(rec->image.data.size(), 1u);
  EXPECT_EQ(rec->image.data[0].key, "v");
  EXPECT_TRUE(rec->image.data[0].defined);
  EXPECT_EQ(std::string(rec->image.data[0].bytes.begin(),
                        rec->image.data[0].bytes.end()),
            "payload");
  ASSERT_EQ(rec->pending.size(), 1u);
  EXPECT_EQ(rec->pending[0].stamp, 7u);
  EXPECT_EQ(rec->pending[0].update.key.str(), "P");
  EXPECT_EQ(rec->max_stamp, 7u);
}

TEST(Wal, UnqueueRemovesPending) {
  TempDir dir;
  {
    auto wal = Wal::open(dir.path, "t", {}, nullptr, 1);
    ASSERT_TRUE(wal.ok());
    WalRecord q;
    q.kind = WalRecord::Kind::kQueue;
    q.update = Update::assert_prop(Symbol("A"));
    q.stamp = 1;
    ASSERT_TRUE((*wal)->append(std::move(q)).ok());
    q = WalRecord{};
    q.kind = WalRecord::Kind::kQueue;
    q.update = Update::assert_prop(Symbol("B"));
    q.stamp = 2;
    ASSERT_TRUE((*wal)->append(std::move(q)).ok());
    WalRecord u;
    u.kind = WalRecord::Kind::kUnqueue;
    u.stamp = 1;
    ASSERT_TRUE((*wal)->append(std::move(u)).ok());
  }
  auto rec = wal_recover(dir.path, "t");
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->pending.size(), 1u);
  EXPECT_EQ(rec->pending[0].update.key.str(), "B");
}

TEST(Wal, TornTailRecoversPrefix) {
  TempDir dir;
  {
    auto wal = Wal::open(dir.path, "t", {}, nullptr, 1);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      WalRecord r;
      r.kind = WalRecord::Kind::kApply;
      r.update = Update::write_data(Symbol("v"), val("x" + std::to_string(i)));
      ASSERT_TRUE((*wal)->append(std::move(r)).ok());
    }
  }
  // Tear the last record: chop a few bytes off the end, as a crash mid-write
  // would.
  const std::string log = dir.path + "/t.wal";
  auto bytes = io::read_file(log);
  ASSERT_TRUE(bytes.ok());
  ASSERT_GT(bytes->size(), 3u);
  ASSERT_EQ(::truncate(log.c_str(), static_cast<off_t>(bytes->size() - 3)), 0);

  auto rec = wal_recover(dir.path, "t");
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->tail_torn);
  EXPECT_EQ(rec->records_replayed, 4u);
  ASSERT_EQ(rec->image.data.size(), 1u);
  EXPECT_EQ(std::string(rec->image.data[0].bytes.begin(),
                        rec->image.data[0].bytes.end()),
            "x3");
}

TEST(Wal, CorruptTailByteStopsReplayAtPrefix) {
  TempDir dir;
  {
    auto wal = Wal::open(dir.path, "t", {}, nullptr, 1);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 3; ++i) {
      WalRecord r;
      r.kind = WalRecord::Kind::kApply;
      r.update = Update::write_data(Symbol("v"), val("y" + std::to_string(i)));
      ASSERT_TRUE((*wal)->append(std::move(r)).ok());
    }
  }
  // Flip a byte inside the last record's payload: the CRC catches it and
  // replay keeps the two-record prefix.
  const std::string log = dir.path + "/t.wal";
  auto bytes = io::read_file(log);
  ASSERT_TRUE(bytes.ok());
  auto damaged = *bytes;
  damaged[damaged.size() - 2] ^= 0xFF;
  ASSERT_TRUE(io::write_file_atomic(log, damaged.data(), damaged.size()).ok());

  auto rec = wal_recover(dir.path, "t");
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->tail_torn);
  EXPECT_EQ(rec->records_replayed, 2u);
  ASSERT_EQ(rec->image.data.size(), 1u);
  EXPECT_EQ(std::string(rec->image.data[0].bytes.begin(),
                        rec->image.data[0].bytes.end()),
            "y1");
}

TEST(Wal, CompactionSnapshotsAndTruncates) {
  TempDir dir;
  std::uint64_t next_lsn = 0;
  {
    auto wal = Wal::open(dir.path, "t", {}, nullptr, 1);
    ASSERT_TRUE(wal.ok());
    WalRecord r;
    r.kind = WalRecord::Kind::kApply;
    r.update = Update::assert_prop(Symbol("P"));
    ASSERT_TRUE((*wal)->append(std::move(r)).ok());

    TableImage img;
    img.props.emplace_back("P", true);
    ASSERT_TRUE((*wal)->compact(img, {}, /*max_stamp=*/0).ok());
    EXPECT_EQ((*wal)->log_bytes(), 0u);

    // Records appended after the snapshot replay on top of it.
    r = WalRecord{};
    r.kind = WalRecord::Kind::kApply;
    r.update = Update::write_data(Symbol("v"), val("after"));
    ASSERT_TRUE((*wal)->append(std::move(r)).ok());
    next_lsn = (*wal)->next_lsn();
  }
  auto rec = wal_recover(dir.path, "t");
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->had_snapshot);
  EXPECT_EQ(rec->records_replayed, 1u);  // just the post-snapshot apply
  EXPECT_EQ(rec->last_lsn, next_lsn - 1);
  ASSERT_EQ(rec->image.props.size(), 1u);
  EXPECT_TRUE(rec->image.props[0].second);
  ASSERT_EQ(rec->image.data.size(), 1u);
  EXPECT_EQ(std::string(rec->image.data[0].bytes.begin(),
                        rec->image.data[0].bytes.end()),
            "after");
}

TEST(Wal, ResetRecordRestoresImage) {
  TempDir dir;
  {
    auto wal = Wal::open(dir.path, "t", {}, nullptr, 1);
    ASSERT_TRUE(wal.ok());
    WalRecord r;
    r.kind = WalRecord::Kind::kApply;
    r.update = Update::write_data(Symbol("v"), val("dirty"));
    ASSERT_TRUE((*wal)->append(std::move(r)).ok());
    // Transaction rollback: the reset snapshot wins over the earlier apply.
    WalRecord reset;
    reset.kind = WalRecord::Kind::kReset;
    reset.image.props.emplace_back("P", false);
    reset.image.data.push_back(TableImage::Datum{
        "v", true, "str", Bytes{'c', 'l', 'e', 'a', 'n'}});
    ASSERT_TRUE((*wal)->append(std::move(reset)).ok());
  }
  auto rec = wal_recover(dir.path, "t");
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->image.data.size(), 1u);
  EXPECT_EQ(std::string(rec->image.data[0].bytes.begin(),
                        rec->image.data[0].bytes.end()),
            "clean");
}

// KvTable + Wal integration: mutate a live table through its public
// surface, recover into a second table, and compare durable states.
TEST(WalTable, TableRecoversAppliedAndPending) {
  TempDir dir;
  KvTable::Spec spec;
  spec.props = {{Symbol("Ready"), false}, {Symbol("Guard"), false}};
  spec.data = {Symbol("v"), Symbol("w")};
  {
    KvTable table(spec, "t");
    auto wal = Wal::open(dir.path, "t", {}, nullptr, 1);
    ASSERT_TRUE(wal.ok());
    table.set_durability(wal->get());

    ASSERT_TRUE(table.enqueue(Update::assert_prop(Symbol("Ready"))).ok());
    ASSERT_TRUE(
        table.enqueue(Update::write_data(Symbol("v"), val("alpha"))).ok());
    table.apply_pending();  // both applied
    // A third update stays pending (acked but unapplied).
    ASSERT_TRUE(
        table.enqueue(Update::write_data(Symbol("w"), val("queued"))).ok());
    table.set_durability(nullptr);
  }
  auto rec = wal_recover(dir.path, "t");
  ASSERT_TRUE(rec.ok());
  KvTable restored(spec, "t2");
  restored.adopt_recovered(*rec);
  EXPECT_TRUE(*restored.prop(Symbol("Ready")));
  ASSERT_TRUE(restored.data_defined(Symbol("v")));
  auto v = restored.data(Symbol("v"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::string(v->bytes.begin(), v->bytes.end()), "alpha");
  // The acked-but-unapplied write is still pending, and applies on the next
  // scheduling boundary exactly as it would have pre-crash.
  EXPECT_FALSE(restored.data_defined(Symbol("w")));
  restored.apply_pending();
  ASSERT_TRUE(restored.data_defined(Symbol("w")));
  auto w = restored.data(Symbol("w"));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(std::string(w->bytes.begin(), w->bytes.end()), "queued");
}

TEST(WalTable, UndeclaredRecoveredKeysAreDropped) {
  TempDir dir;
  KvTable::Spec wide;
  wide.props = {{Symbol("Old"), false}};
  wide.data = {Symbol("gone")};
  {
    KvTable table(wide, "t");
    auto wal = Wal::open(dir.path, "t", {}, nullptr, 1);
    ASSERT_TRUE(wal.ok());
    table.set_durability(wal->get());
    ASSERT_TRUE(table.enqueue(Update::assert_prop(Symbol("Old"))).ok());
    ASSERT_TRUE(
        table.enqueue(Update::write_data(Symbol("gone"), val("z"))).ok());
    table.apply_pending();
    table.set_durability(nullptr);
  }
  auto rec = wal_recover(dir.path, "t");
  ASSERT_TRUE(rec.ok());
  // The program evolved: the new spec no longer declares those keys.
  KvTable::Spec narrow;
  narrow.props = {{Symbol("New"), true}};
  narrow.data = {Symbol("v")};
  KvTable restored(narrow, "t2");
  restored.adopt_recovered(*rec);
  EXPECT_FALSE(restored.prop(Symbol("Old")).ok());
  EXPECT_FALSE(restored.data_defined(Symbol("v")));
  EXPECT_TRUE(*restored.prop(Symbol("New")));
}

}  // namespace
}  // namespace csaw
