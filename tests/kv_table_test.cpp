// Unit tests for the KV table: declarations, undef semantics, pending-update
// queuing, the (ordered) local-priority rule, wait admission, keep,
// transactional rollback, multi-waiter support, interruption.
#include <gtest/gtest.h>

#include <thread>

#include "kv/table.hpp"
#include "serdes/value.hpp"

namespace csaw {
namespace {

const Symbol kWork("Work");
const Symbol kOther("Other");
const Symbol kN("n");
const Symbol kM("m");

KvTable::Spec spec() {
  KvTable::Spec s;
  s.props = {{kWork, false}, {kOther, true}};
  s.data = {kN, kM};
  return s;
}

SerializedValue payload(const std::string& text) {
  return SerializedValue{Symbol("test"), Bytes(text.begin(), text.end())};
}

TEST(KvTable, DeclaredNamesAndInitials) {
  KvTable t(spec(), "j");
  EXPECT_FALSE(*t.prop(kWork));
  EXPECT_TRUE(*t.prop(kOther));
  EXPECT_FALSE(t.prop(Symbol("Missing")).ok());
  EXPECT_FALSE(t.set_prop_local(Symbol("Missing"), true).ok());
}

TEST(KvTable, DataStartsUndefAndReadsFailUntilSave) {
  KvTable t(spec(), "j");
  EXPECT_FALSE(t.data_defined(kN));
  auto r = t.data(kN);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kUndefData);
  ASSERT_TRUE(t.save_local(kN, payload("hello")).ok());
  EXPECT_TRUE(t.data_defined(kN));
  EXPECT_TRUE(t.data(kN).ok());
  EXPECT_FALSE(t.save_local(Symbol("nope"), payload("x")).ok());
}

TEST(KvTable, PendingUpdatesApplyAtScheduling) {
  KvTable t(spec(), "j");
  ASSERT_TRUE(t.enqueue(Update::assert_prop(kWork)).ok());
  EXPECT_FALSE(*t.prop(kWork));  // not yet applied
  t.apply_pending();
  EXPECT_TRUE(*t.prop(kWork));
}

TEST(KvTable, EnqueueOfUndeclaredKeyRejected) {
  KvTable t(spec(), "j");
  EXPECT_FALSE(t.enqueue(Update::assert_prop(Symbol("Ghost"))).ok());
  EXPECT_FALSE(t.enqueue(Update::write_data(Symbol("ghost"), payload("x"))).ok());
}

TEST(KvTable, LocalPriorityDropsOlderRemoteUpdate) {
  KvTable t(spec(), "j");
  t.apply_pending();
  t.begin_run();
  // Remote update arrives during the run, THEN the junction writes locally:
  // the local write wins ("local updates have priority").
  ASSERT_TRUE(t.enqueue(Update::assert_prop(kWork)).ok());
  ASSERT_TRUE(t.set_prop_local(kWork, false).ok());
  t.end_run();
  t.apply_pending();
  EXPECT_FALSE(*t.prop(kWork));
  EXPECT_EQ(t.counters().dropped_local_priority, 1u);
}

TEST(KvTable, LocalPriorityKeepsNewerRemoteUpdate) {
  KvTable t(spec(), "j");
  t.begin_run();
  // The junction writes locally FIRST; a remote update arriving later must
  // survive (it is newer information).
  ASSERT_TRUE(t.set_prop_local(kWork, false).ok());
  ASSERT_TRUE(t.enqueue(Update::assert_prop(kWork)).ok());
  t.end_run();
  t.apply_pending();
  EXPECT_TRUE(*t.prop(kWork));
  EXPECT_EQ(t.counters().dropped_local_priority, 0u);
}

TEST(KvTable, LocalPriorityAblationKeepsStaleUpdate) {
  // DESIGN.md ablation 1: with the rule disabled, the older remote update
  // survives end_run and stomps the local write at the next scheduling.
  auto s = spec();
  s.local_priority = false;
  KvTable t(std::move(s), "j");
  t.begin_run();
  ASSERT_TRUE(t.enqueue(Update::assert_prop(kWork)).ok());
  ASSERT_TRUE(t.set_prop_local(kWork, false).ok());
  t.end_run();
  t.apply_pending();
  EXPECT_TRUE(*t.prop(kWork));  // the stale remote assert won
  EXPECT_EQ(t.counters().dropped_local_priority, 0u);
}

TEST(KvTable, KeepDiscardsQueuedUpdates) {
  KvTable t(spec(), "j");
  ASSERT_TRUE(t.enqueue(Update::assert_prop(kWork)).ok());
  ASSERT_TRUE(t.enqueue(Update::write_data(kN, payload("z"))).ok());
  const Symbol keys[] = {kWork};
  t.keep(keys);
  t.apply_pending();
  EXPECT_FALSE(*t.prop(kWork));        // discarded
  EXPECT_TRUE(t.data_defined(kN));     // untouched by keep
  EXPECT_EQ(t.counters().dropped_keep, 1u);
}

TEST(KvTable, WaitAdmitsOnlyListedKeys) {
  KvTable t(spec(), "j");
  t.begin_run();
  std::thread updater([&t] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Other is NOT admitted: must queue. Work is admitted: applies.
    ASSERT_TRUE(t.enqueue(Update::retract_prop(kOther)).ok());
    ASSERT_TRUE(t.enqueue(Update::assert_prop(kWork)).ok());
  });
  const Symbol admit[] = {kWork};
  auto st = t.wait([&](const TableView& v) { return v.prop(kWork); }, admit,
                   Deadline::after(std::chrono::seconds(5)));
  updater.join();
  ASSERT_TRUE(st.ok()) << st.error().to_string();
  EXPECT_TRUE(*t.prop(kWork));
  EXPECT_TRUE(*t.prop(kOther));  // retraction still pending
  t.end_run();
  t.apply_pending();
  EXPECT_FALSE(*t.prop(kOther));
}

TEST(KvTable, WaitFlushesQueuedAdmittedUpdatesOnEntry) {
  KvTable t(spec(), "j");
  t.begin_run();
  ASSERT_TRUE(t.set_prop_local(kWork, true).ok());
  // The retraction raced in before the wait started.
  ASSERT_TRUE(t.enqueue(Update::retract_prop(kWork)).ok());
  const Symbol admit[] = {kWork};
  auto st = t.wait([&](const TableView& v) { return !v.prop(kWork); }, admit,
                   Deadline::after(std::chrono::milliseconds(200)));
  EXPECT_TRUE(st.ok());
}

TEST(KvTable, WaitTimesOut) {
  KvTable t(spec(), "j");
  const Symbol admit[] = {kWork};
  auto st = t.wait([&](const TableView& v) { return v.prop(kWork); }, admit,
                   Deadline::after(std::chrono::milliseconds(30)));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.error().code, Errc::kTimeout);
}

TEST(KvTable, ConcurrentWaitersEachGetTheirKeys) {
  KvTable t(spec(), "j");
  std::atomic<int> done{0};
  std::thread w1([&] {
    const Symbol admit[] = {kWork};
    auto st = t.wait([&](const TableView& v) { return v.prop(kWork); }, admit,
                     Deadline::after(std::chrono::seconds(5)));
    EXPECT_TRUE(st.ok());
    done.fetch_add(1);
  });
  std::thread w2([&] {
    const Symbol admit[] = {kOther};
    auto st = t.wait([&](const TableView& v) { return !v.prop(kOther); }, admit,
                     Deadline::after(std::chrono::seconds(5)));
    EXPECT_TRUE(st.ok());
    done.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(t.enqueue(Update::assert_prop(kWork)).ok());
  ASSERT_TRUE(t.enqueue(Update::retract_prop(kOther)).ok());
  w1.join();
  w2.join();
  EXPECT_EQ(done.load(), 2);
}

TEST(KvTable, InterruptUnblocksWait) {
  KvTable t(spec(), "j");
  std::thread waiter([&] {
    const Symbol admit[] = {kWork};
    auto st = t.wait([&](const TableView& v) { return v.prop(kWork); }, admit,
                     Deadline::infinite());
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, Errc::kUnreachable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.interrupt();
  waiter.join();
}

TEST(KvTable, SnapshotRollbackRestoresContents) {
  KvTable t(spec(), "j");
  ASSERT_TRUE(t.save_local(kN, payload("original")).ok());
  ASSERT_TRUE(t.set_prop_local(kWork, true).ok());
  const auto snap = t.snapshot();
  ASSERT_TRUE(t.set_prop_local(kWork, false).ok());
  ASSERT_TRUE(t.save_local(kN, payload("changed")).ok());
  ASSERT_TRUE(t.save_local(kM, payload("new")).ok());
  t.restore_snapshot(snap);
  EXPECT_TRUE(*t.prop(kWork));
  EXPECT_EQ(t.data(kN)->bytes, payload("original").bytes);
  EXPECT_FALSE(t.data_defined(kM));  // back to undef
}

TEST(KvTable, DebugStringMentionsContents) {
  KvTable t(spec(), "owner::j");
  const auto s = t.debug_string();
  EXPECT_NE(s.find("owner::j"), std::string::npos);
  EXPECT_NE(s.find("Work"), std::string::npos);
  EXPECT_NE(s.find("undef"), std::string::npos);
}

}  // namespace
}  // namespace csaw
