// Tests for the replication patterns deployed behind miniredis
// (ReplicatedService over patterns/chain and patterns/quorum): basic
// serving, the per-table consistency knobs (eventual / read-your-writes /
// linearizable), HLC last-writer-wins read repair, and the chaos stories --
// chain head crash mid-write, quorum partition with W unreachable,
// read-your-writes across replica failover. The headline property
// throughout: zero lost acknowledged writes at the configured W.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/miniredis/services.hpp"
#include "apps/miniredis/workload.hpp"
#include "compart/chaos.hpp"
#include "obs/collect.hpp"
#include "obs/trace.hpp"

namespace csaw {
namespace {

using miniredis::Command;
using miniredis::ReplicatedService;
using Mode = miniredis::ReplicatedService::Mode;

Command set_cmd(const std::string& k, const std::string& v) {
  Command c;
  c.op = Command::Op::kSet;
  c.key = k;
  c.value = v;
  return c;
}

Command get_cmd(const std::string& k) {
  Command c;
  c.op = Command::Op::kGet;
  c.key = k;
  return c;
}

Command del_cmd(const std::string& k) {
  Command c;
  c.op = Command::Op::kDel;
  c.key = k;
  return c;
}

ReplicatedService::Options fast_options(Mode mode) {
  ReplicatedService::Options o;
  o.mode = mode;
  o.op_cost_ns = 0;
  o.timeout_ms = 300;  // fan/relay hops fail fast under faults
  return o;
}

void exercise_kv(ReplicatedService& svc) {
  for (int i = 0; i < 16; ++i) {
    auto r = svc.request(set_cmd("k" + std::to_string(i), "v" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
  }
  for (int i = 0; i < 16; ++i) {
    auto r = svc.request(get_cmd("k" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_TRUE(r->found);
    EXPECT_EQ(r->value, "v" + std::to_string(i));
  }
  auto miss = svc.request(get_cmd("absent"));
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->found);
  auto del = svc.request(del_cmd("k3"));
  ASSERT_TRUE(del.ok());
  auto gone = svc.request(get_cmd("k3"));
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(gone->found);
}

TEST(Replication, ChainServesRequests) {
  ReplicatedService svc(fast_options(Mode::kChain));
  EXPECT_EQ(svc.name(), "chain");
  exercise_kv(svc);
  // A chain ack means the write reached EVERY node: all three applied all
  // 17 mutations (16 SETs + 1 DEL).
  for (auto count : svc.replica_applied()) EXPECT_EQ(count, 17u);
}

TEST(Replication, QuorumServesRequests) {
  auto opts = fast_options(Mode::kQuorum);
  opts.write_quorum = 2;
  ReplicatedService svc(opts);
  EXPECT_EQ(svc.name(), "quorum");
  exercise_kv(svc);
  // The fan-out reaches all live replicas even though only W=2 acks gate.
  for (auto count : svc.replica_applied()) EXPECT_GE(count, 2u);
}

TEST(Replication, LinearizableReadsServeLatestInBothModes) {
  for (const Mode mode : {Mode::kChain, Mode::kQuorum}) {
    auto opts = fast_options(mode);
    opts.consistency = Consistency::kLinearizable;
    ReplicatedService svc(opts);
    for (int i = 0; i < 8; ++i) {
      const std::string v = "v" + std::to_string(i);
      ASSERT_TRUE(svc.request(set_cmd("key", v)).ok());
      auto r = svc.request(get_cmd("key"));
      ASSERT_TRUE(r.ok()) << r.error().to_string();
      EXPECT_TRUE(r->found);
      EXPECT_EQ(r->value, v);  // reads serialize with writes at the leader
    }
  }
}

TEST(Replication, PerRequestConsistencyOverridesTableDefault) {
  auto opts = fast_options(Mode::kChain);
  opts.consistency = Consistency::kEventual;  // table default
  ReplicatedService svc(opts);
  ASSERT_TRUE(svc.request(set_cmd("k", "v")).ok());
  auto lin = svc.request(get_cmd("k"), nullptr, Consistency::kLinearizable);
  ASSERT_TRUE(lin.ok());
  EXPECT_TRUE(lin->found);
  EXPECT_EQ(lin->value, "v");
}

// --- chaos: chain head crash mid-write ---------------------------------------

TEST(Replication, ChainHeadCrashReconfiguresWithoutLosingAckedWrites) {
  ReplicatedService svc(fast_options(Mode::kChain));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(svc.request(set_cmd("k" + std::to_string(i), "acked")).ok());
  }
  ASSERT_TRUE(svc.crash_replica(0).ok());  // the head dies
  // The write that finds the head dead fails over in-line: the service
  // excises the head, bumps the epoch, and retries against the survivors.
  auto r = svc.request(set_cmd("after-crash", "v"));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(svc.epoch(), 1u);
  EXPECT_EQ(svc.live_replicas(), 2u);
  // Zero lost acked writes: everything acknowledged before the crash is
  // still served by the surviving chain, at every consistency level.
  for (int i = 0; i < 10; ++i) {
    for (auto level : {Consistency::kEventual, Consistency::kLinearizable}) {
      auto read = svc.request(get_cmd("k" + std::to_string(i)), nullptr, level);
      ASSERT_TRUE(read.ok()) << read.error().to_string();
      EXPECT_TRUE(read->found);
      EXPECT_EQ(read->value, "acked");
    }
  }
  // A second failure leaves a chain of one, still serving.
  ASSERT_TRUE(svc.crash_replica(1).ok());
  ASSERT_TRUE(svc.reconfigure().ok());
  EXPECT_EQ(svc.live_replicas(), 1u);
  auto last = svc.request(get_cmd("after-crash"));
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(last->value, "v");
}

// --- chaos: quorum partition with W unreachable -------------------------------

TEST(Replication, QuorumPartitionWithWUnreachableRejectsThenHeals) {
  auto opts = fast_options(Mode::kQuorum);
  opts.write_quorum = 2;
  ReplicatedService svc(opts);
  ASSERT_TRUE(svc.request(set_cmd("k", "before")).ok());

  // Cut Rep2 and Rep3 off from the front-end: only the leader is reachable,
  // so W=2 cannot be met and writes must NOT be acknowledged.
  ChaosSchedule schedule;
  schedule.events.push_back(
      {1, ChaosEvent::Kind::kPartition, Symbol("Fnt"), Symbol("Rep2")});
  schedule.events.push_back(
      {1, ChaosEvent::Kind::kPartition, Symbol("Fnt"), Symbol("Rep3")});
  schedule.events.push_back(
      {2, ChaosEvent::Kind::kHeal, Symbol("Fnt"), Symbol("Rep2")});
  schedule.events.push_back(
      {2, ChaosEvent::Kind::kHeal, Symbol("Fnt"), Symbol("Rep3")});
  ChaosHarness chaos(svc.runtime(), schedule);
  chaos.on_step(1);

  auto rejected = svc.request(set_cmd("k", "during-partition"));
  EXPECT_FALSE(rejected.ok());

  chaos.finish();  // fires the scheduled heals for both partitions
  svc.refresh_membership();  // control plane re-arms ActiveReplica[...]

  auto healed = svc.request(set_cmd("k", "after-heal"));
  ASSERT_TRUE(healed.ok()) << healed.error().to_string();
  auto read = svc.request(get_cmd("k"), nullptr, Consistency::kLinearizable);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->found);
  EXPECT_EQ(read->value, "after-heal");
}

// --- quorum read fan-out: HLC last-writer-wins + read repair -------------------

TEST(Replication, QuorumReadFanRepairsStaleReplica) {
  auto opts = fast_options(Mode::kQuorum);
  opts.write_quorum = 2;
  opts.read_quorum = 2;  // eventual reads fan to R=2 and LWW-merge
  ReplicatedService svc(opts);

  // Make Rep3 stale: partition it away, write (acked by leader+Rep2), heal.
  ChaosSchedule schedule;
  schedule.events.push_back(
      {1, ChaosEvent::Kind::kPartition, Symbol("Fnt"), Symbol("Rep3")});
  schedule.events.push_back(
      {2, ChaosEvent::Kind::kHeal, Symbol("Fnt"), Symbol("Rep3")});
  ChaosHarness chaos(svc.runtime(), schedule);
  chaos.on_step(1);
  ASSERT_TRUE(svc.request(set_cmd("k", "fresh")).ok());
  chaos.finish();  // fires the scheduled heal
  svc.refresh_membership();

  const auto applied_before = svc.replica_applied();
  // R=2 fan-reads rotate through replica pairs; within three reads one pair
  // includes the stale Rep3, whose older stamp loses the LWW merge and
  // triggers an inline repair write at the winner's stamp.
  for (int i = 0; i < 3; ++i) {
    auto r = svc.request(get_cmd("k"));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_TRUE(r->found);
    EXPECT_EQ(r->value, "fresh");  // the stale copy never wins
  }
  const auto applied_after = svc.replica_applied();
  EXPECT_GT(applied_after[2], applied_before[2]);  // Rep3 got repaired
}

// --- read-your-writes ---------------------------------------------------------

TEST(Replication, ReadYourWritesSurvivesReplicaFailover) {
  auto opts = fast_options(Mode::kQuorum);
  opts.write_quorum = 2;
  opts.consistency = Consistency::kReadYourWrites;
  ReplicatedService svc(opts);

  ReplicatedService::Session session;
  ASSERT_TRUE(svc.request(set_cmd("mine", "v1"), session).ok());
  EXPECT_TRUE(session.token("mine").valid());

  // Kill the leader (a guaranteed acker) and fail over: the session token
  // must still be honored by the surviving incarnation.
  ASSERT_TRUE(svc.crash_replica(0).ok());
  ASSERT_TRUE(svc.reconfigure().ok());
  auto r = svc.request(get_cmd("mine"), session);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_TRUE(r->found);
  EXPECT_EQ(r->value, "v1");

  // And the token keeps advancing across the new epoch.
  ASSERT_TRUE(svc.request(set_cmd("mine", "v2"), session).ok());
  auto r2 = svc.request(get_cmd("mine"), session);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->value, "v2");
}

// The acceptance workload: a read-replica deployment under the paper's
// 90/10 skew, every read session-scoped. Read-your-writes holds at every
// step, and the collected trace passes the causality checker (HLC order,
// flow arrows bind, no span before its parent).
TEST(Replication, ReadYourWritesSkewedWorkloadPassesCausalityChecker) {
  for (const Mode mode : {Mode::kChain, Mode::kQuorum}) {
    obs::Tracer tracer;
    auto opts = fast_options(mode);
    opts.write_quorum = 2;
    opts.consistency = Consistency::kReadYourWrites;
    opts.trace_sink = &tracer;
    ReplicatedService svc(opts);

    miniredis::WorkloadOptions wopts;
    wopts.keyspace = 64;
    wopts.get_fraction = 0.9;
    wopts.popularity = miniredis::WorkloadOptions::Popularity::kSkewed90_10;
    miniredis::Workload workload(wopts, /*seed=*/7);

    ReplicatedService::Session session;
    std::unordered_map<std::string, std::string> written;
    for (int step = 0; step < 400; ++step) {
      const Command cmd = workload.next();
      auto r = svc.request(cmd, session);
      ASSERT_TRUE(r.ok()) << r.error().to_string();
      if (cmd.op == Command::Op::kSet) {
        written[cmd.key] = cmd.value;
      } else if (auto it = written.find(cmd.key); it != written.end()) {
        // Read-your-writes: the session always sees its own latest write.
        EXPECT_TRUE(r->found) << "step " << step << " key " << cmd.key;
        EXPECT_EQ(r->value, it->second) << "step " << step;
      }
    }

    std::ostringstream perfetto;
    obs::write_perfetto_json(perfetto, tracer.drain());
    auto st = obs::check_perfetto_json(perfetto.str());
    EXPECT_TRUE(st.ok()) << st.error().to_string();
  }
}

}  // namespace
}  // namespace csaw
