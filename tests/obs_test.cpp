// Unit tests for the observability layer: tracer ring semantics, histogram
// percentile accuracy, runtime hook ordering across crash/restart, and the
// JSON export used by the benches' --trace-out flag.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "compart/runtime.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace csaw {
namespace {

using obs::TraceEvent;

const Symbol kWork("Work");

InstanceDesc echo_instance(std::string_view name) {
  JunctionDesc j;
  j.name = Symbol("j");
  j.table_spec.props = {{kWork, false}};
  j.guard = [](const KvTable& t, const RuntimeView&) { return *t.prop(kWork); };
  j.body = [](JunctionEnv& env) {
    (void)env.table().set_prop_local(kWork, false);
  };
  j.auto_schedule = true;
  InstanceDesc d;
  d.name = Symbol(name);
  d.type = Symbol("echo");
  d.junctions.push_back(std::move(j));
  return d;
}

// --- histogram ------------------------------------------------------------

TEST(Histogram, BucketRoundTrip) {
  // Every bucket's lower bound must map back to its own bucket index, and
  // indices must be monotone in the value.
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_EQ(obs::Histogram::bucket_index(obs::Histogram::bucket_lower(i)), i)
        << "bucket " << i;
  }
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < 100000; v += 37) {
    const auto idx = obs::Histogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(Histogram, QuantilesWithinBucketError) {
  // Log-linear buckets with 3 sub-bits guarantee <= 12.5% relative error.
  obs::Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.max_seen(), 1000u);
  EXPECT_NEAR(h.mean(), 500.5, 0.001);

  const struct {
    double q;
    double expect;
  } cases[] = {{0.50, 500.0}, {0.90, 900.0}, {0.99, 990.0}};
  for (const auto& c : cases) {
    const double got = h.quantile(c.q);
    EXPECT_NEAR(got, c.expect, 0.125 * c.expect)
        << "q=" << c.q << " got " << got;
  }
  // Extremes are exact-ish: q=0 lands in value 1's bucket, q=1 at the max.
  EXPECT_LE(h.quantile(0.0), 2.0);
  EXPECT_GE(h.quantile(1.0), 900.0);
}

TEST(Histogram, EmptyAndSingleValue) {
  obs::Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  h.record(42);
  // A single sample: every quantile sits inside value 42's bucket.
  EXPECT_NEAR(h.quantile(0.5), 42.0, 0.125 * 42.0);
  EXPECT_NEAR(h.quantile(0.99), 42.0, 0.125 * 42.0);
}

TEST(Metrics, CountersAreCreatedOnFirstUseAndShared) {
  obs::Metrics m;
  m.counter("pings").add();
  m.counter("pings").add(4);
  EXPECT_EQ(m.counter("pings").value(), 5u);
  int seen = 0;
  m.for_each_counter([&](const std::string& name, const obs::Counter& c) {
    EXPECT_EQ(name, "pings");
    EXPECT_EQ(c.value(), 5u);
    ++seen;
  });
  EXPECT_EQ(seen, 1);
}

// --- tracer ---------------------------------------------------------------

TEST(Tracer, DrainMergesThreadsSortedByTime) {
  obs::Tracer tracer;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceEvent e;
        e.kind = TraceEvent::Kind::kCustom;
        e.at = steady_now();
        e.instance = Symbol("thread" + std::to_string(t));
        e.value_ns = static_cast<std::uint64_t>(i);
        tracer.record(e);
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto events = tracer.drain();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at) << "out of order at " << i;
  }
  EXPECT_EQ(tracer.dropped(), 0u);
  // Drain is destructive.
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(Tracer, OverwritesOldestWhenFullAndCountsDrops) {
  obs::Tracer tracer(/*per_thread_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kCustom;
    e.at = steady_now();
    e.value_ns = static_cast<std::uint64_t>(i);
    tracer.record(e);
  }
  // Ring occupancy is observable before the drain...
  auto stats = tracer.buffer_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].capacity, 8u);
  EXPECT_EQ(stats[0].size, 8u);
  EXPECT_EQ(stats[0].dropped, 12u);

  const auto events = tracer.drain();
  ASSERT_EQ(events.size(), 8u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // The survivors are the newest 12..19, oldest first.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].value_ns, 12 + i);
  }
  // ...and the drain resets occupancy but keeps the cumulative drop count.
  stats = tracer.buffer_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].size, 0u);
  EXPECT_EQ(stats[0].dropped, 12u);
}

TEST(Tracer, ExportSurfacesBufferStatsAndDrops) {
  obs::Tracer tracer(/*per_thread_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.kind = TraceEvent::Kind::kCustom;
    e.at = steady_now();
    tracer.record(e);
  }
  std::ostringstream out;
  obs::write_trace_json(out, &tracer, nullptr);
  const std::string json = out.str();
  // Drop counts and per-ring occupancy, captured *before* the destructive
  // drain emptied the rings.
  EXPECT_NE(json.find("\"dropped\": 6"), std::string::npos) << json;
  EXPECT_NE(
      json.find("{\"capacity\": 4, \"size\": 4, \"dropped\": 6}"),
      std::string::npos)
      << json;
}

// --- runtime hooks --------------------------------------------------------

TEST(RuntimeObs, TraceOrderingAcrossCrashAndRestart) {
  obs::Tracer tracer;
  obs::Metrics metrics;
  RuntimeOptions opts;
  opts.trace_sink = &tracer;
  opts.metrics = &metrics;
  Runtime rt(opts);
  rt.add_instance(echo_instance("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  ASSERT_TRUE(rt.push({.to = {Symbol("a"), Symbol("j")},
                       .update = Update::assert_prop(kWork),
                       .deadline = Deadline::after(std::chrono::seconds(5)),
                       .from = Symbol("test")})
                  .ok());
  rt.crash(Symbol("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());  // fail-over style restart
  ASSERT_TRUE(rt.push({.to = {Symbol("a"), Symbol("j")},
                       .update = Update::assert_prop(kWork),
                       .deadline = Deadline::after(std::chrono::seconds(5)),
                       .from = Symbol("test")})
                  .ok());
  ASSERT_TRUE(rt.stop(Symbol("a")).ok());

  const auto events = tracer.drain();
  // Timestamps are globally sorted, so first-occurrence indices encode the
  // lifecycle order the run actually went through.
  auto first = [&](TraceEvent::Kind k) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].kind == k) return static_cast<std::ptrdiff_t>(i);
    }
    return -1;
  };
  const auto started = first(TraceEvent::Kind::kInstanceStarted);
  const auto sent = first(TraceEvent::Kind::kPushSent);
  const auto acked = first(TraceEvent::Kind::kPushAcked);
  const auto applied = first(TraceEvent::Kind::kKvApplied);
  const auto crashed = first(TraceEvent::Kind::kInstanceCrashed);
  const auto restarted = first(TraceEvent::Kind::kInstanceRestarted);
  const auto stopped = first(TraceEvent::Kind::kInstanceStopped);
  ASSERT_GE(started, 0);
  ASSERT_GE(sent, 0);
  ASSERT_GE(acked, 0);
  ASSERT_GE(applied, 0);
  ASSERT_GE(crashed, 0);
  ASSERT_GE(restarted, 0);
  ASSERT_GE(stopped, 0);
  EXPECT_LT(started, sent);
  EXPECT_LT(sent, acked);
  EXPECT_LT(acked, crashed);
  EXPECT_LT(crashed, restarted);
  EXPECT_LT(restarted, stopped);

  // Send and ack of the same push correlate through the sequence number.
  EXPECT_EQ(events[static_cast<std::size_t>(sent)].seq,
            events[static_cast<std::size_t>(acked)].seq);
  EXPECT_GT(events[static_cast<std::size_t>(sent)].seq, 0u);
  // The kv_applied event names the key and the applying junction.
  EXPECT_EQ(events[static_cast<std::size_t>(applied)].label, kWork);
  EXPECT_EQ(events[static_cast<std::size_t>(applied)].instance, Symbol("a"));

  // Counters agree with the trace.
  EXPECT_EQ(metrics.counter("push_sent").value(), 2u);
  EXPECT_EQ(metrics.counter("push_acked").value(), 2u);
  EXPECT_EQ(metrics.counter("instances_crashed").value(), 1u);
  EXPECT_EQ(metrics.counter("instances_restarted").value(), 1u);
  EXPECT_EQ(metrics.histogram("push_latency_ns").count(), 2u);
}

TEST(RuntimeObs, DisabledSinksRecordNothing) {
  // The default-constructed runtime has no sinks; pushes must still work and
  // a tracer attached to a *different* runtime must stay empty.
  obs::Tracer tracer;
  Runtime rt;  // no trace_sink, no metrics
  rt.add_instance(echo_instance("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  ASSERT_TRUE(rt.push({.to = {Symbol("a"), Symbol("j")},
                       .update = Update::assert_prop(kWork),
                       .deadline = Deadline::after(std::chrono::seconds(5)),
                       .from = Symbol("test")})
                  .ok());
  ASSERT_TRUE(rt.stop(Symbol("a")).ok());
  EXPECT_TRUE(tracer.drain().empty());
}

// --- JSON export ----------------------------------------------------------

TEST(ObsExport, JsonContainsEventsAndMetricSummaries) {
  obs::Tracer tracer;
  obs::Metrics metrics;
  RuntimeOptions opts;
  opts.trace_sink = &tracer;
  opts.metrics = &metrics;
  Runtime rt(opts);
  rt.add_instance(echo_instance("a"));
  ASSERT_TRUE(rt.start(Symbol("a")).ok());
  ASSERT_TRUE(rt.push({.to = {Symbol("a"), Symbol("j")},
                       .update = Update::assert_prop(kWork),
                       .deadline = Deadline::after(std::chrono::seconds(5)),
                       .from = Symbol("test")})
                  .ok());
  ASSERT_TRUE(rt.stop(Symbol("a")).ok());

  std::ostringstream out;
  obs::write_trace_json(out, &tracer, &metrics);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  for (const char* needle :
       {"\"events\"", "\"push_sent\"", "\"push_acked\"", "\"kv_applied\"",
        "\"instance_started\"", "\"counters\"", "\"histograms\"",
        "\"push_latency_ns\"", "\"p50\"", "\"p99\"", "\"dropped\"",
        "\"buffers\"", "\"capacity\"", "\"trace_id\"", "\"span_id\"",
        "\"hlc_us\""}) {
    EXPECT_NE(json.find(needle), std::string::npos) << "missing " << needle;
  }
  // Balanced braces/brackets -- a cheap structural sanity check that catches
  // truncated or mis-nested output without a JSON parser dependency.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
}  // namespace csaw
