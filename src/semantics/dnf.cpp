#include "semantics/dnf.hpp"

#include <algorithm>
#include <sstream>

namespace csaw {
namespace {

std::string literal_name(const Formula& f) {
  std::string name;
  if (f.at.has_value()) name += f.at->to_string() + "@";
  name += f.prop.str();
  if (f.index.has_value()) name += "[" + f.index->to_string() + "]";
  return name;
}

// Cross product of two DNFs (conjunction distribution).
Result<Dnf> cross(const Dnf& a, const Dnf& b, std::size_t max_clauses) {
  Dnf out;
  if (a.size() * b.size() > max_clauses) {
    return make_error(Errc::kInvalidProgram, "DNF clause blowup");
  }
  for (const auto& ca : a) {
    for (const auto& cb : b) {
      DnfClause clause = ca;
      clause.insert(clause.end(), cb.begin(), cb.end());
      out.push_back(std::move(clause));
    }
  }
  return out;
}

// polarity=true computes DNF(f); polarity=false computes DNF(!f).
Result<Dnf> build(const Formula& f, bool polarity, std::size_t max_clauses) {
  switch (f.kind) {
    case Formula::Kind::kFalse:
      // false -> empty disjunction; !false -> one vacuous clause.
      return polarity ? Dnf{} : Dnf{DnfClause{}};
    case Formula::Kind::kProp:
      return Dnf{DnfClause{DnfLiteral{literal_name(f), polarity}}};
    case Formula::Kind::kRunning:
      return Dnf{DnfClause{
          DnfLiteral{"S(" + f.instance.to_string() + ")", polarity}}};
    case Formula::Kind::kNot:
      return build(*f.lhs, !polarity, max_clauses);
    case Formula::Kind::kAnd: {
      auto a = build(*f.lhs, polarity, max_clauses);
      if (!a) return a.error();
      auto b = build(*f.rhs, polarity, max_clauses);
      if (!b) return b.error();
      if (polarity) return cross(*a, *b, max_clauses);
      // !(A & B) = !A | !B
      a->insert(a->end(), b->begin(), b->end());
      return a;
    }
    case Formula::Kind::kOr: {
      auto a = build(*f.lhs, polarity, max_clauses);
      if (!a) return a.error();
      auto b = build(*f.rhs, polarity, max_clauses);
      if (!b) return b.error();
      if (!polarity) return cross(*a, *b, max_clauses);
      a->insert(a->end(), b->begin(), b->end());
      return a;
    }
    case Formula::Kind::kImplies: {
      // A -> B  ==  !A | B
      auto na = build(*f.lhs, !polarity, max_clauses);
      if (!na) return na.error();
      auto b = build(*f.rhs, polarity, max_clauses);
      if (!b) return b.error();
      if (polarity) {
        na->insert(na->end(), b->begin(), b->end());
        return na;
      }
      // !(A -> B) = A & !B
      return cross(*na, *b, max_clauses);
    }
    case Formula::Kind::kFor:
      return make_error(Errc::kInternal, "uncompiled for-formula in DNF");
  }
  return make_error(Errc::kInternal, "unknown formula kind");
}

}  // namespace

Result<Dnf> to_dnf(const Formula& f, std::size_t max_clauses) {
  auto dnf = build(f, true, max_clauses);
  if (!dnf) return dnf.error();
  Dnf out;
  for (auto& clause : *dnf) {
    // Deduplicate literals; drop contradictory clauses.
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    bool contradictory = false;
    for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
      if (clause[i].prop == clause[i + 1].prop &&
          clause[i].positive != clause[i + 1].positive) {
        contradictory = true;
        break;
      }
    }
    if (!contradictory) out.push_back(std::move(clause));
  }
  return out;
}

std::string dnf_to_string(const Dnf& dnf) {
  if (dnf.empty()) return "false";
  std::ostringstream os;
  bool first_clause = true;
  for (const auto& clause : dnf) {
    if (!first_clause) os << " | ";
    first_clause = false;
    if (clause.empty()) {
      os << "true";
      continue;
    }
    os << "(";
    bool first = true;
    for (const auto& lit : clause) {
      if (!first) os << " & ";
      first = false;
      os << (lit.positive ? "" : "!") << lit.prop;
    }
    os << ")";
  }
  return os.str();
}

}  // namespace csaw
