// Event structures (Winskel): (S, <=, #) with enablement and conflict
// (paper S8.1), plus the composition operators of Fig 19/20.
//
// We store the *immediate causality* edges (the graphical notation's arrows)
// and the *minimal conflict* pairs (the zigzags); the full <= and # relations
// are derived: <= is the reflexive-transitive closure, and # is inherited
// downward (e1 # e2 and e2 <= e3 implies e1 # e3), which makes conflict
// inheritance hold by construction. `validate()` checks the remaining
// axioms: <= antisymmetric (acyclic edges), # irreflexive, finite causes.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "semantics/event.hpp"
#include "support/result.hpp"

namespace csaw {

class EventStructure {
 public:
  EventStructure() = default;

  // --- construction -----------------------------------------------------
  EventId add_event(SemLabel label, bool outward = true);
  void add_enable(EventId from, EventId to);    // immediate causality
  void add_conflict(EventId a, EventId b);      // minimal conflict

  // Union of two structures (ids must be globally unique, which they are:
  // ids come from a process-wide counter).
  void merge(const EventStructure& other);

  // A fresh copy with new event ids (the paper's natural-map). Returns the
  // id mapping old -> new.
  [[nodiscard]] std::pair<EventStructure, std::map<EventId, EventId>>
  fresh_copy() const;

  // Sets outward := false on all events (the paper's isolate, lifted).
  void isolate_all();

  // --- periphery ----------------------------------------------------------
  // Leftmost: events with no predecessor. Rightmost: events with no
  // successor. (Paper's left/right periphery definitions; on an edge-free
  // structure both equal S.) Only outward events enable through
  // composition, so rightmost_outward() is what `;` connects from.
  [[nodiscard]] std::vector<EventId> leftmost() const;
  [[nodiscard]] std::vector<EventId> rightmost() const;
  [[nodiscard]] std::vector<EventId> rightmost_outward() const;

  // --- derived relations ----------------------------------------------------
  [[nodiscard]] bool le(EventId a, EventId b) const;          // a <= b
  [[nodiscard]] bool strictly_before(EventId a, EventId b) const;
  [[nodiscard]] bool in_conflict(EventId a, EventId b) const; // inherited #
  [[nodiscard]] bool concurrent(EventId a, EventId b) const;
  // [e] = the causes of e (downward closure).
  [[nodiscard]] std::set<EventId> causes(EventId e) const;

  // A *configuration* is a possible execution state: a finite set of events
  // that is downward-closed under <= and conflict-free (Winskel). Used by
  // tests to check that claimed traces of the runtime are admitted by the
  // denotational semantics.
  [[nodiscard]] bool is_configuration(const std::set<EventId>& events) const;

  // Enumerates all configurations reachable by repeatedly adding one
  // enabled, non-conflicting event (breadth-first), up to `max_configs`.
  // This is a small finite model explorer: reachability properties of an
  // architecture ("complain only occurs on failure branches") become set
  // queries over the result.
  [[nodiscard]] std::vector<std::set<EventId>> configurations(
      std::size_t max_configs = 10000) const;

  // --- axioms -----------------------------------------------------------------
  // Checks: enablement acyclic, minimal-conflict irreflexive and between
  // existing events, finite causes. Conflict inheritance holds by
  // construction (derived #).
  [[nodiscard]] Status validate() const;

  // --- access -------------------------------------------------------------------
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::map<EventId, SemEvent>& events() const {
    return events_;
  }
  [[nodiscard]] const std::set<std::pair<EventId, EventId>>& enablings() const {
    return enable_;
  }
  [[nodiscard]] const std::set<std::pair<EventId, EventId>>& conflicts() const {
    return conflict_;
  }
  // All event ids whose label equals `label`.
  [[nodiscard]] std::vector<EventId> find(const SemLabel& label) const;

  [[nodiscard]] std::string to_dot() const;

 private:
  std::map<EventId, SemEvent> events_;
  std::set<std::pair<EventId, EventId>> enable_;    // immediate causality
  std::set<std::pair<EventId, EventId>> conflict_;  // minimal conflicts
};

// --- composition operators (Fig 19/20) ----------------------------------------

// E1 + E2: plain union.
EventStructure es_plus(EventStructure a, const EventStructure& b);
// E1 ; E2: union plus enablement from E1's (outward) rightmost periphery to
// E2's leftmost periphery.
EventStructure es_seq(EventStructure a, const EventStructure& b);
// ||: interleaving composition with fresh copies per Fig 20.
EventStructure es_parn(const EventStructure& a, const EventStructure& b);
// E1 otherwise E2: isolate E1; hang a fresh copy of E2 off every event of
// E1 (enabled by that event's strict predecessors, in conflict with the
// event itself).
EventStructure es_otherwise(EventStructure a, const EventStructure& b);
// <|E|>: isolate E and prefix a Synch event enabling E's leftmost periphery.
EventStructure es_txn(EventStructure a, const std::string& junction);

}  // namespace csaw
