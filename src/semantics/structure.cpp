#include "semantics/structure.hpp"

#include <atomic>
#include <deque>
#include <sstream>

#include "support/check.hpp"

namespace csaw {
namespace {

std::atomic<EventId> g_next_event_id{1};

std::pair<EventId, EventId> ordered(EventId a, EventId b) {
  return a < b ? std::pair{a, b} : std::pair{b, a};
}

}  // namespace

std::string SemLabel::to_string() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kRd: os << "Rd_" << junction << "(" << key << "," << value << ")"; break;
    case Kind::kWr: os << "Wr_" << junction << "(" << key << "," << value << ")"; break;
    case Kind::kStart: os << "Start_" << junction << "(" << text << ")"; break;
    case Kind::kStop: os << "Stop_" << junction << "(" << text << ")"; break;
    case Kind::kSched: os << "Sched_" << junction; break;
    case Kind::kUnsched: os << "Unsched_" << junction; break;
    case Kind::kSynch: os << "Synch_" << junction; break;
    case Kind::kWait: os << "Wait_" << junction << "(" << key << ")"; break;
    case Kind::kAdHoc: os << text; break;
  }
  return os.str();
}

EventId EventStructure::add_event(SemLabel label, bool outward) {
  const EventId id = g_next_event_id.fetch_add(1);
  events_.emplace(id, SemEvent{id, std::move(label), outward});
  return id;
}

void EventStructure::add_enable(EventId from, EventId to) {
  CSAW_CHECK(events_.contains(from) && events_.contains(to))
      << "enable edge references unknown event";
  CSAW_CHECK(from != to) << "self-enablement";
  enable_.emplace(from, to);
}

void EventStructure::add_conflict(EventId a, EventId b) {
  CSAW_CHECK(events_.contains(a) && events_.contains(b))
      << "conflict references unknown event";
  CSAW_CHECK(a != b) << "irreflexivity violated";
  conflict_.insert(ordered(a, b));
}

void EventStructure::merge(const EventStructure& other) {
  for (const auto& [id, ev] : other.events_) {
    CSAW_CHECK(!events_.contains(id)) << "merge with overlapping ids";
    events_.emplace(id, ev);
  }
  enable_.insert(other.enable_.begin(), other.enable_.end());
  conflict_.insert(other.conflict_.begin(), other.conflict_.end());
}

std::pair<EventStructure, std::map<EventId, EventId>>
EventStructure::fresh_copy() const {
  EventStructure out;
  std::map<EventId, EventId> remap;
  for (const auto& [id, ev] : events_) {
    remap[id] = out.add_event(ev.label, ev.outward);
  }
  for (const auto& [a, b] : enable_) out.enable_.emplace(remap.at(a), remap.at(b));
  for (const auto& [a, b] : conflict_) {
    out.conflict_.insert(ordered(remap.at(a), remap.at(b)));
  }
  return {std::move(out), std::move(remap)};
}

void EventStructure::isolate_all() {
  for (auto& [id, ev] : events_) ev.outward = false;
}

std::vector<EventId> EventStructure::leftmost() const {
  std::set<EventId> has_pred;
  for (const auto& [a, b] : enable_) has_pred.insert(b);
  std::vector<EventId> out;
  for (const auto& [id, ev] : events_) {
    if (!has_pred.contains(id)) out.push_back(id);
  }
  return out;
}

std::vector<EventId> EventStructure::rightmost() const {
  std::set<EventId> has_succ;
  for (const auto& [a, b] : enable_) has_succ.insert(a);
  std::vector<EventId> out;
  for (const auto& [id, ev] : events_) {
    if (!has_succ.contains(id)) out.push_back(id);
  }
  return out;
}

std::vector<EventId> EventStructure::rightmost_outward() const {
  std::vector<EventId> out;
  for (EventId id : rightmost()) {
    if (events_.at(id).outward) out.push_back(id);
  }
  return out;
}

bool EventStructure::le(EventId a, EventId b) const {
  if (a == b) return true;
  // BFS along immediate-causality edges.
  std::deque<EventId> frontier{a};
  std::set<EventId> seen{a};
  while (!frontier.empty()) {
    const EventId cur = frontier.front();
    frontier.pop_front();
    for (const auto& [x, y] : enable_) {
      if (x == cur && !seen.contains(y)) {
        if (y == b) return true;
        seen.insert(y);
        frontier.push_back(y);
      }
    }
  }
  return false;
}

bool EventStructure::strictly_before(EventId a, EventId b) const {
  return a != b && le(a, b);
}

std::set<EventId> EventStructure::causes(EventId e) const {
  std::set<EventId> out{e};
  std::deque<EventId> frontier{e};
  while (!frontier.empty()) {
    const EventId cur = frontier.front();
    frontier.pop_front();
    for (const auto& [x, y] : enable_) {
      if (y == cur && !out.contains(x)) {
        out.insert(x);
        frontier.push_back(x);
      }
    }
  }
  return out;
}

bool EventStructure::is_configuration(const std::set<EventId>& config) const {
  for (EventId e : config) {
    if (!events_.contains(e)) return false;
    // Downward closure: every cause of e is in the configuration.
    for (EventId c : causes(e)) {
      if (!config.contains(c)) return false;
    }
  }
  // Conflict-freedom (pairwise, inherited conflicts included).
  for (EventId a : config) {
    for (EventId b : config) {
      if (a < b && in_conflict(a, b)) return false;
    }
  }
  return true;
}

bool EventStructure::in_conflict(EventId a, EventId b) const {
  if (a == b) return false;
  // Inherited conflict: exists a' <= a, b' <= b with (a', b') a minimal
  // conflict.
  const auto ca = causes(a);
  const auto cb = causes(b);
  for (const auto& [x, y] : conflict_) {
    if ((ca.contains(x) && cb.contains(y)) ||
        (ca.contains(y) && cb.contains(x))) {
      return true;
    }
  }
  return false;
}

bool EventStructure::concurrent(EventId a, EventId b) const {
  return a != b && !le(a, b) && !le(b, a) && !in_conflict(a, b);
}

std::vector<std::set<EventId>> EventStructure::configurations(
    std::size_t max_configs) const {
  std::set<std::set<EventId>> seen;
  std::deque<std::set<EventId>> frontier;
  seen.insert(std::set<EventId>{});
  frontier.push_back(std::set<EventId>{});
  while (!frontier.empty() && seen.size() < max_configs) {
    const auto config = frontier.front();
    frontier.pop_front();
    for (const auto& [id, ev] : events_) {
      if (config.contains(id)) continue;
      // Enabled: all causes present. Consistent: no conflict with members.
      bool ok = true;
      for (EventId c : causes(id)) {
        if (c != id && !config.contains(c)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      for (EventId m : config) {
        if (in_conflict(id, m)) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      auto next = config;
      next.insert(id);
      if (seen.insert(next).second) frontier.push_back(next);
      if (seen.size() >= max_configs) break;
    }
  }
  return {seen.begin(), seen.end()};
}

Status EventStructure::validate() const {
  // Edge endpoints exist.
  for (const auto& [a, b] : enable_) {
    if (!events_.contains(a) || !events_.contains(b)) {
      return make_error(Errc::kInternal, "dangling enablement edge");
    }
  }
  for (const auto& [a, b] : conflict_) {
    if (!events_.contains(a) || !events_.contains(b)) {
      return make_error(Errc::kInternal, "dangling conflict pair");
    }
    if (a == b) return make_error(Errc::kInternal, "reflexive conflict");
  }
  // Acyclicity (antisymmetry of <=): Kahn's algorithm.
  std::map<EventId, int> indeg;
  for (const auto& [id, ev] : events_) indeg[id] = 0;
  for (const auto& [a, b] : enable_) ++indeg[b];
  std::deque<EventId> queue;
  for (const auto& [id, d] : indeg) {
    if (d == 0) queue.push_back(id);
  }
  std::size_t visited = 0;
  while (!queue.empty()) {
    const EventId cur = queue.front();
    queue.pop_front();
    ++visited;
    for (const auto& [a, b] : enable_) {
      if (a == cur && --indeg[b] == 0) queue.push_back(b);
    }
  }
  if (visited != events_.size()) {
    return make_error(Errc::kInternal, "enablement contains a cycle");
  }
  // Finite causes holds for any finite structure; check anyway by bounding.
  for (const auto& [id, ev] : events_) {
    if (causes(id).size() > events_.size()) {
      return make_error(Errc::kInternal, "causes exceed structure size");
    }
  }
  return Status::ok_status();
}

std::vector<EventId> EventStructure::find(const SemLabel& label) const {
  std::vector<EventId> out;
  for (const auto& [id, ev] : events_) {
    if (ev.label == label) out.push_back(id);
  }
  return out;
}

std::string EventStructure::to_dot() const {
  std::ostringstream os;
  os << "digraph events {\n  rankdir=TB;\n";
  for (const auto& [id, ev] : events_) {
    os << "  e" << id << " [label=\"" << ev.label.to_string() << "\""
       << (ev.outward ? "" : ", style=dashed") << "];\n";
  }
  for (const auto& [a, b] : enable_) {
    os << "  e" << a << " -> e" << b << ";\n";
  }
  for (const auto& [a, b] : conflict_) {
    os << "  e" << a << " -> e" << b
       << " [dir=none, style=dotted, color=red, constraint=false];\n";
  }
  os << "}\n";
  return os.str();
}

EventStructure es_plus(EventStructure a, const EventStructure& b) {
  a.merge(b);
  return a;
}

EventStructure es_seq(EventStructure a, const EventStructure& b) {
  const auto right = a.rightmost_outward();
  const auto left = b.leftmost();
  a.merge(b);
  for (EventId r : right) {
    for (EventId l : left) a.add_enable(r, l);
  }
  return a;
}

EventStructure es_parn(const EventStructure& a, const EventStructure& b) {
  // Fig 20's || rule: both structures plus fresh copies arranged so that
  // each side's periphery enables the other's copy, with conflicts keeping
  // original and copy mutually exclusive. We implement the printed rule.
  auto [ca, mapa] = a.fresh_copy();
  auto [cb, mapb] = b.fresh_copy();
  EventStructure out;
  out.merge(a);
  out.merge(b);
  out.merge(ca);
  out.merge(cb);
  for (EventId r : a.rightmost_outward()) {
    for (const auto& [old_id, new_id] : mapb) out.add_enable(r, new_id);
  }
  for (EventId r : b.rightmost_outward()) {
    for (const auto& [old_id, new_id] : mapa) out.add_enable(r, new_id);
  }
  // Copies conflict with the enablement-later part of their originals.
  for (const auto& [eid, ev] : a.events()) {
    for (const auto& [e2, ev2] : a.events()) {
      if (a.strictly_before(e2, eid)) out.add_conflict(eid, mapa.at(e2));
    }
  }
  for (const auto& [eid, ev] : b.events()) {
    for (const auto& [e2, ev2] : b.events()) {
      if (b.strictly_before(e2, eid)) out.add_conflict(eid, mapb.at(e2));
    }
  }
  return out;
}

EventStructure es_otherwise(EventStructure a, const EventStructure& b) {
  EventStructure out;
  // Record a's structure before isolation for predecessor queries.
  const EventStructure a_orig = a;
  a.isolate_all();
  out.merge(a);
  for (const auto& [eid, ev] : a_orig.events()) {
    auto [copy, remap] = b.fresh_copy();
    const auto copy_left = copy.leftmost();
    out.merge(copy);
    // The copy is enabled by e's strict predecessors ...
    for (const auto& [pid, pev] : a_orig.events()) {
      if (a_orig.strictly_before(pid, eid)) {
        for (EventId l : copy_left) out.add_enable(pid, l);
      }
    }
    // ... and conflicts with e itself (taking the fallback excludes e).
    for (EventId l : copy_left) out.add_conflict(eid, l);
  }
  return out;
}

EventStructure es_txn(EventStructure a, const std::string& junction) {
  const auto left = a.leftmost();
  a.isolate_all();
  const EventId synch = a.add_event(SemLabel::synch(junction));
  for (EventId l : left) {
    if (l != synch) a.add_enable(synch, l);
  }
  return a;
}

}  // namespace csaw
