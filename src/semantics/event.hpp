// Events and labels of the C-Saw event-structure semantics (paper S8.2).
//
//   L in { Rd_J(K,V), Wr_J(K,V), Start_J(g), Stop_J(g), Sched_J,
//          Unsched_J, Synch_J(K...), Wait_J(K...,K), ad hoc }
//
// An event is (id, label, outward); "outward" tracks whether the event can
// enable events through composition (manipulated by isolate()).
#pragma once

#include <cstdint>
#include <string>

namespace csaw {

struct SemLabel {
  enum class Kind {
    kRd,
    kWr,
    kStart,
    kStop,
    kSched,
    kUnsched,
    kSynch,
    kWait,
    kAdHoc,  // abstracted behavior, e.g. "complain"
  };

  Kind kind = Kind::kAdHoc;
  std::string junction;  // the J subscript ("f", or a set "{Act,Aud}")
  std::string key;       // K: proposition/data name
  std::string value;     // V: "tt", "ff", or "*"
  std::string text;      // Start/Stop target or ad hoc text

  static SemLabel rd(std::string j, std::string k, std::string v) {
    return SemLabel{Kind::kRd, std::move(j), std::move(k), std::move(v), {}};
  }
  static SemLabel wr(std::string j, std::string k, std::string v) {
    return SemLabel{Kind::kWr, std::move(j), std::move(k), std::move(v), {}};
  }
  static SemLabel start(std::string j, std::string target) {
    return SemLabel{Kind::kStart, std::move(j), {}, {}, std::move(target)};
  }
  static SemLabel stop(std::string j, std::string target) {
    return SemLabel{Kind::kStop, std::move(j), {}, {}, std::move(target)};
  }
  static SemLabel sched(std::string j) {
    return SemLabel{Kind::kSched, std::move(j), {}, {}, {}};
  }
  static SemLabel unsched(std::string j) {
    return SemLabel{Kind::kUnsched, std::move(j), {}, {}, {}};
  }
  static SemLabel synch(std::string j) {
    return SemLabel{Kind::kSynch, std::move(j), {}, {}, {}};
  }
  static SemLabel ad_hoc(std::string text) {
    return SemLabel{Kind::kAdHoc, {}, {}, {}, std::move(text)};
  }

  [[nodiscard]] std::string to_string() const;
  bool operator==(const SemLabel&) const = default;
};

using EventId = std::uint64_t;

struct SemEvent {
  EventId id = 0;
  SemLabel label;
  bool outward = true;
};

}  // namespace csaw
