#include "semantics/denote.hpp"

#include "semantics/dnf.hpp"
#include "support/check.hpp"

namespace csaw {
namespace {

std::string render_target(const NameTerm& t) {
  switch (t.kind) {
    case NameTerm::Kind::kConcrete:
      // The paper's figures subscript events by instance (Wr_Aud, Start(Act));
      // we follow that convention.
      return t.addr.instance.str();
    case NameTerm::Kind::kIdx:
      return t.var.str();
    default:
      return t.to_string();
  }
}

std::string render_prop(const PropRef& p) {
  if (!p.index.has_value()) return p.base.str();
  return p.base.str() + "[" + p.index->to_string() + "]";
}

struct Denoter {
  DenoteOptions options;
  std::size_t total_events = 0;

  // The eta environment: continuations for control-flow statements.
  struct Eta {
    ExprPtr sub = e_skip();
    ExprPtr ret = e_skip();
    ExprPtr brk = e_skip();
    ExprPtr reconsider = e_skip();
    ExprPtr next = e_skip();
  };

  Status budget_check(const EventStructure& es) {
    total_events += es.size();
    if (total_events > options.max_events) {
      return make_error(Errc::kExhausted, "event-structure budget exceeded");
    }
    return Status::ok_status();
  }

  static EventStructure placeholder(const std::string& what) {
    EventStructure es;
    es.add_event(SemLabel::ad_hoc("<cut:" + what + ">"));
    return es;
  }

  // Decomposes a formula into the staged DNF read pattern: per disjunct a
  // Synch_J prefix enabling parallel reads; disjunct Synchs pairwise
  // conflict. Rightmost events are the reads (or the Synch of an empty
  // clause).
  Result<EventStructure> formula_reads(const Formula& f,
                                       const std::string& junction) {
    auto dnf = to_dnf(f);
    if (!dnf) return dnf.error();
    EventStructure out;
    std::vector<EventId> synchs;
    for (const auto& clause : *dnf) {
      const EventId synch = out.add_event(SemLabel::synch(junction));
      synchs.push_back(synch);
      for (const auto& lit : clause) {
        const EventId rd = out.add_event(
            SemLabel::rd(junction, lit.prop, lit.positive ? "tt" : "ff"));
        out.add_enable(synch, rd);
      }
    }
    for (std::size_t i = 0; i < synchs.size(); ++i) {
      for (std::size_t k = i + 1; k < synchs.size(); ++k) {
        out.add_conflict(synchs[i], synchs[k]);
      }
    }
    // `false` (empty DNF): a single impossible marker event keeps later
    // compositions well-formed.
    if (synchs.empty()) {
      out.add_event(SemLabel::ad_hoc("<false>"));
    }
    return out;
  }

  Result<EventStructure> denote(const Expr& e, const std::string& junction,
                                const Eta& eta, int budget) {
    switch (e.kind) {
      case Expr::Kind::kSkip:
      case Expr::Kind::kRestore:
        // [[skip]] = [[restore(n, ...)]] = (empty, empty, empty) (Fig 20).
        return EventStructure{};
      case Expr::Kind::kHost: {
        EventStructure es;
        if (e.host_writes.empty()) {
          // Abstracted behavior gets an ad hoc label, as the paper does for
          // complain() (S8.2).
          es.add_event(SemLabel::ad_hoc(e.host_binding.str()));
        }
        for (const auto& v : e.host_writes) {
          es.add_event(SemLabel::wr(junction, v.str(), "*"));
        }
        CSAW_TRY(budget_check(es));
        return es;
      }
      case Expr::Kind::kSave: {
        EventStructure es;
        es.add_event(SemLabel::wr(junction, e.data.str(), "*"));
        CSAW_TRY(budget_check(es));
        return es;
      }
      case Expr::Kind::kWrite: {
        EventStructure es;
        es.add_event(
            SemLabel::wr(render_target(*e.target), e.data.str(), "*"));
        CSAW_TRY(budget_check(es));
        return es;
      }
      case Expr::Kind::kAssert:
      case Expr::Kind::kRetract: {
        const std::string value =
            e.kind == Expr::Kind::kAssert ? "tt" : "ff";
        EventStructure es;
        es.add_event(SemLabel::wr(junction, render_prop(e.prop), value));
        if (e.target.has_value()) {
          es.add_event(SemLabel::wr(render_target(*e.target),
                                    render_prop(e.prop), value));
        }
        CSAW_TRY(budget_check(es));
        return es;
      }
      case Expr::Kind::kWait: {
        // Staged expansion (S8.5): first the DNF of F, then reads of the
        // admitted data keys, sequenced after each disjunct.
        auto reads = formula_reads(*e.formula, junction);
        if (!reads) return reads.error();
        EventStructure data_reads;
        for (const auto& n : e.keys) {
          data_reads.add_event(SemLabel::rd(junction, n.str(), "*"));
        }
        CSAW_TRY(budget_check(*reads));
        if (data_reads.size() == 0) return *reads;
        CSAW_TRY(budget_check(data_reads));
        return es_seq(std::move(*reads), data_reads);
      }
      case Expr::Kind::kStart: {
        EventStructure es;
        es.add_event(SemLabel::start(junction, render_target(e.instance)));
        CSAW_TRY(budget_check(es));
        return es;
      }
      case Expr::Kind::kStop: {
        EventStructure es;
        es.add_event(SemLabel::stop(junction, render_target(e.instance)));
        CSAW_TRY(budget_check(es));
        return es;
      }
      case Expr::Kind::kVerify:
        // Not given in Fig 20; we model verify as the reads that decide it.
        return formula_reads(*e.formula, junction);
      case Expr::Kind::kKeep: {
        EventStructure es;
        es.add_event(SemLabel::ad_hoc("keep"));
        return es;
      }
      case Expr::Kind::kReturn:
        // [[return]] = [[eta(return)]].
        if (budget <= 0) return placeholder("return");
        return denote(*eta.ret, junction, eta, budget - 1);
      case Expr::Kind::kRetry:
        if (budget <= 0) return placeholder("retry");
        return placeholder("retry");  // [[J]]: cut at the junction boundary
      case Expr::Kind::kBreakStmt:
        if (budget <= 0) return placeholder("break");
        return denote(*eta.brk, junction, eta, budget - 1);
      case Expr::Kind::kSeq: {
        // [[E1;E2]]: eta{sub -> E2} while denoting E1.
        EventStructure acc;
        bool have = false;
        for (std::size_t i = 0; i < e.children.size(); ++i) {
          Eta inner = eta;
          if (i + 1 < e.children.size()) inner.sub = e.children[i + 1];
          auto part = denote(*e.children[i], junction, inner, budget);
          if (!part) return part.error();
          if (!have) {
            acc = std::move(*part);
            have = true;
          } else {
            acc = es_seq(std::move(acc), *part);
          }
        }
        return acc;
      }
      case Expr::Kind::kPar: {
        EventStructure acc;
        for (const auto& c : e.children) {
          auto part = denote(*c, junction, eta, budget);
          if (!part) return part.error();
          acc = es_plus(std::move(acc), *part);
        }
        return acc;
      }
      case Expr::Kind::kParN: {
        EventStructure acc;
        bool have = false;
        for (const auto& c : e.children) {
          auto part = denote(*c, junction, eta, budget);
          if (!part) return part.error();
          if (!have) {
            acc = std::move(*part);
            have = true;
          } else {
            acc = es_parn(acc, *part);
          }
          CSAW_TRY(budget_check(acc));
        }
        return acc;
      }
      case Expr::Kind::kOtherwise: {
        auto a = denote(*e.children[0], junction, eta, budget);
        if (!a) return a.error();
        auto b = denote(*e.children[1], junction, eta, budget);
        if (!b) return b.error();
        auto combined = es_otherwise(std::move(*a), *b);
        CSAW_TRY(budget_check(combined));
        return combined;
      }
      case Expr::Kind::kFate: {
        Eta inner = eta;
        inner.ret = eta.sub;
        return denote(*e.children[0], junction, inner, budget);
      }
      case Expr::Kind::kTxn: {
        Eta inner = eta;
        inner.ret = eta.sub;
        auto body = denote(*e.children[0], junction, inner, budget);
        if (!body) return body.error();
        return es_txn(std::move(*body), junction);
      }
      case Expr::Kind::kCase:
        return denote_case(e, 0, junction, eta, budget);
      case Expr::Kind::kLoopScope:
      case Expr::Kind::kIfMember:
        return denote(*e.children[0], junction, eta, budget);
      case Expr::Kind::kCall:
      case Expr::Kind::kFor:
        return make_error(Errc::kInternal, "uncompiled node in denotation");
    }
    return make_error(Errc::kInternal, "unknown expr kind");
  }

  // case(i) of S8.3's supporting definitions.
  Result<EventStructure> denote_case(const Expr& e, std::size_t i,
                                     const std::string& junction,
                                     const Eta& eta, int budget) {
    if (i >= e.arms.size()) {
      return denote(*e.case_otherwise, junction, eta, budget);
    }
    const CaseArm& arm = e.arms[i];

    // eta' adjustments: break leaves the case (continues with eta.sub);
    // reconsider re-denotes the whole case; next denotes the reduced case.
    Eta arm_eta = eta;
    arm_eta.brk = eta.sub;

    auto guard_es = formula_reads(*arm.guard, junction);
    if (!guard_es) return guard_es.error();
    auto not_guard_es = formula_reads(*f_not(arm.guard), junction);
    if (!not_guard_es) return not_guard_es.error();

    auto body = denote(*arm.body, junction, arm_eta, budget);
    if (!body) return body.error();

    // Terminator continuation.
    EventStructure term_es;
    switch (arm.term) {
      case Terminator::kBreak:
        term_es = EventStructure{};  // falls through to eta.sub via seq
        break;
      case Terminator::kNext: {
        if (budget <= 0) {
          term_es = placeholder("next");
        } else {
          auto next_es = denote_case(e, i + 1, junction, eta, budget - 1);
          if (!next_es) return next_es.error();
          term_es = std::move(*next_es);
        }
        break;
      }
      case Terminator::kReconsider: {
        if (budget <= 0) {
          term_es = placeholder("reconsider");
        } else {
          auto re_es = denote_case(e, 0, junction, eta, budget - 1);
          if (!re_es) return re_es.error();
          term_es = std::move(*re_es);
        }
        break;
      }
    }
    EventStructure taken = es_seq(std::move(*guard_es), *body);
    if (term_es.size() > 0) taken = es_seq(std::move(taken), term_es);

    auto rest = denote_case(e, i + 1, junction, eta, budget);
    if (!rest) return rest.error();
    EventStructure not_taken = es_seq(std::move(*not_guard_es), *rest);

    // The two entries are in (minimal) conflict between their Synchs.
    const auto left_a = taken.leftmost();
    const auto left_b = not_taken.leftmost();
    EventStructure out = es_plus(std::move(taken), not_taken);
    for (EventId a : left_a) {
      for (EventId b : left_b) out.add_conflict(a, b);
    }
    CSAW_TRY(budget_check(out));
    return out;
  }
};

}  // namespace

Result<EventStructure> denote_junction(const CompiledJunction& junction,
                                       DenoteOptions options) {
  Denoter d{options};
  const std::string j = junction.addr.instance.str();
  EventStructure sched;
  const EventId sched_ev = sched.add_event(SemLabel::sched(j));

  // A guarded junction reads its guard right after scheduling (Fig 22's
  // leading Rd(Work,tt)).
  EventStructure guard_es;
  if (junction.guard != nullptr) {
    auto g = d.formula_reads(*junction.guard, j);
    if (!g) return g.error();
    guard_es = std::move(*g);
  }

  auto body = d.denote(*junction.body, j, Denoter::Eta{}, options.unfold_budget);
  if (!body) return body.error();

  EventStructure out = std::move(sched);
  (void)sched_ev;
  if (guard_es.size() > 0) out = es_seq(std::move(out), guard_es);
  out = es_seq(std::move(out), *body);

  EventStructure unsched;
  unsched.add_event(SemLabel::unsched(j));
  out = es_seq(std::move(out), unsched);
  return out;
}

Result<EventStructure> denote_program(const CompiledProgram& program,
                                      DenoteOptions options) {
  Denoter d{options};
  // Start-up portion (S8.4): main enables Start_init(iota) events which
  // enable the initialization writes of each instance's declarations.
  EventStructure out;
  const EventId main_ev = out.add_event(SemLabel::ad_hoc("main"));
  auto main_es =
      d.denote(*program.main_body, "init", Denoter::Eta{}, options.unfold_budget);
  if (!main_es) return main_es.error();
  const auto left = main_es->leftmost();
  out.merge(*main_es);
  for (EventId l : left) out.add_enable(main_ev, l);

  // Initialization writes hang off the corresponding Start event.
  for (const auto& inst : program.instances) {
    const auto starts = out.find(SemLabel::start("init", inst.name.str()));
    for (const auto& junction : inst.junctions) {
      for (const auto& [prop, initial] : junction.table_spec.props) {
        const EventId wr = out.add_event(SemLabel::wr(
            inst.name.str(), prop.str(), initial ? "tt" : "ff"));
        for (EventId s : starts) out.add_enable(s, wr);
      }
    }
  }

  // Each junction's structure, connected by the cross-junction enablement
  // arrows of Fig 18: a write event produced in one junction's structure and
  // addressed at instance X enables the matching read events in X's
  // structure.
  std::vector<EventStructure> junction_structures;
  for (const auto& inst : program.instances) {
    for (const auto& junction : inst.junctions) {
      auto es = denote_junction(junction, options);
      if (!es) return es.error();
      junction_structures.push_back(std::move(*es));
    }
  }
  for (auto& es : junction_structures) out.merge(es);

  // Cross edges: Wr_X(K,V) (emitted anywhere) -> Rd_X(K,V).
  std::vector<std::pair<EventId, const SemEvent*>> writes;
  std::vector<std::pair<EventId, const SemEvent*>> reads;
  for (const auto& [id, ev] : out.events()) {
    if (ev.label.kind == SemLabel::Kind::kWr) writes.emplace_back(id, &ev);
    if (ev.label.kind == SemLabel::Kind::kRd) reads.emplace_back(id, &ev);
  }
  for (const auto& [wid, wev] : writes) {
    for (const auto& [rid, rev] : reads) {
      if (wev->label.junction == rev->label.junction &&
          wev->label.key == rev->label.key &&
          (wev->label.value == rev->label.value ||
           wev->label.value == "*") &&
          !out.le(rid, wid)) {
        out.add_enable(wid, rid);
      }
    }
  }
  auto st = out.validate();
  if (!st.ok()) return st.error();
  return out;
}

}  // namespace csaw
