// Disjunctive normal form of compiled formulas (paper S8.3).
//
// Formulas guarding waits and case arms are decomposed into DNF; each
// disjunct becomes a set of read-event literals prefixed by a Synch event,
// with distinct disjuncts in minimal conflict ("each element set is a strict
// alternative").
#pragma once

#include <string>
#include <vector>

#include "core/formula.hpp"
#include "support/result.hpp"

namespace csaw {

struct DnfLiteral {
  std::string prop;  // rendered name; remote reads render as "g@P", S(i) as "S(i)"
  bool positive = true;

  friend auto operator<=>(const DnfLiteral&, const DnfLiteral&) = default;
};

using DnfClause = std::vector<DnfLiteral>;  // conjunction of literals
using Dnf = std::vector<DnfClause>;         // disjunction of clauses

// Converts to DNF; contradictory clauses (P and !P) are dropped. An empty
// result denotes `false`; a result containing an empty clause denotes a
// vacuously true disjunct. Errors if the clause count would exceed
// `max_clauses` (exponential blowup guard).
Result<Dnf> to_dnf(const Formula& f, std::size_t max_clauses = 4096);

std::string dnf_to_string(const Dnf& dnf);

}  // namespace csaw
