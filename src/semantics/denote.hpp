// Denotational mapping [[E]]^eta_J from compiled DSL statements to event
// structures (paper S8.4/S8.5).
//
// The paper gives an infinitary semantics (otherwise/retry/reconsider unroll
// without bound); an executable reproduction must bound the unrolling, so
// `DenoteOptions::unfold_budget` limits how many times retry / reconsider /
// next / return continuations re-denote their targets. Beyond the budget a
// placeholder ad hoc event ("<cut:...>") marks the cut, exactly as the paper
// abstracts complain() with an ad hoc label. The paper itself notes the
// implementation "only requires a weaker version of this semantics where
// unnecessary program behavior is curtailed" (S8.5).
#pragma once

#include "core/compile.hpp"
#include "semantics/structure.hpp"

namespace csaw {

struct DenoteOptions {
  int unfold_budget = 1;
  std::size_t max_events = 50000;
};

// [[body]] of one junction, wrapped Sched_J -> ... -> Unsched_J as in the
// paper's Fig 21/22.
Result<EventStructure> denote_junction(const CompiledJunction& junction,
                                       DenoteOptions options = {});

// Program-level semantics: the start-up portion (main event, Start_init
// events, initialization writes; S8.4) composed with every junction's
// structure, plus the cross-junction enablement edges of Fig 18 (a write
// event targeting junction g enables g's matching read events).
Result<EventStructure> denote_program(const CompiledProgram& program,
                                      DenoteOptions options = {});

}  // namespace csaw
