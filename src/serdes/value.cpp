#include "serdes/value.hpp"

#include <sstream>

namespace csaw {
namespace {

enum Tag : std::uint8_t {
  kNull = 0,
  kFalse = 1,
  kTrue = 2,
  kInt = 3,
  kDouble = 4,
  kString = 5,
  kBytes = 6,
  kArray = 7,
  kMap = 8,
};

constexpr std::size_t kMaxDynDepth = 64;

void render(const DynValue& v, std::ostringstream& os) {
  if (v.is_null()) {
    os << "null";
  } else if (v.is_bool()) {
    os << (v.as_bool() ? "true" : "false");
  } else if (v.is_int()) {
    os << v.as_int();
  } else if (v.is_double()) {
    os << v.as_double();
  } else if (v.is_string()) {
    os << '"' << v.as_string() << '"';
  } else if (v.is_bytes()) {
    os << "<" << v.as_bytes().size() << " bytes>";
  } else if (v.is_array()) {
    os << '[';
    bool first = true;
    for (const auto& e : v.as_array()) {
      if (!first) os << ',';
      first = false;
      render(e, os);
    }
    os << ']';
  } else {
    os << '{';
    bool first = true;
    for (const auto& [k, e] : v.as_map()) {
      if (!first) os << ',';
      first = false;
      os << '"' << k << "\":";
      render(e, os);
    }
    os << '}';
  }
}

}  // namespace

void DynValue::encode(ByteWriter& w) const {
  if (is_null()) {
    w.u8(kNull);
  } else if (is_bool()) {
    w.u8(as_bool() ? kTrue : kFalse);
  } else if (is_int()) {
    w.u8(kInt);
    w.svarint(as_int());
  } else if (is_double()) {
    w.u8(kDouble);
    w.f64(as_double());
  } else if (is_string()) {
    w.u8(kString);
    w.str(as_string());
  } else if (is_bytes()) {
    w.u8(kBytes);
    w.blob(as_bytes());
  } else if (is_array()) {
    w.u8(kArray);
    w.uvarint(as_array().size());
    for (const auto& e : as_array()) e.encode(w);
  } else {
    w.u8(kMap);
    w.uvarint(as_map().size());
    for (const auto& [k, e] : as_map()) {
      w.str(k);
      e.encode(w);
    }
  }
}

Result<DynValue> DynValue::decode(ByteReader& r, std::size_t depth) {
  if (depth > kMaxDynDepth) return make_error(Errc::kDecode, "DynValue too deep");
  auto tag = r.u8();
  if (!tag) return tag.error();
  switch (*tag) {
    case kNull:
      return DynValue();
    case kFalse:
      return DynValue(false);
    case kTrue:
      return DynValue(true);
    case kInt: {
      auto v = r.svarint();
      if (!v) return v.error();
      return DynValue(*v);
    }
    case kDouble: {
      auto v = r.f64();
      if (!v) return v.error();
      return DynValue(*v);
    }
    case kString: {
      auto v = r.str();
      if (!v) return v.error();
      return DynValue(std::move(*v));
    }
    case kBytes: {
      auto v = r.blob();
      if (!v) return v.error();
      return DynValue(std::move(*v));
    }
    case kArray: {
      auto n = r.uvarint();
      if (!n) return n.error();
      if (*n > r.remaining()) return make_error(Errc::kDecode, "array too large");
      DynArray arr;
      arr.reserve(*n);
      for (std::uint64_t i = 0; i < *n; ++i) {
        auto e = decode(r, depth + 1);
        if (!e) return e.error();
        arr.push_back(std::move(*e));
      }
      return DynValue(std::move(arr));
    }
    case kMap: {
      auto n = r.uvarint();
      if (!n) return n.error();
      if (*n > r.remaining()) return make_error(Errc::kDecode, "map too large");
      DynMap map;
      for (std::uint64_t i = 0; i < *n; ++i) {
        auto k = r.str();
        if (!k) return k.error();
        auto e = decode(r, depth + 1);
        if (!e) return e.error();
        map.emplace(std::move(*k), std::move(*e));
      }
      return DynValue(std::move(map));
    }
    default:
      return make_error(Errc::kDecode, "bad DynValue tag");
  }
}

Bytes DynValue::to_bytes() const {
  ByteWriter w;
  encode(w);
  return w.take();
}

Result<DynValue> DynValue::from_bytes(const Bytes& data) {
  ByteReader r(data);
  auto v = decode(r);
  if (!v) return v.error();
  if (!r.exhausted()) return make_error(Errc::kDecode, "trailing bytes");
  return v;
}

std::string DynValue::to_string() const {
  std::ostringstream os;
  render(*this, os);
  return os.str();
}

}  // namespace csaw
