// Dynamic values.
//
// KV tables store "named data" whose shape the DSL never inspects; the host
// language produces and consumes it. For inspectability (tests, tracing,
// checkpoint dumps) we provide a small dynamic value model alongside the
// static archive framework: null / bool / int / double / string / bytes /
// array / map, with a canonical byte encoding.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "serdes/buffer.hpp"
#include "support/result.hpp"

namespace csaw {

class DynValue;
using DynArray = std::vector<DynValue>;
using DynMap = std::map<std::string, DynValue>;

class DynValue {
 public:
  using Storage = std::variant<std::monostate, bool, std::int64_t, double,
                               std::string, Bytes, DynArray, DynMap>;

  DynValue() = default;
  DynValue(bool v) : v_(v) {}                   // NOLINT
  DynValue(std::int64_t v) : v_(v) {}           // NOLINT
  DynValue(int v) : v_(std::int64_t{v}) {}      // NOLINT
  DynValue(double v) : v_(v) {}                 // NOLINT
  DynValue(std::string v) : v_(std::move(v)) {} // NOLINT
  DynValue(const char* v) : v_(std::string(v)) {} // NOLINT
  DynValue(Bytes v) : v_(std::move(v)) {}       // NOLINT
  DynValue(DynArray v) : v_(std::move(v)) {}    // NOLINT
  DynValue(DynMap v) : v_(std::move(v)) {}      // NOLINT

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_bytes() const { return std::holds_alternative<Bytes>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<DynArray>(v_); }
  [[nodiscard]] bool is_map() const { return std::holds_alternative<DynMap>(v_); }

  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] double as_double() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const Bytes& as_bytes() const { return std::get<Bytes>(v_); }
  [[nodiscard]] const DynArray& as_array() const { return std::get<DynArray>(v_); }
  [[nodiscard]] const DynMap& as_map() const { return std::get<DynMap>(v_); }
  DynArray& mutable_array() { return std::get<DynArray>(v_); }
  DynMap& mutable_map() { return std::get<DynMap>(v_); }

  bool operator==(const DynValue& other) const { return v_ == other.v_; }

  // Canonical byte encoding (tag byte + payload).
  void encode(ByteWriter& w) const;
  static Result<DynValue> decode(ByteReader& r, std::size_t depth = 0);

  Bytes to_bytes() const;
  static Result<DynValue> from_bytes(const Bytes& data);

  // Human-readable (JSON-ish) rendering for traces and test messages.
  [[nodiscard]] std::string to_string() const;

 private:
  Storage v_;
};

}  // namespace csaw
