#include "serdes/buffer.hpp"

#include <bit>

namespace csaw {

void ByteWriter::uvarint(std::uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::svarint(std::int64_t v) {
  // Zigzag: maps small negatives to small unsigned codes.
  uvarint((static_cast<std::uint64_t>(v) << 1) ^
          static_cast<std::uint64_t>(v >> 63));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void ByteWriter::raw(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  out_.insert(out_.end(), p, p + len);
}

void ByteWriter::str(std::string_view s) {
  uvarint(s.size());
  raw(s.data(), s.size());
}

void ByteWriter::blob(const Bytes& b) {
  uvarint(b.size());
  raw(b.data(), b.size());
}

Result<std::uint8_t> ByteReader::u8() {
  if (pos_ >= data_.size()) return make_error(Errc::kDecode, "u8 past end");
  return data_[pos_++];
}

Result<std::uint64_t> ByteReader::uvarint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) return make_error(Errc::kDecode, "varint past end");
    if (shift >= 64) return make_error(Errc::kDecode, "varint overflow");
    const std::uint8_t byte = data_[pos_++];
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

Result<std::int64_t> ByteReader::svarint() {
  auto raw = uvarint();
  if (!raw) return raw.error();
  const std::uint64_t u = *raw;
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

Result<double> ByteReader::f64() {
  if (remaining() < 8) return make_error(Errc::kDecode, "f64 past end");
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  }
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> ByteReader::str() {
  auto len = uvarint();
  if (!len) return len.error();
  if (*len > remaining()) return make_error(Errc::kDecode, "string past end");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return s;
}

Result<Bytes> ByteReader::blob() {
  auto len = uvarint();
  if (!len) return len.error();
  if (*len > remaining()) return make_error(Errc::kDecode, "blob past end");
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return b;
}

Status ByteReader::raw(void* dst, std::size_t len) {
  if (len > remaining()) return make_error(Errc::kDecode, "raw past end");
  std::memcpy(dst, data_.data() + pos_, len);
  pos_ += len;
  return Status::ok_status();
}

}  // namespace csaw
