// Type-tagged serialized payloads.
//
// Every payload stored in a KV table or sent over a channel carries the
// interned name of its source type; restore on the receiving side checks the
// tag before decoding, turning cross-instance type confusion into a
// recoverable kTypeMismatch instead of garbage data. This mirrors the
// contract of the paper's generated serializers, where both sides #include
// the same generated definitions.
#pragma once

#include <utility>

#include "serdes/archive.hpp"
#include "support/symbol.hpp"

namespace csaw {

struct SerializedValue {
  Symbol type;  // interned type name; invalid for the empty value
  Bytes bytes;

  [[nodiscard]] bool empty() const { return !type.valid() && bytes.empty(); }
  [[nodiscard]] std::size_t size() const { return bytes.size(); }

  bool operator==(const SerializedValue& other) const {
    return type == other.type && bytes == other.bytes;
  }
};

// Serializes `value` under the interned type name of T.
template <typename T>
SerializedValue pack(std::string_view type_name, T value,
                     SerdesLimits limits = {}) {
  return SerializedValue{Symbol(type_name), encode(std::move(value), limits)};
}

// Type-checked deserialization.
template <typename T>
Result<T> unpack(std::string_view type_name, const SerializedValue& sv,
                 SerdesLimits limits = {}) {
  if (sv.type != Symbol(type_name)) {
    return make_error(Errc::kTypeMismatch,
                      "expected type '" + std::string(type_name) + "' got '" +
                          sv.type.str() + "'");
  }
  return decode<T>(sv.bytes, limits);
}

// serdes_fields for SerializedValue itself so it can nest in messages.
template <typename Ar>
void serdes_fields(Ar& ar, SerializedValue& sv) {
  std::string name = sv.type.valid() ? sv.type.str() : std::string();
  ar.field(name);
  if constexpr (requires { ar.take(); }) {  // Encoder
  } else {
    sv.type = name.empty() ? Symbol() : Symbol(name);
  }
  ar.field(sv.bytes);
}

}  // namespace csaw
