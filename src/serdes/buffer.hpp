// Bounds-checked byte buffers with varint encoding.
//
// The wire format used for all C-Saw messages and KV-table payloads:
//   * unsigned integers: LEB128 varint
//   * signed integers:   zigzag + varint
//   * doubles:           8-byte little-endian IEEE-754
//   * strings/bytes:     varint length prefix + raw bytes
// Reads never run past the buffer; a malformed stream yields Errc::kDecode
// rather than undefined behavior.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "support/result.hpp"

namespace csaw {

using Bytes = std::vector<std::uint8_t>;

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void uvarint(std::uint64_t v);
  void svarint(std::int64_t v);
  void f64(double v);
  void raw(const void* data, std::size_t len);
  void str(std::string_view s);
  void blob(const Bytes& b);

  [[nodiscard]] const Bytes& bytes() const { return out_; }
  Bytes take() { return std::move(out_); }
  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  Bytes out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const Bytes& data) : data_(data.data(), data.size()) {}
  // A ByteReader views the buffer; it must outlive the reader.
  explicit ByteReader(Bytes&&) = delete;

  Result<std::uint8_t> u8();
  Result<std::uint64_t> uvarint();
  Result<std::int64_t> svarint();
  Result<double> f64();
  Result<std::string> str();
  Result<Bytes> blob();
  Status raw(void* dst, std::size_t len);

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace csaw
