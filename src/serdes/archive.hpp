// C-strider-style type-aware traversal (paper S9).
//
// The paper's serializer statically analyzes C struct definitions (with
// libclang) and emits per-field serialization calls, with recursion limited
// to a configurable maximum depth so linked structures cannot overflow the
// buffer. We reproduce the same capability with a C++ customization point:
// each serializable type provides
//
//   template <typename Ar> void serdes_fields(Ar& ar, T& value);
//
// which lists its fields once; a single definition drives both encoding and
// decoding (the Ar parameter is an Encoder or a Decoder). Pointer-shaped
// fields (unique_ptr) are nullable and depth-limited: chains longer than
// `Limits::max_depth` are truncated on encode, exactly like the paper's
// bounded linked-list traversal.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serdes/buffer.hpp"
#include "support/result.hpp"

namespace csaw {

struct SerdesLimits {
  // Maximum pointer-chase depth; deeper tails are truncated (encode) or
  // rejected (decode of a stream claiming more depth than allowed).
  std::size_t max_depth = 64;
  // Maximum element count for containers; defends the decode path.
  std::size_t max_elems = 1u << 22;
};

template <typename T, typename Ar>
concept HasSerdesFields = requires(Ar& ar, T& v) { serdes_fields(ar, v); };

class Encoder {
 public:
  explicit Encoder(SerdesLimits limits = {}) : limits_(limits) {}

  // --- field visitors -------------------------------------------------
  void field(bool& v) { w_.u8(v ? 1 : 0); }
  void field(std::uint8_t& v) { w_.u8(v); }
  void field(std::uint16_t& v) { w_.uvarint(v); }
  void field(std::uint32_t& v) { w_.uvarint(v); }
  void field(std::uint64_t& v) { w_.uvarint(v); }
  void field(std::int8_t& v) { w_.svarint(v); }
  void field(std::int16_t& v) { w_.svarint(v); }
  void field(std::int32_t& v) { w_.svarint(v); }
  void field(std::int64_t& v) { w_.svarint(v); }
  void field(float& v) { w_.f64(v); }
  void field(double& v) { w_.f64(v); }
  void field(std::string& v) { w_.str(v); }
  void field(Bytes& v) { w_.blob(v); }

  template <typename E>
    requires std::is_enum_v<E>
  void field(E& v) {
    w_.svarint(static_cast<std::int64_t>(v));
  }

  template <typename T>
    requires HasSerdesFields<T, Encoder>
  void field(T& v) {
    serdes_fields(*this, v);
  }

  template <typename T>
  void field(std::vector<T>& v) {
    w_.uvarint(v.size());
    for (auto& e : v) field(e);
  }

  template <typename T, std::size_t N>
  void field(std::array<T, N>& v) {
    for (auto& e : v) field(e);
  }

  template <typename A, typename B>
  void field(std::pair<A, B>& v) {
    field(v.first);
    field(v.second);
  }

  template <typename K, typename V>
  void field(std::map<K, V>& v) {
    w_.uvarint(v.size());
    for (auto& [k, val] : v) {
      K key = k;  // maps expose const keys; serialize a copy
      field(key);
      field(val);
    }
  }

  template <typename K, typename V>
  void field(std::unordered_map<K, V>& v) {
    w_.uvarint(v.size());
    for (auto& [k, val] : v) {
      K key = k;
      field(key);
      field(val);
    }
  }

  template <typename T>
  void field(std::optional<T>& v) {
    w_.u8(v.has_value() ? 1 : 0);
    if (v) field(*v);
  }

  // Nullable owned pointer: the depth-limited case. Once `max_depth`
  // pointer hops have been taken on the current path, the remainder is
  // encoded as null ("truncated") and `truncated()` reports it.
  template <typename T>
  void field(std::unique_ptr<T>& v) {
    if (v && depth_ < limits_.max_depth) {
      w_.u8(1);
      ++depth_;
      field(*v);
      --depth_;
    } else {
      if (v) truncated_ = true;
      w_.u8(0);
    }
  }

  // --- results ---------------------------------------------------------
  Bytes take() { return w_.take(); }
  [[nodiscard]] std::size_t size() const { return w_.size(); }
  [[nodiscard]] bool truncated() const { return truncated_; }

 private:
  SerdesLimits limits_;
  ByteWriter w_;
  std::size_t depth_ = 0;
  bool truncated_ = false;
};

class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data, SerdesLimits limits = {})
      : limits_(limits), r_(data) {}
  explicit Decoder(const Bytes& data, SerdesLimits limits = {})
      : limits_(limits), r_(data) {}
  // A Decoder views the buffer; it must outlive the Decoder.
  explicit Decoder(Bytes&&, SerdesLimits = {}) = delete;

  void field(bool& v) { v = take(r_.u8()) != 0; }
  void field(std::uint8_t& v) { v = take(r_.u8()); }
  void field(std::uint16_t& v) { v = static_cast<std::uint16_t>(take(r_.uvarint())); }
  void field(std::uint32_t& v) { v = static_cast<std::uint32_t>(take(r_.uvarint())); }
  void field(std::uint64_t& v) { v = take(r_.uvarint()); }
  void field(std::int8_t& v) { v = static_cast<std::int8_t>(take(r_.svarint())); }
  void field(std::int16_t& v) { v = static_cast<std::int16_t>(take(r_.svarint())); }
  void field(std::int32_t& v) { v = static_cast<std::int32_t>(take(r_.svarint())); }
  void field(std::int64_t& v) { v = take(r_.svarint()); }
  void field(float& v) { v = static_cast<float>(take(r_.f64())); }
  void field(double& v) { v = take(r_.f64()); }
  void field(std::string& v) { v = take(r_.str()); }
  void field(Bytes& v) { v = take(r_.blob()); }

  template <typename E>
    requires std::is_enum_v<E>
  void field(E& v) {
    v = static_cast<E>(take(r_.svarint()));
  }

  template <typename T>
    requires HasSerdesFields<T, Decoder>
  void field(T& v) {
    serdes_fields(*this, v);
  }

  template <typename T>
  void field(std::vector<T>& v) {
    const auto n = take(r_.uvarint());
    if (n > limits_.max_elems) return fail("container too large");
    v.clear();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n && ok(); ++i) field(v.emplace_back());
  }

  template <typename T, std::size_t N>
  void field(std::array<T, N>& v) {
    for (auto& e : v) field(e);
  }

  template <typename A, typename B>
  void field(std::pair<A, B>& v) {
    field(v.first);
    field(v.second);
  }

  template <typename K, typename V>
  void field(std::map<K, V>& v) {
    const auto n = take(r_.uvarint());
    if (n > limits_.max_elems) return fail("map too large");
    v.clear();
    for (std::uint64_t i = 0; i < n && ok(); ++i) {
      K key{};
      V val{};
      field(key);
      field(val);
      v.emplace(std::move(key), std::move(val));
    }
  }

  template <typename K, typename V>
  void field(std::unordered_map<K, V>& v) {
    const auto n = take(r_.uvarint());
    if (n > limits_.max_elems) return fail("map too large");
    v.clear();
    v.reserve(n);
    for (std::uint64_t i = 0; i < n && ok(); ++i) {
      K key{};
      V val{};
      field(key);
      field(val);
      v.emplace(std::move(key), std::move(val));
    }
  }

  template <typename T>
  void field(std::optional<T>& v) {
    if (take(r_.u8()) != 0) {
      v.emplace();
      field(*v);
    } else {
      v.reset();
    }
  }

  template <typename T>
  void field(std::unique_ptr<T>& v) {
    if (take(r_.u8()) != 0) {
      if (depth_ >= limits_.max_depth) return fail("pointer depth exceeded");
      ++depth_;
      v = std::make_unique<T>();
      field(*v);
      --depth_;
    } else {
      v.reset();
    }
  }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  [[nodiscard]] Status status() const {
    return error_ ? Status(*error_) : Status::ok_status();
  }
  [[nodiscard]] bool exhausted() const { return r_.exhausted(); }

 private:
  template <typename T>
  T take(Result<T> r) {
    if (!r.ok()) {
      if (!error_) error_ = r.error();
      return T{};
    }
    return std::move(r).value();
  }

  void fail(std::string msg) {
    if (!error_) error_ = make_error(Errc::kDecode, std::move(msg));
  }

  SerdesLimits limits_;
  ByteReader r_;
  std::size_t depth_ = 0;
  std::optional<Error> error_;
};

// One-shot helpers.
template <typename T>
Bytes encode(T value, SerdesLimits limits = {}) {
  Encoder enc(limits);
  enc.field(value);
  return enc.take();
}

template <typename T>
Result<T> decode(const Bytes& data, SerdesLimits limits = {}) {
  Decoder dec(data, limits);
  T value{};
  dec.field(value);
  if (!dec.ok()) return dec.status().error();
  if (!dec.exhausted()) return make_error(Errc::kDecode, "trailing bytes");
  return value;
}

}  // namespace csaw
