// miniredis: a single-threaded in-memory KV store standing in for Redis
// v2.0.2 (see DESIGN.md "Substitutions").
//
// The evaluation behaviors the paper measures on Redis -- checkpoint dips,
// shard routing ratios, cache-hit gains, GET/SET latency distributions --
// depend only on a single-threaded server with GET/SET/DEL over an in-memory
// table and serializable state, which this provides. A configurable per-op
// cost models Redis's command processing so that architectural overheads
// (routing hops, serialization) are measured against a realistic baseline
// rather than a free no-op.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "serdes/archive.hpp"
#include "support/result.hpp"

namespace csaw::miniredis {

struct StoreStats {
  std::uint64_t gets = 0;
  std::uint64_t sets = 0;
  std::uint64_t dels = 0;
  std::uint64_t hits = 0;    // GET found
  std::uint64_t misses = 0;  // GET not found
};

class Store {
 public:
  // `op_cost_ns`: busy-work per command modeling Redis's parse+dispatch.
  explicit Store(std::uint64_t op_cost_ns = 900);

  std::optional<std::string> get(const std::string& key);
  void set(const std::string& key, std::string value);
  bool del(const std::string& key);

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] const StoreStats& stats() const { return stats_; }
  void clear();

  // Object size in bytes for size-aware sharding (0 if absent).
  [[nodiscard]] std::size_t object_size(const std::string& key) const;

  // --- checkpointing ------------------------------------------------------
  // Serializes the entire keyspace (the paper's on-demand Redis
  // checkpoint). Cost scales with contents, which is what produces the
  // throughput dips of Fig 23a.
  [[nodiscard]] Bytes snapshot() const;
  Status restore(const Bytes& snapshot);

 private:
  void burn();

  std::unordered_map<std::string, std::string> map_;
  StoreStats stats_;
  std::uint64_t op_cost_ns_;
};

}  // namespace csaw::miniredis
