// miniredis deployments behind C-Saw architectures.
//
// Each service wires one architecture pattern to the miniredis substrate and
// exposes the same request() interface, so benches and applications can swap
// architectures the way the paper swaps DSL expressions:
//
//   BaselineService      -- unmodified single store (the paper's "Baseline")
//   CheckpointedService  -- Fig 4 snapshot architecture checkpointing the
//                           keyspace to an auditor; supports crash + resume
//                           (the paper's Checkpointing / "Replication")
//   ShardedService       -- Fig 5 N-ary sharding by key hash (djb2),
//                           object-size class, or a custom chooser
//   CachedService        -- Fig 7 inline cache in front of the store
//   ReplicatedService    -- chain or quorum replication (patterns/chain,
//                           patterns/quorum) with per-table consistency
//                           knobs: eventual / read-your-writes (HLC token) /
//                           linearizable (epoch leader)
//   RebalancedService    -- dynamic membership + live bucket handoff
//                           (patterns/rebalance): fixed hash buckets routed
//                           by a versioned BucketMap, shards added at
//                           runtime, buckets streamed between owners while
//                           writes continue (kWrongOwner fencing + journaled
//                           handoff phases that survive crashes)
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/miniredis/command.hpp"
#include "apps/miniredis/store.hpp"
#include "compart/consistency.hpp"
#include "compart/membership.hpp"
#include "core/interp.hpp"
#include "obs/hlc.hpp"
#include "patterns/caching.hpp"
#include "patterns/chain.hpp"
#include "patterns/quorum.hpp"
#include "patterns/rebalance.hpp"
#include "patterns/sharding.hpp"
#include "patterns/snapshot.hpp"

namespace csaw::miniredis {

// Default per-command CPU cost (models Redis command processing).
constexpr std::uint64_t kDefaultOpCostNs = 900;

class Service {
 public:
  virtual ~Service() = default;
  virtual Result<Response> request(const Command& command) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

// --- unmodified ---------------------------------------------------------------

class BaselineService : public Service {
 public:
  explicit BaselineService(std::uint64_t op_cost_ns = kDefaultOpCostNs)
      : store_(op_cost_ns) {}

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override { return "baseline"; }
  Store& store() { return store_; }

 private:
  Store store_;
};

// --- checkpointing (Fig 4 snapshot pattern) -------------------------------------

class CheckpointedService : public Service {
 public:
  struct Options {
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // Optional observability taps, forwarded to the underlying runtime;
    // both borrowed and must outlive the service.
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    // Optional continuous cost profiler (borrowed; must outlive the
    // service), and/or a CostProfile JSON path the runtime writes at
    // teardown (compart/runtime.hpp).
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set. The bound port is metrics_http_port().
    int metrics_http_port = -1;
    // Transport for the underlying runtime: in-process (default), loopback
    // TCP, or a multi-process TCP mesh configured by `tcp` (listener
    // address, peer map, frame/queue bounds -- compart/tcp_options.hpp).
    Transport transport = Transport::kInProcess;
    TcpOptions tcp{};
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  CheckpointedService() : CheckpointedService(make_default_options()) {}
  explicit CheckpointedService(Options options);

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override { return "checkpointed"; }

  // Drives one snapshot of the whole keyspace through the architecture.
  Status checkpoint();
  // Requests a snapshot without waiting for it (overlaps serving traffic,
  // like the paper's interval checkpointer).
  Status checkpoint_async();
  // Crash the serving instance (its store is lost) and resume it from the
  // auditor's last checkpoint.
  Status crash_and_resume();

  [[nodiscard]] std::size_t checkpoints_taken() const;
  [[nodiscard]] std::size_t keyspace_size() const;
  // Bound /metrics port, or -1 when the HTTP endpoint is disabled.
  [[nodiscard]] int metrics_http_port() const;

 private:
  static Options make_default_options();
  struct ActState;
  struct AudState;
  std::shared_ptr<ActState> act_;
  std::shared_ptr<AudState> aud_;
  std::unique_ptr<Engine> engine_;
};

// --- sharding (Fig 5) ------------------------------------------------------------

class ShardedService : public Service {
 public:
  enum class Mode { kByKeyHash, kByObjectSize };

  struct Options {
    std::size_t shards = 4;
    Mode mode = Mode::kByKeyHash;
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // Object-size class boundaries (inclusive upper bounds; last is +inf).
    std::vector<std::size_t> size_bounds = {4 * 1024, 16 * 1024, 64 * 1024};
    // Optional observability taps (borrowed; must outlive the service).
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    // Optional continuous cost profiler (borrowed; must outlive the
    // service), and/or a CostProfile JSON path the runtime writes at
    // teardown (compart/runtime.hpp).
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set. The bound port is metrics_http_port().
    int metrics_http_port = -1;
    // Transport for the underlying runtime: in-process (default), loopback
    // TCP, or a multi-process TCP mesh configured by `tcp` (listener
    // address, peer map, frame/queue bounds -- compart/tcp_options.hpp).
    Transport transport = Transport::kInProcess;
    TcpOptions tcp{};
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  ShardedService() : ShardedService(make_default_options()) {}
  explicit ShardedService(Options options);

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override {
    return options_.mode == Mode::kByKeyHash ? "shard-key" : "shard-size";
  }

  static Options make_default_options();

  // Which shard index the service would route this key/value to.
  [[nodiscard]] std::size_t shard_of(const Command& command) const;
  // Per-shard processed-request counters.
  [[nodiscard]] std::vector<std::uint64_t> shard_counts() const;
  // Bound /metrics port, or -1 when the HTTP endpoint is disabled.
  [[nodiscard]] int metrics_http_port() const;

 private:
  struct FrontState;
  struct BackState;
  Options options_;
  std::shared_ptr<FrontState> front_;
  std::vector<std::shared_ptr<BackState>> backs_;
  std::unique_ptr<Engine> engine_;
};

// --- caching (Fig 7) --------------------------------------------------------------

class CachedService : public Service {
 public:
  struct Options {
    bool cache_enabled = true;  // false = same architecture, cache bypassed
    std::size_t cache_capacity = 4096;
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // Optional observability taps (borrowed; must outlive the service).
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    // Optional continuous cost profiler (borrowed; must outlive the
    // service), and/or a CostProfile JSON path the runtime writes at
    // teardown (compart/runtime.hpp).
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set. The bound port is metrics_http_port().
    int metrics_http_port = -1;
    // Transport for the underlying runtime: in-process (default), loopback
    // TCP, or a multi-process TCP mesh configured by `tcp` (listener
    // address, peer map, frame/queue bounds -- compart/tcp_options.hpp).
    Transport transport = Transport::kInProcess;
    TcpOptions tcp{};
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  CachedService() : CachedService(make_default_options()) {}
  explicit CachedService(Options options);
  static Options make_default_options();

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override {
    return options_.cache_enabled ? "cached" : "uncached";
  }

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  // Bound /metrics port, or -1 when the HTTP endpoint is disabled.
  [[nodiscard]] int metrics_http_port() const;

 private:
  struct CacheState;
  struct FunState;
  Options options_;
  std::shared_ptr<CacheState> cache_;
  std::shared_ptr<FunState> fun_;
  std::unique_ptr<Engine> engine_;
};

// --- replication (chain / quorum, ROADMAP item 3) ---------------------------------

// miniredis behind the chain or quorum replication pattern, with per-table
// consistency knobs (compart/consistency.hpp):
//
//   kEventual       -- reads served locally by any live replica.
//   kReadYourWrites -- each Session carries an HLC token per key it wrote
//                      (stamped by the acknowledged write); a replica serves
//                      the read only if its applied stamp for the key is
//                      at-or-after the token, else routing falls through to
//                      the epoch leader (head / leader replica), which holds
//                      every acknowledged write by construction.
//   kLinearizable   -- reads routed through the architecture and serialized
//                      with writes at the epoch leader (chain: full relay,
//                      response from the tail; quorum: leader read).
//
// Writes always traverse the architecture. Chain: a client ack means every
// live chain node applied the command (the per-hop ack cascades from the
// tail). Quorum: a client ack means at least `write_quorum` replicas
// applied it; reads with `read_quorum` > 1 fan out and merge by HLC
// last-writer-wins, repairing any replica that answered with a stale stamp.
//
// Failure handling is epoch-fenced control-plane reconfiguration: on a
// failed call the service consults the runtime's liveness view
// (`is_running`, fed by the failure detector in mesh deployments), bumps
// the service epoch, compiles the surviving replica set as a fresh
// incarnation of the pattern, rebinds the surviving replica states, and
// retries. Replica stores live outside the engine, so no acknowledged
// write is lost across incarnations.
class ReplicatedService : public Service {
 public:
  enum class Mode { kChain, kQuorum };

  // Client session: the read-your-writes token (per-key HLC stamps of the
  // session's acknowledged writes). Sessions may be shared across threads.
  class Session {
   public:
    // The session's token for `key` (invalid Hlc when it never wrote it).
    [[nodiscard]] obs::Hlc token(const std::string& key) const;

   private:
    friend class ReplicatedService;
    mutable std::mutex mu_;
    std::unordered_map<std::string, obs::Hlc> last_write_;
  };

  struct Options {
    Mode mode = Mode::kChain;
    std::size_t replicas = 3;
    // Quorum tuning (quorum mode). W is strict: writes fail (and are NOT
    // acknowledged) while fewer than `write_quorum` replicas are reachable.
    // R only applies to eventual reads; it is clamped to the live count.
    std::size_t write_quorum = 2;
    std::size_t read_quorum = 1;
    // Per-table read consistency default; overridable per request.
    Consistency consistency = Consistency::kEventual;
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // Optional observability taps (borrowed; must outlive the service).
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set.
    int metrics_http_port = -1;
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  ReplicatedService() : ReplicatedService(make_default_options()) {}
  explicit ReplicatedService(Options options);
  static Options make_default_options();

  // Table-default consistency, no session (kEventual/kLinearizable).
  Result<Response> request(const Command& command) override;
  // Session-scoped request (read-your-writes tokens), optionally overriding
  // the table's consistency level for this call.
  Result<Response> request(const Command& command, Session& session);
  Result<Response> request(const Command& command, Session* session,
                           std::optional<Consistency> consistency);

  [[nodiscard]] std::string name() const override {
    return options_.mode == Mode::kChain ? "chain" : "quorum";
  }

  // --- control plane -------------------------------------------------------
  // Crash replica `i` (0-based). Its store is lost; the next failed call
  // (or an explicit reconfigure()) excises it.
  Status crash_replica(std::size_t i);
  // Bump the epoch and compile the surviving replica set as a fresh
  // incarnation. No-op error when no replica survives.
  Status reconfigure();
  // Re-arm fan-out membership for replicas the runtime reports running
  // again (after a partition heals, quorum mode).
  void refresh_membership();
  // Service epoch (incarnation count; also the runtime's authority epoch).
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::size_t live_replicas() const;
  // Per-replica applied-command counters (index = original replica slot).
  [[nodiscard]] std::vector<std::uint64_t> replica_applied() const;
  // The underlying runtime (chaos-harness hookup in tests).
  Runtime& runtime();

 private:
  struct FrontState;
  struct RepState;
  struct Gather;

  void build_engine();
  Status reconfigure_locked(bool force);
  void merge_survivors(const std::vector<std::size_t>& live);
  Result<Response> through_architecture(const Command& command, bool is_read,
                                        std::vector<bool> members,
                                        std::size_t required, obs::Hlc stamp,
                                        bool require_leader);
  // Serves the read from a live replica's store when one qualifies (for
  // read-your-writes: its applied stamp covers the session token); nullopt
  // falls the caller through to the leader / chain read.
  std::optional<Response> local_read(const Command& command,
                                     const Session* session);
  [[nodiscard]] std::size_t leader_slot() const;  // lowest live original slot
  [[nodiscard]] std::size_t live_index_of(std::size_t slot) const;

  Options options_;
  mutable std::mutex mu_;  // serializes requests and reconfiguration
  std::uint64_t epoch_ = 0;
  std::size_t rr_ = 0;  // read round-robin cursor
  std::shared_ptr<FrontState> front_;
  std::vector<std::shared_ptr<RepState>> reps_;  // original slots, fixed
  std::vector<bool> alive_;                      // per original slot
  std::vector<std::size_t> live_slots_;          // instance order -> slot
  std::vector<std::string> rep_names_;           // instance order -> name
  std::shared_ptr<Gather> gather_;
  std::unique_ptr<Engine> engine_;
};

// --- rebalance (dynamic membership + live handoff, ROADMAP item 2) ----------------

// miniredis behind the rebalance pattern (patterns/rebalance): keys hash
// into a fixed set of buckets, a versioned BucketMap (compart/membership)
// assigns each bucket an owning shard, and shards can be added at runtime
// with buckets handed off *live* -- the donor keeps serving the bucket while
// the mover streams its contents, then ownership flips under an epoch bump.
//
// Fencing. Every shard re-checks ownership against the authority routing
// table inside H_shard; a request routed by a stale client view is refused
// with a kWrongOwner nack carrying the authority's routing version. The
// client (request()) adopts the newer table and retries under capped
// exponential backoff with jitter, which bounds the routing-error window to
// roughly one drain + one backoff step. Acked writes are never lost: a
// write is acknowledged only after it was applied by the shard that owns
// the bucket *under the version the flip published*, and the handoff drains
// in-flight requests (a short exclusive window) before flipping.
//
// Crash safety. Every handoff phase transition (prepare -> streaming ->
// draining -> flip) is journaled to `journal_dir` with write_file_atomic
// before it takes effect. Recovery (constructor or recover()) applies one
// rule: a journal short of the flip record aborts the handoff -- the
// receiver's partial bucket copy is purged so deleted keys cannot resurrect
// -- while a flip record re-applies the flip (idempotent install of the
// journaled map) and then clears the journal. The routing map itself is
// persisted at every install, so a restarted control plane resumes with
// the newest published ownership.
class RebalancedService : public Service {
 public:
  struct Options {
    std::size_t shards = 2;    // initial shard count
    std::size_t buckets = 16;  // fixed bucket count (never changes)
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // kWrongOwner client retry policy: capped exponential backoff with
    // jitter in [backoff/2, backoff], doubling up to backoff_max.
    int max_retries = 10;
    std::chrono::nanoseconds backoff_initial = std::chrono::milliseconds(1);
    std::chrono::nanoseconds backoff_max = std::chrono::milliseconds(32);
    // Handoff streaming: keys per chunk, and how many delta rounds to chase
    // concurrent writers before draining.
    std::size_t chunk_keys = 64;
    int max_delta_rounds = 4;
    // Directory for the handoff journal + persisted routing map. Empty =
    // volatile (no files; crash recovery across process restarts disabled,
    // in-process aborts still work).
    std::string journal_dir;
    // Optional observability taps (borrowed; must outlive the service).
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  RebalancedService() : RebalancedService(make_default_options()) {}
  explicit RebalancedService(Options options);
  static Options make_default_options();

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override { return "rebalanced"; }

  // --- control plane -------------------------------------------------------
  // Membership join: adds one empty shard (it owns no buckets until a
  // handoff assigns it some) and recompiles the architecture around the
  // grown shard set. Requests are excluded only for the rebuild itself.
  Status add_shard();
  // One live bucket handoff: stream `bucket` from its current owner to
  // shard `to_shard`, then flip ownership under a bumped routing version.
  Status handoff(std::size_t bucket, std::size_t to_shard);
  // Handoffs until ownership is spread evenly over all current shards.
  Status rebalance();
  // Crash / restart shard `i`'s instance (its store survives -- it models
  // infrastructure outside the instance; a mid-handoff crash is what the
  // journal + abort rule are for).
  Status crash_shard(std::size_t i);
  Status restart_shard(std::size_t i);
  // Journal-driven recovery: abort an interrupted handoff (journal short of
  // the flip) or re-apply a journaled flip. The constructor runs this when
  // journal_dir holds a journal; tests call it after crash injections.
  Status recover();

  // --- introspection -------------------------------------------------------
  [[nodiscard]] std::size_t shard_count() const;
  [[nodiscard]] std::uint64_t routing_version() const;
  [[nodiscard]] std::vector<std::size_t> owned_buckets(std::size_t i) const;
  [[nodiscard]] std::uint64_t wrong_owner_nacks() const;
  [[nodiscard]] std::uint64_t client_retries() const;
  [[nodiscard]] std::uint64_t handoffs_completed() const;
  [[nodiscard]] std::uint64_t handoffs_aborted() const;
  // Client-observed routing-error windows, one per retry episode: first
  // kWrongOwner nack to the next successful response (bench p99 input).
  [[nodiscard]] std::vector<std::chrono::nanoseconds> routing_error_windows()
      const;
  // The underlying runtime (chaos-harness hookup in tests).
  Runtime& runtime();

 private:
  struct ControlBlock;
  struct FrontState;
  struct ShardState;
  struct MoverState;

  void build_engine_locked();
  Status handoff_locked(std::size_t bucket, std::size_t to_shard);
  Status stream_keys_locked(ShardState& donor, std::size_t to_shard,
                            std::size_t bucket,
                            const std::vector<std::string>& keys);
  void abort_handoff_locked(std::size_t bucket, std::size_t to_shard);
  Status journal_locked(std::uint8_t phase, std::size_t bucket,
                        std::size_t from, std::size_t to,
                        std::uint64_t version);
  void journal_clear_locked();
  void persist_routing_locked();
  Status recover_locked();
  [[nodiscard]] std::string journal_path() const;
  [[nodiscard]] std::string shard_name(std::size_t i) const;
  [[nodiscard]] std::size_t shard_index(const std::string& name) const;
  void trace_handoff(const char* label, std::uint64_t value);

  Options options_;
  // Lock order: ctl_mu_ (control plane / handoff state machine) before
  // req_mu_ (request serialization + engine rebuild exclusion). request()
  // takes only req_mu_; handoff takes ctl_mu_ and acquires req_mu_ just for
  // the drain-and-flip window, so requests keep flowing while a bucket
  // streams.
  mutable std::mutex ctl_mu_;
  mutable std::mutex req_mu_;
  std::shared_ptr<ControlBlock> control_;
  std::shared_ptr<FrontState> front_;
  std::vector<std::shared_ptr<ShardState>> shards_;
  std::shared_ptr<MoverState> mover_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace csaw::miniredis
