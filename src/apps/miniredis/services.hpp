// miniredis deployments behind C-Saw architectures.
//
// Each service wires one architecture pattern to the miniredis substrate and
// exposes the same request() interface, so benches and applications can swap
// architectures the way the paper swaps DSL expressions:
//
//   BaselineService      -- unmodified single store (the paper's "Baseline")
//   CheckpointedService  -- Fig 4 snapshot architecture checkpointing the
//                           keyspace to an auditor; supports crash + resume
//                           (the paper's Checkpointing / "Replication")
//   ShardedService       -- Fig 5 N-ary sharding by key hash (djb2),
//                           object-size class, or a custom chooser
//   CachedService        -- Fig 7 inline cache in front of the store
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "apps/miniredis/command.hpp"
#include "apps/miniredis/store.hpp"
#include "core/interp.hpp"
#include "patterns/caching.hpp"
#include "patterns/sharding.hpp"
#include "patterns/snapshot.hpp"

namespace csaw::miniredis {

// Default per-command CPU cost (models Redis command processing).
constexpr std::uint64_t kDefaultOpCostNs = 900;

class Service {
 public:
  virtual ~Service() = default;
  virtual Result<Response> request(const Command& command) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

// --- unmodified ---------------------------------------------------------------

class BaselineService : public Service {
 public:
  explicit BaselineService(std::uint64_t op_cost_ns = kDefaultOpCostNs)
      : store_(op_cost_ns) {}

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override { return "baseline"; }
  Store& store() { return store_; }

 private:
  Store store_;
};

// --- checkpointing (Fig 4 snapshot pattern) -------------------------------------

class CheckpointedService : public Service {
 public:
  struct Options {
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // Optional observability taps, forwarded to the underlying runtime;
    // both borrowed and must outlive the service.
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    // Optional continuous cost profiler (borrowed; must outlive the
    // service), and/or a CostProfile JSON path the runtime writes at
    // teardown (compart/runtime.hpp).
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set. The bound port is metrics_http_port().
    int metrics_http_port = -1;
    // Transport for the underlying runtime: in-process (default), loopback
    // TCP, or a multi-process TCP mesh configured by `tcp` (listener
    // address, peer map, frame/queue bounds -- compart/tcp_options.hpp).
    Transport transport = Transport::kInProcess;
    TcpOptions tcp{};
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  CheckpointedService() : CheckpointedService(make_default_options()) {}
  explicit CheckpointedService(Options options);

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override { return "checkpointed"; }

  // Drives one snapshot of the whole keyspace through the architecture.
  Status checkpoint();
  // Requests a snapshot without waiting for it (overlaps serving traffic,
  // like the paper's interval checkpointer).
  Status checkpoint_async();
  // Crash the serving instance (its store is lost) and resume it from the
  // auditor's last checkpoint.
  Status crash_and_resume();

  [[nodiscard]] std::size_t checkpoints_taken() const;
  [[nodiscard]] std::size_t keyspace_size() const;
  // Bound /metrics port, or -1 when the HTTP endpoint is disabled.
  [[nodiscard]] int metrics_http_port() const;

 private:
  static Options make_default_options();
  struct ActState;
  struct AudState;
  std::shared_ptr<ActState> act_;
  std::shared_ptr<AudState> aud_;
  std::unique_ptr<Engine> engine_;
};

// --- sharding (Fig 5) ------------------------------------------------------------

class ShardedService : public Service {
 public:
  enum class Mode { kByKeyHash, kByObjectSize };

  struct Options {
    std::size_t shards = 4;
    Mode mode = Mode::kByKeyHash;
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // Object-size class boundaries (inclusive upper bounds; last is +inf).
    std::vector<std::size_t> size_bounds = {4 * 1024, 16 * 1024, 64 * 1024};
    // Optional observability taps (borrowed; must outlive the service).
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    // Optional continuous cost profiler (borrowed; must outlive the
    // service), and/or a CostProfile JSON path the runtime writes at
    // teardown (compart/runtime.hpp).
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set. The bound port is metrics_http_port().
    int metrics_http_port = -1;
    // Transport for the underlying runtime: in-process (default), loopback
    // TCP, or a multi-process TCP mesh configured by `tcp` (listener
    // address, peer map, frame/queue bounds -- compart/tcp_options.hpp).
    Transport transport = Transport::kInProcess;
    TcpOptions tcp{};
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  ShardedService() : ShardedService(make_default_options()) {}
  explicit ShardedService(Options options);

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override {
    return options_.mode == Mode::kByKeyHash ? "shard-key" : "shard-size";
  }

  static Options make_default_options();

  // Which shard index the service would route this key/value to.
  [[nodiscard]] std::size_t shard_of(const Command& command) const;
  // Per-shard processed-request counters.
  [[nodiscard]] std::vector<std::uint64_t> shard_counts() const;
  // Bound /metrics port, or -1 when the HTTP endpoint is disabled.
  [[nodiscard]] int metrics_http_port() const;

 private:
  struct FrontState;
  struct BackState;
  Options options_;
  std::shared_ptr<FrontState> front_;
  std::vector<std::shared_ptr<BackState>> backs_;
  std::unique_ptr<Engine> engine_;
};

// --- caching (Fig 7) --------------------------------------------------------------

class CachedService : public Service {
 public:
  struct Options {
    bool cache_enabled = true;  // false = same architecture, cache bypassed
    std::size_t cache_capacity = 4096;
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // Optional observability taps (borrowed; must outlive the service).
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    // Optional continuous cost profiler (borrowed; must outlive the
    // service), and/or a CostProfile JSON path the runtime writes at
    // teardown (compart/runtime.hpp).
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set. The bound port is metrics_http_port().
    int metrics_http_port = -1;
    // Transport for the underlying runtime: in-process (default), loopback
    // TCP, or a multi-process TCP mesh configured by `tcp` (listener
    // address, peer map, frame/queue bounds -- compart/tcp_options.hpp).
    Transport transport = Transport::kInProcess;
    TcpOptions tcp{};
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  CachedService() : CachedService(make_default_options()) {}
  explicit CachedService(Options options);
  static Options make_default_options();

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override {
    return options_.cache_enabled ? "cached" : "uncached";
  }

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  // Bound /metrics port, or -1 when the HTTP endpoint is disabled.
  [[nodiscard]] int metrics_http_port() const;

 private:
  struct CacheState;
  struct FunState;
  Options options_;
  std::shared_ptr<CacheState> cache_;
  std::shared_ptr<FunState> fun_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace csaw::miniredis
