// miniredis deployments behind C-Saw architectures.
//
// Each service wires one architecture pattern to the miniredis substrate and
// exposes the same request() interface, so benches and applications can swap
// architectures the way the paper swaps DSL expressions:
//
//   BaselineService      -- unmodified single store (the paper's "Baseline")
//   CheckpointedService  -- Fig 4 snapshot architecture checkpointing the
//                           keyspace to an auditor; supports crash + resume
//                           (the paper's Checkpointing / "Replication")
//   ShardedService       -- Fig 5 N-ary sharding by key hash (djb2),
//                           object-size class, or a custom chooser
//   CachedService        -- Fig 7 inline cache in front of the store
//   ReplicatedService    -- chain or quorum replication (patterns/chain,
//                           patterns/quorum) with per-table consistency
//                           knobs: eventual / read-your-writes (HLC token) /
//                           linearizable (epoch leader)
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/miniredis/command.hpp"
#include "apps/miniredis/store.hpp"
#include "compart/consistency.hpp"
#include "core/interp.hpp"
#include "obs/hlc.hpp"
#include "patterns/caching.hpp"
#include "patterns/chain.hpp"
#include "patterns/quorum.hpp"
#include "patterns/sharding.hpp"
#include "patterns/snapshot.hpp"

namespace csaw::miniredis {

// Default per-command CPU cost (models Redis command processing).
constexpr std::uint64_t kDefaultOpCostNs = 900;

class Service {
 public:
  virtual ~Service() = default;
  virtual Result<Response> request(const Command& command) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

// --- unmodified ---------------------------------------------------------------

class BaselineService : public Service {
 public:
  explicit BaselineService(std::uint64_t op_cost_ns = kDefaultOpCostNs)
      : store_(op_cost_ns) {}

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override { return "baseline"; }
  Store& store() { return store_; }

 private:
  Store store_;
};

// --- checkpointing (Fig 4 snapshot pattern) -------------------------------------

class CheckpointedService : public Service {
 public:
  struct Options {
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // Optional observability taps, forwarded to the underlying runtime;
    // both borrowed and must outlive the service.
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    // Optional continuous cost profiler (borrowed; must outlive the
    // service), and/or a CostProfile JSON path the runtime writes at
    // teardown (compart/runtime.hpp).
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set. The bound port is metrics_http_port().
    int metrics_http_port = -1;
    // Transport for the underlying runtime: in-process (default), loopback
    // TCP, or a multi-process TCP mesh configured by `tcp` (listener
    // address, peer map, frame/queue bounds -- compart/tcp_options.hpp).
    Transport transport = Transport::kInProcess;
    TcpOptions tcp{};
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  CheckpointedService() : CheckpointedService(make_default_options()) {}
  explicit CheckpointedService(Options options);

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override { return "checkpointed"; }

  // Drives one snapshot of the whole keyspace through the architecture.
  Status checkpoint();
  // Requests a snapshot without waiting for it (overlaps serving traffic,
  // like the paper's interval checkpointer).
  Status checkpoint_async();
  // Crash the serving instance (its store is lost) and resume it from the
  // auditor's last checkpoint.
  Status crash_and_resume();

  [[nodiscard]] std::size_t checkpoints_taken() const;
  [[nodiscard]] std::size_t keyspace_size() const;
  // Bound /metrics port, or -1 when the HTTP endpoint is disabled.
  [[nodiscard]] int metrics_http_port() const;

 private:
  static Options make_default_options();
  struct ActState;
  struct AudState;
  std::shared_ptr<ActState> act_;
  std::shared_ptr<AudState> aud_;
  std::unique_ptr<Engine> engine_;
};

// --- sharding (Fig 5) ------------------------------------------------------------

class ShardedService : public Service {
 public:
  enum class Mode { kByKeyHash, kByObjectSize };

  struct Options {
    std::size_t shards = 4;
    Mode mode = Mode::kByKeyHash;
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // Object-size class boundaries (inclusive upper bounds; last is +inf).
    std::vector<std::size_t> size_bounds = {4 * 1024, 16 * 1024, 64 * 1024};
    // Optional observability taps (borrowed; must outlive the service).
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    // Optional continuous cost profiler (borrowed; must outlive the
    // service), and/or a CostProfile JSON path the runtime writes at
    // teardown (compart/runtime.hpp).
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set. The bound port is metrics_http_port().
    int metrics_http_port = -1;
    // Transport for the underlying runtime: in-process (default), loopback
    // TCP, or a multi-process TCP mesh configured by `tcp` (listener
    // address, peer map, frame/queue bounds -- compart/tcp_options.hpp).
    Transport transport = Transport::kInProcess;
    TcpOptions tcp{};
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  ShardedService() : ShardedService(make_default_options()) {}
  explicit ShardedService(Options options);

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override {
    return options_.mode == Mode::kByKeyHash ? "shard-key" : "shard-size";
  }

  static Options make_default_options();

  // Which shard index the service would route this key/value to.
  [[nodiscard]] std::size_t shard_of(const Command& command) const;
  // Per-shard processed-request counters.
  [[nodiscard]] std::vector<std::uint64_t> shard_counts() const;
  // Bound /metrics port, or -1 when the HTTP endpoint is disabled.
  [[nodiscard]] int metrics_http_port() const;

 private:
  struct FrontState;
  struct BackState;
  Options options_;
  std::shared_ptr<FrontState> front_;
  std::vector<std::shared_ptr<BackState>> backs_;
  std::unique_ptr<Engine> engine_;
};

// --- caching (Fig 7) --------------------------------------------------------------

class CachedService : public Service {
 public:
  struct Options {
    bool cache_enabled = true;  // false = same architecture, cache bypassed
    std::size_t cache_capacity = 4096;
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // Optional observability taps (borrowed; must outlive the service).
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    // Optional continuous cost profiler (borrowed; must outlive the
    // service), and/or a CostProfile JSON path the runtime writes at
    // teardown (compart/runtime.hpp).
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set. The bound port is metrics_http_port().
    int metrics_http_port = -1;
    // Transport for the underlying runtime: in-process (default), loopback
    // TCP, or a multi-process TCP mesh configured by `tcp` (listener
    // address, peer map, frame/queue bounds -- compart/tcp_options.hpp).
    Transport transport = Transport::kInProcess;
    TcpOptions tcp{};
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  CachedService() : CachedService(make_default_options()) {}
  explicit CachedService(Options options);
  static Options make_default_options();

  Result<Response> request(const Command& command) override;
  [[nodiscard]] std::string name() const override {
    return options_.cache_enabled ? "cached" : "uncached";
  }

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  // Bound /metrics port, or -1 when the HTTP endpoint is disabled.
  [[nodiscard]] int metrics_http_port() const;

 private:
  struct CacheState;
  struct FunState;
  Options options_;
  std::shared_ptr<CacheState> cache_;
  std::shared_ptr<FunState> fun_;
  std::unique_ptr<Engine> engine_;
};

// --- replication (chain / quorum, ROADMAP item 3) ---------------------------------

// miniredis behind the chain or quorum replication pattern, with per-table
// consistency knobs (compart/consistency.hpp):
//
//   kEventual       -- reads served locally by any live replica.
//   kReadYourWrites -- each Session carries an HLC token per key it wrote
//                      (stamped by the acknowledged write); a replica serves
//                      the read only if its applied stamp for the key is
//                      at-or-after the token, else routing falls through to
//                      the epoch leader (head / leader replica), which holds
//                      every acknowledged write by construction.
//   kLinearizable   -- reads routed through the architecture and serialized
//                      with writes at the epoch leader (chain: full relay,
//                      response from the tail; quorum: leader read).
//
// Writes always traverse the architecture. Chain: a client ack means every
// live chain node applied the command (the per-hop ack cascades from the
// tail). Quorum: a client ack means at least `write_quorum` replicas
// applied it; reads with `read_quorum` > 1 fan out and merge by HLC
// last-writer-wins, repairing any replica that answered with a stale stamp.
//
// Failure handling is epoch-fenced control-plane reconfiguration: on a
// failed call the service consults the runtime's liveness view
// (`is_running`, fed by the failure detector in mesh deployments), bumps
// the service epoch, compiles the surviving replica set as a fresh
// incarnation of the pattern, rebinds the surviving replica states, and
// retries. Replica stores live outside the engine, so no acknowledged
// write is lost across incarnations.
class ReplicatedService : public Service {
 public:
  enum class Mode { kChain, kQuorum };

  // Client session: the read-your-writes token (per-key HLC stamps of the
  // session's acknowledged writes). Sessions may be shared across threads.
  class Session {
   public:
    // The session's token for `key` (invalid Hlc when it never wrote it).
    [[nodiscard]] obs::Hlc token(const std::string& key) const;

   private:
    friend class ReplicatedService;
    mutable std::mutex mu_;
    std::unordered_map<std::string, obs::Hlc> last_write_;
  };

  struct Options {
    Mode mode = Mode::kChain;
    std::size_t replicas = 3;
    // Quorum tuning (quorum mode). W is strict: writes fail (and are NOT
    // acknowledged) while fewer than `write_quorum` replicas are reachable.
    // R only applies to eventual reads; it is clamped to the live count.
    std::size_t write_quorum = 2;
    std::size_t read_quorum = 1;
    // Per-table read consistency default; overridable per request.
    Consistency consistency = Consistency::kEventual;
    std::uint64_t op_cost_ns = kDefaultOpCostNs;
    std::int64_t timeout_ms = 2000;
    LinkModel link = LinkModel::in_process();
    // Optional observability taps (borrowed; must outlive the service).
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set.
    int metrics_http_port = -1;
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  ReplicatedService() : ReplicatedService(make_default_options()) {}
  explicit ReplicatedService(Options options);
  static Options make_default_options();

  // Table-default consistency, no session (kEventual/kLinearizable).
  Result<Response> request(const Command& command) override;
  // Session-scoped request (read-your-writes tokens), optionally overriding
  // the table's consistency level for this call.
  Result<Response> request(const Command& command, Session& session);
  Result<Response> request(const Command& command, Session* session,
                           std::optional<Consistency> consistency);

  [[nodiscard]] std::string name() const override {
    return options_.mode == Mode::kChain ? "chain" : "quorum";
  }

  // --- control plane -------------------------------------------------------
  // Crash replica `i` (0-based). Its store is lost; the next failed call
  // (or an explicit reconfigure()) excises it.
  Status crash_replica(std::size_t i);
  // Bump the epoch and compile the surviving replica set as a fresh
  // incarnation. No-op error when no replica survives.
  Status reconfigure();
  // Re-arm fan-out membership for replicas the runtime reports running
  // again (after a partition heals, quorum mode).
  void refresh_membership();
  // Service epoch (incarnation count; also the runtime's authority epoch).
  [[nodiscard]] std::uint64_t epoch() const;
  [[nodiscard]] std::size_t live_replicas() const;
  // Per-replica applied-command counters (index = original replica slot).
  [[nodiscard]] std::vector<std::uint64_t> replica_applied() const;
  // The underlying runtime (chaos-harness hookup in tests).
  Runtime& runtime();

 private:
  struct FrontState;
  struct RepState;
  struct Gather;

  void build_engine();
  Status reconfigure_locked(bool force);
  void merge_survivors(const std::vector<std::size_t>& live);
  Result<Response> through_architecture(const Command& command, bool is_read,
                                        std::vector<bool> members,
                                        std::size_t required, obs::Hlc stamp,
                                        bool require_leader);
  // Serves the read from a live replica's store when one qualifies (for
  // read-your-writes: its applied stamp covers the session token); nullopt
  // falls the caller through to the leader / chain read.
  std::optional<Response> local_read(const Command& command,
                                     const Session* session);
  [[nodiscard]] std::size_t leader_slot() const;  // lowest live original slot
  [[nodiscard]] std::size_t live_index_of(std::size_t slot) const;

  Options options_;
  mutable std::mutex mu_;  // serializes requests and reconfiguration
  std::uint64_t epoch_ = 0;
  std::size_t rr_ = 0;  // read round-robin cursor
  std::shared_ptr<FrontState> front_;
  std::vector<std::shared_ptr<RepState>> reps_;  // original slots, fixed
  std::vector<bool> alive_;                      // per original slot
  std::vector<std::size_t> live_slots_;          // instance order -> slot
  std::vector<std::string> rep_names_;           // instance order -> name
  std::shared_ptr<Gather> gather_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace csaw::miniredis
