// RebalancedService: miniredis behind patterns/rebalance -- dynamic
// membership (shards added at runtime) with live bucket handoff. See the
// class comment in services.hpp for the fencing and crash-safety story;
// this file is the host side of the pattern plus the handoff state machine.
#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "apps/miniredis/services.hpp"
#include "core/builder.hpp"
#include "core/compile.hpp"
#include "support/io.hpp"
#include "support/rng.hpp"

namespace csaw::miniredis {
namespace {

constexpr auto kCallDeadline = std::chrono::seconds(10);
constexpr const char* kShardPrefix = "Shd";  // matches RebalanceOptions

// Handoff journal phases, in commit order. Anything short of kFlip aborts
// on recovery; kFlip re-applies (the flip record is written *before* the
// routing install, so a crash between the two redoes an idempotent install).
constexpr std::uint8_t kPhasePrepare = 1;
constexpr std::uint8_t kPhaseStreaming = 2;
constexpr std::uint8_t kPhaseDraining = 3;
constexpr std::uint8_t kPhaseFlip = 4;

Response apply(Store& store, const Command& c) {
  switch (c.op) {
    case Command::Op::kGet: {
      auto v = store.get(c.key);
      return Response{v.has_value(), v.value_or("")};
    }
    case Command::Op::kSet:
      store.set(c.key, c.value);
      return Response{true, ""};
    case Command::Op::kDel:
      return Response{store.del(c.key), ""};
  }
  return Response{};
}

}  // namespace

// --- wire payloads -----------------------------------------------------------------

// A routed request carries the client's routing version so the stale-route
// fence is visible on the wire (the shard nacks against its own authority
// view regardless; the version documents what the client believed).
struct RebPayload {
  Command cmd;
  std::uint64_t routing_version = 0;
};
template <typename Ar>
void serdes_fields(Ar& ar, RebPayload& p) {
  ar.field(p.cmd);
  ar.field(p.routing_version);
}

// Shard reply: either the response, or a kWrongOwner nack carrying the
// authority's routing version (the client refreshes and retries).
struct RebReply {
  bool wrong_owner = false;
  std::uint64_t routing_version = 0;
  Response resp;
};
template <typename Ar>
void serdes_fields(Ar& ar, RebReply& r) {
  ar.field(r.wrong_owner);
  ar.field(r.routing_version);
  ar.field(r.resp);
}

// One handoff chunk: absolute key states (value or tombstone), so re-sending
// after a crash is idempotent by construction.
struct ChunkEntry {
  std::string key;
  bool found = false;
  std::string value;
};
template <typename Ar>
void serdes_fields(Ar& ar, ChunkEntry& e) {
  ar.field(e.key);
  ar.field(e.found);
  ar.field(e.value);
}

struct ChunkPayload {
  std::uint64_t bucket = 0;
  std::vector<ChunkEntry> entries;
};
template <typename Ar>
void serdes_fields(Ar& ar, ChunkPayload& c) {
  ar.field(c.bucket);
  ar.field(c.entries);
}

// The journaled handoff record (one per handoff, rewritten atomically at
// each phase transition).
struct HandoffRecord {
  std::uint8_t phase = 0;
  std::uint64_t bucket = 0;
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  std::uint64_t version = 0;
};
template <typename Ar>
void serdes_fields(Ar& ar, HandoffRecord& r) {
  ar.field(r.phase);
  ar.field(r.bucket);
  ar.field(r.from);
  ar.field(r.to);
  ar.field(r.version);
}

// --- shared state ------------------------------------------------------------------

// State shared by the request path (every H_shard run), the client retry
// loop, and the handoff control plane.
struct RebalancedService::ControlBlock {
  // The authority table: what the control plane has published. Shards fence
  // against this; flips install into it.
  RoutingTable authority;
  // The client view: what request() routes by. Deliberately NOT updated at
  // flips -- it catches up through the kWrongOwner nack path, which is what
  // makes the routing-error window real and measurable.
  RoutingTable client;

  // In-flight handoff (at most one; ctl_mu_ serializes the control plane).
  std::atomic<std::int64_t> moving_bucket{-1};
  std::atomic<std::int64_t> moving_from{-1};
  // Drain flag: the donor nacks requests for the moving bucket while set.
  std::atomic<bool> blocked{false};
  // Keys of the moving bucket written at the donor since the last delta
  // sweep (the WAL-tail analogue the mover streams after the snapshot).
  std::mutex delta_mu;
  std::unordered_set<std::string> delta;

  std::atomic<std::uint64_t> chunks_ingested{0};
  std::atomic<std::uint64_t> wrong_owner{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> aborted{0};

  std::mutex window_mu;
  std::vector<std::chrono::nanoseconds> windows;

  obs::Counter* m_wrong_owner = nullptr;
  obs::Counter* m_retries = nullptr;
  obs::Counter* m_completed = nullptr;
  obs::Counter* m_aborted = nullptr;
  obs::Counter* m_chunks = nullptr;
};

struct RebalancedService::FrontState {
  Mailbox<RebPayload> requests;
  Mailbox<RebReply> responses;
  RebPayload current;
  std::size_t buckets = 0;
  std::shared_ptr<ControlBlock> control;
  Rng rng{0x9e3779b97f4a7c15ULL};  // retry jitter; only touched under req_mu_
};

struct RebalancedService::ShardState {
  ShardState(std::size_t slot_in, std::string name_in, std::uint64_t cost,
             std::shared_ptr<ControlBlock> control_in)
      : slot(slot_in), name(std::move(name_in)), store(cost),
        control(std::move(control_in)) {}
  const std::size_t slot;
  const std::string name;
  std::mutex mu;  // guards store + bucket_keys
  Store store;
  // bucket -> keys living there. The Store has no enumeration API, so the
  // shard maintains the per-bucket index itself; it is what the handoff
  // snapshots and what an abort purges.
  std::unordered_map<std::size_t, std::unordered_set<std::string>> bucket_keys;
  RebPayload current;
  RebReply reply;
  std::atomic<std::uint64_t> processed{0};
  std::shared_ptr<ControlBlock> control;
};

struct RebalancedService::MoverState {
  struct Job {
    ChunkPayload chunk;
    std::int64_t target = 0;  // receiver shard index (its ingest junction)
  };
  Mailbox<Job> jobs;
  Job current;
};

// --- construction ------------------------------------------------------------------

RebalancedService::Options RebalancedService::make_default_options() {
  return Options{};
}

std::string RebalancedService::shard_name(std::size_t i) const {
  return kShardPrefix + std::to_string(i + 1);
}

std::size_t RebalancedService::shard_index(const std::string& name) const {
  const std::size_t prefix = std::string(kShardPrefix).size();
  if (name.size() <= prefix) return 0;
  return static_cast<std::size_t>(std::stoull(name.substr(prefix))) - 1;
}

RebalancedService::RebalancedService(Options options)
    : options_(std::move(options)) {
  CSAW_CHECK(options_.shards >= 1) << "rebalanced: need at least one shard";
  CSAW_CHECK(options_.buckets >= 1) << "rebalanced: need at least one bucket";
  control_ = std::make_shared<ControlBlock>();
  if (options_.metrics != nullptr) {
    control_->m_wrong_owner = &options_.metrics->counter("routing_wrong_owner");
    control_->m_retries = &options_.metrics->counter("routing_retries");
    control_->m_completed = &options_.metrics->counter("rebalance_completed");
    control_->m_aborted = &options_.metrics->counter("rebalance_aborts");
    control_->m_chunks = &options_.metrics->counter("rebalance_chunks");
  }
  front_ = std::make_shared<FrontState>();
  front_->buckets = options_.buckets;
  front_->control = control_;
  mover_ = std::make_shared<MoverState>();
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_shared<ShardState>(
        i, shard_name(i), options_.op_cost_ns, control_));
  }

  std::scoped_lock c(ctl_mu_);
  std::scoped_lock r(req_mu_);
  // Initial routing: the persisted map when one exists (membership and
  // ownership survive a control-plane restart), else an even spread.
  BucketMap initial;
  bool restored = false;
  if (!options_.journal_dir.empty()) {
    (void)io::ensure_dir(options_.journal_dir);
    if (auto data = io::read_file(options_.journal_dir + "/routing.map");
        data.ok()) {
      if (auto m = BucketMap::decode(*data); m.ok()) {
        initial = *std::move(m);
        restored = true;
      }
    }
  }
  if (restored) {
    // The persisted map implies membership: grow the shard set to cover
    // every owner it names.
    for (const auto& owner : initial.owners) {
      const std::size_t idx = shard_index(owner);
      while (shards_.size() <= idx) {
        shards_.push_back(std::make_shared<ShardState>(
            shards_.size(), shard_name(shards_.size()), options_.op_cost_ns,
            control_));
      }
    }
  } else {
    std::vector<std::string> names;
    names.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i)
      names.push_back(shard_name(i));
    initial = BucketMap::even(1, names, options_.buckets);
  }
  control_->authority.install(initial);
  control_->client.install(std::move(initial));
  build_engine_locked();
  if (!options_.journal_dir.empty()) {
    persist_routing_locked();
    (void)recover_locked();
  }
}

void RebalancedService::build_engine_locked() {
  patterns::RebalanceOptions popts;
  popts.shards = shards_.size();
  popts.timeout_ms = options_.timeout_ms;

  const std::size_t buckets = options_.buckets;
  HostBindings b;
  b.block("complain", [](HostCtx&) { return Status::ok_status(); });
  b.block("Route", [buckets](HostCtx& ctx) -> Status {
    auto& st = ctx.state<FrontState>();
    auto req = st.requests.pop(Deadline::after(std::chrono::seconds(5)));
    if (!req) return make_error(Errc::kHostFailure, "no request");
    st.current = std::move(*req);
    const std::size_t bucket =
        BucketMap::bucket_of(st.current.cmd.key, buckets);
    const std::string owner = st.control->client.owner_of_bucket(bucket);
    // "Shd<k>" -> engine instance index k-1; a map never names a shard the
    // current engine does not have (flips only target existing shards).
    std::int64_t idx = 0;
    const std::size_t prefix = std::string(kShardPrefix).size();
    if (owner.size() > prefix) {
      idx = static_cast<std::int64_t>(std::stoull(owner.substr(prefix))) - 1;
    }
    return ctx.set_idx("tgt", idx);
  });
  b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.RebPayload", ctx.state<FrontState>().current);
  });
  b.restorer("unpack_request",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto req = unpack<RebPayload>("miniredis.RebPayload", sv);
               if (!req) return req.error();
               ctx.state<ShardState>().current = *std::move(req);
               return Status::ok_status();
             });
  b.block("H_shard", [buckets](HostCtx& ctx) -> Status {
    auto& st = ctx.state<ShardState>();
    auto& ctl = *st.control;
    const Command& cmd = st.current.cmd;
    const std::size_t bucket = BucketMap::bucket_of(cmd.key, buckets);
    const std::string owner = ctl.authority.owner_of_bucket(bucket);
    const bool draining =
        ctl.blocked.load() &&
        ctl.moving_bucket.load() == static_cast<std::int64_t>(bucket);
    if (owner != st.name || draining) {
      // The stale-route fence (or the drain window): refuse, tell the
      // client the authority's version so it can catch up.
      st.reply = RebReply{true, ctl.authority.version(), Response{}};
      ctl.wrong_owner.fetch_add(1);
      if (ctl.m_wrong_owner != nullptr) ctl.m_wrong_owner->add();
      ctx.trace(Symbol("routing_wrong_owner"), bucket);
      return Status::ok_status();
    }
    Response resp;
    {
      std::scoped_lock lock(st.mu);
      resp = apply(st.store, cmd);
      if (cmd.op == Command::Op::kSet) {
        st.bucket_keys[bucket].insert(cmd.key);
      } else if (cmd.op == Command::Op::kDel) {
        if (auto it = st.bucket_keys.find(bucket);
            it != st.bucket_keys.end()) {
          it->second.erase(cmd.key);
        }
      }
      // Delta capture: a write to the bucket being streamed away from this
      // shard must reach the receiver before the flip.
      if (cmd.op != Command::Op::kGet &&
          ctl.moving_bucket.load() == static_cast<std::int64_t>(bucket) &&
          ctl.moving_from.load() == static_cast<std::int64_t>(st.slot)) {
        std::scoped_lock d(ctl.delta_mu);
        ctl.delta.insert(cmd.key);
      }
    }
    st.processed.fetch_add(1);
    st.reply = RebReply{false, st.current.routing_version, std::move(resp)};
    return Status::ok_status();
  });
  b.saver("pack_response", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.RebReply", ctx.state<ShardState>().reply);
  });
  b.restorer("deliver_response",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto reply = unpack<RebReply>("miniredis.RebReply", sv);
               if (!reply) return reply.error();
               ctx.state<FrontState>().responses.push(*std::move(reply));
               return Status::ok_status();
             });
  b.block("NextChunk", [](HostCtx& ctx) -> Status {
    auto& st = ctx.state<MoverState>();
    auto job = st.jobs.pop(Deadline::after(std::chrono::seconds(5)));
    if (!job) return make_error(Errc::kHostFailure, "no pending chunk");
    st.current = std::move(*job);
    return ctx.set_idx("tgt", st.current.target);
  });
  b.saver("pack_chunk", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.RebChunk", ctx.state<MoverState>().current.chunk);
  });
  b.restorer("ingest_chunk",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto chunk = unpack<ChunkPayload>("miniredis.RebChunk", sv);
               if (!chunk) return chunk.error();
               auto& st = ctx.state<ShardState>();
               {
                 std::scoped_lock lock(st.mu);
                 auto& keys =
                     st.bucket_keys[static_cast<std::size_t>(chunk->bucket)];
                 for (const auto& e : chunk->entries) {
                   if (e.found) {
                     st.store.set(e.key, e.value);
                     keys.insert(e.key);
                   } else {
                     (void)st.store.del(e.key);
                     keys.erase(e.key);
                   }
                 }
               }
               st.control->chunks_ingested.fetch_add(1);
               if (st.control->m_chunks != nullptr) st.control->m_chunks->add();
               ctx.trace(Symbol("rebalance_chunk_ingested"),
                         chunk->entries.size());
               return Status::ok_status();
             });

  auto compiled = compile(patterns::rebalance(popts));
  CSAW_CHECK(compiled.ok()) << compiled.error().to_string();
  EngineOptions eopts;
  eopts.runtime.default_link = options_.link;
  eopts.runtime.trace_sink = options_.trace_sink;
  eopts.runtime.metrics = options_.metrics;
  eopts.runtime.profiler = options_.profiler;
  eopts.runtime.profile_out = options_.profile_out;
  eopts.runtime.scheduler = options_.scheduler;
  engine_ = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                     eopts);
  engine_->set_state(Symbol(popts.front_instance), front_);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    engine_->set_state(Symbol(shard_name(i)), shards_[i]);
  }
  engine_->set_state(Symbol(popts.mover_instance), mover_);
  auto st = engine_->run_main();
  CSAW_CHECK(st.ok()) << st.error().to_string();
  // Fence the fresh runtime's epoch to the routing version: future flips
  // must publish versions newer than anything this map has seen.
  auto& rt = engine_->runtime();
  while (rt.epoch() < control_->authority.version()) rt.bump_epoch();
}

// --- request path ------------------------------------------------------------------

Result<Response> RebalancedService::request(const Command& command) {
  bool nacked = false;
  SteadyTime first_nack{};
  auto backoff = options_.backoff_initial;
  for (int attempt = 0;; ++attempt) {
    // req_mu_ is held per ATTEMPT, never across the backoff sleep: a nacked
    // client waiting out a drain-window nack must release the lock so the
    // handoff's drain-and-flip (which acquires req_mu_ as its barrier) can
    // actually complete -- holding it through the sleep would stall the very
    // flip the retry is waiting for until the client exhausts its retries.
    std::unique_lock lock(req_mu_);
    front_->requests.push(RebPayload{command, control_->client.version()});
    CSAW_TRY(engine_->call("Fnt", "j", Deadline::after(kCallDeadline)));
    // deliver_response runs inside the junction body, so by the time the
    // call returned the response (if any) is already in the mailbox; a
    // short pop distinguishes "complained" from "answered".
    auto reply = front_->responses.pop(
        Deadline::after(std::chrono::milliseconds(options_.timeout_ms)));
    if (!reply) {
      return make_error(Errc::kUnreachable,
                        "no response from shard (owner unreachable)");
    }
    if (!reply->wrong_owner) {
      if (nacked) {
        std::scoped_lock w(control_->window_mu);
        control_->windows.push_back(std::chrono::duration_cast<Nanos>(
            steady_now() - first_nack));
      }
      return reply->resp;
    }
    control_->retries.fetch_add(1);
    if (control_->m_retries != nullptr) control_->m_retries->add();
    if (!nacked) {
      nacked = true;
      first_nack = steady_now();
    }
    if (attempt >= options_.max_retries) {
      return make_error(Errc::kUnreachable,
                        "routing did not converge (wrong owner after max "
                        "retries)");
    }
    // Refresh the client view from the authority when the nack says it is
    // newer (adopt-if-newer; a drain-window nack carries the same version
    // and the adopt is a no-op), then back off with jitter.
    if (reply->routing_version > control_->client.version()) {
      (void)control_->client.adopt(control_->authority.snapshot());
    }
    // Draw the jitter while still holding req_mu_ (the shared RNG is
    // guarded by it), but sleep outside the lock -- see the comment at the
    // top of the loop.
    const auto half = backoff / 2;
    const Nanos jitter{static_cast<std::int64_t>(front_->rng.below(
        static_cast<std::uint64_t>(half.count()) + 1))};
    lock.unlock();
    std::this_thread::sleep_for(half + jitter);
    backoff = std::min<Nanos>(backoff * 2, options_.backoff_max);
  }
}

// --- handoff control plane ---------------------------------------------------------

std::string RebalancedService::journal_path() const {
  return options_.journal_dir + "/handoff.rec";
}

Status RebalancedService::journal_locked(std::uint8_t phase,
                                         std::size_t bucket, std::size_t from,
                                         std::size_t to,
                                         std::uint64_t version) {
  if (options_.journal_dir.empty()) return Status::ok_status();
  HandoffRecord rec{phase, bucket, from, to, version};
  const SerializedValue sv = pack("miniredis.HandoffRecord", rec);
  return io::write_file_atomic(journal_path(), sv.bytes.data(),
                               sv.bytes.size());
}

void RebalancedService::journal_clear_locked() {
  if (options_.journal_dir.empty()) return;
  (void)io::remove_file(journal_path());
}

void RebalancedService::persist_routing_locked() {
  if (options_.journal_dir.empty()) return;
  const Bytes bytes = control_->authority.snapshot().encode();
  (void)io::write_file_atomic(options_.journal_dir + "/routing.map",
                              bytes.data(), bytes.size());
}

void RebalancedService::trace_handoff(const char* label, std::uint64_t value) {
  if (options_.trace_sink == nullptr || engine_ == nullptr) return;
  obs::TraceEvent ev;
  ev.kind = obs::TraceEvent::Kind::kCustom;
  ev.at = steady_now();
  ev.label = Symbol(label);
  ev.value_ns = value;
  ev.hlc = engine_->runtime().hlc().tick();
  options_.trace_sink->record(ev);
}

Status RebalancedService::stream_keys_locked(
    ShardState& donor, std::size_t to_shard, std::size_t bucket,
    const std::vector<std::string>& keys) {
  auto& rt = engine_->runtime();
  for (std::size_t off = 0; off < keys.size(); off += options_.chunk_keys) {
    // A dead endpoint aborts the handoff (the journal + abort rule make
    // that safe); the mover would otherwise burn its full otherwise[t]
    // timeout per chunk learning the same thing.
    if (!rt.is_running(Symbol(donor.name))) {
      return make_error(Errc::kUnreachable, "donor crashed mid-handoff");
    }
    if (!rt.is_running(Symbol(shard_name(to_shard)))) {
      return make_error(Errc::kUnreachable, "receiver crashed mid-handoff");
    }
    MoverState::Job job;
    job.target = static_cast<std::int64_t>(to_shard);
    job.chunk.bucket = bucket;
    const std::size_t end = std::min(keys.size(), off + options_.chunk_keys);
    {
      std::scoped_lock lock(donor.mu);
      for (std::size_t i = off; i < end; ++i) {
        auto v = donor.store.get(keys[i]);
        job.chunk.entries.push_back(
            ChunkEntry{keys[i], v.has_value(), v.value_or("")});
      }
    }
    // Acknowledgement-as-evidence: the chunk counts as transferred only
    // when the receiver's ingest ran (it retracted the mover's Inbound and
    // bumped chunks_ingested); a completed mover call with no ingest ack
    // means the complain path fired.
    const std::uint64_t before = control_->chunks_ingested.load();
    mover_->jobs.push(std::move(job));
    CSAW_TRY(engine_->call("Mov", "m", Deadline::after(kCallDeadline)));
    if (control_->chunks_ingested.load() < before + 1) {
      return make_error(Errc::kUnreachable,
                        "handoff chunk not acknowledged by receiver");
    }
  }
  return Status::ok_status();
}

void RebalancedService::abort_handoff_locked(std::size_t bucket,
                                             std::size_t to_shard) {
  // Purge the receiver's partial copy of the bucket. Without this a later
  // retry could resurrect a key that was deleted at the donor after the
  // aborted stream shipped it.
  if (to_shard < shards_.size()) {
    ShardState& recv = *shards_[to_shard];
    std::scoped_lock lock(recv.mu);
    if (auto it = recv.bucket_keys.find(bucket);
        it != recv.bucket_keys.end()) {
      for (const auto& key : it->second) (void)recv.store.del(key);
      recv.bucket_keys.erase(it);
    }
  }
  {
    std::scoped_lock d(control_->delta_mu);
    control_->delta.clear();
  }
  control_->blocked.store(false);
  control_->moving_bucket.store(-1);
  control_->moving_from.store(-1);
  journal_clear_locked();
  control_->aborted.fetch_add(1);
  if (control_->m_aborted != nullptr) control_->m_aborted->add();
  trace_handoff("rebalance_abort", bucket);
}

Status RebalancedService::handoff(std::size_t bucket, std::size_t to_shard) {
  std::scoped_lock lock(ctl_mu_);
  return handoff_locked(bucket, to_shard);
}

Status RebalancedService::handoff_locked(std::size_t bucket,
                                         std::size_t to_shard) {
  if (bucket >= options_.buckets) {
    return make_error(Errc::kUndefinedName, "no such bucket");
  }
  if (to_shard >= shards_.size()) {
    return make_error(Errc::kUndefinedName, "no such shard");
  }
  const std::string to_name = shard_name(to_shard);
  const std::string from_name = control_->authority.owner_of_bucket(bucket);
  if (from_name == to_name) return Status::ok_status();
  const std::size_t from = shard_index(from_name);
  CSAW_CHECK(from < shards_.size()) << "routing names unknown shard";
  ShardState& donor = *shards_[from];

  // Phase 1: prepare. Journal first, then open the delta capture -- from
  // here every donor write to the bucket is recorded for the tail rounds.
  CSAW_TRY(journal_locked(kPhasePrepare, bucket, from, to_shard,
                          control_->authority.version()));
  trace_handoff("rebalance_prepare", bucket);
  {
    std::scoped_lock d(control_->delta_mu);
    control_->delta.clear();
  }
  control_->moving_from.store(static_cast<std::int64_t>(from));
  control_->moving_bucket.store(static_cast<std::int64_t>(bucket));

  // Phase 2: streaming. Full bucket snapshot, then delta rounds chasing
  // concurrent writers; requests keep flowing the whole time.
  Status st = journal_locked(kPhaseStreaming, bucket, from, to_shard,
                             control_->authority.version());
  if (st.ok()) {
    trace_handoff("rebalance_streaming", bucket);
    std::vector<std::string> keys;
    {
      std::scoped_lock lock(donor.mu);
      if (auto it = donor.bucket_keys.find(bucket);
          it != donor.bucket_keys.end()) {
        keys.assign(it->second.begin(), it->second.end());
      }
    }
    st = stream_keys_locked(donor, to_shard, bucket, keys);
    for (int round = 0; st.ok() && round < options_.max_delta_rounds;
         ++round) {
      std::vector<std::string> delta;
      {
        std::scoped_lock d(control_->delta_mu);
        delta.assign(control_->delta.begin(), control_->delta.end());
        control_->delta.clear();
      }
      if (delta.empty()) break;
      st = stream_keys_locked(donor, to_shard, bucket, delta);
    }
  }

  // Phase 3+4: drain, then flip. req_mu_ is the drain barrier: once held,
  // no request is mid-flight, so the final delta sweep is complete -- an
  // acked write is either in the receiver already or in this last batch.
  if (st.ok()) {
    st = journal_locked(kPhaseDraining, bucket, from, to_shard,
                        control_->authority.version());
  }
  if (st.ok()) {
    trace_handoff("rebalance_draining", bucket);
    control_->blocked.store(true);
    std::scoped_lock rq(req_mu_);
    std::vector<std::string> tail;
    {
      std::scoped_lock d(control_->delta_mu);
      tail.assign(control_->delta.begin(), control_->delta.end());
      control_->delta.clear();
    }
    if (!tail.empty()) st = stream_keys_locked(donor, to_shard, bucket, tail);
    if (st.ok()) {
      // Version = a freshly bumped authority epoch: stale-map fencing and
      // stale-writer fencing share one ordering.
      const std::uint64_t version =
          std::max(engine_->runtime().bump_epoch(),
                   control_->authority.version() + 1);
      st = journal_locked(kPhaseFlip, bucket, from, to_shard, version);
      if (st.ok()) {
        BucketMap next = control_->authority.snapshot();
        next.version = version;
        next.owners[bucket] = to_name;
        control_->authority.install(std::move(next));
        persist_routing_locked();
        // Donor hygiene: the bucket's keys moved; drop the stale copy so
        // it cannot be served by mistake and memory is reclaimed.
        {
          std::scoped_lock lock(donor.mu);
          if (auto it = donor.bucket_keys.find(bucket);
              it != donor.bucket_keys.end()) {
            for (const auto& key : it->second) (void)donor.store.del(key);
            donor.bucket_keys.erase(it);
          }
        }
        journal_clear_locked();
      }
    }
    control_->blocked.store(false);
    control_->moving_bucket.store(-1);
    control_->moving_from.store(-1);
  }
  if (!st.ok()) {
    abort_handoff_locked(bucket, to_shard);
    return st;
  }
  control_->completed.fetch_add(1);
  if (control_->m_completed != nullptr) control_->m_completed->add();
  trace_handoff("rebalance_flip", bucket);
  return Status::ok_status();
}

Status RebalancedService::add_shard() {
  std::scoped_lock c(ctl_mu_);
  std::scoped_lock r(req_mu_);
  const std::size_t slot = shards_.size();
  shards_.push_back(std::make_shared<ShardState>(
      slot, shard_name(slot), options_.op_cost_ns, control_));
  // Recompile around the grown shard set. The routing map is untouched:
  // the new shard owns nothing until a handoff assigns it buckets.
  engine_.reset();
  build_engine_locked();
  trace_handoff("rebalance_add_shard", slot);
  return Status::ok_status();
}

Status RebalancedService::rebalance() {
  std::scoped_lock lock(ctl_mu_);
  std::vector<std::string> names;
  names.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i)
    names.push_back(shard_name(i));
  const BucketMap target = BucketMap::even(0, names, options_.buckets);
  for (std::size_t bucket = 0; bucket < options_.buckets; ++bucket) {
    const std::string& want = target.owners[bucket];
    if (control_->authority.owner_of_bucket(bucket) == want) continue;
    CSAW_TRY(handoff_locked(bucket, shard_index(want)));
  }
  return Status::ok_status();
}

Status RebalancedService::crash_shard(std::size_t i) {
  std::scoped_lock lock(ctl_mu_);
  if (i >= shards_.size()) {
    return make_error(Errc::kUndefinedName, "no such shard");
  }
  engine_->crash(shard_name(i));
  return Status::ok_status();
}

Status RebalancedService::restart_shard(std::size_t i) {
  std::scoped_lock lock(ctl_mu_);
  if (i >= shards_.size()) {
    return make_error(Errc::kUndefinedName, "no such shard");
  }
  const std::string name = shard_name(i);
  if (engine_->runtime().is_running(Symbol(name))) {
    return Status::ok_status();
  }
  return engine_->start_instance(name);
}

Status RebalancedService::recover() {
  std::scoped_lock lock(ctl_mu_);
  return recover_locked();
}

Status RebalancedService::recover_locked() {
  if (options_.journal_dir.empty()) return Status::ok_status();
  auto data = io::read_file(journal_path());
  if (!data.ok()) return Status::ok_status();  // no journal, nothing pending
  SerializedValue sv{Symbol("miniredis.HandoffRecord"), *std::move(data)};
  auto rec = unpack<HandoffRecord>("miniredis.HandoffRecord", sv);
  if (!rec.ok()) {
    // A corrupt journal cannot be resumed; treat it as an interrupted
    // handoff with unknown receiver -- nothing flipped, so dropping the
    // journal alone is safe (no acked write depends on it).
    trace_handoff("rebalance_journal_corrupt", 0);
    journal_clear_locked();
    return Status::ok_status();
  }
  const std::size_t bucket = static_cast<std::size_t>(rec->bucket);
  const std::size_t to_shard = static_cast<std::size_t>(rec->to);
  if (rec->phase < kPhaseFlip) {
    // Short of the flip record: ownership never changed, so the receiver's
    // partial copy is the only artifact -- abort and purge it.
    abort_handoff_locked(bucket, to_shard);
    return Status::ok_status();
  }
  // Flip was journaled: the handoff is committed. Re-apply the install
  // (idempotent -- adopt only if the persisted map is older) and clear.
  BucketMap m = control_->authority.snapshot();
  if (m.version < rec->version && bucket < m.owners.size() &&
      to_shard < shards_.size()) {
    m.version = rec->version;
    m.owners[bucket] = shard_name(to_shard);
    control_->authority.install(std::move(m));
    persist_routing_locked();
    auto& rt = engine_->runtime();
    while (rt.epoch() < rec->version) rt.bump_epoch();
  }
  control_->blocked.store(false);
  control_->moving_bucket.store(-1);
  control_->moving_from.store(-1);
  journal_clear_locked();
  control_->completed.fetch_add(1);
  trace_handoff("rebalance_recovered_flip", bucket);
  return Status::ok_status();
}

// --- introspection -----------------------------------------------------------------

std::size_t RebalancedService::shard_count() const {
  std::scoped_lock lock(ctl_mu_);
  return shards_.size();
}

std::uint64_t RebalancedService::routing_version() const {
  return control_->authority.version();
}

std::vector<std::size_t> RebalancedService::owned_buckets(
    std::size_t i) const {
  return control_->authority.snapshot().buckets_of(shard_name(i));
}

std::uint64_t RebalancedService::wrong_owner_nacks() const {
  return control_->wrong_owner.load();
}

std::uint64_t RebalancedService::client_retries() const {
  return control_->retries.load();
}

std::uint64_t RebalancedService::handoffs_completed() const {
  return control_->completed.load();
}

std::uint64_t RebalancedService::handoffs_aborted() const {
  return control_->aborted.load();
}

std::vector<std::chrono::nanoseconds>
RebalancedService::routing_error_windows() const {
  std::scoped_lock lock(control_->window_mu);
  return control_->windows;
}

Runtime& RebalancedService::runtime() { return engine_->runtime(); }

}  // namespace csaw::miniredis
