#include "apps/miniredis/store.hpp"

#include <chrono>

namespace csaw::miniredis {
namespace {

struct StoreImage {
  std::unordered_map<std::string, std::string> map;
};

template <typename Ar>
void serdes_fields(Ar& ar, StoreImage& img) {
  ar.field(img.map);
}

}  // namespace

Store::Store(std::uint64_t op_cost_ns) : op_cost_ns_(op_cost_ns) {}

void Store::burn() {
  if (op_cost_ns_ == 0) return;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(op_cost_ns_);
  // Busy-wait: Redis's command processing is CPU work, not sleep.
  while (std::chrono::steady_clock::now() < until) {
  }
}

std::optional<std::string> Store::get(const std::string& key) {
  burn();
  ++stats_.gets;
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return it->second;
}

void Store::set(const std::string& key, std::string value) {
  burn();
  ++stats_.sets;
  map_[key] = std::move(value);
}

bool Store::del(const std::string& key) {
  burn();
  ++stats_.dels;
  return map_.erase(key) > 0;
}

void Store::clear() { map_.clear(); }

std::size_t Store::object_size(const std::string& key) const {
  auto it = map_.find(key);
  return it == map_.end() ? 0 : it->second.size();
}

Bytes Store::snapshot() const {
  StoreImage img{map_};
  return encode(std::move(img));
}

Status Store::restore(const Bytes& snapshot) {
  auto img = decode<StoreImage>(snapshot);
  if (!img) return img.error();
  map_ = std::move(img->map);
  return Status::ok_status();
}

}  // namespace csaw::miniredis
