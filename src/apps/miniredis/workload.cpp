#include "apps/miniredis/workload.hpp"

#include "support/check.hpp"

namespace csaw::miniredis {

std::string key_name(std::size_t index) {
  return "key:" + std::to_string(index);
}

Workload::Workload(WorkloadOptions options, std::uint64_t seed)
    : options_(std::move(options)), rng_(seed) {
  CSAW_CHECK(options_.keyspace > 0) << "empty keyspace";
  if (options_.popularity == WorkloadOptions::Popularity::kWeighted) {
    CSAW_CHECK(!options_.slice_weights.empty()) << "weighted without weights";
    double total = 0;
    for (double w : options_.slice_weights) total += w;
    double acc = 0;
    for (double w : options_.slice_weights) {
      acc += w / total;
      slice_cdf_.push_back(acc);
    }
  }
  if (!options_.size_classes.empty()) {
    CSAW_CHECK(options_.size_classes.size() == options_.size_class_mass.size())
        << "size class/mass length mismatch";
  }
}

std::size_t Workload::draw_key_index() {
  switch (options_.popularity) {
    case WorkloadOptions::Popularity::kUniform:
      return rng_.below(options_.keyspace);
    case WorkloadOptions::Popularity::kSkewed90_10: {
      // 90% of requests on the first 10% of the keyspace.
      const std::size_t hot = std::max<std::size_t>(1, options_.keyspace / 10);
      if (rng_.chance(0.9)) return rng_.below(hot);
      return hot + rng_.below(std::max<std::size_t>(1, options_.keyspace - hot));
    }
    case WorkloadOptions::Popularity::kWeighted: {
      const double u = rng_.uniform();
      std::size_t slice = 0;
      while (slice + 1 < slice_cdf_.size() && slice_cdf_[slice] < u) ++slice;
      const std::size_t slices = options_.slice_weights.size();
      const std::size_t width = options_.keyspace / slices;
      return slice * width + rng_.below(std::max<std::size_t>(1, width));
    }
  }
  return 0;
}

std::size_t Workload::draw_value_size() {
  if (options_.size_classes.empty()) return options_.value_bytes;
  const double u = rng_.uniform();
  double acc = 0;
  for (std::size_t i = 0; i < options_.size_classes.size(); ++i) {
    acc += options_.size_class_mass[i];
    if (u < acc) return options_.size_classes[i];
  }
  return options_.size_classes.back();
}

Command Workload::next() {
  Command c;
  const std::size_t key = draw_key_index();
  c.key = key_name(key);
  if (rng_.uniform() < options_.get_fraction) {
    c.op = Command::Op::kGet;
  } else {
    c.op = Command::Op::kSet;
    c.value.assign(draw_value_size(), 'v');
  }
  return c;
}

std::size_t Workload::slice_of_key(const std::string& key) const {
  const auto pos = key.find(':');
  CSAW_CHECK(pos != std::string::npos) << "malformed key " << key;
  const auto index = std::stoull(key.substr(pos + 1));
  const std::size_t slices = options_.slice_weights.empty()
                                 ? 1
                                 : options_.slice_weights.size();
  const std::size_t width = options_.keyspace / slices;
  return std::min<std::size_t>(slices - 1, index / std::max<std::size_t>(1, width));
}

}  // namespace csaw::miniredis
