// Commands, responses, and the request mailbox shared between bench clients
// (the redis-benchmark stand-in) and the server instance's junctions.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>

#include "serdes/archive.hpp"
#include "support/clock.hpp"

namespace csaw::miniredis {

struct Command {
  enum class Op : std::uint8_t { kGet, kSet, kDel };
  Op op = Op::kGet;
  std::string key;
  std::string value;  // kSet only
};

template <typename Ar>
void serdes_fields(Ar& ar, Command& c) {
  ar.field(c.op);
  ar.field(c.key);
  ar.field(c.value);
}

struct Response {
  bool found = false;
  std::string value;
};

template <typename Ar>
void serdes_fields(Ar& ar, Response& r) {
  ar.field(r.found);
  ar.field(r.value);
}

// A small MPMC blocking queue: clients push commands, the front-end
// junction's host block pops them (this is the host-side "application
// logic" that schedules the junction in the paper's model).
template <typename T>
class Mailbox {
 public:
  void push(T item) {
    {
      std::scoped_lock lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  std::optional<T> pop(Deadline deadline = Deadline::infinite()) {
    std::unique_lock lock(mu_);
    while (items_.empty()) {
      if (deadline.is_infinite()) {
        cv_.wait(lock);
      } else if (cv_.wait_until(lock, deadline.when()) ==
                     std::cv_status::timeout &&
                 items_.empty()) {
        return std::nullopt;
      }
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Copies the front item without removing it; pair with try_pop() on
  // completion for at-least-once intake (an aborted junction scheduling must
  // not lose the request).
  std::optional<T> peek(Deadline deadline = Deadline::infinite()) {
    std::unique_lock lock(mu_);
    while (items_.empty()) {
      if (deadline.is_infinite()) {
        cv_.wait(lock);
      } else if (cv_.wait_until(lock, deadline.when()) ==
                     std::cv_status::timeout &&
                 items_.empty()) {
        return std::nullopt;
      }
    }
    return items_.front();
  }

  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
};

}  // namespace csaw::miniredis
