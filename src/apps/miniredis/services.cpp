#include "apps/miniredis/services.hpp"

#include <deque>

#include "core/compile.hpp"
#include "support/rng.hpp"

namespace csaw::miniredis {
namespace {

constexpr auto kCallDeadline = std::chrono::seconds(10);

Response apply(Store& store, const Command& c) {
  switch (c.op) {
    case Command::Op::kGet: {
      auto v = store.get(c.key);
      return Response{v.has_value(), v.value_or("")};
    }
    case Command::Op::kSet:
      store.set(c.key, c.value);
      return Response{true, ""};
    case Command::Op::kDel:
      return Response{store.del(c.key), ""};
  }
  return Response{};
}

}  // namespace

// --- BaselineService ------------------------------------------------------------

Result<Response> BaselineService::request(const Command& command) {
  return apply(store_, command);
}

CheckpointedService::Options CheckpointedService::make_default_options() {
  return Options{};
}
ShardedService::Options ShardedService::make_default_options() {
  return Options{};
}
CachedService::Options CachedService::make_default_options() {
  return Options{};
}

// --- CheckpointedService ----------------------------------------------------------
// LOC-COUNT-BEGIN(glue_checkpoint)

struct CheckpointedService::ActState {
  explicit ActState(std::uint64_t cost) : store(cost) {}
  std::mutex mu;  // the single-threaded server: queries block on checkpoints
  Store store;
};

struct CheckpointedService::AudState {
  std::mutex mu;
  Bytes last;
  std::size_t count = 0;
};

CheckpointedService::CheckpointedService(Options options) {
  patterns::SnapshotOptions popts;
  popts.timeout_ms = options.timeout_ms;
  aud_ = std::make_shared<AudState>();

  HostBindings b;
  b.block("complain", [](HostCtx&) { return Status::ok_status(); });
  b.block("H1", [](HostCtx&) { return Status::ok_status(); });
  b.block("H2", [](HostCtx&) { return Status::ok_status(); });
  b.saver("capture_state", [](HostCtx& ctx) -> Result<SerializedValue> {
    auto& act = ctx.state<ActState>();
    std::scoped_lock lock(act.mu);
    return SerializedValue{Symbol("store.image"), act.store.snapshot()};
  });
  b.restorer("ingest_state",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto& aud = ctx.state<AudState>();
               std::scoped_lock lock(aud.mu);
               aud.last = sv.bytes;
               ++aud.count;
               return Status::ok_status();
             });

  auto compiled = compile(patterns::remote_snapshot(popts));
  CSAW_CHECK(compiled.ok()) << compiled.error().to_string();
  EngineOptions eopts;
  eopts.runtime.default_link = options.link;
  eopts.runtime.trace_sink = options.trace_sink;
  eopts.runtime.metrics = options.metrics;
  eopts.runtime.profiler = options.profiler;
  eopts.runtime.profile_out = options.profile_out;
  eopts.runtime.metrics_http_port = options.metrics_http_port;
  eopts.runtime.transport = options.transport;
  eopts.runtime.tcp = options.tcp;
  eopts.runtime.scheduler = options.scheduler;
  engine_ = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                     eopts);
  const auto cost = options.op_cost_ns;
  engine_->set_state_factory(Symbol("Act"), [this, cost] {
    act_ = std::make_shared<ActState>(cost);
    return std::static_pointer_cast<void>(act_);
  });
  engine_->set_state(Symbol("Aud"), aud_);
  auto st = engine_->run_main();
  CSAW_CHECK(st.ok()) << st.error().to_string();
}

Result<Response> CheckpointedService::request(const Command& command) {
  auto act = act_;
  std::scoped_lock lock(act->mu);
  return apply(act->store, command);
}

Status CheckpointedService::checkpoint() {
  return engine_->call("Act", "j", Deadline::after(kCallDeadline));
}

Status CheckpointedService::checkpoint_async() {
  return engine_->schedule("Act", "j");
}

Status CheckpointedService::crash_and_resume() {
  engine_->crash("Act");
  CSAW_TRY(engine_->start_instance("Act"));  // fresh, empty store
  Bytes image;
  {
    std::scoped_lock lock(aud_->mu);
    image = aud_->last;
  }
  if (image.empty()) return Status::ok_status();  // nothing checkpointed yet
  auto act = act_;
  std::scoped_lock lock(act->mu);
  return act->store.restore(image);
}

int CheckpointedService::metrics_http_port() const {
  return engine_->runtime().metrics_http_port();
}

std::size_t CheckpointedService::checkpoints_taken() const {
  std::scoped_lock lock(aud_->mu);
  return aud_->count;
}

std::size_t CheckpointedService::keyspace_size() const {
  auto act = act_;
  std::scoped_lock lock(act->mu);
  return act->store.size();
}

// LOC-COUNT-END(glue_checkpoint)

// --- ShardedService ----------------------------------------------------------------
// LOC-COUNT-BEGIN(glue_sharding)

struct ShardedService::FrontState {
  Mailbox<Command> requests;
  Mailbox<Response> responses;
  Command current;
  // Size-aware routing keeps a key -> size-class table at the router
  // (S5.2's "custom table that maps keys to object sizes").
  std::mutex mu;
  std::unordered_map<std::string, std::size_t> size_class;
  const ShardedService* owner = nullptr;
};

struct ShardedService::BackState {
  explicit BackState(std::uint64_t cost) : store(cost) {}
  Store store;
  Command current;
  Response response;
  std::atomic<std::uint64_t> processed{0};
};

ShardedService::ShardedService(Options options) : options_(std::move(options)) {
  patterns::ShardingOptions popts;
  popts.backends = options_.shards;
  popts.timeout_ms = options_.timeout_ms;

  front_ = std::make_shared<FrontState>();
  front_->owner = this;

  HostBindings b;
  b.block("complain", [](HostCtx&) { return Status::ok_status(); });
  b.block("Choose", [](HostCtx& ctx) -> Status {
    auto& st = ctx.state<FrontState>();
    auto cmd = st.requests.pop(Deadline::after(std::chrono::seconds(5)));
    if (!cmd) return make_error(Errc::kHostFailure, "no request");
    st.current = std::move(*cmd);
    return ctx.set_idx("tgt", static_cast<std::int64_t>(
                                  st.owner->shard_of(st.current)));
  });
  b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.Command", ctx.state<FrontState>().current);
  });
  b.restorer("unpack_request",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto cmd = unpack<Command>("miniredis.Command", sv);
               if (!cmd) return cmd.error();
               ctx.state<BackState>().current = std::move(*cmd);
               return Status::ok_status();
             });
  b.block("H_back", [](HostCtx& ctx) {
    auto& st = ctx.state<BackState>();
    st.response = apply(st.store, st.current);
    st.processed.fetch_add(1);
    return Status::ok_status();
  });
  b.saver("pack_response", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.Response", ctx.state<BackState>().response);
  });
  b.restorer("deliver_response",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto resp = unpack<Response>("miniredis.Response", sv);
               if (!resp) return resp.error();
               ctx.state<FrontState>().responses.push(std::move(*resp));
               return Status::ok_status();
             });

  auto compiled = compile(patterns::sharding(popts));
  CSAW_CHECK(compiled.ok()) << compiled.error().to_string();
  EngineOptions eopts;
  eopts.runtime.default_link = options_.link;
  eopts.runtime.trace_sink = options_.trace_sink;
  eopts.runtime.metrics = options_.metrics;
  eopts.runtime.profiler = options_.profiler;
  eopts.runtime.profile_out = options_.profile_out;
  eopts.runtime.metrics_http_port = options_.metrics_http_port;
  eopts.runtime.transport = options_.transport;
  eopts.runtime.tcp = options_.tcp;
  eopts.runtime.scheduler = options_.scheduler;
  engine_ = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                     eopts);
  engine_->set_state(Symbol(popts.front_instance), front_);
  for (const auto& name : patterns::shard_backend_names(popts)) {
    backs_.push_back(std::make_shared<BackState>(options_.op_cost_ns));
    engine_->set_state(Symbol(name), backs_.back());
  }
  auto st = engine_->run_main();
  CSAW_CHECK(st.ok()) << st.error().to_string();
}

std::size_t ShardedService::shard_of(const Command& command) const {
  if (options_.mode == Mode::kByKeyHash) {
    return djb2(command.key) % options_.shards;
  }
  // Object-size classes; SETs are classified by their value size and the
  // class is remembered so GET/DEL route to the same shard.
  std::scoped_lock lock(front_->mu);
  if (command.op == Command::Op::kSet) {
    std::size_t cls = 0;
    while (cls < options_.size_bounds.size() &&
           command.value.size() > options_.size_bounds[cls]) {
      ++cls;
    }
    cls = std::min(cls, options_.shards - 1);
    front_->size_class[command.key] = cls;
    return cls;
  }
  auto it = front_->size_class.find(command.key);
  return it == front_->size_class.end() ? 0 : it->second;
}

Result<Response> ShardedService::request(const Command& command) {
  front_->requests.push(command);
  CSAW_TRY(engine_->call("Fnt", "j", Deadline::after(kCallDeadline)));
  auto resp = front_->responses.pop(Deadline::after(kCallDeadline));
  if (!resp) return make_error(Errc::kTimeout, "no response from shard");
  return *resp;
}

int ShardedService::metrics_http_port() const {
  return engine_->runtime().metrics_http_port();
}

std::vector<std::uint64_t> ShardedService::shard_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(backs_.size());
  for (const auto& back : backs_) out.push_back(back->processed.load());
  return out;
}

// LOC-COUNT-END(glue_sharding)

// --- CachedService ------------------------------------------------------------------
// LOC-COUNT-BEGIN(glue_caching)

struct CachedService::CacheState {
  Mailbox<Command> requests;
  Mailbox<Response> responses;
  Command current;
  Response result;
  // FIFO-bounded memo table; policy is host-side per S7.2.
  std::unordered_map<std::string, std::string> cache;
  std::deque<std::string> fifo;
  std::size_t capacity = 4096;
  bool enabled = true;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

struct CachedService::FunState {
  explicit FunState(std::uint64_t cost) : store(cost) {}
  Store store;
  Command current;
  Response response;
};

CachedService::CachedService(Options options) : options_(std::move(options)) {
  patterns::CachingOptions popts;
  popts.timeout_ms = options_.timeout_ms;

  cache_ = std::make_shared<CacheState>();
  cache_->capacity = options_.cache_capacity;
  cache_->enabled = options_.cache_enabled;
  fun_ = std::make_shared<FunState>(options_.op_cost_ns);

  HostBindings b;
  b.block("complain", [](HostCtx&) { return Status::ok_status(); });
  b.block("CheckCacheable", [](HostCtx& ctx) -> Status {
    auto& st = ctx.state<CacheState>();
    auto cmd = st.requests.pop(Deadline::after(std::chrono::seconds(5)));
    if (!cmd) return make_error(Errc::kHostFailure, "no request");
    st.current = std::move(*cmd);
    const bool cacheable =
        st.enabled && st.current.op == Command::Op::kGet;
    if (st.current.op != Command::Op::kGet) {
      // Writes invalidate (the cache fronts a mutable store).
      st.cache.erase(st.current.key);
    }
    return ctx.set_prop("Cacheable", cacheable);
  });
  b.block("LookupCache", [](HostCtx& ctx) -> Status {
    auto& st = ctx.state<CacheState>();
    auto it = st.cache.find(st.current.key);
    if (it != st.cache.end()) {
      st.result = Response{true, it->second};
      st.responses.push(st.result);
      st.hits.fetch_add(1);
      return ctx.set_prop("Cached", true);
    }
    st.misses.fetch_add(1);
    return ctx.set_prop("Cached", false);
  });
  b.block("UpdateCache", [](HostCtx& ctx) {
    auto& st = ctx.state<CacheState>();
    if (!st.result.found) return Status::ok_status();
    if (st.cache.size() >= st.capacity && !st.fifo.empty()) {
      st.cache.erase(st.fifo.front());
      st.fifo.pop_front();
    }
    if (st.cache.emplace(st.current.key, st.result.value).second) {
      st.fifo.push_back(st.current.key);
    }
    return Status::ok_status();
  });
  b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.Command", ctx.state<CacheState>().current);
  });
  b.restorer("unpack_request",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto cmd = unpack<Command>("miniredis.Command", sv);
               if (!cmd) return cmd.error();
               ctx.state<FunState>().current = std::move(*cmd);
               return Status::ok_status();
             });
  b.block("F", [](HostCtx& ctx) {
    auto& st = ctx.state<FunState>();
    st.response = apply(st.store, st.current);
    return Status::ok_status();
  });
  b.saver("pack_response", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.Response", ctx.state<FunState>().response);
  });
  b.restorer("deliver_response",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto resp = unpack<Response>("miniredis.Response", sv);
               if (!resp) return resp.error();
               auto& st = ctx.state<CacheState>();
               st.result = *resp;
               st.responses.push(std::move(*resp));
               return Status::ok_status();
             });

  auto compiled = compile(patterns::caching(popts));
  CSAW_CHECK(compiled.ok()) << compiled.error().to_string();
  EngineOptions eopts;
  eopts.runtime.default_link = options_.link;
  eopts.runtime.trace_sink = options_.trace_sink;
  eopts.runtime.metrics = options_.metrics;
  eopts.runtime.profiler = options_.profiler;
  eopts.runtime.profile_out = options_.profile_out;
  eopts.runtime.metrics_http_port = options_.metrics_http_port;
  eopts.runtime.transport = options_.transport;
  eopts.runtime.tcp = options_.tcp;
  eopts.runtime.scheduler = options_.scheduler;
  engine_ = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                     eopts);
  engine_->set_state(Symbol("Cache"), cache_);
  engine_->set_state(Symbol("Fun"), fun_);
  auto st = engine_->run_main();
  CSAW_CHECK(st.ok()) << st.error().to_string();
}

Result<Response> CachedService::request(const Command& command) {
  cache_->requests.push(command);
  CSAW_TRY(engine_->call("Cache", "j", Deadline::after(kCallDeadline)));
  auto resp = cache_->responses.pop(Deadline::after(kCallDeadline));
  if (!resp) return make_error(Errc::kTimeout, "no response");
  return *resp;
}

int CachedService::metrics_http_port() const {
  return engine_->runtime().metrics_http_port();
}

std::uint64_t CachedService::hits() const { return cache_->hits.load(); }
std::uint64_t CachedService::misses() const { return cache_->misses.load(); }
// LOC-COUNT-END(glue_caching)

}  // namespace csaw::miniredis
