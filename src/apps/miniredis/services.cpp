#include "apps/miniredis/services.hpp"

#include <bit>
#include <deque>

#include "core/builder.hpp"
#include "core/compile.hpp"
#include "support/rng.hpp"

namespace csaw::miniredis {
namespace {

constexpr auto kCallDeadline = std::chrono::seconds(10);

Response apply(Store& store, const Command& c) {
  switch (c.op) {
    case Command::Op::kGet: {
      auto v = store.get(c.key);
      return Response{v.has_value(), v.value_or("")};
    }
    case Command::Op::kSet:
      store.set(c.key, c.value);
      return Response{true, ""};
    case Command::Op::kDel:
      return Response{store.del(c.key), ""};
  }
  return Response{};
}

}  // namespace

// --- BaselineService ------------------------------------------------------------

Result<Response> BaselineService::request(const Command& command) {
  return apply(store_, command);
}

CheckpointedService::Options CheckpointedService::make_default_options() {
  return Options{};
}
ShardedService::Options ShardedService::make_default_options() {
  return Options{};
}
CachedService::Options CachedService::make_default_options() {
  return Options{};
}

// --- CheckpointedService ----------------------------------------------------------
// LOC-COUNT-BEGIN(glue_checkpoint)

struct CheckpointedService::ActState {
  explicit ActState(std::uint64_t cost) : store(cost) {}
  std::mutex mu;  // the single-threaded server: queries block on checkpoints
  Store store;
};

struct CheckpointedService::AudState {
  std::mutex mu;
  Bytes last;
  std::size_t count = 0;
};

CheckpointedService::CheckpointedService(Options options) {
  patterns::SnapshotOptions popts;
  popts.timeout_ms = options.timeout_ms;
  aud_ = std::make_shared<AudState>();

  HostBindings b;
  b.block("complain", [](HostCtx&) { return Status::ok_status(); });
  b.block("H1", [](HostCtx&) { return Status::ok_status(); });
  b.block("H2", [](HostCtx&) { return Status::ok_status(); });
  b.saver("capture_state", [](HostCtx& ctx) -> Result<SerializedValue> {
    auto& act = ctx.state<ActState>();
    std::scoped_lock lock(act.mu);
    return SerializedValue{Symbol("store.image"), act.store.snapshot()};
  });
  b.restorer("ingest_state",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto& aud = ctx.state<AudState>();
               std::scoped_lock lock(aud.mu);
               aud.last = sv.bytes;
               ++aud.count;
               return Status::ok_status();
             });

  auto compiled = compile(patterns::remote_snapshot(popts));
  CSAW_CHECK(compiled.ok()) << compiled.error().to_string();
  EngineOptions eopts;
  eopts.runtime.default_link = options.link;
  eopts.runtime.trace_sink = options.trace_sink;
  eopts.runtime.metrics = options.metrics;
  eopts.runtime.profiler = options.profiler;
  eopts.runtime.profile_out = options.profile_out;
  eopts.runtime.metrics_http_port = options.metrics_http_port;
  eopts.runtime.transport = options.transport;
  eopts.runtime.tcp = options.tcp;
  eopts.runtime.scheduler = options.scheduler;
  engine_ = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                     eopts);
  const auto cost = options.op_cost_ns;
  engine_->set_state_factory(Symbol("Act"), [this, cost] {
    act_ = std::make_shared<ActState>(cost);
    return std::static_pointer_cast<void>(act_);
  });
  engine_->set_state(Symbol("Aud"), aud_);
  auto st = engine_->run_main();
  CSAW_CHECK(st.ok()) << st.error().to_string();
}

Result<Response> CheckpointedService::request(const Command& command) {
  auto act = act_;
  std::scoped_lock lock(act->mu);
  return apply(act->store, command);
}

Status CheckpointedService::checkpoint() {
  return engine_->call("Act", "j", Deadline::after(kCallDeadline));
}

Status CheckpointedService::checkpoint_async() {
  return engine_->schedule("Act", "j");
}

Status CheckpointedService::crash_and_resume() {
  engine_->crash("Act");
  CSAW_TRY(engine_->start_instance("Act"));  // fresh, empty store
  Bytes image;
  {
    std::scoped_lock lock(aud_->mu);
    image = aud_->last;
  }
  if (image.empty()) return Status::ok_status();  // nothing checkpointed yet
  auto act = act_;
  std::scoped_lock lock(act->mu);
  return act->store.restore(image);
}

int CheckpointedService::metrics_http_port() const {
  return engine_->runtime().metrics_http_port();
}

std::size_t CheckpointedService::checkpoints_taken() const {
  std::scoped_lock lock(aud_->mu);
  return aud_->count;
}

std::size_t CheckpointedService::keyspace_size() const {
  auto act = act_;
  std::scoped_lock lock(act->mu);
  return act->store.size();
}

// LOC-COUNT-END(glue_checkpoint)

// --- ShardedService ----------------------------------------------------------------
// LOC-COUNT-BEGIN(glue_sharding)

struct ShardedService::FrontState {
  Mailbox<Command> requests;
  Mailbox<Response> responses;
  Command current;
  // Size-aware routing keeps a key -> size-class table at the router
  // (S5.2's "custom table that maps keys to object sizes").
  std::mutex mu;
  std::unordered_map<std::string, std::size_t> size_class;
  const ShardedService* owner = nullptr;
};

struct ShardedService::BackState {
  explicit BackState(std::uint64_t cost) : store(cost) {}
  Store store;
  Command current;
  Response response;
  std::atomic<std::uint64_t> processed{0};
};

ShardedService::ShardedService(Options options) : options_(std::move(options)) {
  patterns::ShardingOptions popts;
  popts.backends = options_.shards;
  popts.timeout_ms = options_.timeout_ms;

  front_ = std::make_shared<FrontState>();
  front_->owner = this;

  HostBindings b;
  b.block("complain", [](HostCtx&) { return Status::ok_status(); });
  b.block("Choose", [](HostCtx& ctx) -> Status {
    auto& st = ctx.state<FrontState>();
    auto cmd = st.requests.pop(Deadline::after(std::chrono::seconds(5)));
    if (!cmd) return make_error(Errc::kHostFailure, "no request");
    st.current = std::move(*cmd);
    return ctx.set_idx("tgt", static_cast<std::int64_t>(
                                  st.owner->shard_of(st.current)));
  });
  b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.Command", ctx.state<FrontState>().current);
  });
  b.restorer("unpack_request",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto cmd = unpack<Command>("miniredis.Command", sv);
               if (!cmd) return cmd.error();
               ctx.state<BackState>().current = std::move(*cmd);
               return Status::ok_status();
             });
  b.block("H_back", [](HostCtx& ctx) {
    auto& st = ctx.state<BackState>();
    st.response = apply(st.store, st.current);
    st.processed.fetch_add(1);
    return Status::ok_status();
  });
  b.saver("pack_response", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.Response", ctx.state<BackState>().response);
  });
  b.restorer("deliver_response",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto resp = unpack<Response>("miniredis.Response", sv);
               if (!resp) return resp.error();
               ctx.state<FrontState>().responses.push(std::move(*resp));
               return Status::ok_status();
             });

  auto compiled = compile(patterns::sharding(popts));
  CSAW_CHECK(compiled.ok()) << compiled.error().to_string();
  EngineOptions eopts;
  eopts.runtime.default_link = options_.link;
  eopts.runtime.trace_sink = options_.trace_sink;
  eopts.runtime.metrics = options_.metrics;
  eopts.runtime.profiler = options_.profiler;
  eopts.runtime.profile_out = options_.profile_out;
  eopts.runtime.metrics_http_port = options_.metrics_http_port;
  eopts.runtime.transport = options_.transport;
  eopts.runtime.tcp = options_.tcp;
  eopts.runtime.scheduler = options_.scheduler;
  engine_ = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                     eopts);
  engine_->set_state(Symbol(popts.front_instance), front_);
  for (const auto& name : patterns::shard_backend_names(popts)) {
    backs_.push_back(std::make_shared<BackState>(options_.op_cost_ns));
    engine_->set_state(Symbol(name), backs_.back());
  }
  auto st = engine_->run_main();
  CSAW_CHECK(st.ok()) << st.error().to_string();
}

std::size_t ShardedService::shard_of(const Command& command) const {
  if (options_.mode == Mode::kByKeyHash) {
    return djb2(command.key) % options_.shards;
  }
  // Object-size classes; SETs are classified by their value size and the
  // class is remembered so GET/DEL route to the same shard.
  std::scoped_lock lock(front_->mu);
  if (command.op == Command::Op::kSet) {
    std::size_t cls = 0;
    while (cls < options_.size_bounds.size() &&
           command.value.size() > options_.size_bounds[cls]) {
      ++cls;
    }
    cls = std::min(cls, options_.shards - 1);
    front_->size_class[command.key] = cls;
    return cls;
  }
  auto it = front_->size_class.find(command.key);
  return it == front_->size_class.end() ? 0 : it->second;
}

Result<Response> ShardedService::request(const Command& command) {
  front_->requests.push(command);
  CSAW_TRY(engine_->call("Fnt", "j", Deadline::after(kCallDeadline)));
  auto resp = front_->responses.pop(Deadline::after(kCallDeadline));
  if (!resp) return make_error(Errc::kTimeout, "no response from shard");
  return *resp;
}

int ShardedService::metrics_http_port() const {
  return engine_->runtime().metrics_http_port();
}

std::vector<std::uint64_t> ShardedService::shard_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(backs_.size());
  for (const auto& back : backs_) out.push_back(back->processed.load());
  return out;
}

// LOC-COUNT-END(glue_sharding)

// --- CachedService ------------------------------------------------------------------
// LOC-COUNT-BEGIN(glue_caching)

struct CachedService::CacheState {
  Mailbox<Command> requests;
  Mailbox<Response> responses;
  Command current;
  Response result;
  // FIFO-bounded memo table; policy is host-side per S7.2.
  std::unordered_map<std::string, std::string> cache;
  std::deque<std::string> fifo;
  std::size_t capacity = 4096;
  bool enabled = true;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

struct CachedService::FunState {
  explicit FunState(std::uint64_t cost) : store(cost) {}
  Store store;
  Command current;
  Response response;
};

CachedService::CachedService(Options options) : options_(std::move(options)) {
  patterns::CachingOptions popts;
  popts.timeout_ms = options_.timeout_ms;

  cache_ = std::make_shared<CacheState>();
  cache_->capacity = options_.cache_capacity;
  cache_->enabled = options_.cache_enabled;
  fun_ = std::make_shared<FunState>(options_.op_cost_ns);

  HostBindings b;
  b.block("complain", [](HostCtx&) { return Status::ok_status(); });
  b.block("CheckCacheable", [](HostCtx& ctx) -> Status {
    auto& st = ctx.state<CacheState>();
    auto cmd = st.requests.pop(Deadline::after(std::chrono::seconds(5)));
    if (!cmd) return make_error(Errc::kHostFailure, "no request");
    st.current = std::move(*cmd);
    const bool cacheable =
        st.enabled && st.current.op == Command::Op::kGet;
    if (st.current.op != Command::Op::kGet) {
      // Writes invalidate (the cache fronts a mutable store).
      st.cache.erase(st.current.key);
    }
    return ctx.set_prop("Cacheable", cacheable);
  });
  b.block("LookupCache", [](HostCtx& ctx) -> Status {
    auto& st = ctx.state<CacheState>();
    auto it = st.cache.find(st.current.key);
    if (it != st.cache.end()) {
      st.result = Response{true, it->second};
      st.responses.push(st.result);
      st.hits.fetch_add(1);
      return ctx.set_prop("Cached", true);
    }
    st.misses.fetch_add(1);
    return ctx.set_prop("Cached", false);
  });
  b.block("UpdateCache", [](HostCtx& ctx) {
    auto& st = ctx.state<CacheState>();
    if (!st.result.found) return Status::ok_status();
    if (st.cache.size() >= st.capacity && !st.fifo.empty()) {
      st.cache.erase(st.fifo.front());
      st.fifo.pop_front();
    }
    if (st.cache.emplace(st.current.key, st.result.value).second) {
      st.fifo.push_back(st.current.key);
    }
    return Status::ok_status();
  });
  b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.Command", ctx.state<CacheState>().current);
  });
  b.restorer("unpack_request",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto cmd = unpack<Command>("miniredis.Command", sv);
               if (!cmd) return cmd.error();
               ctx.state<FunState>().current = std::move(*cmd);
               return Status::ok_status();
             });
  b.block("F", [](HostCtx& ctx) {
    auto& st = ctx.state<FunState>();
    st.response = apply(st.store, st.current);
    return Status::ok_status();
  });
  b.saver("pack_response", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.Response", ctx.state<FunState>().response);
  });
  b.restorer("deliver_response",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto resp = unpack<Response>("miniredis.Response", sv);
               if (!resp) return resp.error();
               auto& st = ctx.state<CacheState>();
               st.result = *resp;
               st.responses.push(std::move(*resp));
               return Status::ok_status();
             });

  auto compiled = compile(patterns::caching(popts));
  CSAW_CHECK(compiled.ok()) << compiled.error().to_string();
  EngineOptions eopts;
  eopts.runtime.default_link = options_.link;
  eopts.runtime.trace_sink = options_.trace_sink;
  eopts.runtime.metrics = options_.metrics;
  eopts.runtime.profiler = options_.profiler;
  eopts.runtime.profile_out = options_.profile_out;
  eopts.runtime.metrics_http_port = options_.metrics_http_port;
  eopts.runtime.transport = options_.transport;
  eopts.runtime.tcp = options_.tcp;
  eopts.runtime.scheduler = options_.scheduler;
  engine_ = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                     eopts);
  engine_->set_state(Symbol("Cache"), cache_);
  engine_->set_state(Symbol("Fun"), fun_);
  auto st = engine_->run_main();
  CSAW_CHECK(st.ok()) << st.error().to_string();
}

Result<Response> CachedService::request(const Command& command) {
  cache_->requests.push(command);
  CSAW_TRY(engine_->call("Cache", "j", Deadline::after(kCallDeadline)));
  auto resp = cache_->responses.pop(Deadline::after(kCallDeadline));
  if (!resp) return make_error(Errc::kTimeout, "no response");
  return *resp;
}

int CachedService::metrics_http_port() const {
  return engine_->runtime().metrics_http_port();
}

std::uint64_t CachedService::hits() const { return cache_->hits.load(); }
std::uint64_t CachedService::misses() const { return cache_->misses.load(); }
// LOC-COUNT-END(glue_caching)

// --- ReplicatedService --------------------------------------------------------------
// LOC-COUNT-BEGIN(glue_replication)

// The datum relayed through the replication patterns: the client command plus
// the service-stamped HLC (last-writer-wins ordering across replicas and
// repair writes) and the read flag (reads traverse the same relay/fan but
// must not mutate).
struct ReplPayload {
  Command cmd;
  std::uint64_t hlc_packed = 0;
  bool is_read = false;
};

template <typename Ar>
void serdes_fields(Ar& ar, ReplPayload& p) {
  ar.field(p.cmd);
  ar.field(p.hlc_packed);
  ar.field(p.is_read);
}

// Shared per-request scoreboard. Requests are serialized by the service
// mutex, so one board suffices: replica host blocks push read rows / write
// ack bits, the service merges rows by HLC last-writer-wins after the call.
struct ReplicatedService::Gather {
  struct Row {
    std::size_t slot = 0;  // original replica slot
    bool found = false;
    std::string value;
    std::uint64_t stamp = 0;  // packed applied HLC for the key (0 = never)
  };
  std::mutex mu;
  std::vector<Row> rows;
  std::uint64_t ack_mask = 0;     // write acks, one bit per original slot
  std::uint64_t leader_mask = 0;  // leader's slot bit when its ack is required
};

// One replica's durable half: the store and its per-key applied stamps live
// here, OUTSIDE the engine, so they survive reconfiguration (a fresh
// incarnation rebinds the same RepState) and an acknowledged write is never
// lost with the incarnation that carried it.
struct ReplicatedService::RepState {
  RepState(std::size_t slot, std::uint64_t cost, std::shared_ptr<Gather> g)
      : slot(slot), gather(std::move(g)), store(cost) {}
  const std::size_t slot;
  std::shared_ptr<Gather> gather;
  std::mutex mu;  // store/stamps: host blocks vs. control plane and local reads
  Store store;
  std::unordered_map<std::string, obs::Hlc> stamps;  // per-key applied stamp
  obs::Hlc watermark;  // newest stamp ever applied here
  std::atomic<std::uint64_t> applied{0};
  ReplPayload current;  // only touched by this replica's own junction runs
  bool is_tail = false;  // chain: the tail answers (head-write/tail-read)
};

struct ReplicatedService::FrontState {
  Mailbox<ReplPayload> requests;
  ReplPayload current;
  std::shared_ptr<Gather> gather;
  // Per-request fan-out plan, written by the service before the push and read
  // by the same call's host blocks (the mailbox handoff orders the two).
  std::vector<bool> members;  // quorum: tgt subset of the incarnation's Reps
  std::size_t required = 1;   // quorum: acks needed (W writes / R reads)
  std::atomic<std::size_t> acks{0};
};

ReplicatedService::Options ReplicatedService::make_default_options() {
  return Options{};
}

ReplicatedService::ReplicatedService(Options options)
    : options_(std::move(options)) {
  CSAW_CHECK(options_.replicas >= 1 && options_.replicas <= 64)
      << "replicas must be in [1, 64]";
  gather_ = std::make_shared<Gather>();
  front_ = std::make_shared<FrontState>();
  front_->gather = gather_;
  alive_.assign(options_.replicas, true);
  for (std::size_t s = 0; s < options_.replicas; ++s) {
    reps_.push_back(std::make_shared<RepState>(s, options_.op_cost_ns, gather_));
  }
  build_engine();
}

void ReplicatedService::build_engine() {
  live_slots_.clear();
  for (std::size_t s = 0; s < reps_.size(); ++s) {
    if (alive_[s]) live_slots_.push_back(s);
  }
  CSAW_CHECK(!live_slots_.empty());
  const bool chain_mode = options_.mode == Mode::kChain;

  HostBindings b;
  b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("miniredis.ReplPayload", ctx.state<FrontState>().current);
  });
  b.restorer("unpack_request",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto p = unpack<ReplPayload>("miniredis.ReplPayload", sv);
               if (!p) return p.error();
               ctx.state<RepState>().current = std::move(*p);
               return Status::ok_status();
             });
  // A failed fan-out/relay surfaces as a host failure so the engine call --
  // and with it the client request -- is NOT acknowledged.
  b.block("complain", [](HostCtx&) -> Status {
    return make_error(Errc::kHostFailure, "replication fan-out failed");
  });

  // The replica-side apply, shared by chain (H_apply, every node) and quorum
  // (H_replica, each fanned-to replica). Writes apply last-writer-wins by
  // HLC: an at-or-after stamp applies and advances the key's stamp, an older
  // one (a repair racing a newer client write) is dropped.
  auto replica_apply = [chain_mode](HostCtx& ctx) -> Status {
    auto& st = ctx.state<RepState>();
    std::scoped_lock lock(st.mu);
    const ReplPayload& p = st.current;
    const obs::Hlc h = obs::Hlc::from_packed(p.hlc_packed);
    if (p.is_read) {
      // Chain answers reads at the tail only (the node every acknowledged
      // write has provably reached); quorum records every responder so the
      // service can LWW-merge and repair stale ones.
      if (!chain_mode || st.is_tail) {
        auto it = st.stamps.find(p.cmd.key);
        auto v = st.store.get(p.cmd.key);
        std::scoped_lock g(st.gather->mu);
        st.gather->rows.push_back(
            {st.slot, v.has_value(), v.value_or(""),
             it == st.stamps.end() ? 0 : it->second.packed()});
      }
      return Status::ok_status();
    }
    auto& stamp = st.stamps[p.cmd.key];
    Response resp{true, ""};
    if (h >= stamp) {
      resp = apply(st.store, p.cmd);
      stamp = h;
      if (h > st.watermark) st.watermark = h;
    }
    st.applied.fetch_add(1);
    std::scoped_lock g(st.gather->mu);
    if (chain_mode) {
      // The tail's row is the write's response (carries DEL's found flag).
      if (st.is_tail) {
        st.gather->rows.push_back({st.slot, resp.found, resp.value, h.packed()});
      }
    } else {
      st.gather->ack_mask |= (1ull << st.slot);
    }
    return Status::ok_status();
  };

  if (chain_mode) {
    b.block("Ingest", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<FrontState>();
      auto p = st.requests.pop(Deadline::after(std::chrono::seconds(5)));
      if (!p) return make_error(Errc::kHostFailure, "no request");
      st.current = std::move(*p);
      return Status::ok_status();
    });
    b.block("H_apply", replica_apply);
  } else {
    b.block("ChooseSet", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<FrontState>();
      auto p = st.requests.pop(Deadline::after(std::chrono::seconds(5)));
      if (!p) return make_error(Errc::kHostFailure, "no request");
      st.current = std::move(*p);
      st.acks.store(0);
      return ctx.set_subset("tgt", st.members);
    });
    // One ack = one replica's synced Work[b] retraction made it back in time
    // (its transactional hop committed). HaveQuorum needs `required` acks
    // AND -- for writes -- the leader's, so the leader provably holds every
    // acknowledged write and linearizable reads can be served as R={leader}.
    b.block("CountAck", [](HostCtx& ctx) -> Status {
      auto& st = ctx.state<FrontState>();
      const std::size_t acks = st.acks.fetch_add(1) + 1;
      bool leader_pending;
      {
        std::scoped_lock g(st.gather->mu);
        leader_pending = st.gather->leader_mask != 0 &&
                         (st.gather->ack_mask & st.gather->leader_mask) == 0;
      }
      if (acks >= st.required && !leader_pending) {
        return ctx.set_prop("HaveQuorum", true);
      }
      return Status::ok_status();
    });
    b.block("H_replica", replica_apply);
  }

  EngineOptions eopts;
  eopts.runtime.default_link = options_.link;
  eopts.runtime.trace_sink = options_.trace_sink;
  eopts.runtime.metrics = options_.metrics;
  eopts.runtime.profiler = options_.profiler;
  eopts.runtime.profile_out = options_.profile_out;
  eopts.runtime.metrics_http_port = options_.metrics_http_port;
  eopts.runtime.scheduler = options_.scheduler;
  eopts.runtime.default_consistency = options_.consistency;

  if (chain_mode) {
    patterns::ChainOptions popts;
    popts.replicas = live_slots_.size();
    popts.timeout_ms = options_.timeout_ms;
    popts.consistency = options_.consistency;
    rep_names_ = patterns::chain_replica_names(popts);
    auto compiled = compile(patterns::chain(popts));
    CSAW_CHECK(compiled.ok()) << compiled.error().to_string();
    engine_ = std::make_unique<Engine>(std::move(compiled).value(),
                                       std::move(b), eopts);
  } else {
    patterns::QuorumOptions popts;
    popts.replicas = live_slots_.size();
    popts.timeout_ms = options_.timeout_ms;
    popts.consistency = options_.consistency;
    rep_names_ = patterns::quorum_replica_names(popts);
    auto compiled = compile(patterns::quorum(popts));
    CSAW_CHECK(compiled.ok()) << compiled.error().to_string();
    engine_ = std::make_unique<Engine>(std::move(compiled).value(),
                                       std::move(b), eopts);
  }

  engine_->set_state(Symbol("Fnt"), front_);
  for (std::size_t i = 0; i < rep_names_.size(); ++i) {
    auto& rep = reps_[live_slots_[i]];
    rep->is_tail = (i + 1 == rep_names_.size());
    engine_->set_state(Symbol(rep_names_[i]), rep);
  }
  front_->members.assign(live_slots_.size(), true);
  auto st = engine_->run_main();
  CSAW_CHECK(st.ok()) << st.error().to_string();
  // Epoch fence: the new incarnation speaks with the service epoch, so
  // anything left over from the previous one is stale by construction.
  while (engine_->runtime().epoch() < epoch_) engine_->runtime().bump_epoch();
}

Result<Response> ReplicatedService::request(const Command& command) {
  return request(command, nullptr, std::nullopt);
}

Result<Response> ReplicatedService::request(const Command& command,
                                            Session& session) {
  return request(command, &session, std::nullopt);
}

Result<Response> ReplicatedService::request(
    const Command& command, Session* session,
    std::optional<Consistency> consistency) {
  std::scoped_lock lock(mu_);
  const Consistency level = consistency.value_or(options_.consistency);
  const bool is_read = command.op == Command::Op::kGet;
  const bool fan_read = options_.mode == Mode::kQuorum &&
                        options_.read_quorum > 1 &&
                        level == Consistency::kEventual;

  if (is_read && !fan_read && level != Consistency::kLinearizable) {
    auto local = local_read(
        command, level == Consistency::kReadYourWrites ? session : nullptr);
    if (local) return *local;
    // No live replica covers the session token (e.g. the replica that held
    // the write failed over): fall through to the leader / chain read.
  }

  // Through the architecture. The fan-out plan is recomputed against the
  // current incarnation (and again after a reconfiguration).
  const bool require_leader = options_.mode == Mode::kQuorum && !is_read;
  auto plan = [&](std::vector<bool>& members, std::size_t& required) {
    const std::size_t n = live_slots_.size();
    if (options_.mode == Mode::kChain || !is_read) {
      members.assign(n, true);
      required = options_.mode == Mode::kQuorum ? options_.write_quorum : 1;
      return;
    }
    if (fan_read) {
      required = std::min(options_.read_quorum, n);
      members.assign(n, false);
      for (std::size_t k = 0; k < required; ++k) members[(rr_ + k) % n] = true;
      ++rr_;
      return;
    }
    // Linearizable (or read-your-writes fallback): the leader read. The
    // leader acks every acknowledged write, so its answer is current; the
    // service mutex serializes it against concurrent writes.
    members.assign(n, false);
    members[live_index_of(leader_slot())] = true;
    required = 1;
  };

  const obs::Hlc stamp = engine_->runtime().hlc().tick();
  std::vector<bool> members;
  std::size_t required = 1;
  plan(members, required);
  auto r = through_architecture(command, is_read, std::move(members), required,
                                stamp, require_leader);
  if (!r.ok() && reconfigure_locked(/*force=*/false).ok()) {
    // Some replica died mid-flight (chain head crash, quorum leader loss):
    // the survivors now form a fresh incarnation -- retry once against it.
    plan(members, required);
    r = through_architecture(command, is_read, std::move(members), required,
                             stamp, require_leader);
  }
  if (r.ok() && !is_read && session != nullptr) {
    std::scoped_lock sl(session->mu_);
    auto& token = session->last_write_[command.key];
    if (stamp > token) token = stamp;
  }
  return r;
}

Result<Response> ReplicatedService::through_architecture(
    const Command& command, bool is_read, std::vector<bool> members,
    std::size_t required, obs::Hlc stamp, bool require_leader) {
  {
    std::scoped_lock g(gather_->mu);
    gather_->rows.clear();
    gather_->ack_mask = 0;
    gather_->leader_mask = require_leader ? (1ull << leader_slot()) : 0;
  }
  front_->members = std::move(members);
  front_->required = required;
  front_->acks.store(0);
  front_->requests.push(ReplPayload{command, stamp.packed(), is_read});
  CSAW_TRY(engine_->call("Fnt", "j", Deadline::after(kCallDeadline)));

  // The call returning only means the front-end's junction ran to the end of
  // its body; a failed relay surfaces in there as complain(), not in the call
  // status. The acknowledgement verdict is the *evidence* the replicas left
  // on the scoreboard: the chain tail's row (the write provably traversed
  // every hop) or >= W quorum ack bits including the leader's.
  std::vector<Gather::Row> rows;
  std::uint64_t ack_mask = 0;
  std::uint64_t leader_mask = 0;
  {
    std::scoped_lock g(gather_->mu);
    rows = gather_->rows;
    ack_mask = gather_->ack_mask;
    leader_mask = gather_->leader_mask;
  }
  if (!is_read) {
    if (options_.mode == Mode::kQuorum) {
      const auto acked = static_cast<std::size_t>(std::popcount(ack_mask));
      if (acked < required ||
          (leader_mask != 0 && (ack_mask & leader_mask) == 0)) {
        return make_error(Errc::kUnreachable,
                          "write reached " + std::to_string(acked) + "/" +
                              std::to_string(required) + " replicas" +
                              (leader_mask != 0 && (ack_mask & leader_mask) == 0
                                   ? " (leader missing)"
                                   : ""));
      }
      return Response{true, ""};
    }
    // Chain: acked means the tail applied (its row carries DEL's found flag).
    if (rows.empty()) {
      return make_error(Errc::kUnreachable, "write did not reach the tail");
    }
    return Response{rows.front().found, rows.front().value};
  }
  if (rows.size() < required) {
    return make_error(Errc::kUnreachable,
                      "read answered by " + std::to_string(rows.size()) + "/" +
                          std::to_string(required) + " replicas");
  }
  if (rows.empty()) {
    return make_error(Errc::kUnreachable, "no replica answered the read");
  }
  const Gather::Row* best = &rows.front();
  for (const auto& row : rows) {
    if (row.stamp > best->stamp) best = &row;
  }
  if (options_.mode == Mode::kQuorum && best->stamp != 0) {
    // Read repair: any responder whose stamp trails the winner gets the
    // winner re-written at the winner's stamp (deletions propagate as DELs).
    // Best-effort and idempotent -- LWW at the replica drops it if a newer
    // client write raced in.
    std::vector<bool> stale(live_slots_.size(), false);
    std::size_t count = 0;
    for (const auto& row : rows) {
      if (row.stamp < best->stamp) {
        stale[live_index_of(row.slot)] = true;
        ++count;
      }
    }
    if (count > 0) {
      Command repair;
      repair.op = best->found ? Command::Op::kSet : Command::Op::kDel;
      repair.key = command.key;
      repair.value = best->value;
      (void)through_architecture(repair, /*is_read=*/false, std::move(stale),
                                 count, obs::Hlc::from_packed(best->stamp),
                                 /*require_leader=*/false);
    }
  }
  return Response{best->found, best->value};
}

std::optional<Response> ReplicatedService::local_read(const Command& command,
                                                      const Session* session) {
  obs::Hlc token;
  if (session != nullptr) token = session->token(command.key);
  const std::size_t n = live_slots_.size();
  for (std::size_t k = 0; k < n; ++k) {
    auto& st = *reps_[live_slots_[(rr_ + k) % n]];
    std::scoped_lock l(st.mu);
    if (token.valid()) {
      auto it = st.stamps.find(command.key);
      const obs::Hlc have =
          it == st.stamps.end() ? obs::Hlc{} : it->second;
      if (have < token) continue;  // hasn't applied this session's write yet
    }
    ++rr_;
    auto v = st.store.get(command.key);
    return Response{v.has_value(), v.value_or("")};
  }
  return std::nullopt;
}

Status ReplicatedService::crash_replica(std::size_t i) {
  std::scoped_lock lock(mu_);
  if (i >= reps_.size()) {
    return make_error(Errc::kUndefinedName, "no such replica");
  }
  if (!alive_[i]) return make_error(Errc::kLifecycle, "replica already down");
  engine_->crash(rep_names_[live_index_of(i)]);
  alive_[i] = false;
  return Status::ok_status();
}

Status ReplicatedService::reconfigure() {
  std::scoped_lock lock(mu_);
  return reconfigure_locked(/*force=*/true);
}

Status ReplicatedService::reconfigure_locked(bool force) {
  // Sweep the runtime's liveness view (is_running consults the failure
  // detector on mesh transports), so chaos-crashed instances are excised
  // even when nobody called crash_replica().
  for (std::size_t i = 0; i < rep_names_.size(); ++i) {
    if (!engine_->runtime().is_running(Symbol(rep_names_[i]))) {
      alive_[live_slots_[i]] = false;
    }
  }
  std::vector<std::size_t> live;
  for (std::size_t s = 0; s < reps_.size(); ++s) {
    if (alive_[s]) live.push_back(s);
  }
  if (live.empty()) return make_error(Errc::kUnreachable, "no replica survives");
  if (!force && live == live_slots_) {
    return make_error(Errc::kLifecycle, "membership unchanged");
  }
  ++epoch_;
  engine_.reset();  // tear down the old incarnation (joins its workers)
  merge_survivors(live);
  build_engine();
  return Status::ok_status();
}

// LWW-converge the survivors before the next incarnation serves: every key
// ends at the newest applied stamp across survivors, deletions included (the
// stamps map remembers keys the store no longer holds). An acknowledged
// write reached >= W replicas (quorum) or every node (chain), so as long as
// fewer than W replicas died it is in the union and survives -- this is what
// makes the new leader current even when the old leader is among the dead.
void ReplicatedService::merge_survivors(const std::vector<std::size_t>& live) {
  struct Best {
    obs::Hlc stamp;
    bool found = false;
    std::string value;
  };
  std::unordered_map<std::string, Best> best;
  for (std::size_t s : live) {
    auto& st = *reps_[s];
    std::scoped_lock l(st.mu);
    for (const auto& [key, stamp] : st.stamps) {
      auto& b = best[key];
      if (stamp > b.stamp) {
        auto v = st.store.get(key);
        b = Best{stamp, v.has_value(), v.value_or("")};
      }
    }
  }
  for (std::size_t s : live) {
    auto& st = *reps_[s];
    std::scoped_lock l(st.mu);
    for (const auto& [key, b] : best) {
      auto& have = st.stamps[key];
      if (have < b.stamp) {
        if (b.found) {
          st.store.set(key, b.value);
        } else {
          st.store.del(key);
        }
        have = b.stamp;
        if (b.stamp > st.watermark) st.watermark = b.stamp;
      }
    }
  }
}

void ReplicatedService::refresh_membership() {
  std::scoped_lock lock(mu_);
  if (options_.mode != Mode::kQuorum) return;
  // The quorum fan-out retracts ActiveReplica[b] when a hop times out
  // (partition/crash), and nothing inside the program re-adds it: membership
  // belongs to the control plane. Healing is therefore an explicit push of
  // the membership prop for every replica the runtime reports reachable.
  auto& rt = engine_->runtime();
  for (const auto& name : rep_names_) {
    if (!rt.is_running(Symbol(name))) continue;
    const Symbol key(
        mangle_prop(Symbol("ActiveReplica"), CtValue(addr(name, "j"))));
    (void)rt.push({.to = addr("Fnt", "j"),
                   .update = Update::assert_prop(key),
                   .deadline = Deadline::after(std::chrono::seconds(1)),
                   .from = Symbol("control")});
  }
}

obs::Hlc ReplicatedService::Session::token(const std::string& key) const {
  std::scoped_lock lock(mu_);
  auto it = last_write_.find(key);
  return it == last_write_.end() ? obs::Hlc{} : it->second;
}

std::size_t ReplicatedService::leader_slot() const { return live_slots_.front(); }

std::size_t ReplicatedService::live_index_of(std::size_t slot) const {
  for (std::size_t i = 0; i < live_slots_.size(); ++i) {
    if (live_slots_[i] == slot) return i;
  }
  return 0;
}

std::uint64_t ReplicatedService::epoch() const {
  std::scoped_lock lock(mu_);
  return epoch_;
}

std::size_t ReplicatedService::live_replicas() const {
  std::scoped_lock lock(mu_);
  return live_slots_.size();
}

std::vector<std::uint64_t> ReplicatedService::replica_applied() const {
  std::vector<std::uint64_t> out;
  out.reserve(reps_.size());
  for (const auto& rep : reps_) out.push_back(rep->applied.load());
  return out;
}

Runtime& ReplicatedService::runtime() { return engine_->runtime(); }

// LOC-COUNT-END(glue_replication)

}  // namespace csaw::miniredis
