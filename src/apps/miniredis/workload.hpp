// Workload generation mirroring the paper's redis-benchmark usage (S10.1).
//
//   * default: uniform key popularity over a fixed keyspace, GET/SET mix;
//   * skewed: "90% of requests are directed at 10% of the entries" for the
//     caching experiment;
//   * weighted: uneven per-shard pressure for the sharding experiment
//     ("uneven workloads place different pressure on different back-ends");
//   * sized: values drawn from size classes for object-size sharding.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/miniredis/command.hpp"
#include "support/rng.hpp"

namespace csaw::miniredis {

struct WorkloadOptions {
  std::size_t keyspace = 2000;
  double get_fraction = 0.8;  // rest are SET
  std::size_t value_bytes = 64;

  enum class Popularity { kUniform, kSkewed90_10, kWeighted };
  Popularity popularity = Popularity::kUniform;
  // kWeighted: relative weight of key-range slices (e.g. {4,3,2,1}).
  std::vector<double> slice_weights;

  // When non-empty, SET values are drawn from these size classes (bytes)
  // with the matching probability mass in `size_class_mass`.
  std::vector<std::size_t> size_classes;
  std::vector<double> size_class_mass;
};

class Workload {
 public:
  Workload(WorkloadOptions options, std::uint64_t seed);

  Command next();
  [[nodiscard]] const WorkloadOptions& options() const { return options_; }

  // The key drawn for request i of a slice-weighted workload lands in slice
  // floor(key_index * slices / keyspace); exposed for ratio checks.
  [[nodiscard]] std::size_t slice_of_key(const std::string& key) const;

 private:
  std::size_t draw_key_index();
  std::size_t draw_value_size();

  WorkloadOptions options_;
  Rng rng_;
  std::vector<double> slice_cdf_;
};

// Key naming shared by workloads and shard checks: "key:<index>".
std::string key_name(std::size_t index);

}  // namespace csaw::miniredis
