// minisuricata detection pipeline: decode -> flow tracking -> detection, a
// miniature of Suricata's graph-based packet handling (the paper compares it
// to Click). Each stage costs CPU work; the flow table is the serializable
// state the checkpointing architecture captures.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "apps/minisuricata/packet.hpp"
#include "support/result.hpp"

namespace csaw::minisuricata {

struct FlowState {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint32_t last_sig = 0;
  bool flagged = false;  // matched a detection rule
};

template <typename Ar>
void serdes_fields(Ar& ar, FlowState& f) {
  ar.field(f.packets);
  ar.field(f.bytes);
  ar.field(f.last_sig);
  ar.field(f.flagged);
}

struct PipelineStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t alerts = 0;
};

template <typename Ar>
void serdes_fields(Ar& ar, PipelineStats& s) {
  ar.field(s.packets);
  ar.field(s.bytes);
  ar.field(s.alerts);
}

class Pipeline {
 public:
  // `per_packet_cost_ns` models decode+detect CPU work per packet.
  explicit Pipeline(std::uint64_t per_packet_cost_ns = 600);

  void process(const Packet& packet);

  [[nodiscard]] const PipelineStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }

  // --- checkpointing (flow table) -----------------------------------------
  [[nodiscard]] Bytes snapshot() const;
  Status restore(const Bytes& snapshot);
  void clear();

 private:
  void burn();

  std::uint64_t per_packet_cost_ns_;
  std::unordered_map<std::uint64_t, FlowState> flows_;
  PipelineStats stats_;
};

}  // namespace csaw::minisuricata
