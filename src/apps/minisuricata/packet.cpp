#include "apps/minisuricata/packet.hpp"

#include <cmath>

namespace csaw::minisuricata {

FlowGenerator::FlowGenerator(FlowGenOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {
  flows_.reserve(options_.concurrent_flows);
  for (std::size_t i = 0; i < options_.concurrent_flows; ++i) {
    flows_.push_back(make_flow());
  }
}

FlowGenerator::LiveFlow FlowGenerator::make_flow() {
  LiveFlow flow;
  flow.tuple.src_ip = static_cast<std::uint32_t>(rng_.next());
  flow.tuple.dst_ip = static_cast<std::uint32_t>(rng_.next());
  flow.tuple.src_port = static_cast<std::uint16_t>(1024 + rng_.below(60000));
  flow.tuple.dst_port =
      rng_.chance(0.7) ? 443 : static_cast<std::uint16_t>(rng_.below(1024));
  flow.tuple.proto = rng_.chance(0.85) ? 6 : 17;  // mostly TCP, some UDP
  // Bounded Pareto sample for flow length.
  const double u = rng_.uniform();
  const double alpha = options_.heavy_tail_alpha;
  const double lo = static_cast<double>(options_.min_flow_packets);
  const double hi = static_cast<double>(options_.max_flow_packets);
  const double x =
      std::pow(-(u * std::pow(hi, alpha) - u * std::pow(lo, alpha) -
                 std::pow(hi, alpha)) /
                   (std::pow(hi * lo, alpha)),
               -1.0 / alpha);
  flow.remaining = static_cast<std::size_t>(x);
  if (flow.remaining < options_.min_flow_packets) {
    flow.remaining = options_.min_flow_packets;
  }
  if (flow.remaining > options_.max_flow_packets) {
    flow.remaining = options_.max_flow_packets;
  }
  return flow;
}

Packet FlowGenerator::next() {
  const std::size_t i = rng_.below(flows_.size());
  LiveFlow& flow = flows_[i];
  Packet p;
  p.tuple = flow.tuple;
  p.size = static_cast<std::uint16_t>(64 + rng_.below(1400));
  p.payload_sig = static_cast<std::uint32_t>(rng_.next());
  if (--flow.remaining == 0) flow = make_flow();
  return p;
}

}  // namespace csaw::minisuricata
