#include "apps/minisuricata/services.hpp"

#include "apps/miniredis/command.hpp"  // Mailbox
#include "core/compile.hpp"
#include "patterns/sharding.hpp"
#include "patterns/snapshot.hpp"

namespace csaw::minisuricata {
namespace {

constexpr auto kCallDeadline = std::chrono::seconds(10);

using PacketBatch = std::vector<Packet>;

}  // namespace

// --- CheckpointedService ---------------------------------------------------------

CheckpointedService::Options CheckpointedService::make_default_options() {
  return Options{};
}

struct CheckpointedService::ActState {
  explicit ActState(std::uint64_t cost) : pipeline(cost) {}
  std::mutex mu;
  Pipeline pipeline;
};

struct CheckpointedService::AudState {
  std::mutex mu;
  Bytes last;
};

CheckpointedService::CheckpointedService(Options options) {
  patterns::SnapshotOptions popts;
  popts.timeout_ms = options.timeout_ms;
  aud_ = std::make_shared<AudState>();

  HostBindings b;
  b.block("complain", [](HostCtx&) { return Status::ok_status(); });
  b.block("H1", [](HostCtx&) { return Status::ok_status(); });
  b.block("H2", [](HostCtx&) { return Status::ok_status(); });
  b.saver("capture_state", [](HostCtx& ctx) -> Result<SerializedValue> {
    auto& act = ctx.state<ActState>();
    std::scoped_lock lock(act.mu);
    return SerializedValue{Symbol("flowtable"), act.pipeline.snapshot()};
  });
  b.restorer("ingest_state",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto& aud = ctx.state<AudState>();
               std::scoped_lock lock(aud.mu);
               aud.last = sv.bytes;
               return Status::ok_status();
             });

  auto compiled = compile(patterns::remote_snapshot(popts));
  CSAW_CHECK(compiled.ok()) << compiled.error().to_string();
  EngineOptions eopts;
  eopts.runtime.trace_sink = options.trace_sink;
  eopts.runtime.metrics = options.metrics;
  eopts.runtime.profiler = options.profiler;
  eopts.runtime.profile_out = options.profile_out;
  eopts.runtime.metrics_http_port = options.metrics_http_port;
  eopts.runtime.transport = options.transport;
  eopts.runtime.tcp = options.tcp;
  eopts.runtime.scheduler = options.scheduler;
  engine_ = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                     eopts);
  const auto cost = options.cost_ns;
  engine_->set_state_factory(Symbol("Act"), [this, cost] {
    act_ = std::make_shared<ActState>(cost);
    return std::static_pointer_cast<void>(act_);
  });
  engine_->set_state(Symbol("Aud"), aud_);
  auto st = engine_->run_main();
  CSAW_CHECK(st.ok()) << st.error().to_string();
}

Status CheckpointedService::process(const Packet& p) {
  auto act = act_;
  std::scoped_lock lock(act->mu);
  act->pipeline.process(p);
  return Status::ok_status();
}

Status CheckpointedService::checkpoint() {
  return engine_->call("Act", "j", Deadline::after(kCallDeadline));
}

Status CheckpointedService::crash_and_resume() {
  engine_->crash("Act");
  CSAW_TRY(engine_->start_instance("Act"));
  Bytes image;
  {
    std::scoped_lock lock(aud_->mu);
    image = aud_->last;
  }
  if (image.empty()) return Status::ok_status();
  auto act = act_;
  std::scoped_lock lock(act->mu);
  return act->pipeline.restore(image);
}

int CheckpointedService::metrics_http_port() const {
  return engine_->runtime().metrics_http_port();
}

std::size_t CheckpointedService::flow_count() const {
  auto act = act_;
  std::scoped_lock lock(act->mu);
  return act->pipeline.flow_count();
}

// --- SteeredService -----------------------------------------------------------------

SteeredService::Options SteeredService::make_default_options() {
  return Options{};
}

struct SteeredService::FrontState {
  miniredis::Mailbox<std::pair<std::size_t, PacketBatch>> batches;
  std::pair<std::size_t, PacketBatch> current;
  std::vector<PacketBatch> buffers;  // per-shard accumulation
};

struct SteeredService::BackState {
  explicit BackState(std::uint64_t cost) : pipeline(cost) {}
  Pipeline pipeline;
  PacketBatch current;
};

SteeredService::SteeredService(Options options) : options_(options) {
  patterns::ShardingOptions popts;
  popts.backends = options_.shards;
  popts.timeout_ms = options_.timeout_ms;

  front_ = std::make_shared<FrontState>();
  front_->buffers.resize(options_.shards);

  HostBindings b;
  b.block("complain", [](HostCtx&) { return Status::ok_status(); });
  b.block("Choose", [](HostCtx& ctx) -> Status {
    auto& st = ctx.state<FrontState>();
    auto batch = st.batches.pop(Deadline::after(std::chrono::seconds(5)));
    if (!batch) return make_error(Errc::kHostFailure, "no batch");
    st.current = std::move(*batch);
    return ctx.set_idx("tgt", static_cast<std::int64_t>(st.current.first));
  });
  b.saver("pack_request", [](HostCtx& ctx) -> Result<SerializedValue> {
    return pack("suricata.PacketBatch", ctx.state<FrontState>().current.second);
  });
  b.restorer("unpack_request",
             [](HostCtx& ctx, const SerializedValue& sv) -> Status {
               auto batch = unpack<PacketBatch>("suricata.PacketBatch", sv);
               if (!batch) return batch.error();
               ctx.state<BackState>().current = std::move(*batch);
               return Status::ok_status();
             });
  b.block("H_back", [](HostCtx& ctx) {
    auto& st = ctx.state<BackState>();
    for (const auto& p : st.current) st.pipeline.process(p);
    return Status::ok_status();
  });
  b.saver("pack_response", [](HostCtx&) -> Result<SerializedValue> {
    return sv_dyn(DynValue(true));  // steering has no payload reply
  });
  b.restorer("deliver_response", [](HostCtx&, const SerializedValue&) {
    return Status::ok_status();
  });

  auto compiled = compile(patterns::sharding(popts));
  CSAW_CHECK(compiled.ok()) << compiled.error().to_string();
  EngineOptions eopts;
  eopts.runtime.trace_sink = options_.trace_sink;
  eopts.runtime.metrics = options_.metrics;
  eopts.runtime.profiler = options_.profiler;
  eopts.runtime.profile_out = options_.profile_out;
  eopts.runtime.metrics_http_port = options_.metrics_http_port;
  eopts.runtime.transport = options_.transport;
  eopts.runtime.tcp = options_.tcp;
  eopts.runtime.scheduler = options_.scheduler;
  engine_ = std::make_unique<Engine>(std::move(compiled).value(), std::move(b),
                                     eopts);
  engine_->set_state(Symbol(popts.front_instance), front_);
  for (const auto& name : patterns::shard_backend_names(popts)) {
    backs_.push_back(std::make_shared<BackState>(options_.cost_ns));
    engine_->set_state(Symbol(name), backs_.back());
  }
  auto st = engine_->run_main();
  CSAW_CHECK(st.ok()) << st.error().to_string();
}

Status SteeredService::process(const Packet& p) {
  auto& buffer = front_->buffers[shard_of(p)];
  buffer.push_back(p);
  if (buffer.size() >= options_.batch_size) {
    const auto shard = shard_of(p);
    front_->batches.push({shard, std::move(buffer)});
    buffer = PacketBatch{};
    return engine_->call("Fnt", "j", Deadline::after(kCallDeadline));
  }
  return Status::ok_status();
}

Status SteeredService::flush() {
  for (std::size_t s = 0; s < front_->buffers.size(); ++s) {
    if (front_->buffers[s].empty()) continue;
    front_->batches.push({s, std::move(front_->buffers[s])});
    front_->buffers[s] = PacketBatch{};
    CSAW_TRY(engine_->call("Fnt", "j", Deadline::after(kCallDeadline)));
  }
  return Status::ok_status();
}

int SteeredService::metrics_http_port() const {
  return engine_->runtime().metrics_http_port();
}

std::vector<std::uint64_t> SteeredService::shard_packet_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(backs_.size());
  for (const auto& back : backs_) out.push_back(back->pipeline.stats().packets);
  return out;
}

}  // namespace csaw::minisuricata
