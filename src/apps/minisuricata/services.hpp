// minisuricata deployments behind C-Saw architectures (paper S2's Suricata
// scenarios): checkpointing of the flow table via the Fig 4 snapshot
// architecture, and 5-tuple packet steering via the Fig 5 sharding
// architecture ("the key-based sharding logic was adapted to implement
// packet-steering in Suricata", S10.1).
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "apps/minisuricata/packet.hpp"
#include "apps/minisuricata/pipeline.hpp"
#include "core/interp.hpp"

namespace csaw::minisuricata {

constexpr std::uint64_t kDefaultPacketCostNs = 600;

// Unmodified pipeline.
class PlainService {
 public:
  explicit PlainService(std::uint64_t cost_ns = kDefaultPacketCostNs)
      : pipeline_(cost_ns) {}

  void process(const Packet& p) { pipeline_.process(p); }
  Pipeline& pipeline() { return pipeline_; }

 private:
  Pipeline pipeline_;
};

// Flow-table checkpointing through the snapshot architecture.
class CheckpointedService {
 public:
  struct Options {
    std::uint64_t cost_ns = kDefaultPacketCostNs;
    std::int64_t timeout_ms = 2000;
    // Optional observability taps, forwarded to the underlying runtime;
    // both borrowed and must outlive the service.
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    // Optional continuous cost profiler (borrowed; must outlive the
    // service), and/or a CostProfile JSON path the runtime writes at
    // teardown (compart/runtime.hpp).
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set. The bound port is metrics_http_port().
    int metrics_http_port = -1;
    // Transport for the underlying runtime: in-process (default), loopback
    // TCP, or a multi-process TCP mesh configured by `tcp` (listener
    // address, peer map, frame/queue bounds -- compart/tcp_options.hpp).
    Transport transport = Transport::kInProcess;
    TcpOptions tcp{};
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  CheckpointedService() : CheckpointedService(make_default_options()) {}
  explicit CheckpointedService(Options options);

  Status process(const Packet& p);
  Status checkpoint();
  Status crash_and_resume();
  [[nodiscard]] std::size_t flow_count() const;
  // Bound /metrics port, or -1 when the HTTP endpoint is disabled.
  [[nodiscard]] int metrics_http_port() const;

 private:
  static Options make_default_options();
  struct ActState;
  struct AudState;
  std::shared_ptr<ActState> act_;
  std::shared_ptr<AudState> aud_;
  std::unique_ptr<Engine> engine_;
};

// 5-tuple steering to N back-end pipelines. Packets are steered in batches
// (real deployments steer bursts; per-packet control-plane hops would drown
// the data plane) -- batch_size = 1 gives the worst case.
class SteeredService {
 public:
  struct Options {
    std::size_t shards = 4;
    std::size_t batch_size = 1024;
    std::uint64_t cost_ns = kDefaultPacketCostNs;
    std::int64_t timeout_ms = 2000;
    // Optional observability taps (borrowed; must outlive the service).
    obs::TraceSink* trace_sink = nullptr;
    obs::Metrics* metrics = nullptr;
    // Optional continuous cost profiler (borrowed; must outlive the
    // service), and/or a CostProfile JSON path the runtime writes at
    // teardown (compart/runtime.hpp).
    obs::Profiler* profiler = nullptr;
    std::string profile_out;
    // -1 = no HTTP endpoint; 0 = ephemeral port; >0 = fixed port. Needs
    // `metrics` set. The bound port is metrics_http_port().
    int metrics_http_port = -1;
    // Transport for the underlying runtime: in-process (default), loopback
    // TCP, or a multi-process TCP mesh configured by `tcp` (listener
    // address, peer map, frame/queue bounds -- compart/tcp_options.hpp).
    Transport transport = Transport::kInProcess;
    TcpOptions tcp{};
    // Event-driven worker-pool sizing / timer-wheel knobs for the
    // underlying runtime (compart/sched.hpp).
    SchedulerOptions scheduler{};
  };

  SteeredService() : SteeredService(make_default_options()) {}
  explicit SteeredService(Options options);

  // Buffers the packet; flushes a batch through the architecture when full.
  Status process(const Packet& p);
  Status flush();

  [[nodiscard]] std::vector<std::uint64_t> shard_packet_counts() const;
  // Bound /metrics port, or -1 when the HTTP endpoint is disabled.
  [[nodiscard]] int metrics_http_port() const;
  [[nodiscard]] std::size_t shard_of(const Packet& p) const {
    return p.tuple.hash() % options_.shards;
  }

 private:
  static Options make_default_options();
  struct FrontState;
  struct BackState;
  Options options_;
  std::shared_ptr<FrontState> front_;
  std::vector<std::shared_ptr<BackState>> backs_;
  std::unique_ptr<Engine> engine_;
};

}  // namespace csaw::minisuricata
