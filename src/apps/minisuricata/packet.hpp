// minisuricata packet model: 5-tuples and a synthetic flow mixture standing
// in for bigFlows.pcap (see DESIGN.md "Substitutions").
//
// The Suricata experiments need (a) many concurrent flows identified by
// their 5-tuple, (b) a heavy-tailed flow-size distribution ("several flows
// from different applications"), and (c) per-packet processing cost. The
// generator produces exactly that, deterministically per seed.
#pragma once

#include <cstdint>
#include <vector>

#include "serdes/archive.hpp"
#include "support/rng.hpp"

namespace csaw::minisuricata {

struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 6;  // TCP

  friend auto operator<=>(const FiveTuple&, const FiveTuple&) = default;

  // Steering hash over the 5-tuple (S10.1: "the 5-tuple of each packet ...
  // is hashed to determine which of four back-end Suricata instances should
  // process it"). Fields are packed explicitly -- hashing a struct image
  // would include indeterminate padding bytes.
  [[nodiscard]] std::uint64_t hash() const {
    std::uint8_t packed[13];
    auto put32 = [&](std::size_t at, std::uint32_t v) {
      for (int i = 0; i < 4; ++i) packed[at + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(v >> (8 * i));
    };
    put32(0, src_ip);
    put32(4, dst_ip);
    packed[8] = static_cast<std::uint8_t>(src_port);
    packed[9] = static_cast<std::uint8_t>(src_port >> 8);
    packed[10] = static_cast<std::uint8_t>(dst_port);
    packed[11] = static_cast<std::uint8_t>(dst_port >> 8);
    packed[12] = proto;
    return fnv1a(packed, sizeof(packed));
  }
};

template <typename Ar>
void serdes_fields(Ar& ar, FiveTuple& t) {
  ar.field(t.src_ip);
  ar.field(t.dst_ip);
  ar.field(t.src_port);
  ar.field(t.dst_port);
  ar.field(t.proto);
}

struct Packet {
  FiveTuple tuple;
  std::uint16_t size = 0;     // bytes on the wire
  std::uint32_t payload_sig = 0;  // stands in for payload content
};

template <typename Ar>
void serdes_fields(Ar& ar, Packet& p) {
  ar.field(p.tuple);
  ar.field(p.size);
  ar.field(p.payload_sig);
}

struct FlowGenOptions {
  std::size_t concurrent_flows = 256;
  // Pareto-ish flow lengths: most flows short, a heavy tail of elephants.
  double heavy_tail_alpha = 1.3;
  std::size_t min_flow_packets = 4;
  std::size_t max_flow_packets = 40000;
};

// Produces an endless packet stream drawn from a churning set of flows.
class FlowGenerator {
 public:
  FlowGenerator(FlowGenOptions options, std::uint64_t seed);

  Packet next();

 private:
  struct LiveFlow {
    FiveTuple tuple;
    std::size_t remaining;
  };

  LiveFlow make_flow();

  FlowGenOptions options_;
  Rng rng_;
  std::vector<LiveFlow> flows_;
};

}  // namespace csaw::minisuricata
