#include "apps/minisuricata/pipeline.hpp"

#include <chrono>

namespace csaw::minisuricata {
namespace {

struct FlowTableImage {
  std::unordered_map<std::uint64_t, FlowState> flows;
  PipelineStats stats;
};

template <typename Ar>
void serdes_fields(Ar& ar, FlowTableImage& img) {
  ar.field(img.flows);
  ar.field(img.stats);
}

}  // namespace

Pipeline::Pipeline(std::uint64_t per_packet_cost_ns)
    : per_packet_cost_ns_(per_packet_cost_ns) {}

void Pipeline::burn() {
  if (per_packet_cost_ns_ == 0) return;
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(per_packet_cost_ns_);
  while (std::chrono::steady_clock::now() < until) {
  }
}

void Pipeline::process(const Packet& packet) {
  burn();  // decode + detect CPU work
  auto& flow = flows_[packet.tuple.hash()];
  ++flow.packets;
  flow.bytes += packet.size;
  flow.last_sig = packet.payload_sig;
  // A toy detection rule: flag flows whose payload signature hits a sparse
  // pattern (a stand-in for signature matching).
  if ((packet.payload_sig & 0xFFFF) == 0xBEEF && !flow.flagged) {
    flow.flagged = true;
    ++stats_.alerts;
  }
  ++stats_.packets;
  stats_.bytes += packet.size;
}

Bytes Pipeline::snapshot() const {
  FlowTableImage img{flows_, stats_};
  return encode(std::move(img));
}

Status Pipeline::restore(const Bytes& snapshot) {
  auto img = decode<FlowTableImage>(snapshot);
  if (!img) return img.error();
  flows_ = std::move(img->flows);
  stats_ = img->stats;
  return Status::ok_status();
}

void Pipeline::clear() {
  flows_.clear();
  stats_ = PipelineStats{};
}

}  // namespace csaw::minisuricata
