// minicurl: a chunked file-transfer client against an in-process byte server
// with a bandwidth/latency model, standing in for cURL v7.72 on the paper's
// 1GbE research testbed (see DESIGN.md "Substitutions").
//
// The cURL experiments (Figs 25a/25b/26a) measure the *relative* overhead of
// remote-audit snapshots against the transfer time as a function of file
// size. That ratio depends on (a) how long a transfer of S bytes takes and
// (b) how often and how expensively progress is snapshotted -- both of which
// this model reproduces. `time_scale` compresses wall-clock time (a 1.2 GB
// download need not take 10 real seconds); since both the numerator and the
// denominator scale together, overhead percentages are preserved.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "serdes/archive.hpp"
#include "support/clock.hpp"
#include "support/result.hpp"

namespace csaw::minicurl {

struct LinkProfile {
  std::uint64_t bytes_per_sec = 125'000'000;  // 1GbE
  Nanos rtt = std::chrono::microseconds(400);
};

// Download progress, the state captured by the remote-audit architecture.
struct Progress {
  std::string url;
  std::uint64_t total_bytes = 0;
  std::uint64_t transferred = 0;
  std::uint64_t chunks = 0;
  double elapsed_ms = 0;
};

template <typename Ar>
void serdes_fields(Ar& ar, Progress& p) {
  ar.field(p.url);
  ar.field(p.total_bytes);
  ar.field(p.transferred);
  ar.field(p.chunks);
  ar.field(p.elapsed_ms);
}

struct TransferOptions {
  LinkProfile link;
  std::size_t chunk_bytes = 256 * 1024;
  // Wall-clock pacing: 0 (default) runs the transfer model analytically
  // with no real sleeping -- the returned duration is the modeled transfer
  // time plus the *measured* time spent in progress hooks, which preserves
  // overhead ratios exactly. A value > 0 paces the loop in real time at
  // simulated/time_scale (only sensible when the scaled chunk time exceeds
  // OS timer resolution).
  double time_scale = 0.0;
  // Invoke the progress hook every N chunks (0 = never). The audited
  // configurations snapshot from this hook.
  std::size_t progress_every = 0;
};

class Client {
 public:
  explicit Client(TransferOptions options) : options_(options) {}

  using ProgressHook = std::function<Status(const Progress&)>;

  // Simulates downloading `size` bytes from `url`; returns the *simulated*
  // transfer time in milliseconds (uncompressed). The hook's real execution
  // time adds to the measured wall-clock like cURL's write callbacks do.
  Result<double> download(const std::string& url, std::uint64_t size,
                          const ProgressHook& hook = nullptr);

  [[nodiscard]] const TransferOptions& options() const { return options_; }

 private:
  TransferOptions options_;
};

}  // namespace csaw::minicurl
