#include "apps/minicurl/transfer.hpp"

#include <thread>

namespace csaw::minicurl {

Result<double> Client::download(const std::string& url, std::uint64_t size,
                                const ProgressHook& hook) {
  const auto& link = options_.link;

  // Modeled (simulated) time spent on the wire.
  Nanos modeled = link.rtt;  // connection setup
  // Real time spent in progress hooks (audit work, channel pushes); counted
  // 1:1 into the simulated duration, which is what preserves the paper's
  // overhead percentages under time compression.
  Nanos hook_cost = Nanos::zero();

  auto pace = [&](Nanos simulated) {
    if (options_.time_scale <= 0.0) return;
    const auto real = Nanos(static_cast<Nanos::rep>(
        static_cast<double>(simulated.count()) / options_.time_scale));
    if (real > std::chrono::microseconds(100)) {
      std::this_thread::sleep_for(real);
    }
  };
  pace(link.rtt);

  Progress progress;
  progress.url = url;
  progress.total_bytes = size;

  std::uint64_t remaining = size;
  while (remaining > 0) {
    const std::uint64_t chunk =
        std::min<std::uint64_t>(remaining, options_.chunk_bytes);
    const auto chunk_time = Nanos(static_cast<Nanos::rep>(
        1e9 * static_cast<double>(chunk) /
        static_cast<double>(link.bytes_per_sec)));
    modeled += chunk_time;
    pace(chunk_time);
    remaining -= chunk;
    progress.transferred += chunk;
    ++progress.chunks;
    progress.elapsed_ms = to_ms(modeled + hook_cost);
    if (hook != nullptr && options_.progress_every > 0 &&
        (progress.chunks % options_.progress_every == 0 || remaining == 0)) {
      const auto before = steady_now();
      auto st = hook(progress);
      hook_cost += std::chrono::duration_cast<Nanos>(steady_now() - before);
      if (!st.ok()) return st.error();
    }
  }
  return to_ms(modeled + hook_cost);
}

}  // namespace csaw::minicurl
