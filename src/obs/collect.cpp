#include "obs/collect.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <utility>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "support/check.hpp"
#include "support/io.hpp"

namespace csaw::obs {
namespace {

using minijson::Json;

// --- event (de)serialization helpers ---------------------------------------

Symbol symbol_or_invalid(std::string_view name) {
  return name.empty() ? Symbol() : Symbol(name);
}

// One "events" element (or one shipped line) back into a TraceEvent. `at`
// is reconstructed relative to an arbitrary zero epoch: only differences
// within one document are meaningful, which is all merge_events needs.
Result<TraceEvent> event_from_json(const Json& o) {
  if (o.type != Json::Type::kObject) {
    return make_error(Errc::kDecode, "trace event is not a JSON object");
  }
  TraceEvent e;
  const std::string kind_name(o.str_or("kind", ""));
  if (!trace_kind_from_name(kind_name, &e.kind)) {
    return make_error(Errc::kDecode,
                      "unknown trace event kind '" + kind_name + "'");
  }
  const double t_us = o.num_or("t_us", 0.0);
  e.at = SteadyTime{} + std::chrono::duration_cast<Nanos>(
                            std::chrono::duration<double, std::micro>(t_us));
  e.instance = symbol_or_invalid(o.str_or("instance", ""));
  e.junction = symbol_or_invalid(o.str_or("junction", ""));
  e.peer = symbol_or_invalid(o.str_or("peer", ""));
  e.label = symbol_or_invalid(o.str_or("label", ""));
  e.seq = o.u64_or("seq", 0);
  e.value_ns = o.u64_or("value_ns", 0);
  e.trace_id = o.u64_or("trace_id", 0);
  e.span_id = o.u64_or("span_id", 0);
  e.parent_span = o.u64_or("parent_span", 0);
  e.hlc.physical_us = o.u64_or("hlc_us", 0);
  e.hlc.logical = static_cast<std::uint32_t>(o.u64_or("hlc_lc", 0));
  return e;
}

double event_t_us(const TraceEvent& e) {
  return std::chrono::duration<double, std::micro>(e.at - SteadyTime{}).count();
}

// Cross-process timestamp in microseconds: the HLC when present (wall-clock
// anchored, causally repaired), else the file-relative time. The logical
// counter becomes a sub-microsecond fraction so causal order survives the
// flattening to one axis.
double causal_ts_us(const TraceEvent& e) {
  if (e.hlc.valid()) {
    return static_cast<double>(e.hlc.physical_us) + e.hlc.logical * 1e-3;
  }
  return event_t_us(e);
}

void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_event_args(std::ostream& os, const TraceEvent& e) {
  os << "\"args\": {\"trace_id\": " << e.trace_id
     << ", \"span_id\": " << e.span_id
     << ", \"parent_span\": " << e.parent_span
     << ", \"hlc_us\": " << e.hlc.physical_us
     << ", \"hlc_lc\": " << e.hlc.logical << ", \"seq\": " << e.seq
     << ", \"value_ns\": " << e.value_ns << "}";
}

}  // namespace

// ---------------------------------------------------------------------------
// Offline: parse + merge
// ---------------------------------------------------------------------------

Result<TraceDoc> parse_trace_json(std::string_view text) {
  auto parsed = minijson::parse(text);
  if (!parsed.ok()) return parsed.error();
  const Json& root = *parsed;
  if (root.type != Json::Type::kObject) {
    return make_error(Errc::kDecode, "trace document root is not an object");
  }
  TraceDoc doc;
  doc.dropped = root.u64_or("dropped", 0);
  const Json* events = root.find("events");
  if (events == nullptr) return doc;  // metrics-only document
  if (events->type != Json::Type::kArray) {
    return make_error(Errc::kDecode, "\"events\" is not an array");
  }
  doc.events.reserve(events->items.size());
  for (const Json& item : events->items) {
    auto e = event_from_json(item);
    if (!e.ok()) return e.error();
    doc.events.push_back(*std::move(e));
  }
  return doc;
}

Result<TraceDoc> load_trace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(Errc::kHostFailure,
                      "cannot open trace file '" + path + "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto doc = parse_trace_json(buf.str());
  if (!doc.ok()) {
    return make_error(doc.error().code, path + ": " + doc.error().message);
  }
  return doc;
}

std::vector<TraceEvent> merge_events(const std::vector<TraceDoc>& docs) {
  struct Keyed {
    TraceEvent event;
    std::size_t doc;
    std::size_t pos;
  };
  std::vector<Keyed> keyed;
  for (std::size_t d = 0; d < docs.size(); ++d) {
    for (std::size_t i = 0; i < docs[d].events.size(); ++i) {
      keyed.push_back(Keyed{docs[d].events[i], d, i});
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     const bool av = a.event.hlc.valid();
                     const bool bv = b.event.hlc.valid();
                     if (av != bv) return av;  // HLC-stamped events first
                     if (av) {
                       if (a.event.hlc != b.event.hlc) {
                         return a.event.hlc < b.event.hlc;
                       }
                     } else if (event_t_us(a.event) != event_t_us(b.event)) {
                       return event_t_us(a.event) < event_t_us(b.event);
                     }
                     // Deterministic tie-break: file order within file index.
                     return std::tie(a.doc, a.pos) < std::tie(b.doc, b.pos);
                   });
  std::vector<TraceEvent> out;
  out.reserve(keyed.size());
  for (auto& k : keyed) out.push_back(std::move(k.event));
  return out;
}

// ---------------------------------------------------------------------------
// Perfetto writer
// ---------------------------------------------------------------------------

void write_perfetto_json(std::ostream& os,
                         const std::vector<TraceEvent>& events) {
  // Stable pid per instance (order of first appearance), tid per junction
  // within an instance. tid 0 is the instance-level track (lifecycle,
  // pushes made outside junction bodies).
  std::vector<Symbol> instances;
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> tids;
  auto pid_of = [&](Symbol inst) {
    for (std::size_t i = 0; i < instances.size(); ++i) {
      if (instances[i] == inst) return static_cast<int>(i) + 1;
    }
    instances.push_back(inst);
    return static_cast<int>(instances.size());
  };
  auto tid_of = [&](Symbol inst, Symbol junction) {
    if (!junction.valid()) return 0;
    const auto key = std::make_pair(inst.id(), junction.id());
    auto it = tids.find(key);
    if (it != tids.end()) return it->second;
    // tids within a process count up from 1 in appearance order.
    int next = 1;
    for (const auto& [k, v] : tids) {
      if (k.first == inst.id()) next = std::max(next, v + 1);
    }
    tids.emplace(key, next);
    return next;
  };

  double min_ts = std::numeric_limits<double>::infinity();
  for (const TraceEvent& e : events) {
    min_ts = std::min(min_ts, causal_ts_us(e));
  }
  if (!std::isfinite(min_ts)) min_ts = 0.0;
  auto ts_of = [&](const TraceEvent& e) { return causal_ts_us(e) - min_ts; };

  // Completion time per push span, to give push_sent slices a duration.
  // Also the set of push spans present at all: a ring-buffer drop can evict
  // a push while its child run survives, and a flow finish whose start was
  // dropped must not be emitted (Perfetto rejects dangling finishes).
  std::map<std::uint64_t, double> push_done_ts;
  std::set<std::uint64_t> push_spans;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::kPushSent && e.span_id != 0) {
      push_spans.insert(e.span_id);
    }
    if (e.kind == TraceEvent::Kind::kPushAcked ||
        e.kind == TraceEvent::Kind::kPushNacked ||
        e.kind == TraceEvent::Kind::kPushTimeout) {
      if (e.span_id != 0) push_done_ts.emplace(e.span_id, ts_of(e));
    }
  }

  const auto saved_flags = os.flags();
  const auto saved_precision = os.precision();
  os.setf(std::ios::fixed);
  os.precision(3);

  os << "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&]() -> std::ostream& {
    os << (first ? "\n" : ",\n") << "  ";
    first = false;
    return os;
  };

  // Metadata: one "process" per instance, one "thread" per junction.
  // Passing every event through pid_of/tid_of first keeps ids stable and
  // lets us emit all metadata up front.
  for (const TraceEvent& e : events) {
    (void)tid_of(e.instance, e.junction);
    (void)pid_of(e.instance);
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    sep() << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << (i + 1)
          << ", \"tid\": 0, \"args\": {\"name\": ";
    write_json_string(os, instances[i].valid() ? instances[i].str() : "?");
    os << "}}";
    sep() << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << (i + 1)
          << ", \"tid\": 0, \"args\": {\"name\": \"(instance)\"}}";
  }
  for (const auto& [key, tid] : tids) {
    int pid = 0;
    Symbol junction;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      if (instances[i].id() == key.first) pid = static_cast<int>(i) + 1;
    }
    for (const TraceEvent& e : events) {
      if (e.junction.valid() && e.junction.id() == key.second) {
        junction = e.junction;
        break;
      }
    }
    sep() << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << pid
          << ", \"tid\": " << tid << ", \"args\": {\"name\": ";
    write_json_string(os, junction.valid() ? junction.str() : "?");
    os << "}}";
  }

  for (const TraceEvent& e : events) {
    const int pid = pid_of(e.instance);
    const int tid = tid_of(e.instance, e.junction);
    const double ts = ts_of(e);
    const char* name = trace_kind_name(e.kind);
    switch (e.kind) {
      case TraceEvent::Kind::kJunctionRan: {
        // The HLC stamp is the run's *start* (taken before the body, so the
        // body's own pushes nest after it); the slice extends value_ns
        // forward from it.
        const double dur = std::max(static_cast<double>(e.value_ns) / 1000.0,
                                    0.001);
        sep() << "{\"ph\": \"X\", \"name\": ";
        write_json_string(os, e.junction.valid() ? e.junction.str() : name);
        os << ", \"cat\": \"junction\", \"pid\": " << pid
           << ", \"tid\": " << tid << ", \"ts\": " << ts
           << ", \"dur\": " << dur << ", ";
        write_event_args(os, e);
        os << "}";
        if (e.parent_span != 0 && push_spans.count(e.parent_span) != 0) {
          // Flow finish bound at the slice start: the start's HLC was taken
          // after the receive merge()d the sender's clock, so it is after
          // the sender's flow start however skewed the clocks were.
          sep() << "{\"ph\": \"f\", \"bp\": \"e\", \"name\": \"push\", "
                << "\"cat\": \"flow\", \"id\": " << e.parent_span
                << ", \"pid\": " << pid << ", \"tid\": " << tid
                << ", \"ts\": " << ts << "}";
        }
        break;
      }
      case TraceEvent::Kind::kPushSent: {
        double dur = 1.0;
        auto it = push_done_ts.find(e.span_id);
        if (it != push_done_ts.end() && it->second > ts) dur = it->second - ts;
        sep() << "{\"ph\": \"X\", \"name\": ";
        // Slice name: "push <target>" reads better than "push_sent".
        write_json_string(os,
                          "push " + (e.peer.valid() ? e.peer.str() : "?"));
        os << ", \"cat\": \"push\", \"pid\": " << pid << ", \"tid\": " << tid
           << ", \"ts\": " << ts << ", \"dur\": " << dur << ", ";
        write_event_args(os, e);
        os << "}";
        if (e.span_id != 0) {
          sep() << "{\"ph\": \"s\", \"name\": \"push\", \"cat\": \"flow\", "
                << "\"id\": " << e.span_id << ", \"pid\": " << pid
                << ", \"tid\": " << tid << ", \"ts\": " << ts << "}";
        }
        break;
      }
      default: {
        sep() << "{\"ph\": \"i\", \"s\": \"t\", \"name\": ";
        write_json_string(os, name);
        os << ", \"cat\": \"event\", \"pid\": " << pid << ", \"tid\": " << tid
           << ", \"ts\": " << ts << ", ";
        write_event_args(os, e);
        os << "}";
        break;
      }
    }
  }
  if (!first) os << "\n";
  os << "], \"displayTimeUnit\": \"ms\"}\n";

  os.flags(saved_flags);
  os.precision(saved_precision);
}

Status write_perfetto_json_file(const std::string& path,
                                const std::vector<TraceEvent>& events) {
  // Atomic replace (support/io): a crash mid-export leaves the previous
  // trace intact instead of a truncated JSON file.
  std::ostringstream out;
  write_perfetto_json(out, events);
  return io::write_file_atomic(path, out.str());
}

Status check_perfetto_json(std::string_view text) {
  auto parsed = minijson::parse(text);
  if (!parsed.ok()) return parsed.error();
  const Json& root = *parsed;
  if (root.type != Json::Type::kObject) {
    return make_error(Errc::kVerifyFailed, "root is not a JSON object");
  }
  const Json* trace_events = root.find("traceEvents");
  if (trace_events == nullptr || trace_events->type != Json::Type::kArray) {
    return make_error(Errc::kVerifyFailed, "missing \"traceEvents\" array");
  }

  struct Flow {
    double ts = 0.0;
    bool seen = false;
  };
  std::map<std::uint64_t, Flow> flow_starts;
  struct Finish {
    std::uint64_t id;
    double ts;
  };
  std::vector<Finish> flow_finishes;
  // Earliest timestamp observed per span (the span's start).
  std::map<std::uint64_t, Hlc> span_hlc;
  struct ParentRef {
    std::uint64_t span;
    std::uint64_t parent;
    Hlc hlc;
  };
  std::vector<ParentRef> parent_refs;

  for (const Json& ev : trace_events->items) {
    if (ev.type != Json::Type::kObject) {
      return make_error(Errc::kVerifyFailed,
                        "traceEvents element is not an object");
    }
    const std::string_view ph = ev.str_or("ph", "");
    if (ph.empty()) {
      return make_error(Errc::kVerifyFailed, "event without \"ph\"");
    }
    const double ts = ev.num_or("ts", -1.0);
    if (ph != "M" && ts < 0.0) {
      return make_error(Errc::kVerifyFailed,
                        "non-metadata event without a non-negative \"ts\"");
    }
    if (ph == "s") {
      const std::uint64_t id = ev.u64_or("id", 0);
      auto [it, inserted] = flow_starts.emplace(id, Flow{ts, true});
      if (!inserted) it->second.ts = std::min(it->second.ts, ts);
    } else if (ph == "f") {
      flow_finishes.push_back(Finish{ev.u64_or("id", 0), ts});
    }
    const Json* args = ev.find("args");
    if (args != nullptr && args->type == Json::Type::kObject) {
      const std::uint64_t span = args->u64_or("span_id", 0);
      const std::uint64_t parent = args->u64_or("parent_span", 0);
      const Hlc hlc{args->u64_or("hlc_us", 0),
                    static_cast<std::uint32_t>(args->u64_or("hlc_lc", 0))};
      if (span != 0 && hlc.valid()) {
        auto [it, inserted] = span_hlc.emplace(span, hlc);
        if (!inserted && hlc < it->second) it->second = hlc;
        if (parent != 0) parent_refs.push_back(ParentRef{span, parent, hlc});
      }
    }
  }

  for (const Finish& f : flow_finishes) {
    auto it = flow_starts.find(f.id);
    if (it == flow_starts.end()) {
      return make_error(Errc::kVerifyFailed,
                        "flow finish id " + std::to_string(f.id) +
                            " has no flow start");
    }
    if (it->second.ts > f.ts) {
      return make_error(Errc::kVerifyFailed,
                        "flow " + std::to_string(f.id) +
                            " finishes before it starts");
    }
  }
  for (const ParentRef& ref : parent_refs) {
    auto it = span_hlc.find(ref.parent);
    if (it == span_hlc.end()) continue;  // parent outside the merged set
    if (ref.hlc < it->second) {
      return make_error(Errc::kVerifyFailed,
                        "span " + std::to_string(ref.span) +
                            " is timestamped before its parent " +
                            std::to_string(ref.parent) +
                            " (HLC order violated)");
    }
  }
  return Status::ok_status();
}

// ---------------------------------------------------------------------------
// Live collector socket
// ---------------------------------------------------------------------------

TraceCollector::TraceCollector(int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CSAW_CHECK(listen_fd_ >= 0) << "trace collector: socket() failed";
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  CSAW_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0)
      << "trace collector: bind(127.0.0.1:" << port << ") failed";
  CSAW_CHECK(::listen(listen_fd_, 16) == 0)
      << "trace collector: listen() failed";
  socklen_t len = sizeof(addr);
  CSAW_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                           &len) == 0)
      << "trace collector: getsockname() failed";
  port_ = ntohs(addr.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

TraceCollector::~TraceCollector() {
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  {
    std::scoped_lock lock(mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (auto& t : conn_threads_) {
    if (t.joinable()) t.join();
  }
  {
    std::scoped_lock lock(mu_);
    for (const int fd : conn_fds_) ::close(fd);
    conn_fds_.clear();
  }
  ::close(listen_fd_);
}

void TraceCollector::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listen socket gone
    }
    std::scoped_lock lock(mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void TraceCollector::connection_loop(int fd) {
  std::string pending;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = pending.find('\n', start);
         nl != std::string::npos; nl = pending.find('\n', start)) {
      const std::string_view line(pending.data() + start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      auto parsed = minijson::parse(line);
      if (!parsed.ok()) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      auto event = event_from_json(*parsed);
      if (!event.ok()) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::scoped_lock lock(mu_);
      events_.push_back(*std::move(event));
    }
    pending.erase(0, start);
  }
}

std::size_t TraceCollector::count() const {
  std::scoped_lock lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceCollector::take() {
  std::scoped_lock lock(mu_);
  return std::exchange(events_, {});
}

// ---------------------------------------------------------------------------
// Shipper
// ---------------------------------------------------------------------------

Result<TraceShipper> TraceShipper::connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return make_error(Errc::kHostFailure, "trace shipper: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return make_error(Errc::kUnreachable,
                      "trace shipper: no collector at 127.0.0.1:" +
                          std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TraceShipper(fd);
}

TraceShipper::~TraceShipper() {
  if (fd_ >= 0) ::close(fd_);
}

TraceShipper::TraceShipper(TraceShipper&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

Result<std::size_t> TraceShipper::ship(Tracer& tracer) {
  const SteadyTime epoch = tracer.epoch();
  const std::vector<TraceEvent> events = tracer.drain();
  std::ostringstream lines;
  for (const TraceEvent& e : events) {
    write_trace_event_json(lines, e, epoch);
    lines << '\n';
  }
  const std::string payload = lines.str();
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd_, payload.data() + sent, payload.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return make_error(Errc::kHostFailure,
                        "trace shipper: connection lost mid-ship");
    }
    sent += static_cast<std::size_t>(n);
  }
  return events.size();
}

}  // namespace csaw::obs
