#include "obs/json.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>

namespace csaw::obs::minijson {

std::uint64_t Json::u64_or(std::string_view key, std::uint64_t def) const {
  const Json* v = find(key);
  if (v == nullptr || v->type != Type::kNumber) return def;
  return v->integral ? v->uint_value
                     : static_cast<std::uint64_t>(std::llround(v->number));
}

double Json::num_or(std::string_view key, double def) const {
  const Json* v = find(key);
  return (v != nullptr && v->type == Type::kNumber) ? v->number : def;
}

std::string_view Json::str_or(std::string_view key,
                              std::string_view def) const {
  const Json* v = find(key);
  return (v != nullptr && v->type == Type::kString) ? std::string_view(v->str)
                                                    : def;
}

namespace {

// Propagate-or-assign for Result<T> inside this file.
#define CSAW_TRY_ASSIGN(dst, expr)                     \
  do {                                                 \
    auto csaw_try_r_ = (expr);                         \
    if (!csaw_try_r_.ok()) return csaw_try_r_.error(); \
    (dst) = std::move(csaw_try_r_).value();            \
  } while (false)

class JsonParser {
 public:
  explicit JsonParser(std::string_view text)
      : begin_(text.data()), p_(text.data()), end_(text.data() + text.size()) {}

  Result<Json> parse() {
    Json v;
    CSAW_TRY_ASSIGN(v, value());
    skip_ws();
    if (p_ != end_) return fail("trailing bytes after JSON value");
    return v;
  }

 private:
  Error fail(const std::string& what) const {
    return make_error(
        Errc::kDecode,
        "json: " + what + " at offset " +
            std::to_string(static_cast<std::size_t>(p_ - begin_)));
  }

  void skip_ws() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) ++p_;
  }

  bool consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  Result<Json> value() {
    skip_ws();
    if (p_ == end_) return fail("unexpected end of input");
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't':
      case 'f': return boolean();
      case 'n': return null_value();
      default: return number();
    }
  }

  Result<Json> object() {
    ++p_;  // '{'
    Json v;
    v.type = Json::Type::kObject;
    skip_ws();
    if (consume('}')) return v;
    while (true) {
      skip_ws();
      Json key;
      CSAW_TRY_ASSIGN(key, string_value());
      skip_ws();
      if (!consume(':')) return fail("expected ':' in object");
      Json val;
      CSAW_TRY_ASSIGN(val, value());
      v.fields.emplace_back(std::move(key.str), std::move(val));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return v;
      return fail("expected ',' or '}' in object");
    }
  }

  Result<Json> array() {
    ++p_;  // '['
    Json v;
    v.type = Json::Type::kArray;
    skip_ws();
    if (consume(']')) return v;
    while (true) {
      Json item;
      CSAW_TRY_ASSIGN(item, value());
      v.items.push_back(std::move(item));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return v;
      return fail("expected ',' or ']' in array");
    }
  }

  Result<Json> string_value() {
    if (p_ == end_ || *p_ != '"') return fail("expected string");
    ++p_;
    Json v;
    v.type = Json::Type::kString;
    while (p_ != end_ && *p_ != '"') {
      char c = *p_++;
      if (c != '\\') {
        v.str.push_back(c);
        continue;
      }
      if (p_ == end_) return fail("unterminated escape");
      const char esc = *p_++;
      switch (esc) {
        case '"': v.str.push_back('"'); break;
        case '\\': v.str.push_back('\\'); break;
        case '/': v.str.push_back('/'); break;
        case 'b': v.str.push_back('\b'); break;
        case 'f': v.str.push_back('\f'); break;
        case 'n': v.str.push_back('\n'); break;
        case 'r': v.str.push_back('\r'); break;
        case 't': v.str.push_back('\t'); break;
        case 'u': {
          if (end_ - p_ < 4) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p_++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by our writers; pass them through as-is).
          if (code < 0x80) {
            v.str.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            v.str.push_back(static_cast<char>(0xc0 | (code >> 6)));
            v.str.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            v.str.push_back(static_cast<char>(0xe0 | (code >> 12)));
            v.str.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            v.str.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
    if (!consume('"')) return fail("unterminated string");
    return v;
  }

  Result<Json> boolean() {
    Json v;
    v.type = Json::Type::kBool;
    if (end_ - p_ >= 4 && std::string_view(p_, 4) == "true") {
      v.boolean = true;
      p_ += 4;
      return v;
    }
    if (end_ - p_ >= 5 && std::string_view(p_, 5) == "false") {
      v.boolean = false;
      p_ += 5;
      return v;
    }
    return fail("expected boolean");
  }

  Result<Json> null_value() {
    if (end_ - p_ >= 4 && std::string_view(p_, 4) == "null") {
      p_ += 4;
      return Json{};
    }
    return fail("expected null");
  }

  Result<Json> number() {
    const char* start = p_;
    bool negative = false;
    if (consume('-')) negative = true;
    std::uint64_t mag = 0;
    bool overflow = false;
    bool any_digit = false;
    while (p_ != end_ && *p_ >= '0' && *p_ <= '9') {
      any_digit = true;
      const std::uint64_t digit = static_cast<std::uint64_t>(*p_ - '0');
      if (mag > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
        overflow = true;
      } else {
        mag = mag * 10 + digit;
      }
      ++p_;
    }
    if (!any_digit) return fail("expected number");
    bool fractional = false;
    if (p_ != end_ && *p_ == '.') {
      fractional = true;
      ++p_;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    if (p_ != end_ && (*p_ == 'e' || *p_ == 'E')) {
      fractional = true;
      ++p_;
      if (p_ != end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      while (p_ != end_ && *p_ >= '0' && *p_ <= '9') ++p_;
    }
    Json v;
    v.type = Json::Type::kNumber;
    v.number = std::strtod(std::string(start, p_).c_str(), nullptr);
    v.integral = !negative && !fractional && !overflow;
    v.uint_value = v.integral ? mag : 0;
    return v;
  }

  const char* begin_;
  const char* p_;
  const char* end_;
};

#undef CSAW_TRY_ASSIGN

}  // namespace

Result<Json> parse(std::string_view text) { return JsonParser(text).parse(); }

}  // namespace csaw::obs::minijson
