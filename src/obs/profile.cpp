#include "obs/profile.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "obs/json.hpp"
#include "support/io.hpp"

namespace csaw::obs {
namespace {

using minijson::Json;

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_hist(std::ostream& os, const HistSummary& h) {
  os << "{\"count\": " << h.count << ", \"sum\": " << h.sum
     << ", \"max\": " << h.max << ", \"p50\": " << h.p50
     << ", \"p90\": " << h.p90 << ", \"p99\": " << h.p99 << "}";
}

HistSummary hist_from(const Json* v) {
  HistSummary h;
  if (v == nullptr || v->type != Json::Type::kObject) return h;
  h.count = v->u64_or("count", 0);
  h.sum = v->u64_or("sum", 0);
  h.max = v->u64_or("max", 0);
  h.p50 = v->num_or("p50", 0.0);
  h.p90 = v->num_or("p90", 0.0);
  h.p99 = v->num_or("p99", 0.0);
  return h;
}

void accumulate(JunctionCost& into, const JunctionCost& add) {
  into.evals += add.evals;
  into.fires += add.fires;
  into.body_cpu_ns += add.body_cpu_ns;
  into.body_wall_ns += add.body_wall_ns;
  into.blocked_ns += add.blocked_ns;
  into.queue_delay_ns = merge_summaries(into.queue_delay_ns, add.queue_delay_ns);
  into.body_cpu_per_eval_ns =
      merge_summaries(into.body_cpu_per_eval_ns, add.body_cpu_per_eval_ns);
}

void accumulate(LinkCost& into, const LinkCost& add) {
  into.frames_sent += add.frames_sent;
  into.bytes_sent += add.bytes_sent;
  into.queue_drops += add.queue_drops;
  into.reconnects += add.reconnects;
  into.send_queue_depth =
      merge_summaries(into.send_queue_depth, add.send_queue_depth);
  into.rtt_ns = merge_summaries(into.rtt_ns, add.rtt_ns);
}

void accumulate(TableCost& into, const TableCost& add) {
  // Live key count is a point-in-time level, not a rate: disjoint shards
  // add, successive snapshots of one table take the latest (larger-or-equal
  // writes total marks the later snapshot). Merged rows with one key are
  // always disjoint processes, where addition is the right semantics.
  into.keys += add.keys;
  into.writes += add.writes;
  into.wal_bytes += add.wal_bytes;
}

void sort_rows(CostProfile& p) {
  std::sort(p.junctions.begin(), p.junctions.end(),
            [](const JunctionCost& a, const JunctionCost& b) {
              return std::tie(a.node, a.instance, a.junction) <
                     std::tie(b.node, b.instance, b.junction);
            });
  std::sort(p.links.begin(), p.links.end(),
            [](const LinkCost& a, const LinkCost& b) {
              return std::tie(a.node, a.peer) < std::tie(b.node, b.peer);
            });
  std::sort(p.tables.begin(), p.tables.end(),
            [](const TableCost& a, const TableCost& b) {
              return std::tie(a.node, a.instance) <
                     std::tie(b.node, b.instance);
            });
  std::sort(p.nodes.begin(), p.nodes.end());
  p.nodes.erase(std::unique(p.nodes.begin(), p.nodes.end()), p.nodes.end());
}

}  // namespace

HistSummary summarize(const Histogram& h) {
  HistSummary s;
  s.count = h.count();
  s.sum = h.sum();
  s.max = h.max_seen();
  if (s.count > 0) {
    s.p50 = h.quantile(0.50);
    s.p90 = h.quantile(0.90);
    s.p99 = h.quantile(0.99);
  }
  return s;
}

HistSummary merge_summaries(const HistSummary& a, const HistSummary& b) {
  // Exact totals merge unconditionally; the count-weighted percentile
  // average only ever divides by the weight of inputs that actually carry
  // samples. A zero-count summary (idle junction, fresh link) contributes
  // nothing -- in particular two of them merge to count 0 with zero
  // percentiles, never 0/0 NaN poisoning the merged document and --diff.
  HistSummary m;
  m.count = a.count + b.count;
  m.sum = a.sum + b.sum;
  m.max = std::max(a.max, b.max);
  const double wa = static_cast<double>(a.count);
  const double wb = static_cast<double>(b.count);
  const double w = wa + wb;
  if (w > 0.0) {
    m.p50 = (a.p50 * wa + b.p50 * wb) / w;
    m.p90 = (a.p90 * wa + b.p90 * wb) / w;
    m.p99 = (a.p99 * wa + b.p99 * wb) / w;
  }
  return m;
}

std::string cost_profile_json(const CostProfile& profile) {
  CostProfile p = profile;
  sort_rows(p);
  std::ostringstream os;
  os << std::setprecision(17);
  os << "{\n  \"csaw_profile\": " << p.version << ",\n";
  os << "  \"nodes\": [";
  for (std::size_t i = 0; i < p.nodes.size(); ++i) {
    if (i != 0) os << ", ";
    write_escaped(os, p.nodes[i]);
  }
  os << "],\n";
  os << "  \"duration_ns\": " << p.duration_ns << ",\n";
  os << "  \"junctions\": [";
  for (std::size_t i = 0; i < p.junctions.size(); ++i) {
    const JunctionCost& j = p.junctions[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"node\": ";
    write_escaped(os, j.node);
    os << ", \"instance\": ";
    write_escaped(os, j.instance);
    os << ", \"junction\": ";
    write_escaped(os, j.junction);
    os << ",\n     \"evals\": " << j.evals << ", \"fires\": " << j.fires
       << ", \"body_cpu_ns\": " << j.body_cpu_ns
       << ", \"body_wall_ns\": " << j.body_wall_ns
       << ", \"blocked_ns\": " << j.blocked_ns << ",\n     \"queue_delay_ns\": ";
    write_hist(os, j.queue_delay_ns);
    os << ",\n     \"body_cpu_per_eval_ns\": ";
    write_hist(os, j.body_cpu_per_eval_ns);
    os << "}";
  }
  if (!p.junctions.empty()) os << "\n  ";
  os << "],\n";
  os << "  \"links\": [";
  for (std::size_t i = 0; i < p.links.size(); ++i) {
    const LinkCost& l = p.links[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"node\": ";
    write_escaped(os, l.node);
    os << ", \"peer\": ";
    write_escaped(os, l.peer);
    os << ",\n     \"frames_sent\": " << l.frames_sent
       << ", \"bytes_sent\": " << l.bytes_sent
       << ", \"queue_drops\": " << l.queue_drops
       << ", \"reconnects\": " << l.reconnects
       << ",\n     \"send_queue_depth\": ";
    write_hist(os, l.send_queue_depth);
    os << ",\n     \"rtt_ns\": ";
    write_hist(os, l.rtt_ns);
    os << "}";
  }
  if (!p.links.empty()) os << "\n  ";
  os << "],\n";
  os << "  \"tables\": [";
  for (std::size_t i = 0; i < p.tables.size(); ++i) {
    const TableCost& t = p.tables[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"node\": ";
    write_escaped(os, t.node);
    os << ", \"instance\": ";
    write_escaped(os, t.instance);
    os << ", \"keys\": " << t.keys << ", \"writes\": " << t.writes
       << ", \"wal_bytes\": " << t.wal_bytes << "}";
  }
  if (!p.tables.empty()) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

Result<CostProfile> parse_cost_profile(std::string_view text) {
  auto parsed = minijson::parse(text);
  if (!parsed.ok()) return parsed.error();
  const Json& root = *parsed;
  if (root.type != Json::Type::kObject) {
    return make_error(Errc::kDecode, "cost profile root is not an object");
  }
  const Json* version = root.find("csaw_profile");
  if (version == nullptr || version->type != Json::Type::kNumber) {
    return make_error(Errc::kDecode,
                      "not a cost profile (missing \"csaw_profile\")");
  }
  CostProfile p;
  p.version = static_cast<int>(root.u64_or("csaw_profile", 1));
  if (p.version < 1 || p.version > 1) {
    return make_error(Errc::kDecode, "unsupported cost profile version " +
                                         std::to_string(p.version));
  }
  p.duration_ns = root.u64_or("duration_ns", 0);
  if (const Json* nodes = root.find("nodes");
      nodes != nullptr && nodes->type == Json::Type::kArray) {
    for (const Json& n : nodes->items) {
      if (n.type == Json::Type::kString) p.nodes.push_back(n.str);
    }
  }
  if (const Json* junctions = root.find("junctions");
      junctions != nullptr && junctions->type == Json::Type::kArray) {
    for (const Json& o : junctions->items) {
      if (o.type != Json::Type::kObject) continue;
      JunctionCost j;
      j.node = o.str_or("node", "");
      j.instance = o.str_or("instance", "");
      j.junction = o.str_or("junction", "");
      j.evals = o.u64_or("evals", 0);
      j.fires = o.u64_or("fires", 0);
      j.body_cpu_ns = o.u64_or("body_cpu_ns", 0);
      j.body_wall_ns = o.u64_or("body_wall_ns", 0);
      j.blocked_ns = o.u64_or("blocked_ns", 0);
      j.queue_delay_ns = hist_from(o.find("queue_delay_ns"));
      j.body_cpu_per_eval_ns = hist_from(o.find("body_cpu_per_eval_ns"));
      p.junctions.push_back(std::move(j));
    }
  }
  if (const Json* links = root.find("links");
      links != nullptr && links->type == Json::Type::kArray) {
    for (const Json& o : links->items) {
      if (o.type != Json::Type::kObject) continue;
      LinkCost l;
      l.node = o.str_or("node", "");
      l.peer = o.str_or("peer", "");
      l.frames_sent = o.u64_or("frames_sent", 0);
      l.bytes_sent = o.u64_or("bytes_sent", 0);
      l.queue_drops = o.u64_or("queue_drops", 0);
      l.reconnects = o.u64_or("reconnects", 0);
      l.send_queue_depth = hist_from(o.find("send_queue_depth"));
      l.rtt_ns = hist_from(o.find("rtt_ns"));
      p.links.push_back(std::move(l));
    }
  }
  if (const Json* tables = root.find("tables");
      tables != nullptr && tables->type == Json::Type::kArray) {
    for (const Json& o : tables->items) {
      if (o.type != Json::Type::kObject) continue;
      TableCost t;
      t.node = o.str_or("node", "");
      t.instance = o.str_or("instance", "");
      t.keys = o.u64_or("keys", 0);
      t.writes = o.u64_or("writes", 0);
      t.wal_bytes = o.u64_or("wal_bytes", 0);
      p.tables.push_back(std::move(t));
    }
  }
  return p;
}

Result<CostProfile> load_cost_profile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(Errc::kHostFailure, "cannot open " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_cost_profile(text.str());
}

Status write_cost_profile_file(const std::string& path,
                               const CostProfile& p) {
  return io::write_file_atomic(path, cost_profile_json(p));
}

CostProfile merge_profiles(const std::vector<CostProfile>& inputs) {
  CostProfile out;
  std::map<std::tuple<std::string, std::string, std::string>, JunctionCost>
      junctions;
  std::map<std::pair<std::string, std::string>, LinkCost> links;
  std::map<std::pair<std::string, std::string>, TableCost> tables;
  for (const CostProfile& p : inputs) {
    out.version = std::max(out.version, p.version);
    out.duration_ns = std::max(out.duration_ns, p.duration_ns);
    for (const std::string& n : p.nodes) out.nodes.push_back(n);
    for (const JunctionCost& j : p.junctions) {
      auto [it, fresh] =
          junctions.try_emplace({j.node, j.instance, j.junction}, j);
      if (!fresh) accumulate(it->second, j);
    }
    for (const LinkCost& l : p.links) {
      auto [it, fresh] = links.try_emplace({l.node, l.peer}, l);
      if (!fresh) accumulate(it->second, l);
    }
    for (const TableCost& t : p.tables) {
      auto [it, fresh] = tables.try_emplace({t.node, t.instance}, t);
      if (!fresh) accumulate(it->second, t);
    }
  }
  for (auto& [_, j] : junctions) out.junctions.push_back(std::move(j));
  for (auto& [_, l] : links) out.links.push_back(std::move(l));
  for (auto& [_, t] : tables) out.tables.push_back(std::move(t));
  sort_rows(out);
  return out;
}

// --- regression diffing ----------------------------------------------------

namespace {

// Collects `metric` as a candidate finding. `lower_better` states which
// direction is a regression.
void judge(std::vector<ProfileDiff::Finding>* regressions,
           std::vector<ProfileDiff::Finding>* improvements,
           const std::string& metric, double before, double after,
           bool lower_better, const DiffOptions& opt) {
  const double worse = lower_better ? after - before : before - after;
  ProfileDiff::Finding f{metric, before, after, 0.0};
  if (before > 0.0) {
    f.pct = worse / before * 100.0;
  } else {
    f.pct = worse > 0.0 ? 100.0 : 0.0;
  }
  if (worse > 0.0 && std::abs(worse) > opt.min_abs &&
      f.pct > opt.threshold_pct) {
    regressions->push_back(std::move(f));
  } else if (worse < 0.0 && std::abs(worse) > opt.min_abs &&
             -f.pct > opt.threshold_pct) {
    improvements->push_back(std::move(f));
  }
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}
bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

ProfileDiff diff_cost_profiles(const CostProfile& before,
                               const CostProfile& after,
                               const DiffOptions& opt) {
  ProfileDiff d;
  std::map<std::tuple<std::string, std::string, std::string>,
           const JunctionCost*>
      old_junctions;
  for (const JunctionCost& j : before.junctions) {
    old_junctions[{j.node, j.instance, j.junction}] = &j;
  }
  for (const JunctionCost& j : after.junctions) {
    auto it = old_junctions.find({j.node, j.instance, j.junction});
    if (it == old_junctions.end()) continue;
    const JunctionCost& o = *it->second;
    const std::string key = j.node + "/" + j.instance + "::" + j.junction;
    if (o.evals > 0 && j.evals > 0) {
      judge(&d.regressions, &d.improvements, key + " cpu_per_eval_ns",
            static_cast<double>(o.body_cpu_ns) / static_cast<double>(o.evals),
            static_cast<double>(j.body_cpu_ns) / static_cast<double>(j.evals),
            /*lower_better=*/true, opt);
    }
    if (o.queue_delay_ns.count > 0 && j.queue_delay_ns.count > 0) {
      judge(&d.regressions, &d.improvements, key + " queue_delay_p99_ns",
            o.queue_delay_ns.p99, j.queue_delay_ns.p99,
            /*lower_better=*/true, opt);
    }
  }
  std::map<std::pair<std::string, std::string>, const LinkCost*> old_links;
  for (const LinkCost& l : before.links) old_links[{l.node, l.peer}] = &l;
  for (const LinkCost& l : after.links) {
    auto it = old_links.find({l.node, l.peer});
    if (it == old_links.end()) continue;
    const LinkCost& o = *it->second;
    if (o.rtt_ns.count > 0 && l.rtt_ns.count > 0) {
      judge(&d.regressions, &d.improvements,
            l.node + "->" + l.peer + " rtt_p99_ns", o.rtt_ns.p99, l.rtt_ns.p99,
            /*lower_better=*/true, opt);
    }
  }
  return d;
}

// Bench snapshots (BENCH_*.json): p99 latencies must not rise, throughput
// must not fall.
ProfileDiff diff_bench_snapshots(const Json& before, const Json& after,
                                 const DiffOptions& opt) {
  ProfileDiff d;
  const Json* old_metrics = before.find("metrics");
  const Json* new_metrics = after.find("metrics");
  if (old_metrics == nullptr) old_metrics = &before;
  if (new_metrics == nullptr) new_metrics = &after;
  for (const auto& [name, v] : new_metrics->fields) {
    if (v.type != Json::Type::kNumber) continue;
    const Json* o = old_metrics->find(name);
    if (o == nullptr || o->type != Json::Type::kNumber) continue;
    const bool lower_better = starts_with(name, "p99_");
    const bool higher_better = starts_with(name, "ops_per_s") ||
                               ends_with(name, "_kqps") ||
                               ends_with(name, "_qps");
    if (!lower_better && !higher_better) continue;
    judge(&d.regressions, &d.improvements, name, o->number, v.number,
          lower_better, opt);
  }
  return d;
}

}  // namespace

Result<ProfileDiff> diff_documents(std::string_view before,
                                   std::string_view after,
                                   const DiffOptions& options) {
  auto old_doc = minijson::parse(before);
  if (!old_doc.ok()) return old_doc.error();
  auto new_doc = minijson::parse(after);
  if (!new_doc.ok()) return new_doc.error();
  if (old_doc->type != Json::Type::kObject ||
      new_doc->type != Json::Type::kObject) {
    return make_error(Errc::kDecode, "diff inputs must be JSON objects");
  }
  const bool old_profile = old_doc->find("csaw_profile") != nullptr;
  const bool new_profile = new_doc->find("csaw_profile") != nullptr;
  if (old_profile != new_profile) {
    return make_error(Errc::kDecode,
                      "cannot diff a cost profile against a bench snapshot");
  }
  if (old_profile) {
    auto parsed_before = parse_cost_profile(before);
    if (!parsed_before.ok()) return parsed_before.error();
    auto parsed_after = parse_cost_profile(after);
    if (!parsed_after.ok()) return parsed_after.error();
    return diff_cost_profiles(*parsed_before, *parsed_after, options);
  }
  return diff_bench_snapshots(*old_doc, *new_doc, options);
}

std::string render_diff(const ProfileDiff& d) {
  std::ostringstream os;
  os << std::setprecision(6);
  for (const auto& f : d.regressions) {
    os << "REGRESSION " << f.metric << ": " << f.before << " -> " << f.after
       << " (" << (f.pct >= 0 ? "+" : "") << f.pct << "%)\n";
  }
  for (const auto& f : d.improvements) {
    os << "improved   " << f.metric << ": " << f.before << " -> " << f.after
       << " (" << -f.pct << "% better)\n";
  }
  if (d.regressions.empty() && d.improvements.empty()) {
    os << "no significant changes\n";
  }
  return os.str();
}

// --- the live profiler -----------------------------------------------------

void Profiler::set_node(std::string_view node) {
  std::scoped_lock lock(mu_);
  if (!node.empty()) node_ = std::string(node);
}

std::string Profiler::node() const {
  std::scoped_lock lock(mu_);
  return node_;
}

JunctionProfile* Profiler::junction(std::string_view instance,
                                    std::string_view junction) {
  std::scoped_lock lock(mu_);
  auto& slot = junctions_[{std::string(instance), std::string(junction)}];
  if (!slot) slot = std::make_unique<JunctionProfile>();
  return slot.get();
}

Histogram* Profiler::link_queue_depth(std::string_view peer) {
  std::scoped_lock lock(mu_);
  auto it = links_.find(peer);
  if (it == links_.end()) {
    it = links_.emplace(std::string(peer), std::make_unique<LinkSlot>()).first;
  }
  return &it->second->depth;
}

void Profiler::record_rtt(std::string_view node, std::uint64_t rtt_ns) {
  Histogram* h = nullptr;
  {
    std::scoped_lock lock(mu_);
    auto it = links_.find(node);
    if (it == links_.end()) {
      it = links_.emplace(std::string(node), std::make_unique<LinkSlot>())
               .first;
    }
    h = &it->second->rtt;
  }
  h->record(rtt_ns);
}

void Profiler::fold_table(const TableCost& row) {
  std::scoped_lock lock(mu_);
  for (TableCost& t : frozen_tables_) {
    if (t.node == row.node && t.instance == row.instance) {
      accumulate(t, row);
      return;
    }
  }
  frozen_tables_.push_back(row);
}

void Profiler::fold_link(const LinkCost& row) {
  std::scoped_lock lock(mu_);
  for (LinkCost& l : frozen_links_) {
    if (l.node == row.node && l.peer == row.peer) {
      accumulate(l, row);
      return;
    }
  }
  frozen_links_.push_back(row);
}

CostProfile Profiler::snapshot(std::vector<TableCost> live_tables,
                               std::vector<LinkCost> live_links) const {
  std::scoped_lock lock(mu_);
  CostProfile p;
  p.duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<Nanos>(steady_now() - start_).count());
  p.nodes.push_back(node_);
  for (const auto& [key, slot] : junctions_) {
    JunctionCost j;
    j.node = node_;
    j.instance = key.first;
    j.junction = key.second;
    j.evals = slot->evals.load(std::memory_order_relaxed);
    j.fires = slot->fires.load(std::memory_order_relaxed);
    j.body_cpu_ns = slot->body_cpu_ns.load(std::memory_order_relaxed);
    j.body_wall_ns = slot->body_wall_ns.load(std::memory_order_relaxed);
    j.blocked_ns = slot->blocked_ns.load(std::memory_order_relaxed);
    j.queue_delay_ns = summarize(slot->queue_delay_ns);
    j.body_cpu_per_eval_ns = summarize(slot->body_cpu_hist_ns);
    p.junctions.push_back(std::move(j));
  }
  // Links: frozen totals + live totals, then this profiler's depth/RTT
  // histograms attached to the merged row (slots survive runtime restarts,
  // so they are recorded exactly once here and never folded).
  std::map<std::pair<std::string, std::string>, LinkCost> links;
  for (const LinkCost& l : frozen_links_) {
    auto [it, fresh] = links.try_emplace({l.node, l.peer}, l);
    if (!fresh) accumulate(it->second, l);
  }
  for (const LinkCost& l : live_links) {
    auto [it, fresh] = links.try_emplace({l.node, l.peer}, l);
    if (!fresh) accumulate(it->second, l);
  }
  for (const auto& [peer, slot] : links_) {
    auto [it, fresh] = links.try_emplace({node_, peer}, LinkCost{});
    if (fresh) {
      it->second.node = node_;
      it->second.peer = peer;
    }
    it->second.send_queue_depth =
        merge_summaries(it->second.send_queue_depth, summarize(slot->depth));
    it->second.rtt_ns =
        merge_summaries(it->second.rtt_ns, summarize(slot->rtt));
  }
  for (auto& [_, l] : links) p.links.push_back(std::move(l));
  std::map<std::pair<std::string, std::string>, TableCost> tables;
  for (const TableCost& t : frozen_tables_) {
    auto [it, fresh] = tables.try_emplace({t.node, t.instance}, t);
    if (!fresh) accumulate(it->second, t);
  }
  for (const TableCost& t : live_tables) {
    auto [it, fresh] = tables.try_emplace({t.node, t.instance}, t);
    if (!fresh) accumulate(it->second, t);
  }
  for (auto& [_, t] : tables) p.tables.push_back(std::move(t));
  sort_rows(p);
  return p;
}

std::string Profiler::snapshot_json(std::vector<TableCost> live_tables,
                                    std::vector<LinkCost> live_links) const {
  return cost_profile_json(
      snapshot(std::move(live_tables), std::move(live_links)));
}

}  // namespace csaw::obs
