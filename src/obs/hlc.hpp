// Hybrid logical clocks (Kulkarni et al.): wall-clock-close timestamps that
// are also causally consistent across instances whose physical clocks
// disagree.
//
// An Hlc is a (physical microseconds, logical counter) pair. Every locally
// observed event calls tick(); every received trace context calls merge(),
// which folds the remote timestamp in so that effects never timestamp before
// their causes, however skewed the senders' clocks are. The pair packs into
// one 64-bit word (52-bit micros, 12-bit logical), so both operations are a
// single CAS loop -- cheap enough to stamp every trace event.
#pragma once

#include <cstdint>
#include <functional>
#include <atomic>

namespace csaw::obs {

struct Hlc {
  std::uint64_t physical_us = 0;  // wall-clock microseconds (52 bits used)
  std::uint32_t logical = 0;      // tie-breaker within one microsecond

  friend auto operator<=>(const Hlc&, const Hlc&) = default;

  [[nodiscard]] bool valid() const { return physical_us != 0 || logical != 0; }

  // 52-bit physical | 12-bit logical. Unix-epoch microseconds need 51 bits
  // today; 52 lasts until ~2112, where 48 would already have overflowed.
  // A logical burst past 2^12 within one microsecond carries into the
  // physical field, which keeps packing order-preserving instead of
  // truncating.
  [[nodiscard]] std::uint64_t packed() const {
    const std::uint64_t carry = logical >> 12;
    return ((physical_us + carry) << 12) | (logical & 0xfff);
  }
  static Hlc from_packed(std::uint64_t p) {
    return Hlc{p >> 12, static_cast<std::uint32_t>(p & 0xfff)};
  }
};

class HlcClock {
 public:
  // `physical` supplies wall microseconds; the default reads the system
  // clock. Injectable so tests can impose skew and frozen clocks.
  using PhysicalFn = std::function<std::uint64_t()>;

  HlcClock();
  explicit HlcClock(PhysicalFn physical);

  // Timestamp for a local event (including sends): strictly greater than
  // every timestamp this clock handed out or merged before.
  Hlc tick();

  // Fold in a remote timestamp on receive, then timestamp the receive
  // event: the result is strictly greater than both `remote` and everything
  // local so far.
  Hlc merge(Hlc remote);

  // Last issued timestamp (no advance).
  [[nodiscard]] Hlc peek() const {
    return Hlc::from_packed(last_.load(std::memory_order_acquire));
  }

 private:
  Hlc advance(Hlc remote);

  PhysicalFn physical_;
  std::atomic<std::uint64_t> last_{0};
};

// Wall-clock microseconds since the Unix epoch (the default PhysicalFn).
std::uint64_t wall_now_us();

}  // namespace csaw::obs
