// Minimal HTTP exposition of live metrics: GET /metrics returns the
// Prometheus text format (counters, histogram summaries with p50/p90/p99
// quantiles, tracer buffer gauges), GET /healthz returns "ok", and -- when
// the runtime attaches a cost profiler -- GET /profile returns the live
// CostProfile JSON (obs/profile.hpp).
//
// The listener binds 127.0.0.1 only and follows the same socket idiom as the
// loopback transport (compart/tcp.cpp): a blocking accept thread, one
// request per connection, length-bounded reads. It is deliberately not a web
// server -- just enough HTTP/1.1 for `curl localhost:<port>/metrics` and a
// Prometheus scraper.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace csaw::obs {

class HttpExposer {
 public:
  // Binds 127.0.0.1:<port> (0 = ephemeral; read the outcome back with
  // port()). `metrics` and `tracer` are borrowed, may be null, and must
  // outlive this object; null sections are simply absent from /metrics.
  // CHECK-fails if the socket cannot be bound (no listener, no endpoint).
  explicit HttpExposer(const Metrics* metrics, Tracer* tracer = nullptr,
                       int port = 0);
  ~HttpExposer();

  HttpExposer(const HttpExposer&) = delete;
  HttpExposer& operator=(const HttpExposer&) = delete;

  [[nodiscard]] int port() const { return port_; }

  // The /metrics body (exposed for tests and one-shot dumps).
  [[nodiscard]] std::string render_metrics() const;

  // Installs (or clears, with nullptr) the /profile body producer. Safe to
  // call while the server runs; the callback must be thread-safe (it is
  // invoked from the accept thread) and is typically the runtime's live
  // CostProfile snapshot.
  void set_profile_source(std::function<std::string()> source);

 private:
  void serve_loop();
  [[nodiscard]] std::function<std::string()> profile_source() const;

  const Metrics* metrics_;
  Tracer* tracer_;
  mutable std::mutex profile_mu_;
  std::function<std::string()> profile_source_;  // under profile_mu_
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread server_;
};

// Renders `metrics` (and optionally `tracer` occupancy/drop gauges) in the
// Prometheus text exposition format. Counter names gain the conventional
// "csaw_" prefix and "_total" suffix; histograms export as summaries.
std::string render_prometheus(const Metrics* metrics, const Tracer* tracer);

}  // namespace csaw::obs
