// JSON export of a run's trace events and metric summaries.
//
// Schema (consumed by bench tooling and tools/csaw-trace; documented in
// DESIGN.md):
//   {
//     "epoch": "steady",
//     "dropped": <events overwritten in full rings>,
//     "buffers": [{"capacity": 16384, "size": 120, "dropped": 0}, ...],
//     "events": [{"t_us": 12.5, "kind": "push_sent", "instance": "Act",
//                 "junction": "j", "peer": "Aud", "label": "",
//                 "seq": 3, "value_ns": 0, "trace_id": 1, "span_id": 2,
//                 "parent_span": 0, "hlc_us": 1700000000000000,
//                 "hlc_lc": 0}, ...],
//     "metrics": {
//       "counters": {"push_sent": 42, ...},
//       "histograms": {"push_latency_ns": {"count": 42, "mean": ...,
//                      "p50": ..., "p90": ..., "p99": ..., "max": ...}}
//     }
//   }
// "buffers" has one entry per tracer thread-ring, captured before the drain.
// t_us is microseconds relative to the tracer's (per-process) epoch; hlc_us
// is wall-clock-anchored and comparable across processes. Null arguments
// leave the corresponding section empty.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/result.hpp"

namespace csaw::obs {

// One event as a JSON object (the element schema of "events" above). Also
// the line format shipped to a TraceCollector.
void write_trace_event_json(std::ostream& os, const TraceEvent& e,
                            SteadyTime epoch);

// Core writer over already-drained events (callers that need the events for
// more than one export drain once and pass them here).
void write_trace_json(std::ostream& os, const std::vector<TraceEvent>& events,
                      SteadyTime epoch, std::uint64_t dropped,
                      const std::vector<Tracer::BufferStats>& buffers,
                      const Metrics* metrics);

// Drains `tracer` (if non-null) and writes the combined JSON document.
void write_trace_json(std::ostream& os, Tracer* tracer, const Metrics* metrics);

// Same, to a file. kHostFailure if the file cannot be opened.
Status write_trace_json_file(const std::string& path, Tracer* tracer,
                             const Metrics* metrics);

}  // namespace csaw::obs
