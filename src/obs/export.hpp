// JSON export of a run's trace events and metric summaries.
//
// Schema (consumed by bench tooling; documented in DESIGN.md):
//   {
//     "epoch": "steady",
//     "dropped": <events overwritten in full rings>,
//     "events": [{"t_us": 12.5, "kind": "push_sent", "instance": "Act",
//                 "junction": "j", "peer": "Aud", "label": "",
//                 "seq": 3, "value_ns": 0}, ...],
//     "metrics": {
//       "counters": {"push_sent": 42, ...},
//       "histograms": {"push_latency_ns": {"count": 42, "mean": ...,
//                      "p50": ..., "p90": ..., "p99": ..., "max": ...}}
//     }
//   }
// Timestamps are microseconds relative to the tracer's epoch. Either
// argument may be null; the corresponding section is then empty.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/result.hpp"

namespace csaw::obs {

// Drains `tracer` (if non-null) and writes the combined JSON document.
void write_trace_json(std::ostream& os, Tracer* tracer, const Metrics* metrics);

// Same, to a file. kHostFailure if the file cannot be opened.
Status write_trace_json_file(const std::string& path, Tracer* tracer,
                             const Metrics* metrics);

}  // namespace csaw::obs
