// Continuous cost profiling: the measured half of the architecture
// autoscheduler split (ROADMAP item 4).
//
// A Profiler owns lock-free per-junction accumulators (eval/fire counts,
// body CPU via CLOCK_THREAD_CPUTIME_ID deltas, ready-queue delay, blocked
// time from the support/blocking hooks) and per-link probes (heartbeat-echo
// RTT, send-queue depth). The scheduler and transport record through stable
// slot pointers resolved once at wiring time; with no profiler attached the
// hot paths pay one null check.
//
// Snapshots flatten everything into a versioned CostProfile -- a
// junction x node matrix of costs plus a link matrix of latency/bandwidth
// and per-table write/WAL rates -- serialized as JSON ("csaw_profile": 1).
// Profiles from different processes merge by summing totals keyed on
// (node, instance, junction) / (node, peer), so cluster-wide CPU totals are
// exact; histogram percentiles merge count-weighted (approximate, used only
// for reporting and regression diffs). The csaw-profile tool wraps
// merge_profiles/diff_documents; the same diff runs over BENCH_*.json
// snapshots in CI.
//
// Clock sources: body CPU is the worker thread's CPU clock (does not
// advance while blocked, so CPU and blocked time never double-count);
// queue delay, wall time, RTT and durations are the steady clock. RTT
// timestamps are only ever compared on the node that minted them, so no
// cross-host clock agreement is assumed.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "support/clock.hpp"
#include "support/result.hpp"

namespace csaw::obs {

// Live per-junction accumulators. Top-level (not nested in Profiler) so the
// scheduler's ready-queue Entity can hold a forward-declared pointer.
// All writes are relaxed atomics or Histogram::record -- lock-free.
struct JunctionProfile {
  std::atomic<std::uint64_t> evals{0};      // guard evaluations
  std::atomic<std::uint64_t> fires{0};      // body runs (guard passed)
  std::atomic<std::uint64_t> body_cpu_ns{0};   // thread-CPU across evals
  std::atomic<std::uint64_t> body_wall_ns{0};  // wall time across body runs
  std::atomic<std::uint64_t> blocked_ns{0};    // body time spent in blocking calls
  Histogram queue_delay_ns;    // ready-queue enqueue -> dequeue
  Histogram body_cpu_hist_ns;  // per-eval thread-CPU delta
};

// Flattened histogram: exact count/sum/max (merge by addition) plus
// quantiles that merge count-weighted.
struct HistSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

HistSummary summarize(const Histogram& h);
HistSummary merge_summaries(const HistSummary& a, const HistSummary& b);

struct JunctionCost {
  std::string node;
  std::string instance;
  std::string junction;
  std::uint64_t evals = 0;
  std::uint64_t fires = 0;
  std::uint64_t body_cpu_ns = 0;
  std::uint64_t body_wall_ns = 0;
  std::uint64_t blocked_ns = 0;
  HistSummary queue_delay_ns;
  HistSummary body_cpu_per_eval_ns;
};

struct LinkCost {
  std::string node;  // local end
  std::string peer;  // remote end (peer name / remote node)
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t reconnects = 0;
  HistSummary send_queue_depth;  // depth sampled at each send
  HistSummary rtt_ns;            // heartbeat echo round trips
};

struct TableCost {
  std::string node;
  std::string instance;  // one KV table per instance
  std::uint64_t keys = 0;       // live keys at snapshot
  std::uint64_t writes = 0;     // applied updates
  std::uint64_t wal_bytes = 0;  // cumulative WAL bytes appended
};

// The versioned cost-model artifact ("csaw_profile": 1). Rates
// (bytes/sec, writes/sec) are derived by consumers from the exact totals
// and duration_ns rather than stored, so merges stay lossless.
struct CostProfile {
  int version = 1;
  std::vector<std::string> nodes;
  std::uint64_t duration_ns = 0;  // profiled wall span (max across merges)
  std::vector<JunctionCost> junctions;
  std::vector<LinkCost> links;
  std::vector<TableCost> tables;
};

std::string cost_profile_json(const CostProfile& p);
Result<CostProfile> parse_cost_profile(std::string_view text);
Result<CostProfile> load_cost_profile(const std::string& path);
Status write_cost_profile_file(const std::string& path, const CostProfile& p);

// Sum-merge across processes: rows keyed by (node, instance, junction),
// (node, peer), (node, instance); totals add exactly, percentiles merge
// count-weighted, duration is the max input span.
CostProfile merge_profiles(const std::vector<CostProfile>& inputs);

// --- regression diffing ----------------------------------------------------

struct DiffOptions {
  double threshold_pct = 25.0;  // flag changes beyond this
  // Absolute floor (same unit as the compared metric) a change must also
  // clear; damps noise on near-zero latencies.
  double min_abs = 0.0;
};

struct ProfileDiff {
  struct Finding {
    std::string metric;
    double before = 0.0;
    double after = 0.0;
    double pct = 0.0;  // signed change toward "worse" (+) or "better" (-)
  };
  std::vector<Finding> regressions;
  std::vector<Finding> improvements;
};

// Compares two JSON documents that are either both CostProfiles
// ("csaw_profile" root key: per-junction CPU/eval and queue-delay p99,
// per-link RTT p99) or both bench snapshots ("metrics" object: p99_*
// latencies up, ops_per_s*/*_kqps throughput down).
Result<ProfileDiff> diff_documents(std::string_view before,
                                   std::string_view after,
                                   const DiffOptions& options = {});
std::string render_diff(const ProfileDiff& d);

// --- the live profiler -----------------------------------------------------

class Profiler {
 public:
  Profiler() : start_(steady_now()) {}

  // The node name stamped on every row this profiler emits (the runtime
  // mirrors TcpOptions::node_name here).
  void set_node(std::string_view node);
  [[nodiscard]] std::string node() const;

  // Stable per-junction slot, created on first use; recording through the
  // returned pointer is lock-free. Never invalidated while the Profiler
  // lives (runtimes may come and go around it).
  JunctionProfile* junction(std::string_view instance,
                            std::string_view junction);

  // Stable per-peer send-queue-depth histogram for the transport.
  Histogram* link_queue_depth(std::string_view peer);

  // One heartbeat-echo RTT sample against remote node `node`.
  void record_rtt(std::string_view node, std::uint64_t rtt_ns);

  // Accumulate a finished runtime's table/link totals so a profile written
  // after the runtime is destroyed (or spanning several runtime
  // incarnations) still carries them. Rows merge by key.
  void fold_table(const TableCost& row);
  void fold_link(const LinkCost& row);

  // Frozen folds + live rows from the caller + this profiler's slots.
  [[nodiscard]] CostProfile snapshot(
      std::vector<TableCost> live_tables = {},
      std::vector<LinkCost> live_links = {}) const;
  [[nodiscard]] std::string snapshot_json(
      std::vector<TableCost> live_tables = {},
      std::vector<LinkCost> live_links = {}) const;

 private:
  struct LinkSlot {
    Histogram depth;
    Histogram rtt;
  };

  mutable std::mutex mu_;
  std::string node_ = "local";
  SteadyTime start_;
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<JunctionProfile>>
      junctions_;
  std::map<std::string, std::unique_ptr<LinkSlot>, std::less<>> links_;
  std::vector<TableCost> frozen_tables_;
  std::vector<LinkCost> frozen_links_;
};

}  // namespace csaw::obs
