#include "obs/hlc.hpp"

#include <chrono>

namespace csaw::obs {

std::uint64_t wall_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

HlcClock::HlcClock() : physical_(wall_now_us) {}

HlcClock::HlcClock(PhysicalFn physical) : physical_(std::move(physical)) {}

Hlc HlcClock::tick() { return advance(Hlc{}); }

Hlc HlcClock::merge(Hlc remote) { return advance(remote); }

Hlc HlcClock::advance(Hlc remote) {
  const std::uint64_t now = physical_();
  std::uint64_t observed = last_.load(std::memory_order_acquire);
  while (true) {
    const Hlc prev = Hlc::from_packed(observed);
    Hlc next;
    next.physical_us = std::max({now, prev.physical_us, remote.physical_us});
    // The logical counter restarts whenever the physical component moves
    // forward; otherwise it must exceed every counter already seen at this
    // physical time (local and, on merge, remote).
    std::uint32_t logical = 0;
    if (next.physical_us == prev.physical_us) {
      logical = prev.logical + 1;
    }
    if (remote.valid() && next.physical_us == remote.physical_us) {
      logical = std::max(logical, remote.logical + 1);
    }
    next.logical = logical;
    if (next.logical > 0xfff) {  // carry a logical burst into the micros
      next.physical_us += next.logical >> 12;
      next.logical &= 0xfff;
    }
    if (last_.compare_exchange_weak(observed, next.packed(),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire)) {
      return next;
    }
  }
}

}  // namespace csaw::obs
