#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>

namespace csaw::obs {

const char* trace_kind_name(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kJunctionScheduled: return "junction_scheduled";
    case TraceEvent::Kind::kJunctionRan: return "junction_ran";
    case TraceEvent::Kind::kJunctionBlocked: return "junction_blocked";
    case TraceEvent::Kind::kPushSent: return "push_sent";
    case TraceEvent::Kind::kPushAcked: return "push_acked";
    case TraceEvent::Kind::kPushNacked: return "push_nacked";
    case TraceEvent::Kind::kPushTimeout: return "push_timeout";
    case TraceEvent::Kind::kInstanceStarted: return "instance_started";
    case TraceEvent::Kind::kInstanceStopped: return "instance_stopped";
    case TraceEvent::Kind::kInstanceCrashed: return "instance_crashed";
    case TraceEvent::Kind::kInstanceRestarted: return "instance_restarted";
    case TraceEvent::Kind::kKvApplied: return "kv_applied";
    case TraceEvent::Kind::kCustom: return "custom";
  }
  return "unknown";
}

bool trace_kind_from_name(std::string_view name, TraceEvent::Kind* kind) {
  using Kind = TraceEvent::Kind;
  for (const Kind k :
       {Kind::kJunctionScheduled, Kind::kJunctionRan, Kind::kJunctionBlocked,
        Kind::kPushSent, Kind::kPushAcked, Kind::kPushNacked,
        Kind::kPushTimeout, Kind::kInstanceStarted, Kind::kInstanceStopped,
        Kind::kInstanceCrashed, Kind::kInstanceRestarted, Kind::kKvApplied,
        Kind::kCustom}) {
    if (name == trace_kind_name(k)) {
      *kind = k;
      return true;
    }
  }
  return false;
}

namespace {
std::atomic<std::uint64_t> next_tracer_id{1};
}  // namespace

Tracer::Tracer(std::size_t per_thread_capacity)
    : capacity_(std::max<std::size_t>(per_thread_capacity, 1)),
      id_(next_tracer_id.fetch_add(1)),
      epoch_(steady_now()) {}

Tracer::Ring& Tracer::ring_for_this_thread() {
  // Each thread caches its ring per tracer id. A ring outlives its thread
  // (the tracer owns it), and a dead tracer's id is never looked up again
  // (callers must keep sinks alive while recording), so entries are never
  // invalidated -- only orphaned, which is harmless.
  struct CacheEntry {
    std::uint64_t tracer_id;
    Ring* ring;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const auto& entry : cache) {
    if (entry.tracer_id == id_) return *entry.ring;
  }
  std::scoped_lock lock(registry_mu_);
  auto ring = std::make_unique<Ring>();
  ring->slots.resize(capacity_);
  rings_.push_back(std::move(ring));
  cache.push_back(CacheEntry{id_, rings_.back().get()});
  return *rings_.back();
}

void Tracer::record(const TraceEvent& event) {
  Ring& ring = ring_for_this_thread();
  std::scoped_lock lock(ring.mu);
  TraceEvent stamped = event;
  if (stamped.at == SteadyTime{}) stamped.at = steady_now();
  ring.slots[ring.next] = stamped;
  ring.next = (ring.next + 1) % capacity_;
  if (ring.size < capacity_) {
    ++ring.size;
  } else {
    ++ring.dropped;  // overwrote the oldest event
  }
}

std::vector<TraceEvent> Tracer::drain() {
  std::vector<TraceEvent> out;
  std::scoped_lock registry_lock(registry_mu_);
  for (auto& ring : rings_) {
    std::scoped_lock lock(ring->mu);
    // Oldest slot is `next` when full, 0 otherwise.
    const std::size_t start =
        ring->size == capacity_ ? ring->next : 0;
    for (std::size_t i = 0; i < ring->size; ++i) {
      out.push_back(ring->slots[(start + i) % capacity_]);
    }
    ring->next = 0;
    ring->size = 0;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

std::vector<Tracer::BufferStats> Tracer::buffer_stats() const {
  std::scoped_lock registry_lock(registry_mu_);
  std::vector<BufferStats> out;
  out.reserve(rings_.size());
  for (const auto& ring : rings_) {
    std::scoped_lock lock(ring->mu);
    out.push_back(BufferStats{capacity_, ring->size, ring->dropped});
  }
  return out;
}

std::uint64_t Tracer::dropped() const {
  std::scoped_lock registry_lock(registry_mu_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::scoped_lock lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

}  // namespace csaw::obs
