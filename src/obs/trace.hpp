// Runtime observability: structured trace events.
//
// The runtime (and anything holding a JunctionEnv) emits typed TraceEvents
// into a TraceSink. The stock sink is Tracer: per-thread ring buffers of
// fixed capacity, so recording is one uncontended mutex acquisition plus a
// slot write -- cheap enough to leave on under load, and bounded: when a
// ring fills, the oldest events are overwritten (and counted as dropped).
//
// Event taxonomy (see DESIGN.md "Observability"):
//   junction_scheduled / junction_ran / junction_blocked  -- scheduling
//   push_sent / push_acked / push_nacked / push_timeout   -- messaging
//   instance_started / _stopped / _crashed / _restarted   -- lifecycle
//   kv_applied                                            -- table updates
//   custom                                                -- app-defined
//
// Sinks are borrowed (never owned) by the runtime and must outlive it; a
// null sink disables tracing at the cost of one branch per hook.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "obs/hlc.hpp"
#include "support/clock.hpp"
#include "support/symbol.hpp"

namespace csaw::obs {

// Causal identity carried across instance boundaries (and across processes,
// via the envelope wire format): which distributed trace an event belongs
// to, which span caused it, and the sender's hybrid logical clock reading.
// trace_id == 0 means "no context" (an event outside any distributed trace).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  Hlc hlc{};

  [[nodiscard]] bool valid() const { return trace_id != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kJunctionScheduled,
    kJunctionRan,
    kJunctionBlocked,  // guard rejected a requested run
    kPushSent,
    kPushAcked,
    kPushNacked,
    kPushTimeout,
    kInstanceStarted,
    kInstanceStopped,
    kInstanceCrashed,
    kInstanceRestarted,
    kKvApplied,
    kCustom,
  };

  Kind kind = Kind::kCustom;
  SteadyTime at{};
  Symbol instance;  // primary subject
  Symbol junction;
  Symbol peer;      // other endpoint: push target instance, update sender...
  Symbol label;     // kKvApplied: the key; kCustom: app-chosen name
  std::uint64_t seq = 0;       // push sequence number (correlates send/ack)
  std::uint64_t value_ns = 0;  // durations/latencies; app payload for custom
  // Distributed-trace identity (all zero outside any trace). `span_id` is
  // this event's own span; `parent_span` is the span that caused it (the
  // push whose update triggered a junction run, or the enclosing run for a
  // push made from a body). `hlc` orders events across instances whose
  // steady clocks are incomparable.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  Hlc hlc{};
};

// JSON-friendly snake_case name ("push_sent", "junction_ran", ...).
const char* trace_kind_name(TraceEvent::Kind kind);
// Inverse mapping; false if `name` is not a known kind.
bool trace_kind_from_name(std::string_view name, TraceEvent::Kind* kind);

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
};

class Tracer : public TraceSink {
 public:
  explicit Tracer(std::size_t per_thread_capacity = 1 << 14);

  void record(const TraceEvent& event) override;

  // Removes and returns all buffered events, oldest first (merged across
  // threads and sorted by timestamp).
  std::vector<TraceEvent> drain();

  // Events overwritten because a ring was full, since construction.
  [[nodiscard]] std::uint64_t dropped() const;

  // Point-in-time occupancy of one per-thread ring. `size` is events
  // currently buffered (drain resets it); `dropped` is cumulative.
  struct BufferStats {
    std::size_t capacity = 0;
    std::size_t size = 0;
    std::uint64_t dropped = 0;
  };
  // One entry per registered thread ring, in registration order.
  [[nodiscard]] std::vector<BufferStats> buffer_stats() const;

  // Construction time; exports report timestamps relative to this.
  [[nodiscard]] SteadyTime epoch() const { return epoch_; }

 private:
  struct Ring {
    std::mutex mu;
    std::vector<TraceEvent> slots;  // capacity fixed at registration
    std::size_t next = 0;           // insert position
    std::size_t size = 0;
    std::uint64_t dropped = 0;
  };

  Ring& ring_for_this_thread();

  const std::size_t capacity_;
  const std::uint64_t id_;  // process-unique, keys the thread-local cache
  SteadyTime epoch_;
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace csaw::obs
