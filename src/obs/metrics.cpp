#include "obs/metrics.hpp"

#include <bit>

namespace csaw::obs {

std::size_t Histogram::bucket_index(std::uint64_t value) {
  if (value < kSub) return static_cast<std::size_t>(value);  // exact
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBits;
  const std::uint64_t sub = (value >> shift) & (kSub - 1);
  return (static_cast<std::size_t>(msb - kSubBits) + 1) * kSub +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_lower(std::size_t index) {
  if (index < kSub) return index;
  const std::size_t rest = index - kSub;
  const int msb = kSubBits + static_cast<int>(rest / kSub);
  const std::uint64_t sub = rest % kSub;
  return (std::uint64_t{1} << msb) + (sub << (msb - kSubBits));
}

void Histogram::record(std::uint64_t value) {
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  const auto n = count();
  return n == 0 ? 0.0
                : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                      static_cast<double>(n);
}

std::uint64_t Histogram::max_seen() const {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const auto total = count();
  if (total == 0) return 0.0;
  q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
  const double target = q * static_cast<double>(total - 1);  // 0-based rank
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const auto n = buckets_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    if (static_cast<double>(cum + n) > target) {
      const std::uint64_t lower = bucket_lower(i);
      const std::uint64_t upper =
          i + 1 < kBuckets ? bucket_lower(i + 1) : lower + 1;
      double frac =
          (target - static_cast<double>(cum) + 0.5) / static_cast<double>(n);
      frac = frac < 0.0 ? 0.0 : (frac > 1.0 ? 1.0 : frac);
      return static_cast<double>(lower) +
             frac * static_cast<double>(upper - lower);
    }
    cum += n;
  }
  return static_cast<double>(max_seen());
}

Counter& Metrics::counter(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Metrics::gauge(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Metrics::histogram(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

}  // namespace csaw::obs
