// Runtime observability: counters and log-bucketed latency histograms.
//
// A Metrics registry hands out named Counter and Histogram handles with
// stable addresses; callers resolve a handle once (one mutex acquisition)
// and then record lock-free through atomics. Histograms are log-linear
// (power-of-two octaves split into 2^kSubBits linear sub-buckets), so a
// recorded value lands in a bucket whose width is at most 1/2^kSubBits of
// its magnitude -- quantile estimates carry that relative error bound,
// which is plenty for p50/p90/p99 latency reporting.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace csaw::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// A point-in-time signed level (queue depth, pool size): set or adjust,
// read last value. Unlike a Counter it can go down.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  static constexpr int kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr std::size_t kSub = std::size_t{1} << kSubBits;
  static constexpr std::size_t kBuckets = (64 - kSubBits) * kSub + kSub;

  void record(std::uint64_t value);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::uint64_t max_seen() const;
  // Quantile q in [0,1], linearly interpolated inside the winning bucket.
  [[nodiscard]] double quantile(double q) const;

  static std::size_t bucket_index(std::uint64_t value);
  static std::uint64_t bucket_lower(std::size_t index);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

// Named-handle registry. counter()/histogram() create on first use and are
// safe to call concurrently; returned references stay valid for the
// registry's lifetime.
class Metrics {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  template <typename Fn>  // fn(const std::string&, const Counter&)
  void for_each_counter(Fn&& fn) const {
    std::scoped_lock lock(mu_);
    for (const auto& [name, c] : counters_) fn(name, *c);
  }
  template <typename Fn>  // fn(const std::string&, const Gauge&)
  void for_each_gauge(Fn&& fn) const {
    std::scoped_lock lock(mu_);
    for (const auto& [name, g] : gauges_) fn(name, *g);
  }
  template <typename Fn>  // fn(const std::string&, const Histogram&)
  void for_each_histogram(Fn&& fn) const {
    std::scoped_lock lock(mu_);
    for (const auto& [name, h] : histograms_) fn(name, *h);
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace csaw::obs
