#include "obs/expose.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>

#include "support/check.hpp"

namespace csaw::obs {
namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const auto put =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (put <= 0) return;
    off += static_cast<std::size_t>(put);
  }
}

void respond(int fd, int code, const char* status, const std::string& body,
             const char* content_type) {
  std::ostringstream os;
  os << "HTTP/1.1 " << code << ' ' << status << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  send_all(fd, os.str());
}

// Reads until the end of the request headers; returns the request line's
// path, or an empty string on malformed/oversized input.
std::string read_request_path(int fd) {
  std::string req;
  char buf[1024];
  while (req.find("\r\n\r\n") == std::string::npos) {
    if (req.size() > kMaxRequestBytes) return {};
    const auto got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) return {};
    req.append(buf, static_cast<std::size_t>(got));
  }
  // "GET /path HTTP/1.1"
  const auto sp1 = req.find(' ');
  if (sp1 == std::string::npos) return {};
  const auto sp2 = req.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return {};
  if (req.substr(0, sp1) != "GET") return {};
  return req.substr(sp1 + 1, sp2 - sp1 - 1);
}

}  // namespace

std::string render_prometheus(const Metrics* metrics, const Tracer* tracer) {
  std::ostringstream os;
  if (metrics != nullptr) {
    metrics->for_each_counter([&](const std::string& name, const Counter& c) {
      os << "# TYPE csaw_" << name << "_total counter\n"
         << "csaw_" << name << "_total " << c.value() << "\n";
    });
    metrics->for_each_gauge([&](const std::string& name, const Gauge& g) {
      os << "# TYPE csaw_" << name << " gauge\n"
         << "csaw_" << name << " " << g.value() << "\n";
    });
    metrics->for_each_histogram(
        [&](const std::string& name, const Histogram& h) {
          os << "# TYPE csaw_" << name << " summary\n";
          for (const double q : {0.5, 0.9, 0.99}) {
            os << "csaw_" << name << "{quantile=\"" << q << "\"} "
               << h.quantile(q) << "\n";
          }
          os << "csaw_" << name << "_sum "
             << h.mean() * static_cast<double>(h.count()) << "\n"
             << "csaw_" << name << "_count " << h.count() << "\n";
        });
  }
  if (tracer != nullptr) {
    const auto buffers = tracer->buffer_stats();
    std::uint64_t dropped = 0;
    std::size_t buffered = 0;
    std::size_t capacity = 0;
    for (const auto& b : buffers) {
      dropped += b.dropped;
      buffered += b.size;
      capacity += b.capacity;
    }
    os << "# TYPE csaw_trace_dropped_total counter\n"
       << "csaw_trace_dropped_total " << dropped << "\n"
       << "# TYPE csaw_trace_buffer_rings gauge\n"
       << "csaw_trace_buffer_rings " << buffers.size() << "\n"
       << "# TYPE csaw_trace_buffer_events gauge\n"
       << "csaw_trace_buffer_events " << buffered << "\n"
       << "# TYPE csaw_trace_buffer_capacity gauge\n"
       << "csaw_trace_buffer_capacity " << capacity << "\n";
    for (std::size_t i = 0; i < buffers.size(); ++i) {
      os << "csaw_trace_ring_events{ring=\"" << i << "\"} " << buffers[i].size
         << "\n";
    }
  }
  return os.str();
}

HttpExposer::HttpExposer(const Metrics* metrics, Tracer* tracer, int port)
    : metrics_(metrics), tracer_(tracer) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CSAW_CHECK(listen_fd_ >= 0) << "socket() failed";
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  CSAW_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0)
      << "bind(127.0.0.1:" << port << ") failed";
  CSAW_CHECK(::listen(listen_fd_, 8) == 0) << "listen() failed";
  socklen_t len = sizeof(addr);
  CSAW_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                           &len) == 0)
      << "getsockname() failed";
  port_ = ntohs(addr.sin_port);
  server_ = std::thread([this] { serve_loop(); });
}

HttpExposer::~HttpExposer() {
  stopping_.store(true);
  // shutdown() wakes the blocking accept; close() alone does not on Linux.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (server_.joinable()) server_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

std::string HttpExposer::render_metrics() const {
  return render_prometheus(metrics_, tracer_);
}

void HttpExposer::set_profile_source(std::function<std::string()> source) {
  std::scoped_lock lock(profile_mu_);
  profile_source_ = std::move(source);
}

std::function<std::string()> HttpExposer::profile_source() const {
  std::scoped_lock lock(profile_mu_);
  return profile_source_;
}

void HttpExposer::serve_loop() {
  while (!stopping_.load()) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) return;  // listener shut down
    const std::string path = read_request_path(conn);
    if (path == "/metrics") {
      respond(conn, 200, "OK", render_metrics(),
              "text/plain; version=0.0.4; charset=utf-8");
    } else if (path == "/healthz") {
      respond(conn, 200, "OK", "ok\n", "text/plain");
    } else if (path == "/profile") {
      if (auto source = profile_source()) {
        respond(conn, 200, "OK", source(), "application/json");
      } else {
        respond(conn, 404, "Not Found", "no profiler attached\n",
                "text/plain");
      }
    } else if (path.empty()) {
      respond(conn, 400, "Bad Request", "bad request\n", "text/plain");
    } else {
      respond(conn, 404, "Not Found", "not found\n", "text/plain");
    }
    ::close(conn);
  }
}

}  // namespace csaw::obs
