// Mini JSON reader shared by the offline obs tooling (trace collection and
// merge in obs/collect, cost-profile merge/diff in obs/profile). Only what
// those schemas need: objects, arrays, strings, numbers, bools, null.
// Unsigned integer literals keep full 64-bit precision (trace/span ids and
// nanosecond totals do not survive a double round-trip).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/result.hpp"

namespace csaw::obs::minijson {

struct Json {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t uint_value = 0;  // exact value when `integral`
  bool integral = false;
  std::string str;
  std::vector<Json> items;                            // kArray
  std::vector<std::pair<std::string, Json>> fields;   // kObject, file order

  [[nodiscard]] const Json* find(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  [[nodiscard]] std::uint64_t u64_or(std::string_view key,
                                     std::uint64_t def) const;
  [[nodiscard]] double num_or(std::string_view key, double def) const;
  [[nodiscard]] std::string_view str_or(std::string_view key,
                                        std::string_view def) const;
};

// Parses one complete JSON value; trailing non-whitespace bytes are an
// Errc::kDecode error, as is any malformed input (never UB).
Result<Json> parse(std::string_view text);

}  // namespace csaw::obs::minijson
