// Cross-instance trace collection: parse per-instance trace JSON back into
// events, merge several files into one causally-ordered timeline (HLC
// order), emit Chrome/Perfetto trace-event JSON with one track per instance
// and flow arrows for pushes, and ship live events to a collector socket.
//
// The offline path backs the tools/csaw-trace CLI:
//   csaw-trace merge -o merged.json a.json b.json c.json
//   csaw-trace check merged.json
// The live path (TraceShipper -> TraceCollector) lets long-running
// deployments stream events off-box instead of buffering a whole run.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "support/result.hpp"

namespace csaw::obs {

// --- offline: parse + merge -------------------------------------------------

// One parsed trace document (the export.hpp schema). Events keep their
// in-file order; `at` holds the file-relative t_us and `hlc` the wall-clock
// HLC stamp when the producing build recorded one.
struct TraceDoc {
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

Result<TraceDoc> parse_trace_json(std::string_view text);
Result<TraceDoc> load_trace_file(const std::string& path);

// Union of several documents' events in causal order: HLC-stamped events
// sort by (physical_us, logical); events without HLC stamps (old files)
// keep file-relative time order after them. Ties break deterministically.
std::vector<TraceEvent> merge_events(const std::vector<TraceDoc>& docs);

// --- Perfetto (Chrome trace-event JSON) -------------------------------------

// Emits one Perfetto-loadable document: a process ("track") per instance, a
// thread per junction, complete slices for junction runs and push
// round-trips, instants for lifecycle events, and flow arrows from each
// push_sent to the junction run it caused. Timestamps come from the HLC
// (normalized to the earliest event) so cross-instance order is causal.
void write_perfetto_json(std::ostream& os,
                         const std::vector<TraceEvent>& events);
Status write_perfetto_json_file(const std::string& path,
                                const std::vector<TraceEvent>& events);

// Validates a document produced by write_perfetto_json: parseable JSON with
// a traceEvents array, every flow-finish binds a flow-start no later than
// it, and no span is timestamped before its parent (HLC order). Returns the
// first violation as an error.
Status check_perfetto_json(std::string_view text);

// --- live: collector socket --------------------------------------------------

// Receives newline-delimited trace-event JSON (the export.hpp event schema)
// on a loopback TCP socket; one accepting thread, one thread per shipper
// connection. Malformed lines are counted and dropped, like bad packets.
class TraceCollector {
 public:
  // port 0 = ephemeral. CHECK-fails if the socket cannot be bound.
  explicit TraceCollector(int port = 0);
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::uint64_t malformed() const {
    return malformed_.load(std::memory_order_relaxed);
  }
  // Removes and returns everything received so far (arrival order).
  std::vector<TraceEvent> take();

 private:
  void accept_loop();
  void connection_loop(int fd);

  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> malformed_{0};
  mutable std::mutex mu_;  // guards events_ and conns_
  std::vector<TraceEvent> events_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
  std::thread acceptor_;
};

// Ships drained tracer events to a TraceCollector as JSON lines. Connects
// once at construction; ship() drains and writes synchronously.
class TraceShipper {
 public:
  // kUnreachable if nothing listens at 127.0.0.1:<port>.
  static Result<TraceShipper> connect(int port);
  ~TraceShipper();

  TraceShipper(TraceShipper&& other) noexcept;
  TraceShipper& operator=(TraceShipper&&) = delete;
  TraceShipper(const TraceShipper&) = delete;
  TraceShipper& operator=(const TraceShipper&) = delete;

  // Drains `tracer` and ships every event; kHostFailure if the connection
  // broke. Returns the number of events shipped on success.
  Result<std::size_t> ship(Tracer& tracer);

 private:
  explicit TraceShipper(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace csaw::obs
