#include "obs/export.hpp"

#include <ostream>
#include <sstream>

#include "support/io.hpp"

namespace csaw::obs {
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_symbol(std::ostream& os, Symbol s) {
  write_escaped(os, s.valid() ? s.str() : std::string());
}

}  // namespace

void write_trace_event_json(std::ostream& os, const TraceEvent& e,
                            SteadyTime epoch) {
  os << "{\"t_us\": "
     << std::chrono::duration<double, std::micro>(e.at - epoch).count()
     << ", \"kind\": \"" << trace_kind_name(e.kind) << "\", "
     << "\"instance\": ";
  write_symbol(os, e.instance);
  os << ", \"junction\": ";
  write_symbol(os, e.junction);
  os << ", \"peer\": ";
  write_symbol(os, e.peer);
  os << ", \"label\": ";
  write_symbol(os, e.label);
  os << ", \"seq\": " << e.seq << ", \"value_ns\": " << e.value_ns
     << ", \"trace_id\": " << e.trace_id << ", \"span_id\": " << e.span_id
     << ", \"parent_span\": " << e.parent_span
     << ", \"hlc_us\": " << e.hlc.physical_us << ", \"hlc_lc\": " << e.hlc.logical
     << "}";
}

void write_trace_json(std::ostream& os, const std::vector<TraceEvent>& events,
                      SteadyTime epoch, std::uint64_t dropped,
                      const std::vector<Tracer::BufferStats>& buffers,
                      const Metrics* metrics) {
  os << "{\n  \"epoch\": \"steady\",\n";
  os << "  \"dropped\": " << dropped << ",\n";
  os << "  \"buffers\": [";
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    {\"capacity\": "
       << buffers[i].capacity << ", \"size\": " << buffers[i].size
       << ", \"dropped\": " << buffers[i].dropped << "}";
  }
  if (!buffers.empty()) os << "\n  ";
  os << "],\n";
  os << "  \"events\": [";
  {
    bool first = true;
    for (const auto& e : events) {
      os << (first ? "\n" : ",\n") << "    ";
      write_trace_event_json(os, e, epoch);
      first = false;
    }
    if (!first) os << "\n  ";
  }
  os << "],\n";
  os << "  \"metrics\": {\n    \"counters\": {";
  if (metrics != nullptr) {
    bool first = true;
    metrics->for_each_counter([&](const std::string& name, const Counter& c) {
      os << (first ? "\n" : ",\n") << "      ";
      write_escaped(os, name);
      os << ": " << c.value();
      first = false;
    });
    if (!first) os << "\n    ";
  }
  os << "},\n    \"gauges\": {";
  if (metrics != nullptr) {
    bool first = true;
    metrics->for_each_gauge([&](const std::string& name, const Gauge& g) {
      os << (first ? "\n" : ",\n") << "      ";
      write_escaped(os, name);
      os << ": " << g.value();
      first = false;
    });
    if (!first) os << "\n    ";
  }
  os << "},\n    \"histograms\": {";
  if (metrics != nullptr) {
    bool first = true;
    metrics->for_each_histogram(
        [&](const std::string& name, const Histogram& h) {
          os << (first ? "\n" : ",\n") << "      ";
          write_escaped(os, name);
          os << ": {\"count\": " << h.count() << ", \"mean\": " << h.mean()
             << ", \"p50\": " << h.quantile(0.50)
             << ", \"p90\": " << h.quantile(0.90)
             << ", \"p99\": " << h.quantile(0.99)
             << ", \"max\": " << h.max_seen() << "}";
          first = false;
        });
    if (!first) os << "\n    ";
  }
  os << "}\n  }\n}\n";
}

void write_trace_json(std::ostream& os, Tracer* tracer,
                      const Metrics* metrics) {
  std::vector<TraceEvent> events;
  std::vector<Tracer::BufferStats> buffers;
  std::uint64_t dropped = 0;
  SteadyTime epoch{};
  if (tracer != nullptr) {
    // Occupancy is meaningful only before the (destructive) drain.
    buffers = tracer->buffer_stats();
    dropped = tracer->dropped();
    events = tracer->drain();
    epoch = tracer->epoch();
  }
  write_trace_json(os, events, epoch, dropped, buffers, metrics);
}

Status write_trace_json_file(const std::string& path, Tracer* tracer,
                             const Metrics* metrics) {
  // Atomic replace (support/io): a crash mid-export leaves the previous
  // trace intact instead of a truncated JSON file.
  std::ostringstream out;
  write_trace_json(out, tracer, metrics);
  return io::write_file_atomic(path, out.str());
}

}  // namespace csaw::obs
