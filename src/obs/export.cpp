#include "obs/export.hpp"

#include <fstream>
#include <ostream>

namespace csaw::obs {
namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << "0123456789abcdef"[(c >> 4) & 0xf]
             << "0123456789abcdef"[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_symbol(std::ostream& os, Symbol s) {
  write_escaped(os, s.valid() ? s.str() : std::string());
}

}  // namespace

void write_trace_json(std::ostream& os, Tracer* tracer,
                      const Metrics* metrics) {
  os << "{\n  \"epoch\": \"steady\",\n";
  os << "  \"dropped\": " << (tracer != nullptr ? tracer->dropped() : 0)
     << ",\n";
  os << "  \"events\": [";
  if (tracer != nullptr) {
    const auto events = tracer->drain();
    const auto epoch = tracer->epoch();
    bool first = true;
    for (const auto& e : events) {
      os << (first ? "\n" : ",\n") << "    {\"t_us\": "
         << std::chrono::duration<double, std::micro>(e.at - epoch).count()
         << ", \"kind\": \"" << trace_kind_name(e.kind) << "\", "
         << "\"instance\": ";
      write_symbol(os, e.instance);
      os << ", \"junction\": ";
      write_symbol(os, e.junction);
      os << ", \"peer\": ";
      write_symbol(os, e.peer);
      os << ", \"label\": ";
      write_symbol(os, e.label);
      os << ", \"seq\": " << e.seq << ", \"value_ns\": " << e.value_ns << "}";
      first = false;
    }
    if (!first) os << "\n  ";
  }
  os << "],\n";
  os << "  \"metrics\": {\n    \"counters\": {";
  if (metrics != nullptr) {
    bool first = true;
    metrics->for_each_counter([&](const std::string& name, const Counter& c) {
      os << (first ? "\n" : ",\n") << "      ";
      write_escaped(os, name);
      os << ": " << c.value();
      first = false;
    });
    if (!first) os << "\n    ";
  }
  os << "},\n    \"histograms\": {";
  if (metrics != nullptr) {
    bool first = true;
    metrics->for_each_histogram(
        [&](const std::string& name, const Histogram& h) {
          os << (first ? "\n" : ",\n") << "      ";
          write_escaped(os, name);
          os << ": {\"count\": " << h.count() << ", \"mean\": " << h.mean()
             << ", \"p50\": " << h.quantile(0.50)
             << ", \"p90\": " << h.quantile(0.90)
             << ", \"p99\": " << h.quantile(0.99)
             << ", \"max\": " << h.max_seen() << "}";
          first = false;
        });
    if (!first) os << "\n    ";
  }
  os << "}\n  }\n}\n";
}

Status write_trace_json_file(const std::string& path, Tracer* tracer,
                             const Metrics* metrics) {
  std::ofstream out(path);
  if (!out) {
    return make_error(Errc::kHostFailure,
                      "cannot open trace output file '" + path + "'");
  }
  write_trace_json(out, tracer, metrics);
  return Status::ok_status();
}

}  // namespace csaw::obs
