// Fail-over architecture with warm replicas (paper S7.3, Figs 8-14;
// use-case (1) of Fig 1).
//
// One front-end instance with two junctions -- f::c faces clients, f::b
// faces back-ends and owns the canonical state -- plus N >= 2 back-end
// instances, each with three junctions: startup (registration), serve
// (request handling + activation), and reactivate (inactivity watchdog that
// deregisters a silent back-end so it re-registers, arrow (5) of Fig 8).
// Client requests fan out to every registered back-end ("implicit fail-over
// between warm replicas"); as long as one back-end responds the system keeps
// functioning, and back-ends that time out are deregistered and
// re-initialized when they come back (state resynchronized during
// registration, Fig 9).
//
// This is the pattern the paper applies unchanged to both Redis and
// Suricata ("the same logic is applied to both Redis and Suricata", S7.3).
//
// Required host bindings:
//   block "H1"  -- front-end pre-processing (pop client request)
//   block "H2"  -- back-end request processing
//   block "H3"  -- front-end post-processing (deliver response)
//   block "complain"
//   saver "init_state" / "pack_state", restorer "unpack_state"
//       -- canonical-state management (front + back activation)
//   saver "pack_request", restorer "unpack_request"
//   saver "pack_preresp", restorer "unpack_preresp"
//
// Deviations from the figures, recorded in DESIGN.md: f::b seeds its
// canonical `state` with save(init_state) during Starting (the figures
// assume it exists); declarations the figures elide (InitBackend/Call/
// HaveAtLeastOne at f::b, failover-side props) are declared explicitly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.hpp"

namespace csaw::patterns {

struct FailoverOptions {
  std::string front_instance = "f";
  std::string back_prefix = "b";  // back-ends are b1..bN
  std::size_t backends = 2;
  std::int64_t timeout_ms = 300;
  // Inactivity window before a back-end re-registers; the paper's main uses
  // 3*t.
  std::int64_t reactivate_ms = 900;
  // true  = engage every registered back-end in parallel (the paper's S7.3
  //         design: warm replicas all process each request);
  // false = the paper's suggested improvement (i)/(ii): try back-ends in
  //         order and take the first success -- "less conservative, and
  //         lower latency ... a single back-end responding would be
  //         sufficient", with less network overhead.
  bool engage_all = true;

  std::string h1 = "H1";
  std::string h2 = "H2";
  std::string h3 = "H3";
  std::string complain = "complain";
  std::string init_state = "init_state";
  std::string pack_state = "pack_state";
  std::string unpack_state = "unpack_state";
  std::string pack_request = "pack_request";
  std::string unpack_request = "unpack_request";
  std::string pack_preresp = "pack_preresp";
  std::string unpack_preresp = "unpack_preresp";
};

ProgramSpec failover(const FailoverOptions& options = {});

std::vector<std::string> failover_backend_names(const FailoverOptions& options);

}  // namespace csaw::patterns
