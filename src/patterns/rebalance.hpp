// Live bucket handoff ("rebalance") architecture.
//
// The sharding pattern (Fig 5) with a third role: a mover that streams one
// bucket's contents from its old owner to its new owner while the front-end
// keeps routing requests. Three junction types:
//
//   tau_Front.j   -- Fig 5's front-end verbatim: |_Route_|{tgt} picks the
//                    owning shard from the routing table (host-side choice,
//                    exactly as abstract as S5.2 promises), then the
//                    write/assert/wait/restore round trip.
//   tau_Shard.j   -- the shared worker junction (tau_Back); the host block
//                    is where ownership is re-checked against the routing
//                    version, turning stale routes into kWrongOwner nacks.
//   tau_Shard.ingest -- handoff intake, tau_Auditing-shaped: guarded by
//                    Inbound, restores one chunk (snapshot slice or delta
//                    record) into the local store, then retracts the
//                    mover's Inbound with the retry-once escalation.
//   tau_Mover.m   -- the handoff pump: |_NextChunk_|{tgt} picks the next
//                    chunk and the receiving shard's ingest junction, then
//                    write/assert/wait like tau_Actual. One junction run
//                    moves exactly one chunk; the control plane calls it in
//                    a loop and journals phase transitions between calls,
//                    which is what makes donor/receiver crashes resumable.
//
// The acknowledgement-as-evidence reading: a chunk is "transferred" only
// once the receiver's ingest junction has retracted Inbound -- the mover
// never advances its cursor on anything weaker, so a crash mid-stream
// re-sends at-least-once and the ingest side is idempotent by construction
// (chunks carry absolute key/value state, not increments).
//
// Required host bindings:
//   block "Route"{tgt}        -- pops a request, picks the owner shard index
//   saver "pack_request"      -- serializes the pending request into n
//   block "H_shard"           -- shard work incl. ownership/version check
//   restorer "unpack_request" -- shard intake of n
//   saver "pack_response"     -- shard serializes response into m
//   restorer "deliver_response" -- front-end hands the response back
//   block "NextChunk"{tgt}    -- picks the next handoff chunk + receiver
//   saver "pack_chunk"        -- serializes the chunk into c
//   restorer "ingest_chunk"   -- receiver applies the chunk
//   block "complain"
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.hpp"

namespace csaw::patterns {

struct RebalanceOptions {
  std::string front_instance = "Fnt";
  std::string shard_prefix = "Shd";  // shards are Shd1..ShdN
  std::size_t shards = 2;
  std::string junction = "j";
  std::string ingest_junction = "ingest";
  std::string mover_instance = "Mov";
  std::string mover_junction = "m";
  std::int64_t timeout_ms = 500;

  std::string route = "Route";
  std::string pack_request = "pack_request";
  std::string h_shard = "H_shard";
  std::string unpack_request = "unpack_request";
  std::string pack_response = "pack_response";
  std::string deliver_response = "deliver_response";
  std::string next_chunk = "NextChunk";
  std::string pack_chunk = "pack_chunk";
  std::string ingest_chunk = "ingest_chunk";
  std::string complain = "complain";
};

ProgramSpec rebalance(const RebalanceOptions& options = {});

// Names of the shard instances for the given options.
std::vector<std::string> rebalance_shard_names(const RebalanceOptions& options);

}  // namespace csaw::patterns
