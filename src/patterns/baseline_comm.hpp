// Hand-written communication/synchronization substrate for the direct-C++
// baselines (Table 2's "Redis(C)" control experiment).
//
// The paper's control "includes its own internal management system for
// communication and synchronization between different instances of Redis,
// which adds 195 lines to each feature". This file is our equivalent: a
// small peer framework with typed request/response messaging over blocking
// queues, worker threads, timeouts and shutdown -- everything the C-Saw
// runtime would otherwise provide. It is deliberately written the way a
// C programmer would bolt this onto an application: by hand, per project.
//
// LOC-COUNT-BEGIN(baseline_shared)
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serdes/buffer.hpp"
#include "support/clock.hpp"
#include "support/result.hpp"

namespace csaw::baseline {

// A framed message: a tag describing the operation and a raw payload the
// endpoints agree on out-of-band.
struct Frame {
  std::uint32_t tag = 0;
  std::uint64_t seq = 0;
  Bytes payload;
};

// One direction of a channel: a bounded blocking queue of frames.
class Pipe {
 public:
  void send(Frame frame) {
    {
      std::scoped_lock lock(mu_);
      frames_.push_back(std::move(frame));
    }
    cv_.notify_one();
  }

  std::optional<Frame> recv(Deadline deadline) {
    std::unique_lock lock(mu_);
    while (frames_.empty()) {
      if (closed_) return std::nullopt;
      if (deadline.is_infinite()) {
        cv_.wait(lock);
      } else if (cv_.wait_until(lock, deadline.when()) ==
                     std::cv_status::timeout &&
                 frames_.empty()) {
        return std::nullopt;
      }
    }
    Frame f = std::move(frames_.front());
    frames_.pop_front();
    return f;
  }

  void close() {
    {
      std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Frame> frames_;
  bool closed_ = false;
};

// A peer runs a service loop on its own thread: each incoming request frame
// is handed to the handler, whose return frame is delivered back to the
// caller waiting on the response pipe with the matching sequence number.
class Peer {
 public:
  using Handler = std::function<Frame(const Frame&)>;

  explicit Peer(std::string name, Handler handler)
      : name_(std::move(name)), handler_(std::move(handler)) {
    thread_ = std::thread([this] { loop(); });
  }

  ~Peer() { stop(); }

  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  // Synchronous request/response with a deadline; kTimeout if the peer does
  // not answer in time, kUnreachable if it is stopped.
  Result<Frame> call(Frame request, Deadline deadline) {
    if (stopped()) {
      return make_error(Errc::kUnreachable, name_ + " is stopped");
    }
    const std::uint64_t seq = next_seq_++;
    request.seq = seq;
    requests_.send(std::move(request));
    while (true) {
      auto resp = take_response(seq);
      if (resp) return std::move(*resp);
      if (deadline.expired()) {
        return make_error(Errc::kTimeout, name_ + " did not respond");
      }
      wait_response(deadline);
    }
  }

  void stop() {
    {
      std::scoped_lock lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    requests_.close();
    if (thread_.joinable()) thread_.join();
    resp_cv_.notify_all();
  }

  [[nodiscard]] bool stopped() const {
    std::scoped_lock lock(mu_);
    return stopped_;
  }

 private:
  void loop() {
    while (true) {
      auto frame = requests_.recv(Deadline::infinite());
      if (!frame) return;  // closed
      Frame response = handler_(*frame);
      response.seq = frame->seq;
      {
        std::scoped_lock lock(mu_);
        responses_[response.seq] = std::move(response);
      }
      resp_cv_.notify_all();
    }
  }

  std::optional<Frame> take_response(std::uint64_t seq) {
    std::scoped_lock lock(mu_);
    auto it = responses_.find(seq);
    if (it == responses_.end()) return std::nullopt;
    Frame f = std::move(it->second);
    responses_.erase(it);
    return f;
  }

  void wait_response(Deadline deadline) {
    std::unique_lock lock(mu_);
    if (deadline.is_infinite()) {
      resp_cv_.wait_for(lock, std::chrono::milliseconds(5));
    } else {
      resp_cv_.wait_until(lock, deadline.when());
    }
  }

  std::string name_;
  Handler handler_;
  Pipe requests_;
  mutable std::mutex mu_;
  std::condition_variable resp_cv_;
  std::map<std::uint64_t, Frame> responses_;
  std::uint64_t next_seq_ = 1;
  bool stopped_ = false;
  std::thread thread_;
};

// Manual framing helpers -- the hand-rolled serialization glue the DSL's
// save/write/restore would otherwise generate.
inline Frame make_frame(std::uint32_t tag, const Bytes& payload) {
  Frame f;
  f.tag = tag;
  f.payload = payload;
  return f;
}

inline Frame make_text_frame(std::uint32_t tag, const std::string& a,
                             const std::string& b = {}) {
  ByteWriter w;
  w.str(a);
  w.str(b);
  Frame f;
  f.tag = tag;
  f.payload = w.take();
  return f;
}

inline Status read_text_frame(const Frame& f, std::string* a, std::string* b) {
  ByteReader r(f.payload);
  auto ra = r.str();
  if (!ra) return ra.error();
  auto rb = r.str();
  if (!rb) return rb.error();
  *a = std::move(*ra);
  *b = std::move(*rb);
  return Status::ok_status();
}

}  // namespace csaw::baseline
// LOC-COUNT-END(baseline_shared)
