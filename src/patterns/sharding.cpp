#include "patterns/sharding.hpp"

#include "patterns/common.hpp"

namespace csaw::patterns {

std::vector<std::string> shard_backend_names(const ShardingOptions& o) {
  std::vector<std::string> names;
  names.reserve(o.backends);
  for (std::size_t i = 1; i <= o.backends; ++i) {
    names.push_back(o.back_prefix + std::to_string(i));
  }
  return names;
}

ProgramSpec sharding(const ShardingOptions& o) {
  ProgramBuilder p("sharding");
  const auto backs = shard_backend_names(o);

  CtList back_addrs;
  for (const auto& b : backs) back_addrs.emplace_back(addr(b, o.junction));
  p.config("Backs", CtValue(back_addrs));
  p.function(o.complain).body(e_host(o.complain));

  // def tau_Front :: (t) <|  (Fig 5)
  //   | init prop !Work  | init data n  | init data m
  //   | idx tgt of {Bck1, ..., BckN}
  //   |_Choose_|{tgt}; save(..., n);
  //   < write(n, tgt); assert [tgt] Work; wait [m] !Work;
  //     restore(m, ...) >
  //   otherwise[t] complain();
  p.type("tau_Front")
      .junction(o.junction)
      .param("t", ParamDecl::Kind::kTime)
      .init_prop("Work", false)
      .init_data("n")
      .init_data("m")
      .idx("tgt", SetRef::named(Symbol("Backs")))
      .body(e_seq({
          e_host(o.choose, {Symbol("tgt")}),
          e_save("n", o.pack_request),
          e_otherwise(
              e_fate(e_seq({
                  e_write("n", idxvar("tgt")),
                  e_assert(pr("Work"), idxvar("tgt")),
                  e_wait({Symbol("m")}, f_not(f_prop("Work"))),
                  e_restore("m", o.deliver_response),
              })),
              TimeRef::variable(Symbol("t")), e_call(o.complain)),
      }));

  // def tau_Back :: (t) <| -- "closely follows tau_Auditing" (S5.2); the
  // shared worker junction adds the Fig 7-style response path.
  add_worker_junction(p.type("tau_Back"),
                      WorkerJunctionNames{o.front_instance, o.junction,
                                          o.h_back, o.unpack_request,
                                          o.pack_response, o.complain});

  p.instance(o.front_instance, "tau_Front",
             {{o.junction, {CtValue(o.timeout_ms)}}});
  for (const auto& b : backs) {
    p.instance(b, "tau_Back", {{o.junction, {CtValue(o.timeout_ms)}}});
  }

  std::vector<ExprPtr> starts{e_start(inst(o.front_instance))};
  for (const auto& b : backs) starts.push_back(e_start(inst(b)));
  p.main_body(e_par(std::move(starts)));
  return p.build();
}

ProgramSpec parallel_sharding(const ParallelShardingOptions& o) {
  ProgramBuilder p("parallel_sharding");
  std::vector<std::string> backs;
  for (std::size_t i = 1; i <= o.backends; ++i) {
    backs.push_back(o.back_prefix + std::to_string(i));
  }
  CtList back_addrs;
  for (const auto& b : backs) back_addrs.emplace_back(addr(b, o.junction));
  p.config("Backs", CtValue(back_addrs));
  p.function(o.complain).body(e_host(o.complain));

  // def tau_Front :: (t) <|  (S7.1 Fig 6, with Work made per-back-end as the
  // section's opening paragraph prescribes; ActiveBackend starts true --
  // back-ends are presumed usable until a handoff times out)
  //   | init data n
  //   | set Backs
  //   | for tgt in Backs init prop ActiveBackend[tgt]
  //   | for tgt in Backs init prop !Work[tgt]
  //   | subset tgt of Backs
  //   | init prop !HaveAtLeastOne
  //   |_ChooseSet_|{tgt}; save(..., n);
  //   retract [] HaveAtLeastOne;
  //   for b in tgt +
  //     if ActiveBackend[b] then
  //       <| write(n, b); assert [b] Work[b]; wait [] !Work[b];
  //          assert [] HaveAtLeastOne;
  //       |> otherwise[t] retract [] ActiveBackend[b];
  //   if !HaveAtLeastOne then complain();
  auto fan_body = e_if(
      f_prop_idx("ActiveBackend", var("b")),
      e_otherwise(
          e_txn(e_seq({
              e_write("n", var("b")),
              e_assert(pr_idx("Work", var("b")), var("b")),
              e_wait({}, f_not(f_prop_idx("Work", var("b")))),
              e_assert(pr("HaveAtLeastOne")),
          })),
          TimeRef::variable(Symbol("t")),
          e_retract(pr_idx("ActiveBackend", var("b")))));

  p.type("tau_Front")
      .junction(o.junction)
      .param("t", ParamDecl::Kind::kTime)
      .init_data("n")
      .set_decl("Backs")
      .for_init_prop("tgt", SetRef::named(Symbol("Backs")), "ActiveBackend",
                     true)
      .for_init_prop("tgt", SetRef::named(Symbol("Backs")), "Work", false)
      .subset("tgt", SetRef::named(Symbol("Backs")))
      .init_prop("HaveAtLeastOne", false)
      .body(e_seq({
          e_host(o.choose_set, {Symbol("tgt")}),
          e_save("n", o.pack_request),
          e_retract(pr("HaveAtLeastOne")),
          e_for("b", SetRef::named(Symbol("tgt")), Expr::Kind::kPar,
                std::move(fan_body)),
          e_if(f_not(f_prop("HaveAtLeastOne")), e_call(o.complain)),
      }));

  // Back-end: the shared replica junction, keyed by its own Work[self]
  // proposition (patterns/common.hpp; also the quorum pattern's replica).
  add_replica_junction(p.type("tau_Back"),
                       WorkerJunctionNames{o.front_instance, o.junction,
                                           o.h_back, o.unpack_request,
                                           /*pack_response=*/"", o.complain});

  p.instance(o.front_instance, "tau_Front",
             {{o.junction, {CtValue(o.timeout_ms)}}});
  for (const auto& b : backs) {
    const CtValue self(addr(b, o.junction));
    p.instance(b, "tau_Back",
               {{o.junction,
                 {CtValue(o.timeout_ms), self, CtValue(CtList{self})}}});
  }

  std::vector<ExprPtr> starts{e_start(inst(o.front_instance))};
  for (const auto& b : backs) starts.push_back(e_start(inst(b)));
  p.main_body(e_par(std::move(starts)));
  return p.build();
}

}  // namespace csaw::patterns
