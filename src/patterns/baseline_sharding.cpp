// Direct-C++ key-hash sharding (Table 2 "Sharding / Redis(C)").
// LOC-COUNT-BEGIN(baseline_sharding)
#include <atomic>

#include "patterns/baselines.hpp"
#include "support/rng.hpp"

namespace csaw::baseline {
namespace {

enum Tag : std::uint32_t {
  kTagGet = 1,
  kTagSet = 2,
  kTagDel = 3,
  kTagFound = 100,
  kTagMissing = 101,
};

std::uint32_t tag_of(miniredis::Command::Op op) {
  using Op = miniredis::Command::Op;
  switch (op) {
    case Op::kGet: return kTagGet;
    case Op::kSet: return kTagSet;
    case Op::kDel: return kTagDel;
  }
  return kTagGet;
}

}  // namespace

struct ShardedRedis::Impl {
  struct Shard {
    explicit Shard(std::size_t index, std::uint64_t cost)
        : store(cost),
          peer("shard" + std::to_string(index),
               [this](const Frame& f) { return serve(f); }) {}

    Frame serve(const Frame& request) {
      std::string key, value;
      if (!read_text_frame(request, &key, &value).ok()) {
        return make_frame(kTagMissing, {});
      }
      processed.fetch_add(1);
      switch (request.tag) {
        case kTagGet: {
          auto v = store.get(key);
          if (!v) return make_text_frame(kTagMissing, "", "");
          return make_text_frame(kTagFound, *v, "");
        }
        case kTagSet:
          store.set(key, value);
          return make_text_frame(kTagFound, "", "");
        case kTagDel:
          return make_text_frame(store.del(key) ? kTagFound : kTagMissing,
                                 "", "");
        default:
          return make_text_frame(kTagMissing, "", "");
      }
    }

    miniredis::Store store;
    std::atomic<std::uint64_t> processed{0};
    Peer peer;
  };

  std::vector<std::unique_ptr<Shard>> shards;
};

ShardedRedis::ShardedRedis(std::size_t shards, std::uint64_t op_cost_ns)
    : impl_(std::make_unique<Impl>()) {
  for (std::size_t i = 0; i < shards; ++i) {
    impl_->shards.push_back(std::make_unique<Impl::Shard>(i, op_cost_ns));
  }
}

ShardedRedis::~ShardedRedis() = default;

Result<miniredis::Response> ShardedRedis::request(
    const miniredis::Command& command) {
  const std::size_t shard = djb2(command.key) % impl_->shards.size();
  auto resp = impl_->shards[shard]->peer.call(
      make_text_frame(tag_of(command.op), command.key, command.value),
      Deadline::after(std::chrono::seconds(5)));
  if (!resp) return resp.error();
  std::string value, unused;
  CSAW_TRY(read_text_frame(*resp, &value, &unused));
  return miniredis::Response{resp->tag == kTagFound, value};
}

std::vector<std::uint64_t> ShardedRedis::shard_counts() const {
  std::vector<std::uint64_t> out;
  for (const auto& shard : impl_->shards) {
    out.push_back(shard->processed.load());
  }
  return out;
}

}  // namespace csaw::baseline
// LOC-COUNT-END(baseline_sharding)
