// N-ary sharding architectures.
//
// 1. `sharding` -- the paper's Fig 5: a front-end with an `idx tgt` choice
//    function over N back-ends. |_Choose_|{tgt} is "sufficiently abstract to
//    implement different types of sharding" (S5.2): key-hash (djb2),
//    object-size classes, or 5-tuple packet steering are all host-side
//    choices. We add a response path (data m) following Fig 7's
//    request/response shape so that GET-style workloads can flow back.
//
// 2. `parallel_sharding` -- S7.1 Fig 6: fan-out to a *subset* of back-ends
//    in parallel with per-back-end liveness (ActiveBackend[b]) and a
//    HaveAtLeastOne success check; used for replication/availability.
//
// Required host bindings for `sharding`:
//   block "Choose"{tgt}       -- pops a request, picks the shard index
//   saver "pack_request"      -- serializes the pending request into n
//   block "H_back"            -- back-end processing (reads request state)
//   restorer "unpack_request" -- back-end intake of n
//   saver "pack_response"     -- back-end serializes response into m
//   restorer "deliver_response" -- front-end hands the response to the client
//   block "complain"
// For `parallel_sharding`:
//   block "ChooseSet"{tgt}    -- picks the subset of back-ends to engage
//   (rest as above; no response path -- it is a replication pattern)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/program.hpp"

namespace csaw::patterns {

struct ShardingOptions {
  std::string front_instance = "Fnt";
  std::string back_prefix = "Bck";  // back-ends are Bck1..BckN
  std::size_t backends = 4;
  std::string junction = "j";
  std::int64_t timeout_ms = 500;

  std::string choose = "Choose";
  std::string pack_request = "pack_request";
  std::string h_back = "H_back";
  std::string unpack_request = "unpack_request";
  std::string pack_response = "pack_response";
  std::string deliver_response = "deliver_response";
  std::string complain = "complain";
};

ProgramSpec sharding(const ShardingOptions& options = {});

// Names of the back-end instances for the given options.
std::vector<std::string> shard_backend_names(const ShardingOptions& options);

struct ParallelShardingOptions {
  std::string front_instance = "Fnt";
  std::string back_prefix = "Bck";
  std::size_t backends = 3;
  std::string junction = "j";
  std::int64_t timeout_ms = 500;

  std::string choose_set = "ChooseSet";
  std::string pack_request = "pack_request";
  std::string h_back = "H_back";
  std::string unpack_request = "unpack_request";
  std::string complain = "complain";
};

ProgramSpec parallel_sharding(const ParallelShardingOptions& options = {});

}  // namespace csaw::patterns
