// Remote-snapshot architecture (paper Fig 4; use-cases (2) one-time and (3)
// continuous from Fig 1).
//
// Two instance types: tau_Actual (the application, which captures state and
// ships it out) and tau_Auditing (the remote logger), coordinating through
// the Work proposition with timeout-based failure-awareness and one
// retry (the Retried flag + reconsider).
//
// Continuous snapshots (use-case 3) reuse this architecture by repeatedly
// scheduling Act's junction during a single execution, exactly as S5.1
// describes. The same pattern also implements *checkpointing* for Redis and
// Suricata (S10.1): capture_state serializes the application state and the
// auditor retains it for restart.
//
// Required host bindings (names configurable via options):
//   block   "H1"            -- the application logic before the snapshot
//   block   "H2"            -- the auditor's logic on receiving a snapshot
//   block   "complain"      -- failure reporting
//   saver   "capture_state" -- serializes the state to snapshot
//   restorer "ingest_state" -- the auditor's intake of a snapshot
#pragma once

#include <cstdint>
#include <string>

#include "core/program.hpp"

namespace csaw::patterns {

struct SnapshotOptions {
  std::string actual_instance = "Act";
  std::string auditor_instance = "Aud";
  std::string junction = "j";
  std::int64_t timeout_ms = 500;

  std::string h1 = "H1";
  std::string h2 = "H2";
  std::string complain = "complain";
  std::string capture = "capture_state";
  std::string ingest = "ingest_state";
};

ProgramSpec remote_snapshot(const SnapshotOptions& options = {});

}  // namespace csaw::patterns
