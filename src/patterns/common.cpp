#include "patterns/common.hpp"

namespace csaw::patterns {

void add_worker_junction(TypeBuilder type, const WorkerJunctionNames& n) {
  const bool responds = !n.pack_response.empty();

  // The Work arm's handoff: optionally ship the response, then release the
  // front-end. Failure-awareness + single retry exactly as Fig 4/Fig 7.
  ExprPtr handoff;
  if (responds) {
    handoff = e_txn(e_seq({
        e_save("m", n.pack_response),
        e_write("m", jref(n.front_instance, n.junction)),
        e_retract(pr("Work"), jref(n.front_instance, n.junction)),
    }));
  } else {
    handoff = e_retract(pr("Work"), jref(n.front_instance, n.junction));
  }

  std::vector<CaseArm> arms;
  arms.push_back(case_arm(
      f_prop("Work"),
      e_otherwise(std::move(handoff), TimeRef::variable(Symbol("t")),
                  e_if(f_not(f_prop("Retried")), e_assert(pr("Retried")),
                       e_call(n.complain))),
      Terminator::kReconsider));

  auto junction = type.junction(n.junction)
                      .param("t", ParamDecl::Kind::kTime)
                      .init_prop("Work", false)
                      .init_prop("Retried", false)
                      .init_data("n")
                      .guard(f_prop("Work"))
                      .auto_schedule();
  if (responds) junction.init_data("m");
  junction.body(e_seq({
      e_restore("n", n.unpack_request),
      e_host(n.h_work),
      e_retract(pr("Retried")),
      e_case(std::move(arms), e_skip()),
  }));
}

void add_replica_junction(TypeBuilder type, const WorkerJunctionNames& n) {
  std::vector<CaseArm> arms;
  arms.push_back(case_arm(
      f_prop_idx("Work", var("self")),
      e_otherwise(
          e_retract(pr_idx("Work", var("self")),
                    jref(n.front_instance, n.junction)),
          TimeRef::variable(Symbol("t")),
          e_if(f_not(f_prop("Retried")), e_assert(pr("Retried")),
               e_call(n.complain))),
      Terminator::kReconsider));
  type.junction(n.junction)
      .param("t", ParamDecl::Kind::kTime)
      .param("self", ParamDecl::Kind::kJunction)
      .param("selfset", ParamDecl::Kind::kSet)
      .for_init_prop("s", SetRef::named(Symbol("selfset")), "Work", false)
      .init_prop("Retried", false)
      .init_data("n")
      .guard(f_for(Formula::Kind::kOr, "s", "selfset",
                   f_prop_idx("Work", var("s"))))
      .auto_schedule()
      .body(e_seq({
          e_restore("n", n.unpack_request),
          e_host(n.h_work),
          e_retract(pr("Retried")),
          e_case(std::move(arms), e_skip()),
      }));
}

std::vector<std::string> replica_instance_names(const std::string& prefix,
                                                std::size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    names.push_back(prefix + std::to_string(i));
  }
  return names;
}

}  // namespace csaw::patterns
