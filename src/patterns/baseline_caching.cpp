// Direct-C++ inline caching (Table 2 "Caching / Redis(C)").
// LOC-COUNT-BEGIN(baseline_caching)
#include <atomic>
#include <deque>

#include "patterns/baselines.hpp"

namespace csaw::baseline {
namespace {

enum Tag : std::uint32_t {
  kTagGet = 1,
  kTagSet = 2,
  kTagDel = 3,
  kTagFound = 100,
  kTagMissing = 101,
};

}  // namespace

struct CachedRedis::Impl {
  explicit Impl(std::size_t cap, std::uint64_t cost)
      : capacity(cap),
        store(cost),
        fun("fun", [this](const Frame& f) { return serve(f); }) {}

  Frame serve(const Frame& request) {
    std::string key, value;
    if (!read_text_frame(request, &key, &value).ok()) {
      return make_frame(kTagMissing, {});
    }
    switch (request.tag) {
      case kTagGet: {
        auto v = store.get(key);
        if (!v) return make_text_frame(kTagMissing, "", "");
        return make_text_frame(kTagFound, *v, "");
      }
      case kTagSet:
        store.set(key, value);
        return make_text_frame(kTagFound, "", "");
      case kTagDel:
        return make_text_frame(store.del(key) ? kTagFound : kTagMissing, "",
                               "");
      default:
        return make_text_frame(kTagMissing, "", "");
    }
  }

  void cache_put(const std::string& key, const std::string& value) {
    if (cache.size() >= capacity && !fifo.empty()) {
      cache.erase(fifo.front());
      fifo.pop_front();
    }
    if (cache.emplace(key, value).second) fifo.push_back(key);
  }

  std::size_t capacity;
  std::unordered_map<std::string, std::string> cache;
  std::deque<std::string> fifo;
  std::atomic<std::uint64_t> hits{0};
  miniredis::Store store;
  Peer fun;
};

CachedRedis::CachedRedis(std::size_t capacity, std::uint64_t op_cost_ns)
    : impl_(std::make_unique<Impl>(capacity, op_cost_ns)) {}

CachedRedis::~CachedRedis() = default;

Result<miniredis::Response> CachedRedis::request(
    const miniredis::Command& command) {
  using Op = miniredis::Command::Op;
  if (command.op == Op::kGet) {
    auto it = impl_->cache.find(command.key);
    if (it != impl_->cache.end()) {
      impl_->hits.fetch_add(1);
      return miniredis::Response{true, it->second};
    }
  } else {
    impl_->cache.erase(command.key);  // writes invalidate
  }
  std::uint32_t tag = command.op == Op::kGet   ? kTagGet
                      : command.op == Op::kSet ? kTagSet
                                               : kTagDel;
  auto resp = impl_->fun.call(
      make_text_frame(tag, command.key, command.value),
      Deadline::after(std::chrono::seconds(5)));
  if (!resp) return resp.error();
  std::string value, unused;
  CSAW_TRY(read_text_frame(*resp, &value, &unused));
  miniredis::Response out{resp->tag == kTagFound, value};
  if (command.op == Op::kGet && out.found) {
    impl_->cache_put(command.key, out.value);
  }
  return out;
}

std::uint64_t CachedRedis::hits() const { return impl_->hits.load(); }

}  // namespace csaw::baseline
// LOC-COUNT-END(baseline_caching)
