#include "patterns/failover.hpp"

#include "core/builder.hpp"

namespace csaw::patterns {

std::vector<std::string> failover_backend_names(const FailoverOptions& o) {
  std::vector<std::string> names;
  for (std::size_t i = 1; i <= o.backends; ++i) {
    names.push_back(o.back_prefix + std::to_string(i));
  }
  return names;
}

ProgramSpec failover(const FailoverOptions& o) {
  ProgramBuilder p("failover");
  const auto backs = failover_backend_names(o);
  const std::string fb_inst = o.front_instance;  // "f"

  CtList back_serves;
  for (const auto& b : backs) back_serves.emplace_back(addr(b, "serve"));
  p.config("backends", CtValue(back_serves));
  p.function(o.complain).body(e_host(o.complain));

  const auto fb = jref(fb_inst, "b");
  const auto fc = jref(fb_inst, "c");
  const TimeRef t = TimeRef::variable(Symbol("t"));

  // def Initialize(tgt) <|  (Fig 12)
  //   verify !Activating & !Active;
  //   write(state, tgt);
  //   assert [tgt] Activating;
  //   wait [] !Activating;
  //   assert [tgt] Active;
  //   assert [f::c] Backend[tgt];
  //   retract [] Active;
  p.function("Initialize")
      .param("tgt", ParamDecl::Kind::kJunction)
      .body(e_seq({
          e_verify(f_and(f_not(f_prop("Activating")), f_not(f_prop("Active")))),
          e_write("state", var("tgt")),
          e_assert(pr("Activating"), var("tgt")),
          e_wait({}, f_not(f_prop("Activating"))),
          e_assert(pr("Active"), var("tgt")),
          // If we fail on this, the backend won't be used by f::c, and the
          // backend will reattempt reactivation later after a period of
          // inactivity expires (Fig 12's comment).
          e_assert(pr_idx("Backend", var("tgt")), fc),
          e_retract(pr("Active")),
      }));

  // --- tau_f :: b(backends, t)  (Fig 10) -----------------------------------
  {
    auto starting_branch = e_seq({
        // Canonical state must exist before any Initialize ships it.
        e_save("state", o.init_state),
        // for b in backends +  < wait [] InitBackend[b] otherwise[t] skip >
        e_for("b", SetRef::named(Symbol("backends")), Expr::Kind::kPar,
              e_fate(e_otherwise(
                  e_wait({}, f_prop_idx("InitBackend", var("b"))), t,
                  e_skip()))),
        e_retract(pr("HaveAtLeastOne")),
        // for b in backends ;  if InitBackend[b] then
        //   <| Initialize(b); assert [] HaveAtLeastOne; |> otherwise[t] skip
        e_for("b", SetRef::named(Symbol("backends")), Expr::Kind::kSeq,
              e_if(f_prop_idx("InitBackend", var("b")),
                   e_otherwise(
                       e_txn(e_seq({
                           e_call("Initialize", {NameTerm::variable(Symbol("b"))}),
                           // Next line relies on idempotence (Fig 10).
                           e_assert(pr("HaveAtLeastOne")),
                       })),
                       t, e_skip()))),
        e_if(f_not(f_prop("HaveAtLeastOne")), e_call(o.complain)),
        e_retract(pr("Retried")),
        // case { Starting => retract [f::c] Starting otherwise[t] ...;
        //        reconsider   otherwise => skip }
        e_case(
            {case_arm(f_prop("Starting"),
                     e_otherwise(e_retract(pr("Starting"), fc), t,
                                 e_if(f_not(f_prop("Retried")),
                                      e_assert(pr("Retried")),
                                      e_call(o.complain))),
                     Terminator::kReconsider)},
            e_skip()),
    });

    std::vector<CaseArm> serving_arms;
    serving_arms.push_back(case_arm(
        f_prop("Call"),
        e_seq({
            // If the client-facing side dies mid-request, its final
            // `retract [f::b] Active` never arrives; the fallback clears the
            // grant locally (the same self-heal idiom as Fig 14's serve) or
            // the Call protocol wedges on `verify !Active` forever.
            e_otherwise(e_fate(e_seq({
                            e_verify(f_not(f_prop("Active"))),
                            e_write("state", fc),
                            e_assert(pr("Active"), fc),
                            e_wait({Symbol("state")}, f_not(f_prop("Active"))),
                        })),
                        t,
                        e_seq({e_retract(pr("Active")), e_call(o.complain)})),
            e_retract(pr("Call")),
        }),
        Terminator::kBreak));
    // for b in backends  !Call & InitBackend[b] =>
    //   Initialize(b) otherwise[t] skip; retract [] InitBackend[b]; break
    serving_arms.push_back(case_arm_for(
        "b", SetRef::named(Symbol("backends")),
        f_and(f_not(f_prop("Call")), f_prop_idx("InitBackend", var("b"))),
        e_seq({
            // Transactional (unlike Fig 10) so a half-done Initialize rolls
            // back Activating/Active instead of wedging the Call protocol.
            e_otherwise(e_txn(e_call("Initialize",
                                     {NameTerm::variable(Symbol("b"))})),
                        t, e_skip()),
            e_retract(pr_idx("InitBackend", var("b"))),
        }),
        Terminator::kBreak));

    p.type("tau_f")
        .junction("b")
        .param("backends", ParamDecl::Kind::kSet)
        .param("t", ParamDecl::Kind::kTime)
        .init_data("state")
        .init_prop("Starting", true)
        .init_prop("Active", false)
        .init_prop("Activating", false)
        .init_prop("Retried", false)
        .init_prop("Call", false)
        .init_prop("HaveAtLeastOne", false)
        .for_init_prop("tgt", SetRef::named(Symbol("backends")), "Backend",
                       false)
        .for_init_prop("tgt", SetRef::named(Symbol("backends")),
                       "InitBackend", false)
        .guard(f_or(f_prop("Starting"),
                    f_or(f_prop("Call"),
                         f_for(Formula::Kind::kOr, "b", "backends",
                               f_prop_idx("InitBackend", var("b"))))))
        .auto_schedule()
        .body(e_if(f_prop("Starting"), starting_branch,
                   e_case(std::move(serving_arms), e_skip())));
  }

  // --- tau_f :: c(backends, t)  (Fig 13) ------------------------------------
  {
    const auto fan_body = e_if(
        f_prop_idx("Backend", var("b")),
        e_otherwise(
            e_txn(e_seq({
                e_verify(f_implies(
                    f_running(NameTerm::variable(Symbol("b"))),
                    f_and(f_prop_at(NameTerm::variable(Symbol("b")), "Active"),
                          f_not(f_prop_at(NameTerm::variable(Symbol("b")),
                                          "Running",
                                          NameTerm::variable(Symbol("b"))))))),
                e_write("req", var("b")),
                e_assert(pr_idx("Running", var("b")), var("b")),
                e_wait({Symbol("preresp")},
                       f_not(f_prop_idx("Running", var("b")))),
                e_assert(pr("HaveAtLeastOne")),
            })),
            t, e_retract(pr_idx("Backend", var("b")))));

    p.type("tau_f")
        .junction("c")
        .param("backends", ParamDecl::Kind::kSet)
        .param("t", ParamDecl::Kind::kTime)
        .init_prop("Starting", true)
        .init_prop("Active", false)
        .init_prop("Req", false)
        .init_prop("Call", false)
        .init_prop("HaveAtLeastOne", false)
        .init_data("state")
        .init_data("req")
        .init_data("preresp")
        .for_init_prop("tgt", SetRef::named(Symbol("backends")), "Backend",
                       false)
        .for_init_prop("tgt", SetRef::named(Symbol("backends")), "Running",
                       false)
        // Req is asserted externally to process client request (Fig 13).
        .guard(f_and(f_not(f_prop("Starting")), f_prop("Req")))
        .auto_schedule()
        .body(e_seq({
            e_retract(pr("Req")),
            e_retract(pr("Active")),  // clear any stale grant
            e_verify(f_not(f_prop("Call"))),
            e_assert(pr("Call"), fb),
            e_otherwise(e_wait({Symbol("state")}, f_prop("Active")), t,
                        e_seq({e_retract(pr("Call")), e_call(o.complain),
                               e_return()})),
            e_restore("state", o.unpack_state),
            e_retract(pr("Call")),
            e_host(o.h1),
            e_save("req", o.pack_request),
            e_retract(pr("HaveAtLeastOne")),
            // Fan-out: all-replicas in parallel (S7.3), or first-success in
            // order (the section's proposed lower-latency refinement).
            e_for("b", SetRef::named(Symbol("backends")),
                  o.engage_all ? Expr::Kind::kPar : Expr::Kind::kSeq,
                  o.engage_all
                      ? fan_body
                      : e_if(f_not(f_prop("HaveAtLeastOne")), fan_body)),
            e_if(f_not(f_prop("HaveAtLeastOne")), e_call(o.complain)),
            e_verify(f_prop("HaveAtLeastOne")),
            e_restore("preresp", o.unpack_preresp),
            e_save("state", o.pack_state),
            e_write("state", fb),
            e_host(o.h3),
            e_retract(pr("Active"), fb),
        }));
  }

  // --- tau_b :: serve(t, self, selfset)  (Fig 14) ---------------------------
  //
  // csaw-lint CSAW-W001 (accepted; suppressed with justification in the
  // tool's registry): serve's Activating/Active props are written by both
  // the front-end (f::b asserts Activating to recruit a spare) and the
  // backend's own reactivate watchdog (which retracts both when the backend
  // goes quiet). That write-write race IS the takeover protocol --
  // last-writer-wins decides whether the recruit or the reaper acted last,
  // and the runtime's authority-epoch fence nacks whichever side lost
  // authority in the meantime, so a stale retract cannot undo a newer
  // takeover.
  {
    std::vector<CaseArm> arms;
    arms.push_back(case_arm(
        f_prop("Activating"),
        e_seq({
            e_restore("state", o.unpack_state),
            // If the remote retraction fails, then b::reactivate will
            // eventually retry the startup (Fig 14's comment).
            e_otherwise(e_retract(pr("Activating"), fb), t,
                        e_retract(pr("Activating"))),
        }),
        Terminator::kBreak));

    p.type("tau_b")
        .junction("serve")
        .param("t", ParamDecl::Kind::kTime)
        .param("selfset", ParamDecl::Kind::kSet)
        .init_prop("Active", false)
        .init_prop("Activating", false)
        .init_prop("RecentlyActive", false)
        .init_data("preresp")
        .init_data("state")
        .init_data("req")
        .for_init_prop("s", SetRef::named(Symbol("selfset")), "Running",
                       false)
        .guard(f_or(f_prop("Activating"),
                    f_and(f_prop("Active"),
                          f_for(Formula::Kind::kOr, "s", "selfset",
                                f_prop_idx("Running", var("s"))))))
        .auto_schedule()
        .body(e_case(
            std::move(arms),
            e_seq({
                e_assert(pr("RecentlyActive"),
                         NameTerm::me_instance_junction(Symbol("reactivate"))),
                e_restore("req", o.unpack_request),
                e_host(o.h2),
                e_save("preresp", o.pack_preresp),
                e_otherwise(
                    e_fate(e_seq({
                        e_write("preresp", fc),
                        e_retract(pr_idx("Running", NameTerm::me_junction()),
                                  fc),
                    })),
                    t, e_retract(pr("Active"))),
            })));
  }

  // --- tau_b :: startup(t)  (Fig 14) ----------------------------------------
  p.type("tau_b")
      .junction("startup")
      .param("t", ParamDecl::Kind::kTime)
      .param("selfset", ParamDecl::Kind::kSet)
      .for_init_prop("s", SetRef::named(Symbol("selfset")), "InitBackend",
                     false)
      .guard(f_not(f_prop_at(NameTerm::me_instance_junction(Symbol("serve")),
                             "Active")))
      .auto_schedule()
      .body(e_otherwise(
          e_assert(pr_idx("InitBackend",
                          NameTerm::me_instance_junction(Symbol("serve"))),
                   fb),
          t, e_skip()));

  // --- tau_b :: reactivate(t)  (Fig 14) --------------------------------------
  //
  // csaw-lint CSAW-C001 (accepted; suppressed with justification in the
  // tool's registry): serve pushes RecentlyActive here, and reactivate
  // pushes retractions back to serve -- a blocking-push cycle on paper. It
  // cannot deadlock in practice because the cycle is never closed at the
  // same time: reactivate only pushes from inside the otherwise[t] arm,
  // i.e. after its `wait` sat a whole inactivity window in which serve (the
  // would-be other half of the cycle) made no push, and the wait itself
  // bounds how long serve's RecentlyActive push can block against it.
  p.type("tau_b")
      .junction("reactivate")
      .param("t", ParamDecl::Kind::kTime)
      .init_prop("RecentlyActive", false)
      .init_prop("Active", false)
      .init_prop("Activating", false)
      .auto_schedule()
      .body(e_seq({
          e_retract(pr("RecentlyActive")),
          e_otherwise(
              e_wait({}, f_prop("RecentlyActive")), t,
              e_fate(e_seq({
                  e_retract(pr("Active"),
                            NameTerm::me_instance_junction(Symbol("serve"))),
                  e_retract(pr("Activating"),
                            NameTerm::me_instance_junction(Symbol("serve"))),
              }))),
      }));

  // --- instances & main ------------------------------------------------------
  p.instance(fb_inst, "tau_f",
             {{"b", {CtValue(back_serves), CtValue(o.timeout_ms)}},
              {"c", {CtValue(back_serves), CtValue(o.timeout_ms)}}});
  for (const auto& b : backs) {
    const CtValue self(addr(b, "serve"));
    p.instance(b, "tau_b",
               {{"serve", {CtValue(o.timeout_ms), CtValue(CtList{self})}},
                {"startup", {CtValue(o.timeout_ms), CtValue(CtList{self})}},
                {"reactivate", {CtValue(o.reactivate_ms)}}});
  }

  // def main(t) <| start b1 ... + start b2 ... + start f ...  (Fig 12)
  std::vector<ExprPtr> starts;
  for (const auto& b : backs) starts.push_back(e_start(inst(b)));
  starts.push_back(e_start(inst(fb_inst)));
  p.main_body(e_par(std::move(starts)));
  return p.build();
}

}  // namespace csaw::patterns
