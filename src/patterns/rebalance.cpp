#include "patterns/rebalance.hpp"

#include "patterns/common.hpp"

namespace csaw::patterns {

std::vector<std::string> rebalance_shard_names(const RebalanceOptions& o) {
  std::vector<std::string> names;
  names.reserve(o.shards);
  for (std::size_t i = 1; i <= o.shards; ++i) {
    names.push_back(o.shard_prefix + std::to_string(i));
  }
  return names;
}

ProgramSpec rebalance(const RebalanceOptions& o) {
  ProgramBuilder p("rebalance");
  const auto shards = rebalance_shard_names(o);

  CtList shard_addrs;
  CtList ingest_addrs;
  for (const auto& s : shards) {
    shard_addrs.emplace_back(addr(s, o.junction));
    ingest_addrs.emplace_back(addr(s, o.ingest_junction));
  }
  p.config("Shards", CtValue(shard_addrs));
  p.config("Ingests", CtValue(ingest_addrs));
  p.function(o.complain).body(e_host(o.complain));

  // def tau_Front :: (t) <|  (Fig 5's front-end; Route consults the
  // routing table instead of a static hash)
  //   | init prop !Work  | init data n  | init data m
  //   | idx tgt of {Shd1.j, ..., ShdN.j}
  //   |_Route_|{tgt}; save(..., n);
  //   < write(n, tgt); assert [tgt] Work; wait [m] !Work;
  //     restore(m, ...) >
  //   otherwise[t] complain();
  p.type("tau_Front")
      .junction(o.junction)
      .param("t", ParamDecl::Kind::kTime)
      .init_prop("Work", false)
      .init_data("n")
      .init_data("m")
      .idx("tgt", SetRef::named(Symbol("Shards")))
      .body(e_seq({
          e_host(o.route, {Symbol("tgt")}),
          e_save("n", o.pack_request),
          e_otherwise(
              e_fate(e_seq({
                  e_write("n", idxvar("tgt")),
                  e_assert(pr("Work"), idxvar("tgt")),
                  e_wait({Symbol("m")}, f_not(f_prop("Work"))),
                  e_restore("m", o.deliver_response),
              })),
              TimeRef::variable(Symbol("t")), e_call(o.complain)),
      }));

  // def tau_Shard ::
  //   junction j      -- the shared worker junction (tau_Back / tau_Fun)
  //   junction ingest -- tau_Auditing with the mover as its "actual":
  //     | init prop !Inbound | init prop !IngRetried | init data c
  //     | guard Inbound
  //     restore(c, ...); retract [] IngRetried;
  //     case {
  //       Inbound => retract [Mov.m] Inbound otherwise[t]
  //                    if !IngRetried then assert [] IngRetried;
  //                    else complain();
  //                  reconsider
  //       otherwise => skip
  //     }
  auto shard = p.type("tau_Shard");
  add_worker_junction(shard, WorkerJunctionNames{o.front_instance, o.junction,
                                                 o.h_shard, o.unpack_request,
                                                 o.pack_response, o.complain});

  std::vector<CaseArm> ingest_arms;
  ingest_arms.push_back(case_arm(
      f_prop("Inbound"),
      e_otherwise(e_retract(pr("Inbound"),
                            jref(o.mover_instance, o.mover_junction)),
                  TimeRef::variable(Symbol("t")),
                  e_if(f_not(f_prop("IngRetried")), e_assert(pr("IngRetried")),
                       e_call(o.complain))),
      Terminator::kReconsider));

  shard.junction(o.ingest_junction)
      .param("t", ParamDecl::Kind::kTime)
      .init_prop("Inbound", false)
      .init_prop("IngRetried", false)
      .init_data("c")
      .guard(f_prop("Inbound"))
      .auto_schedule()
      .body(e_seq({
          e_restore("c", o.ingest_chunk),
          e_retract(pr("IngRetried")),
          e_case(std::move(ingest_arms), e_skip()),
      }));

  // def tau_Mover :: (t) <|  (tau_Actual with an idx choice: one run ships
  // one chunk to one receiver; the control plane loops it and journals the
  // handoff phase between runs)
  //   | init prop !Inbound  | init data c
  //   | idx tgt of {Shd1.ingest, ..., ShdN.ingest}
  //   |_NextChunk_|{tgt}; save(..., c);
  //   < write(c, tgt); assert [tgt] Inbound; wait [] !Inbound; >
  //   otherwise[t] complain();
  p.type("tau_Mover")
      .junction(o.mover_junction)
      .param("t", ParamDecl::Kind::kTime)
      .init_prop("Inbound", false)
      .init_data("c")
      .idx("tgt", SetRef::named(Symbol("Ingests")))
      .body(e_seq({
          e_host(o.next_chunk, {Symbol("tgt")}),
          e_save("c", o.pack_chunk),
          e_otherwise(
              e_fate(e_seq({
                  e_write("c", idxvar("tgt")),
                  e_assert(pr("Inbound"), idxvar("tgt")),
                  e_wait({}, f_not(f_prop("Inbound"))),
              })),
              TimeRef::variable(Symbol("t")), e_call(o.complain)),
      }));

  p.instance(o.front_instance, "tau_Front",
             {{o.junction, {CtValue(o.timeout_ms)}}});
  for (const auto& s : shards) {
    p.instance(s, "tau_Shard",
               {{o.junction, {CtValue(o.timeout_ms)}},
                {o.ingest_junction, {CtValue(o.timeout_ms)}}});
  }
  p.instance(o.mover_instance, "tau_Mover",
             {{o.mover_junction, {CtValue(o.timeout_ms)}}});

  std::vector<ExprPtr> starts{e_start(inst(o.front_instance))};
  for (const auto& s : shards) starts.push_back(e_start(inst(s)));
  starts.push_back(e_start(inst(o.mover_instance)));
  p.main_body(e_par(std::move(starts)));
  return p.build();
}

}  // namespace csaw::patterns
