#include "patterns/watched_failover.hpp"

#include "core/builder.hpp"

namespace csaw::patterns {

ProgramSpec watched_failover(const WatchedFailoverOptions& o) {
  ProgramBuilder p("watched_failover");
  const std::string f = o.front_instance;
  const std::string w = o.watchdog_instance;
  const std::string prim = o.primary_instance;
  const std::string spare = o.spare_instance;
  const TimeRef t = TimeRef::variable(Symbol("t"));
  p.config("t", CtValue(o.timeout_ms));

  const CtValue o_addr(addr(prim, "j"));
  const CtValue s_addr(addr(spare, "j"));
  const CtList both{o_addr, s_addr};
  p.config("os", CtValue(both));

  p.function(o.complain).body(e_host(o.complain));

  // def RunBackend(n, t, tgt) <|
  //   <| write(n, tgt); assert [tgt] Run[tgt] |> otherwise[t] complain();
  p.function("RunBackend")
      .param("tgt", ParamDecl::Kind::kJunction)
      .body(e_otherwise(e_txn(e_seq({
                            e_write("n", var("tgt")),
                            e_assert(pr_idx("Run", var("tgt")), var("tgt")),
                        })),
                        t, e_call(o.complain)));

  // def reply(t, other) <|   (Fig 17)
  //   verify !Reply@f;
  //   verify S(other) -> !Reply@other;   <- S()-guarded so the check is not
  //       "needed" when the other back-end is down (ternary logic, S6)
  //   < save(..., m); write(m, f); assert [f] Reply; >
  //   otherwise[t] complain();
  p.function("reply")
      .param("other", ParamDecl::Kind::kJunction)
      .body(e_seq({
          e_verify(f_not(f_prop_at(jref(f, "j"), "Reply"))),
          e_verify(f_implies(
              f_running(var("other")),
              f_not(f_prop_at(var("other"), "Reply")))),
          e_otherwise(e_fate(e_seq({
                          e_save("m", o.pack_reply),
                          e_write("m", jref(f, "j")),
                          e_assert(pr("Reply"), jref(f, "j")),
                      })),
                      t, e_call(o.complain)),
      }));

  // def Watch(tgt, prop) <|  (Fig 16)
  p.function("Watch")
      .param("tgt", ParamDecl::Kind::kJunction)
      .param("prop", ParamDecl::Kind::kPropName)
      .init_prop("prop", false)
      .body(e_otherwise(e_txn(e_seq({
                            e_assert(pr("prop"), var("tgt")),
                            e_assert(pr("prop"), jref(f, "j")),
                        })),
                        TimeRef::infinite(), e_call(o.complain)));

  // --- tau_f :: (t)  (Fig 16) -----------------------------------------------
  {
    std::vector<CaseArm> arms;
    arms.push_back(case_arm(
        f_and(f_prop("failover"), f_not(f_prop("nofailover"))),
        e_call("RunBackend", {NameTerm::concrete(s_addr.as_junction())}),
        Terminator::kBreak));
    arms.push_back(case_arm(
        f_and(f_not(f_prop("failover")), f_prop("nofailover")),
        e_call("RunBackend", {NameTerm::concrete(o_addr.as_junction())}),
        Terminator::kBreak));

    p.type("tau_f")
        .junction("j")
        .param("t", ParamDecl::Kind::kTime)
        .init_prop("Reply", false)
        .for_init_prop("tgt", SetRef::named(Symbol("os")), "Run", false)
        .init_prop("failover", false)
        .init_prop("nofailover", false)
        .init_data("n")
        .init_data("m")
        // Junction won't be scheduled until !Reply (Fig 16's comment).
        .guard(f_not(f_prop("Reply")))
        .body(e_seq({
            e_host(o.h1),
            e_save("n", o.pack_request),
            e_verify(f_and(
                f_not(f_prop_idx("Run", NameTerm::concrete(o_addr.as_junction()))),
                f_and(f_not(f_prop_idx("Run",
                                       NameTerm::concrete(s_addr.as_junction()))),
                      f_not(f_prop("Reply"))))),
            e_verify(f_not(f_and(f_prop("failover"), f_prop("nofailover")))),
            e_case(std::move(arms),
                   e_otherwise(
                       e_par({e_call("RunBackend",
                                     {NameTerm::concrete(o_addr.as_junction())}),
                              e_call("RunBackend",
                                     {NameTerm::concrete(s_addr.as_junction())})}),
                       t, e_call(o.complain))),
            // Don't wait too long for completion, prioritize throughput
            // (Fig 16's comment). If Reply hasn't been set, the guard keeps
            // this junction unscheduled until it is.
            e_otherwise(e_wait({Symbol("m")}, f_prop("Reply")), t, e_return()),
            e_retract(pr("Reply")),
            e_restore("m", o.unpack_reply),
            e_host(o.h3),
        }));
  }

  // --- back-ends tau_o / tau_s  (Fig 17) -------------------------------------
  auto add_backend = [&](const std::string& type, const CtValue& other,
                         bool reply_on_failover) {
    ExprPtr tail;
    if (reply_on_failover) {
      // tau_s replies only when the watchdog declared fail-over.
      std::vector<CaseArm> arms;
      arms.push_back(case_arm(
          f_prop("failover"),
          e_seq({e_call("reply", {NameTerm::concrete(other.as_junction())}),
                 e_retract(pr("Reply"))}),
          Terminator::kBreak));
      tail = e_case(std::move(arms), e_skip());
    } else {
      // tau_o always replies.
      tail = e_seq({e_call("reply", {NameTerm::concrete(other.as_junction())}),
                    e_retract(pr("Reply"))});
    }
    p.type(type)
        .junction("j")
        .param("t", ParamDecl::Kind::kTime)
        .param("selfset", ParamDecl::Kind::kSet)
        .for_init_prop("tgt", SetRef::named(Symbol("selfset")), "Run", false)
        .init_prop("Reply", false)
        .init_prop("failover", false)
        .init_prop("nofailover", false)
        .init_data("n")
        .init_data("m")
        .guard(f_for(Formula::Kind::kOr, "s", "selfset",
                     f_prop_idx("Run", var("s"))))
        .auto_schedule()
        .body(e_seq({
            e_verify(f_not(f_prop("Reply"))),
            e_restore("n", o.unpack_request),
            e_host(o.h2),
            e_otherwise(e_retract(pr_idx("Run", NameTerm::me_junction()), jref(f, "j")),
                        t, e_call(o.complain)),
            std::move(tail),
        }));
  };
  add_backend("tau_o", s_addr, /*reply_on_failover=*/false);
  add_backend("tau_s", o_addr, /*reply_on_failover=*/true);

  // --- watchdog tau_w  (Fig 16) ----------------------------------------------
  {
    auto tw = p.type("tau_w");
    tw.junction("cs")
        .guard(f_and(f_not(f_running(NameTerm::concrete(
                         JunctionAddr{Symbol(prim), Symbol()}))),
                     f_and(f_running(NameTerm::concrete(
                               JunctionAddr{Symbol(spare), Symbol()})),
                           f_running(NameTerm::concrete(
                               JunctionAddr{Symbol(f), Symbol()})))))
        .auto_schedule()
        .body(e_call("Watch", {NameTerm::concrete(s_addr.as_junction()),
                               CtValue(Symbol("failover"))}));
    tw.junction("co")
        .guard(f_and(f_not(f_running(NameTerm::concrete(
                         JunctionAddr{Symbol(spare), Symbol()}))),
                     f_and(f_running(NameTerm::concrete(
                               JunctionAddr{Symbol(prim), Symbol()})),
                           f_running(NameTerm::concrete(
                               JunctionAddr{Symbol(f), Symbol()})))))
        .auto_schedule()
        .body(e_call("Watch", {NameTerm::concrete(o_addr.as_junction()),
                               CtValue(Symbol("nofailover"))}));
    tw.junction("cunrecov")
        .guard(f_or(f_and(f_not(f_running(NameTerm::concrete(
                              JunctionAddr{Symbol(spare), Symbol()}))),
                          f_not(f_running(NameTerm::concrete(
                              JunctionAddr{Symbol(prim), Symbol()})))),
                    f_not(f_running(
                        NameTerm::concrete(JunctionAddr{Symbol(f), Symbol()})))))
        .auto_schedule()
        .body(e_call(o.complain));
  }

  // --- instances & main -------------------------------------------------------
  p.instance(f, "tau_f", {{"j", {CtValue(o.timeout_ms)}}});
  p.instance(prim, "tau_o",
             {{"j", {CtValue(o.timeout_ms), CtValue(CtList{o_addr})}}});
  p.instance(spare, "tau_s",
             {{"j", {CtValue(o.timeout_ms), CtValue(CtList{s_addr})}}});
  p.instance(w, "tau_w", {});

  // def main(t) <| (start w + start o + start s); start f  (Fig 16)
  p.main_body(e_seq({
      e_par({e_start(inst(w)), e_start(inst(prim)), e_start(inst(spare))}),
      e_start(inst(f)),
  }));
  return p.build();
}

}  // namespace csaw::patterns
