// Inline caching architecture (paper S7.2, Fig 7; use-case (5) of Fig 1).
//
// tau_Cache fronts a pure function computed by tau_Fun; cacheability
// classification, lookup and update are host-side concerns ("the features of
// the cache, such as its sizes and eviction strategy, are orthogonal to the
// architecture", S7.2). tau_Fun reuses the worker junction shared with the
// snapshot/sharding patterns -- Fig 7's tau_Fun "is closely based on
// tau_Auditing".
//
// Required host bindings:
//   block "CheckCacheable"{Cacheable} -- pops the request, classifies it
//   block "LookupCache"{Cached}       -- consults the cache; serves on hit
//   block "UpdateCache"               -- installs the new value
//   block "F"                         -- the computed function (back-end)
//   restorer "unpack_request", savers "pack_request"/"pack_response",
//   restorer "deliver_response", block "complain"
#pragma once

#include <cstdint>
#include <string>

#include "core/program.hpp"

namespace csaw::patterns {

struct CachingOptions {
  std::string cache_instance = "Cache";
  std::string fun_instance = "Fun";
  std::string junction = "j";
  std::int64_t timeout_ms = 500;

  std::string check_cacheable = "CheckCacheable";
  std::string lookup_cache = "LookupCache";
  std::string update_cache = "UpdateCache";
  std::string f = "F";
  std::string pack_request = "pack_request";
  std::string unpack_request = "unpack_request";
  std::string pack_response = "pack_response";
  std::string deliver_response = "deliver_response";
  std::string complain = "complain";
};

ProgramSpec caching(const CachingOptions& options = {});

}  // namespace csaw::patterns
