#include "patterns/snapshot.hpp"

#include "core/builder.hpp"

namespace csaw::patterns {

ProgramSpec remote_snapshot(const SnapshotOptions& o) {
  ProgramBuilder p("remote_snapshot");
  p.config("t", CtValue(o.timeout_ms));

  // def complain() <| |_..._|
  p.function(o.complain).body(e_host(o.complain));

  // def tau_Actual :: (t) <|  (Fig 4, left)
  //   | init prop !Work  | init data n
  //   |_H1_|; save(..., n);
  //   < write(n, Aud); assert [Aud] Work; wait [] !Work; >
  //   otherwise[t] complain();
  p.type("tau_Actual")
      .junction(o.junction)
      .param("t", ParamDecl::Kind::kTime)
      .init_prop("Work", false)
      .init_data("n")
      .body(e_seq({
          e_host(o.h1),
          e_save("n", o.capture),
          e_otherwise(
              e_fate(e_seq({
                  e_write("n", jref(o.auditor_instance, o.junction)),
                  e_assert(pr("Work"), jref(o.auditor_instance, o.junction)),
                  e_wait({}, f_not(f_prop("Work"))),
              })),
              TimeRef::variable(Symbol("t")), e_call(o.complain)),
      }));

  // def tau_Auditing :: (t) <|  (Fig 4, right)
  //   | init prop !Work | init prop !Retried | init data n | guard Work
  //   restore(n, ...); |_H2_|; retract [] Retried;
  //   case {
  //     Work => retract [Act] Work otherwise[t]
  //               if !Retried then assert [] Retried; else complain();
  //             reconsider
  //     otherwise => skip
  //   }
  std::vector<CaseArm> arms;
  arms.push_back(case_arm(
      f_prop("Work"),
      e_otherwise(e_retract(pr("Work"), jref(o.actual_instance, o.junction)),
                  TimeRef::variable(Symbol("t")),
                  e_if(f_not(f_prop("Retried")), e_assert(pr("Retried")),
                       e_call(o.complain))),
      Terminator::kReconsider));

  p.type("tau_Auditing")
      .junction(o.junction)
      .param("t", ParamDecl::Kind::kTime)
      .init_prop("Work", false)
      .init_prop("Retried", false)
      .init_data("n")
      .guard(f_prop("Work"))
      .auto_schedule()
      .body(e_seq({
          e_restore("n", o.ingest),
          e_host(o.h2),
          e_retract(pr("Retried")),
          e_case(std::move(arms), e_skip()),
      }));

  p.instance(o.actual_instance, "tau_Actual",
             {{o.junction, {CtValue(o.timeout_ms)}}});
  p.instance(o.auditor_instance, "tau_Auditing",
             {{o.junction, {CtValue(o.timeout_ms)}}});

  // def main(t) <| start Act(t) + start Aud(t)
  p.main_body(e_par({e_start(inst(o.actual_instance)),
                     e_start(inst(o.auditor_instance))}));
  return p.build();
}

}  // namespace csaw::patterns
