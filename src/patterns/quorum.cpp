#include "patterns/quorum.hpp"

#include "patterns/common.hpp"

namespace csaw::patterns {

std::vector<std::string> quorum_replica_names(const QuorumOptions& o) {
  return replica_instance_names(o.replica_prefix, o.replicas);
}

ProgramSpec quorum(const QuorumOptions& o) {
  ProgramBuilder p("quorum");
  const auto reps = quorum_replica_names(o);

  CtList rep_addrs;
  for (const auto& r : reps) rep_addrs.emplace_back(addr(r, o.junction));
  p.config("Reps", CtValue(rep_addrs));
  p.function(o.complain).body(e_host(o.complain));

  // def tau_Front :: (t) <|   (Fig 6's fan-out with a W-counting tally)
  //   | init data n
  //   | set Reps
  //   | for r in Reps init prop ActiveReplica[r]
  //   | for r in Reps init prop !Work[r]
  //   | subset tgt of Reps
  //   | init prop !HaveQuorum
  //   |_ChooseSet_|{tgt}; save(..., n);
  //   retract [] HaveQuorum;
  //   for b in tgt +
  //     if ActiveReplica[b] then
  //       <| < write(n, b); assert [b] Work[b]; wait [] !Work[b] >;
  //          |_CountAck_|{HaveQuorum};
  //       |> otherwise[t] retract [] ActiveReplica[b];
  //   if !HaveQuorum then complain();
  //
  // CountAck runs outside the transactional hop so a rolled-back handoff
  // can never have been tallied; a replica counts if and only if its synced
  // Work[b] retraction (= it applied the command) came back in time.
  auto fan_body = e_if(
      f_prop_idx("ActiveReplica", var("b")),
      e_otherwise(
          e_seq({
              e_txn(e_seq({
                  e_write("n", var("b")),
                  e_assert(pr_idx("Work", var("b")), var("b")),
                  e_wait({}, f_not(f_prop_idx("Work", var("b")))),
              })),
              e_host(o.count_ack, {Symbol("HaveQuorum")}),
          }),
          TimeRef::variable(Symbol("t")),
          e_retract(pr_idx("ActiveReplica", var("b")))));

  p.type("tau_Front")
      .junction(o.junction)
      .param("t", ParamDecl::Kind::kTime)
      .init_data("n")
      .set_decl("Reps")
      .for_init_prop("r", SetRef::named(Symbol("Reps")), "ActiveReplica", true)
      .for_init_prop("r", SetRef::named(Symbol("Reps")), "Work", false)
      .subset("tgt", SetRef::named(Symbol("Reps")))
      .init_prop("HaveQuorum", false)
      .body(e_seq({
          e_host(o.choose_set, {Symbol("tgt")}),
          e_save("n", o.pack_request),
          e_retract(pr("HaveQuorum")),
          e_for("b", SetRef::named(Symbol("tgt")), Expr::Kind::kPar,
                std::move(fan_body)),
          e_if(f_not(f_prop("HaveQuorum")), e_call(o.complain)),
      }));

  // Replica: the shared self-keyed worker junction (patterns/common.hpp) --
  // the same shape as parallel sharding's back-end and Fig 4's auditor.
  add_replica_junction(p.type("tau_Rep"),
                       WorkerJunctionNames{o.front_instance, o.junction,
                                           o.h_replica, o.unpack_request,
                                           /*pack_response=*/"", o.complain});

  p.instance(o.front_instance, "tau_Front",
             {{o.junction, {CtValue(o.timeout_ms)}}});
  for (const auto& r : reps) {
    const CtValue self(addr(r, o.junction));
    p.instance(r, "tau_Rep",
               {{o.junction,
                 {CtValue(o.timeout_ms), self, CtValue(CtList{self})}}});
  }

  std::vector<ExprPtr> starts{e_start(inst(o.front_instance))};
  for (const auto& r : reps) starts.push_back(e_start(inst(r)));
  p.main_body(e_par(std::move(starts)));
  return p.build();
}

}  // namespace csaw::patterns
