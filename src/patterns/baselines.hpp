// Direct-C++ re-architectures of miniredis -- the Table 2 control
// experiment ("Redis(C) is the LoC needed to rearchitecture directly in C
// ... developed without knowledge of the DSL").
//
// Each class implements one of the three features (checkpointing, sharding,
// caching) directly on the baseline_comm peer framework: hand-written
// message tags, framing, retry/timeout handling, and state management --
// the work the DSL performs declaratively. The bench bench/table2_loc
// counts these sources against the DSL expressions.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/miniredis/command.hpp"
#include "apps/miniredis/store.hpp"
#include "patterns/baseline_comm.hpp"

namespace csaw::baseline {

// Checkpointing: a serving store plus an auditor peer holding snapshots.
class CheckpointedRedis {
 public:
  explicit CheckpointedRedis(std::uint64_t op_cost_ns = 900);
  ~CheckpointedRedis();

  miniredis::Response request(const miniredis::Command& command);
  Status checkpoint();
  Status crash_and_resume();
  [[nodiscard]] std::size_t checkpoints_taken() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Key-hash sharding across N backend stores, each on its own peer.
class ShardedRedis {
 public:
  explicit ShardedRedis(std::size_t shards = 4, std::uint64_t op_cost_ns = 900);
  ~ShardedRedis();

  Result<miniredis::Response> request(const miniredis::Command& command);
  [[nodiscard]] std::vector<std::uint64_t> shard_counts() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// An inline cache peer in front of a store peer.
class CachedRedis {
 public:
  explicit CachedRedis(std::size_t capacity = 4096,
                       std::uint64_t op_cost_ns = 900);
  ~CachedRedis();

  Result<miniredis::Response> request(const miniredis::Command& command);
  [[nodiscard]] std::uint64_t hits() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace csaw::baseline
