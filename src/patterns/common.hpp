// Shared building blocks reused across architecture patterns -- the concrete
// realization of the paper's reuse claim ("the same architectural
// description can be reused in different applications", S3; tau_Fun in Fig 7
// "is closely based on tau_Auditing in Fig 4").
#pragma once

#include <string>
#include <vector>

#include "core/builder.hpp"

namespace csaw::patterns {

struct WorkerJunctionNames {
  std::string front_instance;   // who to respond to
  std::string junction;         // junction name on both sides
  std::string h_work;           // host block doing the actual work
  std::string unpack_request;   // restorer for the inbound request n
  std::string pack_response;    // saver for the outbound response m ("" = none)
  std::string complain;
};

// Builds the guarded worker junction shared by tau_Auditing (Fig 4),
// tau_Back (Fig 5) and tau_Fun (Fig 7):
//
//   | init prop !Work | init prop !Retried | init data n [| init data m]
//   | guard Work
//   restore(n, ...); |_H_|; retract [] Retried;
//   case {
//     Work => [save(..., m); write(m, Front);] retract [Front] Work
//             otherwise[t] if !Retried then assert [] Retried;
//                          else complain();
//             reconsider
//     otherwise => skip
//   }
//
// When pack_response is non-empty the response m is written back before the
// Work retraction (Fig 7's tau_Fun); the write+retract share a transactional
// block so a failed handoff rolls back cleanly.
void add_worker_junction(TypeBuilder type, const WorkerJunctionNames& names);

// Builds the *self-keyed* replica junction shared by S7.1's parallel
// sharding back-end and the replication patterns (patterns/quorum,
// patterns/chain's tail): the worker junction above, but keyed by an
// indexed Work[self] proposition so one front-end can address N replicas
// through one prop family:
//
//   :: (t, self, selfset) <|
//   | for s in selfset init prop !Work[s] | init prop !Retried | init data n
//   | guard (or s in selfset: Work[s])
//   restore(n, ...); |_H_|; retract [] Retried;
//   case {
//     Work[self] => retract [Front] Work[self]
//             otherwise[t] if !Retried then assert [] Retried;
//                          else complain();
//             reconsider
//     otherwise => skip
//   }
//
// The instance passes itself as `self` (a junction address) and `{self}` as
// `selfset`; the Work[self] retraction is synced, releasing both the
// replica's own guard and the front-end's wait mirror in one update.
// pack_response is ignored (replication responses flow host-side).
void add_replica_junction(TypeBuilder type, const WorkerJunctionNames& names);

// Replica instance names <prefix>1..<prefix>N, shared by the replication
// patterns and the services that set per-replica host state.
std::vector<std::string> replica_instance_names(const std::string& prefix,
                                                std::size_t n);

}  // namespace csaw::patterns
