// "Watched" fail-over (paper S7.4, Figs 15-17): an alternative point in the
// design space for the same fail-over concept.
//
// Two back-ends o (preferred) and s (spare), one front-end f, and a
// watchdog instance w that arbitrates back-end liveness through three
// guarded junctions: cs (only s is alive -> assert failover), co (only o is
// alive -> assert nofailover), and cunrecov (both back-ends gone, or f
// itself gone -> complain). Unlike S7.3, the front-end engages a single
// back-end at a time; when neither watchdog verdict is in, it runs both and
// takes whichever replies (Fig 16's case-otherwise arm).
//
// Required host bindings:
//   block "H1" -- front-end pre-processing (pop client request)
//   block "H2" -- back-end processing (both o and s)
//   block "H3" -- front-end post-processing (deliver response)
//   block "complain"
//   saver "pack_request", restorer "unpack_request"
//   saver "pack_reply", restorer "unpack_reply"
#pragma once

#include <cstdint>
#include <string>

#include "core/program.hpp"

namespace csaw::patterns {

struct WatchedFailoverOptions {
  std::string front_instance = "f";
  std::string watchdog_instance = "w";
  std::string primary_instance = "o";
  std::string spare_instance = "s";
  std::int64_t timeout_ms = 300;

  std::string h1 = "H1";
  std::string h2 = "H2";
  std::string h3 = "H3";
  std::string complain = "complain";
  std::string pack_request = "pack_request";
  std::string unpack_request = "unpack_request";
  std::string pack_reply = "pack_reply";
  std::string unpack_reply = "unpack_reply";
};

ProgramSpec watched_failover(const WatchedFailoverOptions& options = {});

}  // namespace csaw::patterns
