#include "patterns/caching.hpp"

#include "patterns/common.hpp"

namespace csaw::patterns {

ProgramSpec caching(const CachingOptions& o) {
  ProgramBuilder p("caching");
  p.function(o.complain).body(e_host(o.complain));

  // def tau_Cache :: (t) <|  (Fig 7, left)
  //   | init prop !Work | init prop !Cacheable
  //   | init prop !Cached | init prop !NewValue
  //   | init data n | init data m
  //   retract [] NewValue;             <- reset added: Fig 7 leaves NewValue
  //                                       asserted across schedulings, which
  //                                       would re-run UpdateCache on the
  //                                       next hit (see DESIGN.md)
  //   |_CheckCacheable_|{Cacheable};
  //   case {
  //     Cacheable =>
  //       |_LookupCache_|{Cached};
  //       next
  //     !Cacheable | (Cacheable & !Cached) =>
  //       save(..., n);
  //       < write(n, Fun); assert [Fun] Work;
  //         wait [m] !Work; restore(m, ...);
  //         assert [] NewValue;
  //       > otherwise[t] complain();
  //       next
  //     Cacheable & NewValue =>
  //       |_UpdateCache_|; break
  //     otherwise => skip
  //   }
  std::vector<CaseArm> arms;
  arms.push_back(case_arm(
      f_prop("Cacheable"),
      e_host(o.lookup_cache, {Symbol("Cached")}),
      Terminator::kNext));
  arms.push_back(case_arm(
      f_or(f_not(f_prop("Cacheable")),
           f_and(f_prop("Cacheable"), f_not(f_prop("Cached")))),
      e_seq({
          e_save("n", o.pack_request),
          e_otherwise(
              e_fate(e_seq({
                  e_write("n", jref(o.fun_instance, o.junction)),
                  e_assert(pr("Work"), jref(o.fun_instance, o.junction)),
                  e_wait({Symbol("m")}, f_not(f_prop("Work"))),
                  e_restore("m", o.deliver_response),
                  e_assert(pr("NewValue")),
              })),
              TimeRef::variable(Symbol("t")), e_call(o.complain)),
      }),
      Terminator::kNext));
  arms.push_back(case_arm(
      f_and(f_prop("Cacheable"), f_prop("NewValue")),
      e_host(o.update_cache),
      Terminator::kBreak));

  p.type("tau_Cache")
      .junction(o.junction)
      .param("t", ParamDecl::Kind::kTime)
      .init_prop("Work", false)
      .init_prop("Cacheable", false)
      .init_prop("Cached", false)
      .init_prop("NewValue", false)
      .init_data("n")
      .init_data("m")
      .body(e_seq({
          e_retract(pr("NewValue")),
          e_host(o.check_cacheable, {Symbol("Cacheable")}),
          e_case(std::move(arms), e_skip()),
      }));

  // def tau_Fun :: (t) <| -- Fig 7's right side, which "we largely reuse"
  // from Fig 4's tau_Auditing; shared with the sharding pattern.
  add_worker_junction(p.type("tau_Fun"),
                      WorkerJunctionNames{o.cache_instance, o.junction, o.f,
                                          o.unpack_request, o.pack_response,
                                          o.complain});

  p.instance(o.cache_instance, "tau_Cache",
             {{o.junction, {CtValue(o.timeout_ms)}}});
  p.instance(o.fun_instance, "tau_Fun",
             {{o.junction, {CtValue(o.timeout_ms)}}});

  // def main(t) <| start Cache(t) + start Fun(t)
  p.main_body(e_par({e_start(inst(o.cache_instance)),
                     e_start(inst(o.fun_instance))}));
  return p.build();
}

}  // namespace csaw::patterns
