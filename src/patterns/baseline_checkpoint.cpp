// Direct-C++ checkpointing (Table 2 "Checkpointing / Redis(C)").
// LOC-COUNT-BEGIN(baseline_checkpoint)
#include <mutex>

#include "patterns/baselines.hpp"

namespace csaw::baseline {
namespace {

enum Tag : std::uint32_t {
  kTagSnapshot = 1,
  kTagFetch = 2,
  kTagAck = 100,
  kTagImage = 101,
  kTagEmpty = 102,
};

}  // namespace

struct CheckpointedRedis::Impl {
  explicit Impl(std::uint64_t cost)
      : store(cost),
        auditor("auditor", [this](const Frame& f) { return serve(f); }) {}

  // The auditor peer: retains the latest snapshot and serves it back on
  // request (the recovery path).
  Frame serve(const Frame& request) {
    std::scoped_lock lock(aud_mu);
    switch (request.tag) {
      case kTagSnapshot:
        last_image = request.payload;
        ++snapshots;
        return make_frame(kTagAck, {});
      case kTagFetch:
        if (last_image.empty()) return make_frame(kTagEmpty, {});
        return make_frame(kTagImage, last_image);
      default:
        return make_frame(kTagAck, {});
    }
  }

  std::mutex store_mu;
  miniredis::Store store;
  std::mutex aud_mu;
  Bytes last_image;
  std::size_t snapshots = 0;
  Peer auditor;
};

CheckpointedRedis::CheckpointedRedis(std::uint64_t op_cost_ns)
    : impl_(std::make_unique<Impl>(op_cost_ns)) {}

CheckpointedRedis::~CheckpointedRedis() = default;

miniredis::Response CheckpointedRedis::request(
    const miniredis::Command& command) {
  std::scoped_lock lock(impl_->store_mu);
  using Op = miniredis::Command::Op;
  switch (command.op) {
    case Op::kGet: {
      auto v = impl_->store.get(command.key);
      return miniredis::Response{v.has_value(), v.value_or("")};
    }
    case Op::kSet:
      impl_->store.set(command.key, command.value);
      return miniredis::Response{true, ""};
    case Op::kDel:
      return miniredis::Response{impl_->store.del(command.key), ""};
  }
  return miniredis::Response{};
}

Status CheckpointedRedis::checkpoint() {
  Bytes image;
  {
    std::scoped_lock lock(impl_->store_mu);
    image = impl_->store.snapshot();
  }
  auto resp = impl_->auditor.call(make_frame(kTagSnapshot, image),
                                  Deadline::after(std::chrono::seconds(5)));
  if (!resp) return resp.error();
  if (resp->tag != kTagAck) {
    return make_error(Errc::kInternal, "unexpected auditor reply");
  }
  return Status::ok_status();
}

Status CheckpointedRedis::crash_and_resume() {
  {
    // The crash: the serving store loses everything.
    std::scoped_lock lock(impl_->store_mu);
    impl_->store.clear();
  }
  auto resp = impl_->auditor.call(make_frame(kTagFetch, {}),
                                  Deadline::after(std::chrono::seconds(5)));
  if (!resp) return resp.error();
  if (resp->tag == kTagEmpty) return Status::ok_status();
  std::scoped_lock lock(impl_->store_mu);
  return impl_->store.restore(resp->payload);
}

std::size_t CheckpointedRedis::checkpoints_taken() const {
  std::scoped_lock lock(impl_->aud_mu);
  return impl_->snapshots;
}

}  // namespace csaw::baseline
// LOC-COUNT-END(baseline_checkpoint)
