// Quorum replication as a C-Saw pattern (ROADMAP item 3).
//
// S7.1's parallel-sharding fan-out (Fig 6) generalized from "have at least
// one" to "have at least W": the front-end fans a write to a host-chosen
// subset of replicas in parallel, each handoff is the synced Work[r]
// handshake bounded by otherwise[t], and a host-side tally (`CountAck`, the
// same kind of choice block as Fig 5's |_Choose_|) asserts HaveQuorum once
// the configured write quorum W acknowledged. If the fan-out joins without
// quorum -- W replicas crashed, partitioned, or timed out -- the front-end
// complains and the write is NOT acknowledged: a client ack always means at
// least W replicas applied the command.
//
// Reads are the same fan-out with a read subset R (tunable per table /
// per session, compart/consistency.hpp): replicas return HLC-stamped values
// host-side and the service keeps the newest (last-writer-wins by HLC,
// obs/hlc.hpp), repairing any replica that returned an older stamp. The
// epoch leader (lowest live replica of the current epoch) is pinned into
// every write set, so linearizable reads can be served as R={leader} and
// read-your-writes falls through to the leader when no read replica covers
// the client's HLC token.
//
// Required host bindings:
//   block "ChooseSet"{tgt}    -- pops a command, stamps its HLC, picks the
//                                W- or R-subset, resets the ack tally
//   saver "pack_request"      -- serializes the stamped command into n
//   restorer "unpack_request" -- replica intake of n
//   block "H_replica"         -- applies the command at the replica
//   block "CountAck"{HaveQuorum} -- tallies one replica ack; asserts
//                                HaveQuorum at/after the quorum threshold
//   block "complain"          -- quorum failure (the write is rejected)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compart/consistency.hpp"
#include "core/program.hpp"

namespace csaw::patterns {

struct QuorumOptions {
  std::string front_instance = "Fnt";
  std::string replica_prefix = "Rep";  // replicas are Rep1..RepN
  std::size_t replicas = 3;
  std::string junction = "j";
  std::int64_t timeout_ms = 500;
  // Table-level read consistency the deploying service should honor
  // (compart/consistency.hpp); see the header comment for the routing.
  Consistency consistency = Consistency::kEventual;

  std::string choose_set = "ChooseSet";
  std::string pack_request = "pack_request";
  std::string h_replica = "H_replica";
  std::string unpack_request = "unpack_request";
  std::string count_ack = "CountAck";
  std::string complain = "complain";
};

ProgramSpec quorum(const QuorumOptions& options = {});

// Names of the replica instances for the given options.
std::vector<std::string> quorum_replica_names(const QuorumOptions& options);

}  // namespace csaw::patterns
