// Chain replication as a C-Saw pattern (ROADMAP item 3).
//
// The architecture is a relay pipeline built from junctions + synced tables,
// composed out of the same request/ack shapes as Fig 5's sharding front-end:
//
//   Fnt --n--> Rep1 --n--> Rep2 --n--> ... --n--> RepN   (head .. tail)
//
// Every command enters at the front-end, is applied at the head, and is
// relayed hop by hop to the tail. Each hop is the sharding handshake: the
// sender writes the request datum n, asserts the synced Work[succ] prop at
// the successor, and waits on its *local* mirror of that prop; the successor
// retracts the prop (synced) only after its own downstream relay completed.
// The acknowledgement therefore cascades tail -> head -> front: a client ack
// implies the write is applied at EVERY live chain node, which is what makes
// any-replica reads safe for acknowledged data (head-write/tail-read).
//
// Reconfiguration is epoch-fenced and lives in the control plane (the
// service layer): the compiled program is one chain *incarnation*. On
// detector suspicion or a relay timeout (surfaced through `complain`), the
// control plane bumps the runtime's authority epoch and compiles the
// surviving chain as the next incarnation; the epoch fence rejects stale
// writers from the old one. Keeping each incarnation static is what lets
// csaw-lint verify the pattern with zero suppressions: every table key has
// exactly one writer (its upstream neighbor), and every blocking push is
// bounded by otherwise[t].
//
// Required host bindings:
//   block "Ingest"            -- pops a client command, stamps its HLC
//   saver "pack_request"      -- serializes the stamped command into n
//   restorer "unpack_request" -- chain-node intake of n
//   block "H_apply"           -- applies the command at this node's store
//   block "complain"          -- relay failure (control-plane reconfigure)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compart/consistency.hpp"
#include "core/program.hpp"

namespace csaw::patterns {

struct ChainOptions {
  std::string front_instance = "Fnt";
  std::string replica_prefix = "Rep";  // chain nodes are Rep1 (head) .. RepN (tail)
  std::size_t replicas = 3;
  std::string junction = "j";
  std::int64_t timeout_ms = 500;
  // Table-level read consistency the deploying service should honor
  // (compart/consistency.hpp). The relay topology is identical for every
  // level -- the knob routes reads: eventual = any node, read-your-writes =
  // any node whose applied HLC watermark covers the client token,
  // linearizable = through the chain (response from the tail).
  Consistency consistency = Consistency::kEventual;

  std::string ingest = "Ingest";
  std::string pack_request = "pack_request";
  std::string h_apply = "H_apply";
  std::string unpack_request = "unpack_request";
  std::string complain = "complain";
};

ProgramSpec chain(const ChainOptions& options = {});

// Names of the chain-node instances (head first) for the given options.
std::vector<std::string> chain_replica_names(const ChainOptions& options);

}  // namespace csaw::patterns
