#include "patterns/chain.hpp"

#include "patterns/common.hpp"

namespace csaw::patterns {

std::vector<std::string> chain_replica_names(const ChainOptions& o) {
  return replica_instance_names(o.replica_prefix, o.replicas);
}

ProgramSpec chain(const ChainOptions& o) {
  ProgramBuilder p("chain");
  const auto reps = chain_replica_names(o);

  // One config set per hop target keeps every write single-writer: the
  // front-end only ever addresses the head, node i only ever addresses node
  // i+1. (A skip-over re-route inside one program would make downstream
  // keys multi-writer -- exactly what CSAW-W001 exists to flag; re-routing
  // is the control plane's job, via a new epoch + incarnation.)
  p.config("Head", CtValue(CtList{CtValue(addr(reps.front(), o.junction))}));
  p.function(o.complain).body(e_host(o.complain));

  // def tau_Front :: (t) <|   (the Fig 5 front-end shape, chain head as the
  //   | init data n            sole target)
  //   | set Head | for h in Head init prop !Work[h]
  //   |_Ingest_|; save(..., n);
  //   for h in Head .
  //     <| write(n, h); assert [h] Work[h]; wait [] !Work[h]
  //     |> otherwise[t] complain();
  p.type("tau_Front")
      .junction(o.junction)
      .param("t", ParamDecl::Kind::kTime)
      .init_data("n")
      .set_decl("Head")
      .for_init_prop("h", SetRef::named(Symbol("Head")), "Work", false)
      .body(e_seq({
          e_host(o.ingest),
          e_save("n", o.pack_request),
          e_for("h", SetRef::named(Symbol("Head")), Expr::Kind::kSeq,
                e_otherwise(
                    e_txn(e_seq({
                        e_write("n", var("h")),
                        e_assert(pr_idx("Work", var("h")), var("h")),
                        e_wait({}, f_not(f_prop_idx("Work", var("h")))),
                    })),
                    TimeRef::variable(Symbol("t")), e_call(o.complain))),
      }));

  // def tau_Link :: (t, self, selfset, pred, succset) <|
  //   | for s in selfset init prop !Work[s]   (inbound, asserted by pred)
  //   | for d in succset init prop !Work[d]   (outbound wait mirror)
  //   | init prop !Retried | init data n
  //   | guard (or s in selfset: Work[s])
  //   restore(n, ...); |_H_apply_|;
  //   for d in succset .                      (empty at the tail: skip)
  //     <| write(n, d); assert [d] Work[d]; wait [] !Work[d]
  //     |> otherwise[t] complain();
  //   retract [] Retried;
  //   case { Work[self] => retract [pred] Work[self]
  //                        otherwise[t] if !Retried then assert [] Retried;
  //                                     else complain();
  //          reconsider | otherwise => skip }
  //
  // The downstream relay runs BEFORE the upstream ack retraction: node i's
  // Work[self] release tells its predecessor "me and my whole suffix have
  // applied", which is the per-hop ack that cascades tail -> head.
  std::vector<CaseArm> arms;
  arms.push_back(case_arm(
      f_prop_idx("Work", var("self")),
      e_otherwise(
          e_retract(pr_idx("Work", var("self")), var("pred")),
          TimeRef::variable(Symbol("t")),
          e_if(f_not(f_prop("Retried")), e_assert(pr("Retried")),
               e_call(o.complain))),
      Terminator::kReconsider));
  p.type("tau_Link")
      .junction(o.junction)
      .param("t", ParamDecl::Kind::kTime)
      .param("self", ParamDecl::Kind::kJunction)
      .param("selfset", ParamDecl::Kind::kSet)
      .param("pred", ParamDecl::Kind::kJunction)
      .param("succset", ParamDecl::Kind::kSet)
      .for_init_prop("s", SetRef::named(Symbol("selfset")), "Work", false)
      .for_init_prop("d", SetRef::named(Symbol("succset")), "Work", false)
      .init_prop("Retried", false)
      .init_data("n")
      .guard(f_for(Formula::Kind::kOr, "s", "selfset",
                   f_prop_idx("Work", var("s"))))
      .auto_schedule()
      .body(e_seq({
          e_restore("n", o.unpack_request),
          e_host(o.h_apply),
          e_for("d", SetRef::named(Symbol("succset")), Expr::Kind::kSeq,
                e_otherwise(
                    e_txn(e_seq({
                        e_write("n", var("d")),
                        e_assert(pr_idx("Work", var("d")), var("d")),
                        e_wait({}, f_not(f_prop_idx("Work", var("d")))),
                    })),
                    TimeRef::variable(Symbol("t")), e_call(o.complain))),
          e_retract(pr("Retried")),
          e_case(std::move(arms), e_skip()),
      }));

  p.instance(o.front_instance, "tau_Front",
             {{o.junction, {CtValue(o.timeout_ms)}}});
  for (std::size_t i = 0; i < reps.size(); ++i) {
    const CtValue self(addr(reps[i], o.junction));
    const CtValue pred(i == 0 ? addr(o.front_instance, o.junction)
                              : addr(reps[i - 1], o.junction));
    CtList succ;
    if (i + 1 < reps.size()) succ.emplace_back(addr(reps[i + 1], o.junction));
    p.instance(reps[i], "tau_Link",
               {{o.junction,
                 {CtValue(o.timeout_ms), self, CtValue(CtList{self}), pred,
                  CtValue(succ)}}});
  }

  std::vector<ExprPtr> starts{e_start(inst(o.front_instance))};
  for (const auto& r : reps) starts.push_back(e_start(inst(r)));
  p.main_body(e_par(std::move(starts)));
  return p.build();
}

}  // namespace csaw::patterns
