// Interned string symbols.
//
// Every name in a C-Saw program -- propositions, data keys, instances,
// junctions, sets, parameters -- is interned into a process-wide table so
// that the interpreter compares names by integer id instead of string
// contents. Interning is thread-safe; symbol ids are stable for the lifetime
// of the process.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <string_view>

namespace csaw {

class Symbol {
 public:
  // The default-constructed symbol is the distinguished invalid symbol; it
  // never compares equal to any interned symbol.
  constexpr Symbol() = default;

  // Interns `name` (or finds the existing entry) and returns its symbol.
  explicit Symbol(std::string_view name);

  [[nodiscard]] constexpr bool valid() const { return id_ != kInvalid; }
  [[nodiscard]] constexpr std::uint32_t id() const { return id_; }

  // The interned spelling. Invalid symbols print as "<invalid>".
  [[nodiscard]] const std::string& str() const;

  friend constexpr auto operator<=>(Symbol, Symbol) = default;

 private:
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t id_ = kInvalid;
};

// Convenience literal-ish spelling: sym("Work").
inline Symbol sym(std::string_view name) { return Symbol(name); }

std::ostream& operator<<(std::ostream& os, Symbol s);

}  // namespace csaw

template <>
struct std::hash<csaw::Symbol> {
  std::size_t operator()(csaw::Symbol s) const noexcept {
    return std::hash<std::uint32_t>{}(s.id());
  }
};
