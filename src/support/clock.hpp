// Time utilities.
//
// All runtime deadlines ('otherwise[t]') are expressed in nanoseconds on the
// steady clock. Benches that reproduce the paper's 120-second traces run a
// *compressed* tick loop: one paper-second is mapped to a configurable number
// of real milliseconds (see bench/bench_common.hpp), which preserves the
// shapes of throughput-vs-time curves.
#pragma once

#include <chrono>
#include <cstdint>

namespace csaw {

using Nanos = std::chrono::nanoseconds;
using Millis = std::chrono::milliseconds;
using SteadyTime = std::chrono::steady_clock::time_point;

inline SteadyTime steady_now() { return std::chrono::steady_clock::now(); }

inline double to_ms(Nanos d) {
  return std::chrono::duration<double, std::milli>(d).count();
}

// Steady clock as a raw nanosecond count (for wire-encodable timestamps
// that are only ever compared within the process that minted them).
inline std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<Nanos>(steady_now().time_since_epoch())
          .count());
}

// The calling thread's CPU time (CLOCK_THREAD_CPUTIME_ID). Does not advance
// while the thread is blocked, so deltas around a body run measure pure
// compute and never double-count waiting.
std::uint64_t thread_cpu_ns();

// A deadline that may be infinite. Composable: nested `otherwise` scopes take
// the tighter of the two deadlines.
class Deadline {
 public:
  // Infinite deadline.
  Deadline() = default;

  static Deadline after(Nanos d) { return Deadline(steady_now() + d); }
  static Deadline at(SteadyTime t) { return Deadline(t); }
  static Deadline infinite() { return Deadline(); }

  [[nodiscard]] bool is_infinite() const { return !finite_; }
  [[nodiscard]] bool expired() const { return finite_ && steady_now() >= when_; }
  [[nodiscard]] SteadyTime when() const { return when_; }

  // The tighter of two deadlines.
  [[nodiscard]] Deadline min(Deadline other) const {
    if (is_infinite()) return other;
    if (other.is_infinite()) return *this;
    return Deadline(when_ < other.when_ ? when_ : other.when_);
  }

  // Time remaining; zero if expired, a large value if infinite.
  [[nodiscard]] Nanos remaining() const;

 private:
  explicit Deadline(SteadyTime when) : finite_(true), when_(when) {}

  bool finite_ = false;
  SteadyTime when_{};
};

}  // namespace csaw
