#include "support/rng.hpp"

#include <cmath>

#include "support/check.hpp"

namespace csaw {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four words via splitmix64 per the xoshiro authors' advice.
  for (auto& word : s_) word = splitmix64(seed);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  CSAW_CHECK(bound > 0) << "below(0)";
  // Lemire's nearly-divisionless bounded sampling.
  auto mul = static_cast<unsigned __int128>(next()) * bound;
  auto low = static_cast<std::uint64_t>(mul);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      mul = static_cast<unsigned __int128>(next()) * bound;
      low = static_cast<std::uint64_t>(mul);
    }
  }
  return static_cast<std::uint64_t>(mul >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  CSAW_CHECK(lo <= hi) << "empty range";
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

double Rng::uniform() {
  // 53 random bits into [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Zipf::Zipf(std::size_t n, double s) {
  CSAW_CHECK(n > 0) << "Zipf over empty domain";
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform();
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::uint64_t djb2(std::string_view data) {
  std::uint64_t hash = 5381;
  for (unsigned char c : data) hash = hash * 33 + c;
  return hash;
}

std::uint64_t fnv1a(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace csaw
