#include "support/clock.hpp"

#include <ctime>

namespace csaw {

std::uint64_t thread_cpu_ns() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

Nanos Deadline::remaining() const {
  if (is_infinite()) return Nanos::max();
  const auto now = steady_now();
  if (now >= when_) return Nanos::zero();
  return std::chrono::duration_cast<Nanos>(when_ - now);
}

}  // namespace csaw
