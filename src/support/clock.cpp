#include "support/clock.hpp"

namespace csaw {

Nanos Deadline::remaining() const {
  if (is_infinite()) return Nanos::max();
  const auto now = steady_now();
  if (now >= when_) return Nanos::zero();
  return std::chrono::duration_cast<Nanos>(when_ - now);
}

}  // namespace csaw
