#include "support/result.hpp"

namespace csaw {

const char* errc_name(Errc c) {
  switch (c) {
    case Errc::kInvalidProgram: return "invalid-program";
    case Errc::kUndefinedName: return "undefined-name";
    case Errc::kUndefData: return "undef-data";
    case Errc::kTypeMismatch: return "type-mismatch";
    case Errc::kDecode: return "decode";
    case Errc::kTimeout: return "timeout";
    case Errc::kGuardRejected: return "guard-rejected";
    case Errc::kUnreachable: return "unreachable";
    case Errc::kLifecycle: return "lifecycle";
    case Errc::kVerifyFailed: return "verify-failed";
    case Errc::kHostFailure: return "host-failure";
    case Errc::kExhausted: return "exhausted";
    case Errc::kInternal: return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out = "[";
  out += errc_name(code);
  out += "] ";
  out += message;
  return out;
}

}  // namespace csaw
