// Statistics used by the evaluation harness: running mean/stddev over the
// paper's 20-repetition protocol, latency CDFs, and per-tick time series.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace csaw {

// Welford's online mean/variance.
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Sample collector with quantiles and CDF emission, as redis-benchmark does
// for the paper's latency distribution figures (Fig 25c / 26b).
class Cdf {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  // Quantile q in [0,1]; nearest-rank.
  double quantile(double q);
  double mean() const;

  struct Point {
    double value;       // x: e.g. latency in ms
    double cumulative;  // y: P(X <= value)
  };
  // `resolution` evenly spaced probability steps.
  std::vector<Point> points(std::size_t resolution = 200);

 private:
  void sort_if_needed();
  std::vector<double> samples_;
  bool sorted_ = true;
};

// A named series of per-tick values (e.g. KQueries/s per simulated second).
struct TimeSeries {
  std::string name;
  std::vector<double> values;

  void add(double v) { values.push_back(v); }
  [[nodiscard]] double total() const;
};

// Aggregates repeated runs of the same series into mean +/- stddev per tick,
// reproducing the paper's "averaged results, bars show standard deviation".
class SeriesAggregate {
 public:
  void add_run(const std::vector<double>& run);
  [[nodiscard]] std::size_t ticks() const;
  [[nodiscard]] double mean_at(std::size_t t) const;
  [[nodiscard]] double stddev_at(std::size_t t) const;
  [[nodiscard]] std::size_t runs() const { return runs_; }

 private:
  std::vector<RunningStat> per_tick_;
  std::size_t runs_ = 0;
};

// Fixed-width column table printer for bench output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  // Renders with aligned columns to the returned string.
  [[nodiscard]] std::string render() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace csaw
