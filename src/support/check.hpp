// Invariant checking and panic support.
//
// CSAW_CHECK is used for programmer invariants that must hold regardless of
// input (contract violations abort the process). Recoverable conditions use
// csaw::Result instead (see result.hpp).
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace csaw {

// Prints `message` with source location to stderr and aborts.
[[noreturn]] void panic(std::string_view message, const char* file, int line);

namespace detail {

// Collects streamed context for CSAW_CHECK failure messages.
class PanicStream {
 public:
  PanicStream(const char* cond, const char* file, int line)
      : file_(file), line_(line) {
    os_ << "CHECK failed: " << cond;
  }
  [[noreturn]] ~PanicStream() { panic(os_.str(), file_, line_); }

  template <typename T>
  PanicStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  std::ostringstream os_;
  const char* file_;
  int line_;
};

}  // namespace detail
}  // namespace csaw

#define CSAW_CHECK(cond)                                           \
  if (cond) {                                                      \
  } else                                                           \
    ::csaw::detail::PanicStream(#cond, __FILE__, __LINE__) << ": "

#define CSAW_PANIC(msg) ::csaw::panic((msg), __FILE__, __LINE__)
