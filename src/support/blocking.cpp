#include "support/blocking.hpp"

namespace csaw {

namespace {
thread_local BlockingHooks t_hooks;
thread_local int t_depth = 0;
}  // namespace

BlockingHooks& thread_blocking_hooks() { return t_hooks; }

ScopedBlockingRegion::ScopedBlockingRegion() {
  if (t_depth++ == 0 && t_hooks.enter != nullptr) {
    fired_ = true;
    t_hooks.enter(t_hooks.ctx);
  }
}

ScopedBlockingRegion::~ScopedBlockingRegion() {
  --t_depth;
  if (fired_ && t_hooks.exit != nullptr) t_hooks.exit(t_hooks.ctx);
}

}  // namespace csaw
