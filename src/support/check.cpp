#include "support/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace csaw {

void panic(std::string_view message, const char* file, int line) {
  std::fprintf(stderr, "[csaw panic] %s:%d: %.*s\n", file, line,
               static_cast<int>(message.size()), message.data());
  std::fflush(stderr);
  std::abort();
}

}  // namespace csaw
