// Deterministic random number generation and the hash functions used by the
// paper's workloads.
//
// All workload generators seed explicitly so that benches and tests are
// reproducible run-to-run (the paper averages 20 repetitions; we re-seed per
// repetition with rep-derived seeds).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace csaw {

// xoshiro256** by Blackman & Vigna: fast, high quality, tiny state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next();

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  // Uniform in [0, 1).
  double uniform();

  // True with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

// Zipf-distributed sampler over [0, n) with exponent `s`, via a precomputed
// inverse-CDF table. Used for the paper's "90% of requests on 10% of the
// keys" read-skew workloads (S10.1 Caching).
class Zipf {
 public:
  Zipf(std::size_t n, double s);

  std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

// djb2 -- the string hash the paper uses for key-based sharding (S10.1,
// citing Yigit's hash page).
std::uint64_t djb2(std::string_view data);

// FNV-1a 64-bit, used for 5-tuple packet steering.
std::uint64_t fnv1a(const void* data, std::size_t len);

}  // namespace csaw
