#include "support/io.hpp"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace csaw::io {
namespace {

Error errno_error(const std::string& what) {
  return make_error(Errc::kHostFailure, what + ": " + std::strerror(errno));
}

int open_retry(const char* path, int flags, mode_t mode = 0) {
  int fd;
  do {
    fd = ::open(path, flags, mode);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  } while (fd < 0 && errno == EINTR);
  return fd;
}

void close_retry(int fd) {
  // POSIX leaves fd state unspecified after EINTR on close; on Linux the fd
  // is closed regardless, so a single call is the safe form.
  ::close(fd);
}

std::string dirname_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    const auto put = ::write(fd, p, n);
    if (put > 0) {
      p += put;
      n -= static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return errno_error("write");
  }
  return Status::ok_status();
}

Status sync_fd(int fd) {
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return errno_error("fsync");
  return Status::ok_status();
}

Status fsync_dir(const std::string& dir) {
  const int fd = open_retry(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return errno_error("open dir '" + dir + "'");
  auto st = sync_fd(fd);
  close_retry(fd);
  return st;
}

Status write_file_atomic(const std::string& path, const void* data,
                        std::size_t n) {
  // The temp name lives in the target's directory so the rename cannot
  // cross filesystems, and carries the pid so concurrent writers (two
  // processes sharing a durability dir) never collide.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = open_retry(tmp.c_str(),
                            O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return errno_error("open '" + tmp + "'");
  auto st = write_all(fd, data, n);
  if (st.ok()) st = sync_fd(fd);
  close_retry(fd);
  if (!st.ok()) {
    (void)::unlink(tmp.c_str());
    return st;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    auto err = errno_error("rename '" + tmp + "' -> '" + path + "'");
    (void)::unlink(tmp.c_str());
    return err;
  }
  return fsync_dir(dirname_of(path));
}

Status write_file_atomic(const std::string& path, const std::string& data) {
  return write_file_atomic(path, data.data(), data.size());
}

Result<std::vector<std::uint8_t>> read_file(const std::string& path) {
  const int fd = open_retry(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno_error("open '" + path + "'");
  std::vector<std::uint8_t> out;
  std::uint8_t buf[1 << 16];
  while (true) {
    const auto got = ::read(fd, buf, sizeof(buf));
    if (got > 0) {
      out.insert(out.end(), buf, buf + got);
      continue;
    }
    if (got == 0) break;
    if (errno == EINTR) continue;
    auto err = errno_error("read '" + path + "'");
    close_retry(fd);
    return err;
  }
  close_retry(fd);
  return out;
}

Status ensure_dir(const std::string& dir) {
  if (dir.empty()) return make_error(Errc::kHostFailure, "empty dir path");
  // Create each prefix in turn; EEXIST at any level is success.
  for (std::size_t i = 1; i <= dir.size(); ++i) {
    if (i != dir.size() && dir[i] != '/') continue;
    const std::string prefix = dir.substr(0, i);
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return errno_error("mkdir '" + prefix + "'");
    }
  }
  return Status::ok_status();
}

Status remove_file(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return errno_error("unlink '" + path + "'");
  }
  return Status::ok_status();
}

}  // namespace csaw::io
