// Minimal expected-style result type (C++20 predates std::expected).
//
// Recoverable failures -- malformed DSL programs, serialization mismatches,
// runtime coordination failures -- are reported as csaw::Error values, not
// exceptions, so that the interpreter's failure-handling ('otherwise',
// transactional blocks) can route them deterministically.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "support/check.hpp"

namespace csaw {

enum class Errc {
  kInvalidProgram,   // static validation of a DSL program failed
  kUndefinedName,    // reference to an undeclared symbol
  kUndefData,        // write/restore of `undef` data (see paper S6)
  kTypeMismatch,     // serialization type tag mismatch
  kDecode,           // malformed byte stream
  kTimeout,          // deadline expired (otherwise[t])
  kGuardRejected,    // call()'s junction evaluated its guard to false
  kUnreachable,      // target instance stopped/crashed/partitioned
  kLifecycle,        // start of a started instance, stop of a stopped one
  kVerifyFailed,     // `verify` formula was false (or undecidable)
  kHostFailure,      // host block reported failure
  kExhausted,        // retry/reconsider budget exhausted
  kInternal,
};

const char* errc_name(Errc c);

struct Error {
  Errc code = Errc::kInternal;
  std::string message;

  std::string to_string() const;
};

inline Error make_error(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : state_(std::move(error)) {}  // NOLINT

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return ok(); }

  T& value() & {
    CSAW_CHECK(ok()) << error().to_string();
    return std::get<T>(state_);
  }
  const T& value() const& {
    CSAW_CHECK(ok()) << error().to_string();
    return std::get<T>(state_);
  }
  T&& value() && {
    CSAW_CHECK(ok()) << error().to_string();
    return std::get<T>(std::move(state_));
  }

  const Error& error() const {
    CSAW_CHECK(!ok()) << "error() on ok Result";
    return std::get<Error>(state_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Error> state_;
};

// Result<void> analogue.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(Error error) : error_(std::move(error)) {}  // NOLINT

  static Status ok_status() { return Status(); }

  [[nodiscard]] bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    CSAW_CHECK(!ok()) << "error() on ok Status";
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

#define CSAW_TRY(expr)                          \
  do {                                          \
    auto csaw_try_status_ = (expr);             \
    if (!csaw_try_status_.ok()) return csaw_try_status_.error(); \
  } while (false)

}  // namespace csaw
