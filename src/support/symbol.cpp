#include "support/symbol.hpp"

#include <deque>
#include <mutex>
#include <ostream>
#include <shared_mutex>
#include <unordered_map>

namespace csaw {
namespace {

// The intern table. A deque keeps string addresses stable so `str()` can
// return references without holding the lock.
struct InternTable {
  std::shared_mutex mu;
  std::unordered_map<std::string_view, std::uint32_t> index;
  std::deque<std::string> spellings;

  static InternTable& instance() {
    static InternTable* table = new InternTable();  // intentionally leaked
    return *table;
  }

  std::uint32_t intern(std::string_view name) {
    {
      std::shared_lock lock(mu);
      if (auto it = index.find(name); it != index.end()) return it->second;
    }
    std::unique_lock lock(mu);
    if (auto it = index.find(name); it != index.end()) return it->second;
    spellings.emplace_back(name);
    const auto id = static_cast<std::uint32_t>(spellings.size() - 1);
    index.emplace(spellings.back(), id);
    return id;
  }

  const std::string& spelling(std::uint32_t id) {
    std::shared_lock lock(mu);
    return spellings[id];
  }
};

}  // namespace

Symbol::Symbol(std::string_view name) : id_(InternTable::instance().intern(name)) {}

const std::string& Symbol::str() const {
  static const std::string kInvalidSpelling = "<invalid>";
  if (!valid()) return kInvalidSpelling;
  return InternTable::instance().spelling(id_);
}

std::ostream& operator<<(std::ostream& os, Symbol s) { return os << s.str(); }

}  // namespace csaw
