// Durable file I/O primitives.
//
// Everything the crash-recovery layer writes must survive a kill -9 at any
// instant, which on POSIX means three disciplines bundled here so callers
// cannot forget one:
//   * every read/write retries EINTR (a stray signal must not turn into a
//     torn record or a spurious failure);
//   * visible files are replaced atomically (write to a temp name in the
//     same directory, fsync the fd, rename over the target) so readers see
//     either the old bytes or the new bytes, never a prefix;
//   * renames and creates are followed by an fsync of the containing
//     directory, without which the *name* of a fully-synced file can still
//     vanish in a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/result.hpp"

namespace csaw::io {

// EINTR-safe full write to an open fd; kHostFailure on any hard error.
Status write_all(int fd, const void* data, std::size_t n);

// fsync(fd) retrying EINTR.
Status sync_fd(int fd);

// Opens `dir`, fsyncs it and closes it, making renames/creates inside it
// durable. Directories that cannot be opened for reading report the error.
Status fsync_dir(const std::string& dir);

// Atomically replaces `path` with `data`: writes `path`+unique-suffix in
// the same directory, fsyncs the file, renames it over `path`, and fsyncs
// the directory. After a crash at any point, `path` holds either the old
// content or the new content in full.
Status write_file_atomic(const std::string& path, const void* data,
                         std::size_t n);
Status write_file_atomic(const std::string& path, const std::string& data);

// Whole-file read (EINTR-safe); kHostFailure if the file cannot be opened.
Result<std::vector<std::uint8_t>> read_file(const std::string& path);

// mkdir -p for one level-at-a-time absolute or relative paths; existing
// directories are fine.
Status ensure_dir(const std::string& dir);

// Removes a file if it exists (missing is not an error).
Status remove_file(const std::string& path);

}  // namespace csaw::io
