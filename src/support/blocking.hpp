// Thread-local blocking-region hooks.
//
// The event-driven scheduler (compart/sched) runs junction bodies on a
// fixed worker pool. A body that parks for a long stretch -- `wait [t] F`
// on its KV table, a push awaiting a remote ack, a stop() draining another
// instance -- would otherwise pin a worker and starve runnable junctions.
// Layers below the scheduler (kv, compart) cannot depend on it, so they
// announce blocking through these thread-local hooks instead: the scheduler
// installs hooks on its worker threads, and everywhere else the hooks are
// unset and ScopedBlockingRegion is a no-op (host threads may block freely).
//
// Contract for hook implementations: enter/exit must not call back into the
// announcing subsystem (the announcer may hold its own locks, e.g. the KV
// table mutex around a condvar wait).
#pragma once

namespace csaw {

struct BlockingHooks {
  void (*enter)(void* ctx) = nullptr;
  void (*exit)(void* ctx) = nullptr;
  void* ctx = nullptr;
};

// The calling thread's hooks (both null outside scheduler workers).
BlockingHooks& thread_blocking_hooks();

// Marks the enclosing scope as potentially-blocking. Re-entrant: nested
// regions only fire the hooks at the outermost level.
class ScopedBlockingRegion {
 public:
  ScopedBlockingRegion();
  ~ScopedBlockingRegion();
  ScopedBlockingRegion(const ScopedBlockingRegion&) = delete;
  ScopedBlockingRegion& operator=(const ScopedBlockingRegion&) = delete;

 private:
  bool fired_ = false;
};

}  // namespace csaw
