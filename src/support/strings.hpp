// Small string helpers shared across modules.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace csaw {

template <typename Range, typename Fn>
std::string join_map(const Range& range, std::string_view sep, Fn&& fn) {
  std::ostringstream os;
  bool first = true;
  for (const auto& item : range) {
    if (!first) os << sep;
    first = false;
    os << fn(item);
  }
  return os.str();
}

template <typename Range>
std::string join(const Range& range, std::string_view sep) {
  return join_map(range, sep, [](const auto& x) { return x; });
}

inline std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace csaw
