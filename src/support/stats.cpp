#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "support/check.hpp"

namespace csaw {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Cdf::sort_if_needed() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::quantile(double q) {
  CSAW_CHECK(!samples_.empty()) << "quantile of empty CDF";
  CSAW_CHECK(q >= 0.0 && q <= 1.0) << "quantile out of range: " << q;
  sort_if_needed();
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

std::vector<Cdf::Point> Cdf::points(std::size_t resolution) {
  std::vector<Point> out;
  if (samples_.empty()) return out;
  sort_if_needed();
  out.reserve(resolution);
  for (std::size_t i = 1; i <= resolution; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(resolution);
    out.push_back(Point{quantile(q), q});
  }
  return out;
}

double TimeSeries::total() const {
  return std::accumulate(values.begin(), values.end(), 0.0);
}

void SeriesAggregate::add_run(const std::vector<double>& run) {
  if (run.size() > per_tick_.size()) per_tick_.resize(run.size());
  for (std::size_t i = 0; i < run.size(); ++i) per_tick_[i].add(run[i]);
  ++runs_;
}

std::size_t SeriesAggregate::ticks() const { return per_tick_.size(); }

double SeriesAggregate::mean_at(std::size_t t) const {
  CSAW_CHECK(t < per_tick_.size()) << "tick out of range";
  return per_tick_[t].mean();
}

double SeriesAggregate::stddev_at(std::size_t t) const {
  CSAW_CHECK(t < per_tick_.size()) << "tick out of range";
  return per_tick_[t].stddev();
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  CSAW_CHECK(cells.size() == headers_.size())
      << "row width " << cells.size() << " != header width " << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace csaw
