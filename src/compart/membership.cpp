#include "compart/membership.hpp"

#include "serdes/registry.hpp"
#include "support/rng.hpp"

namespace csaw {

namespace {
constexpr const char* kWireType = "compart.BucketMap";
}  // namespace

std::size_t BucketMap::bucket_of(std::string_view key,
                                 std::size_t buckets) {
  if (buckets == 0) return 0;
  return static_cast<std::size_t>(djb2(key) % buckets);
}

std::size_t BucketMap::bucket_of(std::string_view key) const {
  return bucket_of(key, owners.size());
}

const std::string& BucketMap::owner_of(std::string_view key) const {
  static const std::string kEmpty;
  if (owners.empty()) return kEmpty;
  return owners[bucket_of(key)];
}

std::vector<std::size_t> BucketMap::buckets_of(std::string_view owner) const {
  std::vector<std::size_t> out;
  for (std::size_t b = 0; b < owners.size(); ++b) {
    if (owners[b] == owner) out.push_back(b);
  }
  return out;
}

BucketMap BucketMap::even(std::uint64_t version,
                          const std::vector<std::string>& owners,
                          std::size_t buckets) {
  BucketMap m;
  m.version = version;
  m.owners.resize(buckets);
  if (owners.empty()) return m;
  for (std::size_t b = 0; b < buckets; ++b) {
    m.owners[b] = owners[b % owners.size()];
  }
  return m;
}

Bytes BucketMap::encode() const {
  return pack(kWireType, *this).bytes;
}

Result<BucketMap> BucketMap::decode(const Bytes& bytes) {
  SerializedValue sv{Symbol(kWireType), bytes};
  return unpack<BucketMap>(kWireType, sv);
}

}  // namespace csaw
