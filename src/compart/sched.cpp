#include "compart/sched.hpp"

#include <algorithm>

#include "obs/profile.hpp"
#include "support/blocking.hpp"
#include "support/check.hpp"

namespace csaw {
namespace {

// Blocked-time attribution: the entity whose eval is running on this worker
// and the steady timestamp of the outermost blocking-region entry. Written
// only by the owning worker thread.
thread_local Scheduler::Entity* t_running_entity = nullptr;
thread_local std::uint64_t t_block_started_ns = 0;

}  // namespace

Scheduler::Scheduler(SchedulerOptions options, obs::Metrics* metrics)
    : options_(options),
      tick_(std::chrono::duration_cast<Nanos>(options.timer_resolution)),
      queue_head_(&stub_),
      queue_tail_(&stub_) {
  if (tick_ <= Nanos::zero()) tick_ = Millis{1};
  if (metrics != nullptr) {
    wakeups_ = &metrics->counter("sched_wakeups");
    coalesced_ = &metrics->counter("sched_wake_coalesced");
    evals_ = &metrics->counter("sched_evals");
    spurious_ = &metrics->counter("sched_evals_spurious");
    timer_fires_ = &metrics->counter("sched_timer_fires");
    ready_depth_ = &metrics->gauge("sched_ready_depth");
    workers_gauge_ = &metrics->gauge("sched_workers");
    workers_blocked_ = &metrics->gauge("sched_workers_blocked");
    workers_busy_ = &metrics->gauge("sched_workers_busy");
    wake_to_eval_ = &metrics->histogram("sched_wake_to_eval_ns");
    queue_delay_us_ = &metrics->histogram("sched_queue_delay_us");
    body_cpu_us_ = &metrics->histogram("sched_body_cpu_us");
  }
}

Scheduler::~Scheduler() { stop(); }

int Scheduler::resolve_workers(int requested) {
  if (requested > 0) return requested;
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  return std::max(2, std::min(8, hw));
}

Scheduler::Entity* Scheduler::add_entity(std::string name,
                                         std::function<EvalResult()> eval) {
  std::scoped_lock lock(entities_mu_);
  entities_.push_back(
      std::make_unique<Entity>(std::move(name), std::move(eval)));
  return entities_.back().get();
}

void Scheduler::start() {
  bool expected = false;
  if (!started_.compare_exchange_strong(expected, true)) return;
  base_workers_ = resolve_workers(options_.workers);
  {
    std::scoped_lock lock(spawn_mu_);
    for (int i = 0; i < base_workers_; ++i) spawn_worker_locked();
  }
  timer_thread_ = std::thread([this] { timer_main(); });
}

void Scheduler::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    // A second stop() must still not return while threads run; the first
    // caller joins them, and joining twice would be UB. stop() is only
    // called from the runtime's stop path and the destructor, which the
    // runtime serializes, so just bail.
    return;
  }
  if (!started_.load()) return;
  {
    std::scoped_lock lock(park_mu_);
    park_cv_.notify_all();
  }
  {
    std::scoped_lock lock(timer_mu_);
    timer_cv_.notify_all();
  }
  // Barrier: any in-flight spare spawn holds spawn_mu_; once we acquire it
  // no further spawns can start (on_worker_block re-checks stopping_ under
  // the lock), so the thread vector below is stable.
  { std::scoped_lock lock(spawn_mu_); }
  for (auto& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
}

// --- ready queue ----------------------------------------------------------
// Vyukov intrusive MPSC: producers exchange the head pointer (wait-free),
// then link the previous head to the new node. A consumer that observes
// tail != head with a null next link has caught a producer between those
// two stores; the link is imminent, so it spins (bounded by the producer's
// two instructions).

void Scheduler::queue_push(Entity* entity) {
  entity->next.store(nullptr, std::memory_order_relaxed);
  Entity* prev = queue_head_.exchange(entity, std::memory_order_acq_rel);
  prev->next.store(entity, std::memory_order_release);
}

Scheduler::Entity* Scheduler::queue_pop_locked() {
  Entity* tail = queue_tail_;
  Entity* next = tail->next.load(std::memory_order_acquire);
  if (tail == &stub_) {
    if (next == nullptr) return nullptr;  // empty (or push still in flight)
    queue_tail_ = next;
    tail = next;
    next = tail->next.load(std::memory_order_acquire);
  }
  if (next != nullptr) {
    queue_tail_ = next;
    return tail;
  }
  if (tail != queue_head_.load(std::memory_order_acquire)) {
    do {  // producer mid-push; the link store is imminent
      next = tail->next.load(std::memory_order_acquire);
    } while (next == nullptr);
    queue_tail_ = next;
    return tail;
  }
  // Single element: re-push the stub behind it so the list stays closed.
  queue_push(&stub_);
  do {
    next = tail->next.load(std::memory_order_acquire);
  } while (next == nullptr);
  queue_tail_ = next;
  return tail;
}

void Scheduler::enqueue_ready(Entity* entity) {
  queue_push(entity);
  // seq_cst: pairs with the seq_cst sleepers_ increment in idle_park so
  // either the producer sees the sleeper or the sleeper sees the entry.
  ready_count_.fetch_add(1, std::memory_order_seq_cst);
  if (ready_depth_ != nullptr) ready_depth_->add();
}

void Scheduler::maybe_unpark() {
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  std::scoped_lock lock(park_mu_);
  ++park_signals_;
  park_cv_.notify_one();
}

void Scheduler::idle_park() {
  sleepers_.fetch_add(1, std::memory_order_seq_cst);
  if (ready_count_.load(std::memory_order_seq_cst) > 0 || stopping_.load()) {
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  {
    std::unique_lock lock(park_mu_);
    park_cv_.wait(lock,
                  [&] { return park_signals_ > 0 || stopping_.load(); });
    if (park_signals_ > 0) --park_signals_;
  }
  sleepers_.fetch_sub(1, std::memory_order_relaxed);
}

// --- wakeups --------------------------------------------------------------

void Scheduler::wake(Entity* entity) {
  std::uint32_t s = entity->state.load(std::memory_order_acquire);
  while (true) {
    switch (s) {
      case kIdle:
        if (entity->state.compare_exchange_weak(s, kQueued,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
          entity->wake_ns.store(
              steady_now().time_since_epoch().count(),
              std::memory_order_relaxed);
          if (wakeups_ != nullptr) wakeups_->add();
          enqueue_ready(entity);
          maybe_unpark();
          return;
        }
        break;  // s reloaded; retry
      case kRunning:
        if (entity->state.compare_exchange_weak(s, kRunningRearm,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
          if (coalesced_ != nullptr) coalesced_->add();
          return;
        }
        break;
      default:  // kQueued, kRunningRearm: an eval is already owed
        if (coalesced_ != nullptr) coalesced_->add();
        return;
    }
  }
}

void Scheduler::run_entity(Entity* entity) {
  entity->state.store(kRunning, std::memory_order_release);
  obs::JunctionProfile* prof = entity->prof;
  const auto woke = entity->wake_ns.exchange(0, std::memory_order_relaxed);
  if (woke != 0 && (wake_to_eval_ != nullptr || prof != nullptr)) {
    const auto now = steady_now().time_since_epoch().count();
    if (now > woke) {
      const auto delay = static_cast<std::uint64_t>(now - woke);
      if (wake_to_eval_ != nullptr) wake_to_eval_->record(delay);
      if (queue_delay_us_ != nullptr) queue_delay_us_->record(delay / 1000);
      if (prof != nullptr) prof->queue_delay_ns.record(delay);
    }
  }
  if (evals_ != nullptr) evals_->add();
  if (workers_busy_ != nullptr) workers_busy_->add();
  entity->eval_count.fetch_add(1, std::memory_order_relaxed);
  // Thread-CPU delta around the eval: pure compute, since the CPU clock
  // does not advance while the body blocks (blocked time is attributed
  // separately via the blocking hooks below).
  const bool timed = prof != nullptr || body_cpu_us_ != nullptr;
  const std::uint64_t cpu0 = timed ? thread_cpu_ns() : 0;
  t_running_entity = entity;
  const EvalResult result = entity->eval();
  t_running_entity = nullptr;
  if (timed) {
    const std::uint64_t cpu = thread_cpu_ns() - cpu0;
    if (body_cpu_us_ != nullptr) body_cpu_us_->record(cpu / 1000);
    if (prof != nullptr) {
      prof->evals.fetch_add(1, std::memory_order_relaxed);
      prof->body_cpu_ns.fetch_add(cpu, std::memory_order_relaxed);
      prof->body_cpu_hist_ns.record(cpu);
    }
  }
  if (workers_busy_ != nullptr) workers_busy_->sub();
  if (result == EvalResult::kSpurious && spurious_ != nullptr) {
    spurious_->add();
  }
  std::uint32_t expected = kRunning;
  const bool rearm = result == EvalResult::kRearm && !stopping_.load();
  if (!rearm && entity->state.compare_exchange_strong(
                    expected, kIdle, std::memory_order_acq_rel)) {
    return;
  }
  // Either the eval asked to run again or a wake landed mid-eval
  // (kRunningRearm). Only the owning worker leaves the running states, so
  // a plain store is safe; requeue at the back for fairness.
  entity->state.store(kQueued, std::memory_order_release);
  enqueue_ready(entity);
  maybe_unpark();
}

// --- workers ---------------------------------------------------------------

void Scheduler::spawn_worker_locked() {
  worker_threads_.emplace_back([this] { worker_main(); });
  ++total_spawned_;
  if (workers_gauge_ != nullptr) workers_gauge_->set(total_spawned_);
}

void Scheduler::worker_main() {
  BlockingHooks& hooks = thread_blocking_hooks();
  hooks.enter = [](void* ctx) {
    static_cast<Scheduler*>(ctx)->on_worker_block();
  };
  hooks.exit = [](void* ctx) {
    static_cast<Scheduler*>(ctx)->on_worker_unblock();
  };
  hooks.ctx = this;
  while (true) {
    Entity* entity = nullptr;
    {
      std::scoped_lock lock(pop_mu_);
      entity = queue_pop_locked();
    }
    if (entity == nullptr) {
      if (stopping_.load(std::memory_order_acquire)) break;
      idle_park();
      continue;
    }
    ready_count_.fetch_sub(1, std::memory_order_seq_cst);
    if (ready_depth_ != nullptr) ready_depth_->sub();
    run_entity(entity);
  }
  hooks = BlockingHooks{};
}

void Scheduler::on_worker_block() {
  blocked_.fetch_add(1, std::memory_order_seq_cst);
  if (workers_blocked_ != nullptr) workers_blocked_->add();
  if (t_running_entity != nullptr && t_running_entity->prof != nullptr) {
    t_block_started_ns = steady_ns();
  }
  std::scoped_lock lock(spawn_mu_);
  if (stopping_.load()) return;
  // Keep the pool's *unblocked* head-count at the configured size: a body
  // parked in `wait` must not eat a worker that runnable junctions need.
  const int active = total_spawned_ - blocked_.load(std::memory_order_relaxed);
  if (active < base_workers_) spawn_worker_locked();
}

void Scheduler::on_worker_unblock() {
  blocked_.fetch_sub(1, std::memory_order_seq_cst);
  if (workers_blocked_ != nullptr) workers_blocked_->sub();
  if (t_block_started_ns != 0) {
    if (t_running_entity != nullptr && t_running_entity->prof != nullptr) {
      t_running_entity->prof->blocked_ns.fetch_add(
          steady_ns() - t_block_started_ns, std::memory_order_relaxed);
    }
    t_block_started_ns = 0;
  }
}

// --- timer wheel ------------------------------------------------------------

void Scheduler::poll_after(Entity* entity, Nanos delay) {
  std::scoped_lock lock(timer_mu_);
  if (stopping_.load()) return;
  if (entity->timer_armed) return;  // coalesce with the pending entry
  entity->timer_armed = true;
  const std::uint64_t ticks = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>((delay.count() + tick_.count() - 1) /
                                    tick_.count()));
  const std::size_t slot =
      (wheel_cursor_ + static_cast<std::size_t>(ticks)) % kWheelSlots;
  wheel_[slot].push_back(TimerEntry{entity, (ticks - 1) / kWheelSlots});
  if (pending_timers_++ == 0) timer_cv_.notify_one();
}

void Scheduler::timer_main() {
  std::unique_lock lock(timer_mu_);
  SteadyTime next_tick = steady_now() + tick_;
  while (!stopping_.load()) {
    if (pending_timers_ == 0) {
      // Nothing armed: sleep indefinitely; costs zero CPU while every
      // junction is purely event-driven.
      timer_cv_.wait(lock,
                     [&] { return stopping_.load() || pending_timers_ > 0; });
      next_tick = steady_now() + tick_;
      continue;
    }
    if (timer_cv_.wait_until(lock, next_tick,
                             [&] { return stopping_.load(); })) {
      break;
    }
    next_tick += tick_;
    wheel_cursor_ = (wheel_cursor_ + 1) % kWheelSlots;
    auto& slot = wheel_[wheel_cursor_];
    std::vector<Entity*> due;
    for (auto it = slot.begin(); it != slot.end();) {
      if (it->rounds == 0) {
        it->entity->timer_armed = false;
        due.push_back(it->entity);
        it = slot.erase(it);
        --pending_timers_;
      } else {
        --it->rounds;
        ++it;
      }
    }
    if (!due.empty()) {
      lock.unlock();  // wake takes park_mu_; keep timer_mu_ a leaf
      for (Entity* e : due) {
        if (timer_fires_ != nullptr) timer_fires_->add();
        wake(e);
      }
      lock.lock();
    }
  }
}

}  // namespace csaw
