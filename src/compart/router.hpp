// The message router: a single delivery thread draining a time-ordered queue.
//
// Senders never block in the router (they block, if at all, awaiting acks in
// the Runtime); the delivery thread never blocks on instance state (table
// enqueue is lock-brief). This keeps the system deadlock-free by
// construction: there is exactly one blocking edge (sender -> ack) and it
// carries a deadline.
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "compart/link.hpp"
#include "compart/message.hpp"
#include "support/rng.hpp"

namespace csaw {

class Router {
 public:
  using DeliverFn = std::function<void(Envelope&&)>;

  Router(LinkModel default_link, std::uint64_t seed, DeliverFn deliver);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // Schedules `env` for delivery after the (from,to)-link's delay; may drop.
  void send(Envelope env, std::size_t payload_bytes);

  // Per-instance-pair link override; (a,b) is directional.
  void set_link(Symbol from, Symbol to, LinkModel model);
  // Removes the (from,to) override so the pair falls back to default_link.
  void clear_link(Symbol from, Symbol to);
  // Blocks/unblocks both directions between a and b (network partition).
  void set_partition(Symbol a, Symbol b, bool blocked);

  struct Counters {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;      // by drop_prob
    std::uint64_t partitioned = 0;  // by partitions
  };
  [[nodiscard]] Counters counters() const;

 private:
  void run();
  [[nodiscard]] LinkModel link_for(Symbol from, Symbol to) const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  LinkModel default_link_;
  std::map<std::pair<Symbol, Symbol>, LinkModel> overrides_;
  std::map<std::pair<Symbol, Symbol>, bool> partitions_;
  Rng rng_;
  DeliverFn deliver_;
  Counters counters_;

  struct Later {
    bool operator()(const Envelope& a, const Envelope& b) const {
      return a.deliver_at > b.deliver_at;
    }
  };
  std::priority_queue<Envelope, std::vector<Envelope>, Later> queue_;
  bool stop_ = false;
  std::thread thread_;  // started last, joined in destructor
};

}  // namespace csaw
