// Wire encoding of envelopes for OS-level transports.
//
// libcompart's "channels wrap OS-provided IPC, including TCP sockets and
// pipes"; the in-process router optionally forwards every envelope through a
// real loopback TCP connection (compart/tcp.hpp), which requires a byte
// encoding of Envelope. Symbols travel as their spellings.
#pragma once

#include "compart/message.hpp"
#include "serdes/archive.hpp"

namespace csaw {

Bytes encode_envelope(const Envelope& env);
Result<Envelope> decode_envelope(const Bytes& data);

}  // namespace csaw
