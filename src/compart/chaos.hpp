// Deterministic chaos harness (DESIGN.md "Failure model & recovery").
//
// A ChaosSchedule is a list of fault events pinned to workload step numbers:
// crash instance A at step 40, restart it at step 90, partition A|B between
// steps 120 and 180, degrade the A->B link for a while. Schedules are either
// hand-written (a test asserting one precise interleaving) or generated from
// a single seed (ChaosSchedule::from_seed), so an entire randomized fault
// run reproduces from one integer: same seed => same schedule => same fault
// interleaving relative to the workload.
//
// ChaosHarness replays a schedule against a Runtime. The driving workload
// calls on_step(step) at each step boundary; every event whose step has
// arrived fires *synchronously on the caller's thread* before on_step
// returns. That is the determinism contract: faults land at exact workload
// positions, not at wall-clock times, so two runs with the same seed and
// the same workload make the same sequence of Runtime calls. (Downstream
// effects -- which in-flight envelope a crash bites, which frame a lossy
// link eats -- still race with the router/transport threads; tests that
// assert exact final state restrict themselves to crash/restart/partition/
// heal, which are exact.)
//
// finish() fires every not-yet-fired heal and restart (and skips the rest)
// so a workload that ends mid-outage still converges to an all-up,
// fully-connected runtime before the test inspects final state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compart/link.hpp"
#include "support/clock.hpp"
#include "support/symbol.hpp"

namespace csaw {

class Runtime;

struct ChaosEvent {
  enum class Kind : std::uint8_t {
    kCrash,      // Runtime::crash(a)
    kRestart,    // Runtime::start(a) (ignored if already running)
    kPartition,  // Router::set_partition(a, b, true)
    kHeal,       // undo: unpartition a|b and reset the a<->b link model
    kDelay,      // both directions of a<->b get `delay` latency
    kDrop,       // both directions of a<->b drop with probability p
    // TCP-level faults (no-ops without a TcpTransport): rebalance chaos
    // stories exercise the real socket path, not just the in-proc router.
    kKillConn,        // TcpTransport::kill_peer_connection(a) -- `a` is the
                      // peer NAME (transport namespace, not an instance)
    kReconnectStorm,  // TcpTransport::kill_all_connections()
  };
  std::uint64_t step = 0;  // fires when on_step(step') sees step' >= step
  Kind kind = Kind::kCrash;
  Symbol a;           // target instance (peer name for kKillConn)
  Symbol b;           // other endpoint (kPartition/kHeal/kDelay/kDrop)
  double p = 0.0;     // drop probability (kDrop)
  Nanos delay{0};     // injected latency (kDelay)

  [[nodiscard]] std::string describe() const;
};

struct ChaosSchedule {
  std::vector<ChaosEvent> events;  // sorted by step (from_seed guarantees it)

  struct Options {
    // Workload length the schedule is laid out over.
    std::uint64_t steps = 1000;
    // How many fault "episodes" to generate. Each episode is a
    // crash+restart pair or a partition/delay/drop+heal pair whose
    // endpoints and duration are drawn from the rng.
    int episodes = 4;
    // Minimum / maximum episode duration in steps.
    std::uint64_t min_hold = 20;
    std::uint64_t max_hold = 200;
    // Relative weights of episode kinds (crash : partition : delay : drop).
    double crash_weight = 0.4;
    double partition_weight = 0.3;
    double delay_weight = 0.2;
    double drop_weight = 0.1;
    // TCP-fault episode weights, off by default (in-proc runtimes have no
    // transport to bite). kKillConn additionally needs `peers` non-empty.
    // These episodes are single events: the transport's own backoff
    // machinery is the "heal".
    double kill_conn_weight = 0.0;
    double storm_weight = 0.0;
    // Transport peer names kKillConn episodes draw their target from.
    std::vector<std::string> peers;
    // Injected-fault magnitudes.
    Nanos delay_latency = std::chrono::milliseconds(5);
    double drop_prob = 0.3;
  };

  // Deterministic: the same (seed, opts, instances) triple always yields the
  // same schedule. `instances` must be non-empty; pair faults need >= 2.
  static ChaosSchedule from_seed(std::uint64_t seed,
                                 const std::vector<Symbol>& instances,
                                 const Options& opts);
  static ChaosSchedule from_seed(std::uint64_t seed,
                                 const std::vector<Symbol>& instances) {
    return from_seed(seed, instances, Options());
  }

  [[nodiscard]] std::string describe() const;
};

class ChaosHarness {
 public:
  // `rt` is borrowed and must outlive the harness. Events fire strictly in
  // schedule order; an out-of-order hand-written schedule is sorted here.
  ChaosHarness(Runtime& rt, ChaosSchedule schedule);

  // Fires every event with event.step <= step that has not fired yet,
  // synchronously, in order. Call once per workload step (monotone steps).
  void on_step(std::uint64_t step);

  // Fires pending heals/restarts (skipping pending crashes/partitions/
  // delays/drops) so the runtime converges to all-up, fully-connected.
  void finish();

  [[nodiscard]] std::size_t fired() const { return next_; }
  [[nodiscard]] const ChaosSchedule& schedule() const { return schedule_; }

 private:
  void fire(const ChaosEvent& e);

  Runtime& rt_;
  ChaosSchedule schedule_;
  std::size_t next_ = 0;  // first unfired event
};

}  // namespace csaw
