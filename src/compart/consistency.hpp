// Per-table consistency levels for the replication patterns (ROADMAP item
// 3). The level is a *routing* choice, not a topology one: chain and quorum
// ship every write through the architecture, and the level decides which
// replica a read may be served from.
//
//   kEventual       -- any replica serves the read; staleness is bounded
//                      only by replication lag.
//   kReadYourWrites -- the client session carries an HLC token (obs/hlc)
//                      stamped by its last acknowledged write; a replica may
//                      serve the read only if its applied watermark for the
//                      key is at-or-after that timestamp, else routing falls
//                      through to the epoch leader (which has every acked
//                      write by construction).
//   kLinearizable   -- reads are routed through the epoch leader and
//                      serialized with writes (chain: the full head-to-tail
//                      relay, response from the tail; quorum: a
//                      leader-inclusive read quorum).
//
// Lives in compart (the layer below core and the pattern library) so
// RuntimeOptions, patterns/chain, patterns/quorum and the miniredis service
// Options can all name the same knob without a layering cycle.
#pragma once

#include <optional>
#include <string_view>

namespace csaw {

enum class Consistency {
  kEventual,
  kReadYourWrites,
  kLinearizable,
};

constexpr std::string_view consistency_name(Consistency c) {
  switch (c) {
    case Consistency::kEventual:
      return "eventual";
    case Consistency::kReadYourWrites:
      return "read-your-writes";
    case Consistency::kLinearizable:
      return "linearizable";
  }
  return "eventual";
}

constexpr std::optional<Consistency> parse_consistency(std::string_view s) {
  if (s == "eventual") return Consistency::kEventual;
  if (s == "read-your-writes" || s == "ryw") return Consistency::kReadYourWrites;
  if (s == "linearizable" || s == "lin") return Consistency::kLinearizable;
  return std::nullopt;
}

}  // namespace csaw
