// Channel models.
//
// libcompart channels wrap OS IPC (TCP sockets, pipes). Our channels are
// in-process queues with an explicit link model so that the paper's
// deployment variations -- same-VM vs cross-VM placement, 1GbE links,
// transient network outages -- become parameter choices instead of testbed
// hardware. Every message experiences: optional drop, propagation latency
// (+/- jitter), and serialization delay bytes/bandwidth.
#pragma once

#include <cstdint>

#include "support/clock.hpp"

namespace csaw {

struct LinkModel {
  Nanos latency = Nanos::zero();
  double jitter_frac = 0.0;     // uniform in [1-j, 1+j] applied to latency
  double drop_prob = 0.0;       // probability a message silently vanishes
  std::uint64_t bytes_per_sec = 0;  // 0 = infinite bandwidth

  // Handy presets used by the benches.
  static LinkModel in_process() { return LinkModel{}; }
  static LinkModel same_vm() {
    // Loopback IPC: tens of microseconds.
    return LinkModel{std::chrono::microseconds(30), 0.2, 0.0, 0};
  }
  static LinkModel cross_vm_1gbe() {
    // The paper's research-testbed 1GbE link between VMs.
    return LinkModel{std::chrono::microseconds(180), 0.25, 0.0,
                     125'000'000ull};
  }

  [[nodiscard]] Nanos transfer_time(std::size_t bytes, double jitter_u) const {
    auto total = latency;
    if (jitter_frac > 0.0) {
      const double scale = 1.0 + jitter_frac * (2.0 * jitter_u - 1.0);
      total = Nanos(static_cast<Nanos::rep>(
          static_cast<double>(total.count()) * scale));
    }
    if (bytes_per_sec > 0) {
      total += Nanos(static_cast<Nanos::rep>(
          1e9 * static_cast<double>(bytes) / static_cast<double>(bytes_per_sec)));
    }
    return total;
  }
};

}  // namespace csaw
