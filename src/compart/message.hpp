// Messages routed between instances.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "kv/update.hpp"
#include "obs/trace.hpp"
#include "support/clock.hpp"
#include "support/symbol.hpp"

namespace csaw {

// Fully-qualified junction address ("instance::junction").
struct JunctionAddr {
  Symbol instance;
  Symbol junction;

  [[nodiscard]] std::string qualified() const {
    return instance.str() + "::" + junction.str();
  }
  friend auto operator<=>(const JunctionAddr&, const JunctionAddr&) = default;
};

struct Envelope {
  enum class Kind { kUpdate, kAck };

  Kind kind = Kind::kUpdate;
  std::uint64_t seq = 0;       // correlates acks with updates
  Symbol from_instance;
  JunctionAddr to;             // for kUpdate; for kAck `to.instance` is the
                               // original sender awaiting the ack
  Update update;               // kUpdate payload
  bool nack = false;           // kAck: true if delivery failed
  std::string nack_reason;
  SteadyTime deliver_at{};     // set by the router
  // Distributed-trace context: the sending push's span plus the sender's
  // hybrid-logical-clock reading at send time. Acks echo the original
  // push's context so the sender's clock merges the receiver's time.
  // Absent when the sender traces nothing (and on frames from builds that
  // predate the field -- see wire.cpp for the compatibility rule).
  std::optional<obs::TraceContext> ctx;
};

}  // namespace csaw
