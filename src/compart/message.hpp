// Messages routed between instances.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "kv/update.hpp"
#include "obs/trace.hpp"
#include "support/clock.hpp"
#include "support/symbol.hpp"

namespace csaw {

// Fully-qualified junction address ("instance::junction").
struct JunctionAddr {
  Symbol instance;
  Symbol junction;

  [[nodiscard]] std::string qualified() const {
    return instance.str() + "::" + junction.str();
  }
  friend auto operator<=>(const JunctionAddr&, const JunctionAddr&) = default;
};

struct Envelope {
  // kHeartbeat frames carry liveness gossip for the failure detector
  // (compart/detector.hpp): from_instance names the sending node, epoch is
  // its authority epoch, and update.value.bytes encodes the list of
  // instances it currently runs. They are never acked.
  enum class Kind { kUpdate, kAck, kHeartbeat };

  Kind kind = Kind::kUpdate;
  std::uint64_t seq = 0;       // correlates acks with updates
  Symbol from_instance;
  JunctionAddr to;             // for kUpdate; for kAck `to.instance` is the
                               // original sender awaiting the ack
  Update update;               // kUpdate payload
  bool nack = false;           // kAck: true if delivery failed
  std::string nack_reason;
  SteadyTime deliver_at{};     // set by the router
  // Sender's authority epoch (runtime.hpp "Split-brain prevention"): 0 on
  // frames from runtimes without durable epochs. A receiver whose epoch is
  // higher rejects non-zero stale updates; a receiver whose epoch is lower
  // adopts the frame's.
  std::uint64_t epoch = 0;
  // Distributed-trace context: the sending push's span plus the sender's
  // hybrid-logical-clock reading at send time. Acks echo the original
  // push's context so the sender's clock merges the receiver's time.
  // Absent when the sender traces nothing (and on frames from builds that
  // predate the field -- see wire.cpp for the compatibility rule).
  std::optional<obs::TraceContext> ctx;
};

}  // namespace csaw
