// Event-driven junction scheduler (ROADMAP item 1).
//
// The original runtime gave every junction its own thread that re-checked
// its guard every `idle_poll` (2 ms). That burns a timeslice per junction
// even when nothing changed and caps deployments at a few hundred
// junctions. This scheduler inverts the model:
//
//   * Each junction becomes an Entity with a 4-state wakeup machine
//     (idle / queued / running / running+rearm). A wake on an idle entity
//     pushes it onto a global ready queue; a wake during its eval sets the
//     rearm bit so the worker requeues it once -- wakes coalesce, evals
//     never get lost.
//   * A fixed pool of workers (SchedulerOptions::workers, default
//     max(2, min(8, hw))) drains the ready queue. Producers (KV change
//     listeners, delivery threads, schedule()) push lock-free (Vyukov
//     intrusive MPSC); only consumers serialize on a pop mutex. Idle
//     workers park on a condvar: an idle deployment costs zero CPU.
//   * Wakes are driven by static guard analysis (core/deps.cpp): a key
//     write wakes only the junctions whose guards read that key. Guards
//     the analyzer cannot see through (hand-written GuardFns, remote
//     `@`-props on non-hosted instances, detector-fed liveness) fall back
//     to a hashed timer wheel that re-polls them at `timer_resolution`,
//     but only while they are parked wanting to run.
//   * Workers that block inside a body (`wait [t] F`, push ack, stop
//     drain) announce it through support/blocking.hpp; the pool spawns a
//     spare so runnable junctions never starve behind a parked one.
//     Spares persist until shutdown, so growth is bounded by the peak
//     number of concurrently blocked bodies.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "compart/message.hpp"
#include "obs/metrics.hpp"
#include "support/clock.hpp"
#include "support/symbol.hpp"

namespace csaw::obs {
struct JunctionProfile;  // obs/profile.hpp
}  // namespace csaw::obs

namespace csaw {

struct SchedulerOptions {
  // Worker pool size; 0 picks max(2, min(8, hardware_concurrency)).
  int workers = 0;
  // Timer-wheel tick for re-polling volatile guards (unanalyzed GuardFns,
  // non-hosted remote deps, liveness tests).
  std::chrono::milliseconds timer_resolution{1};
  // After this many consecutive timer re-polls of one volatile guard with
  // no verdict change, the runtime traces a `wildcard_repoll_stuck` anomaly
  // event (once per stuck stretch): the junction is burning its re-poll
  // budget on a guard nothing is flipping. 0 disables.
  std::uint64_t wildcard_anomaly_repolls = 64;
};

// What a junction's guard can observe, extracted from its compiled formula
// (core/deps.cpp). The runtime resolves this into wake subscriptions at
// start: `keys` against the junction's own table listener, `remote`
// against the named junction's table (when hosted here), `liveness`
// against instance lifecycle transitions. Anything it cannot resolve
// locally makes the junction "volatile" -- timer-wheel re-polled.
struct WakePlan {
  // Local table keys (mangled names) the guard reads.
  std::vector<Symbol> keys;
  struct RemoteDep {
    JunctionAddr at;            // whose table the guard peeks into
    std::vector<Symbol> keys;   // which of its keys
  };
  std::vector<RemoteDep> remote;
  // Instances whose S(i) liveness the guard tests.
  std::vector<Symbol> liveness;
  // Any local change may flip the guard (e.g. indexed props over a subset
  // variable whose binding the analyzer cannot enumerate).
  bool wildcard = false;
  // False for hand-written GuardFns the analyzer never saw: the runtime
  // must assume wildcard + volatile.
  bool analyzed = false;
};

// What one eval accomplished, reported by the runtime's eval callback.
enum class EvalResult {
  kIdle,      // ran (or nothing to do); park until the next wake
  kRearm,     // ran and may be runnable again immediately (auto guard)
  kSpurious,  // woke but the guard was false; park
};

class Scheduler {
 public:
  // One junction's seat in the scheduler. Lives for the scheduler's
  // lifetime; pointers handed out by add_entity stay valid until the
  // Scheduler is destroyed.
  struct Entity {
    explicit Entity(std::string name_, std::function<EvalResult()> eval_)
        : name(std::move(name_)), eval(std::move(eval_)) {}
    Entity() = default;

    std::string name;
    std::function<EvalResult()> eval;

    // Intrusive ready-queue hook (Vyukov MPSC).
    std::atomic<Entity*> next{nullptr};
    // kIdle / kQueued / kRunning / kRunningRearm.
    std::atomic<std::uint32_t> state{0};
    // steady_now() at the idle->queued transition; 0 when unset. Feeds the
    // sched_wake_to_eval_ns histogram.
    std::atomic<std::int64_t> wake_ns{0};
    // Total evals, readable by tests asserting wake-set precision.
    std::atomic<std::uint64_t> eval_count{0};
    // Cost-profile slot (obs/profile.hpp), set once at wiring time when a
    // Profiler is attached; null means no per-junction attribution.
    obs::JunctionProfile* prof = nullptr;
    // Guarded by the scheduler's timer mutex: one pending wheel entry max.
    bool timer_armed = false;
  };

  Scheduler(SchedulerOptions options, obs::Metrics* metrics);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // The effective pool size for a requested `workers` value.
  static int resolve_workers(int requested);

  // Registers a junction. Safe before or after start() (instances may be
  // registered while others already run, e.g. the chaos harness); the
  // returned pointer is stable for the scheduler's lifetime.
  Entity* add_entity(std::string name, std::function<EvalResult()> eval);

  void start();
  // Idempotent. Callers must first ensure blocked evals have been
  // interrupted (runtime stops instances before stopping the scheduler);
  // queued entities are still drained -- their evals see the stopped
  // instance and bail.
  void stop();

  // Requests an eval. Safe from any thread, including under the caller's
  // own locks (the wake path takes only scheduler-internal leaf mutexes).
  // Coalesces: an entity is queued at most once, and a wake racing a
  // running eval sets the rearm bit instead of double-queueing.
  void wake(Entity* entity);

  // Arms a one-shot timer-wheel wake, rounded up to the wheel tick.
  // Coalesces with an already-armed timer for the same entity.
  void poll_after(Entity* entity, Nanos delay);

 private:
  static constexpr std::uint32_t kIdle = 0;
  static constexpr std::uint32_t kQueued = 1;
  static constexpr std::uint32_t kRunning = 2;
  static constexpr std::uint32_t kRunningRearm = 3;

  static constexpr std::size_t kWheelSlots = 256;

  void queue_push(Entity* entity);
  Entity* queue_pop_locked();
  void enqueue_ready(Entity* entity);
  void maybe_unpark();
  void idle_park();
  void run_entity(Entity* entity);
  void worker_main();
  void timer_main();
  void spawn_worker_locked();
  void on_worker_block();
  void on_worker_unblock();

  SchedulerOptions options_;
  int base_workers_ = 0;
  Nanos tick_{};

  std::mutex entities_mu_;
  std::vector<std::unique_ptr<Entity>> entities_;  // under entities_mu_
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};

  // --- ready queue (Vyukov intrusive MPSC; multi-consumer via pop_mu_) ---
  Entity stub_;
  std::atomic<Entity*> queue_head_;  // most recently pushed
  Entity* queue_tail_;               // oldest; consumers only, under pop_mu_
  std::mutex pop_mu_;
  // seq_cst mirror of the queue's logical size: the Dekker-style handshake
  // with sleepers_ that makes parking lose no wakeups.
  std::atomic<std::int64_t> ready_count_{0};

  // --- worker parking ----------------------------------------------------
  std::mutex park_mu_;
  std::condition_variable park_cv_;
  std::atomic<int> sleepers_{0};
  int park_signals_ = 0;  // under park_mu_

  // --- pool --------------------------------------------------------------
  std::mutex spawn_mu_;
  std::vector<std::thread> worker_threads_;  // under spawn_mu_ until stop
  int total_spawned_ = 0;                    // under spawn_mu_
  std::atomic<int> blocked_{0};

  // --- timer wheel -------------------------------------------------------
  struct TimerEntry {
    Entity* entity;
    std::uint64_t rounds;  // full wheel revolutions still to go
  };
  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::vector<TimerEntry> wheel_[kWheelSlots];  // under timer_mu_
  std::size_t wheel_cursor_ = 0;                // under timer_mu_
  std::size_t pending_timers_ = 0;              // under timer_mu_
  std::thread timer_thread_;

  // --- observability (all may be null when metrics is null) --------------
  obs::Counter* wakeups_ = nullptr;         // idle->queued transitions
  obs::Counter* coalesced_ = nullptr;       // wakes folded into a pending one
  obs::Counter* evals_ = nullptr;           // eval callbacks run
  obs::Counter* spurious_ = nullptr;        // evals whose guard was false
  obs::Counter* timer_fires_ = nullptr;     // wheel-driven wakes
  obs::Gauge* ready_depth_ = nullptr;       // current ready-queue depth
  obs::Gauge* workers_gauge_ = nullptr;     // pool size incl. spares
  obs::Gauge* workers_blocked_ = nullptr;   // workers inside blocking waits
  obs::Gauge* workers_busy_ = nullptr;      // workers currently in an eval
  obs::Histogram* wake_to_eval_ = nullptr;  // queue latency, ns
  obs::Histogram* queue_delay_us_ = nullptr;  // queue latency, us (profile twin)
  obs::Histogram* body_cpu_us_ = nullptr;     // per-eval thread CPU, us
};

}  // namespace csaw
