// The distributed runtime (libcompart equivalent, paper S3 "Running software
// composed using C-Saw").
//
// An *instance* is an independently-failing unit of execution hosting one or
// more *junctions*; each junction owns a KV table and a body (in this repo,
// the body is produced by the DSL interpreter in src/core, but the runtime
// only sees an opaque callable -- the layering mirrors the paper, where
// libcompart knows nothing about the DSL).
//
// When an instance starts, "its junctions are started concurrently" (paper
// S6): junctions are entities on a fixed event-driven worker pool
// (compart/sched.hpp). Each eval applies pending KV updates, checks the
// guard, and runs the body if the junction is scheduled (auto, or requested
// via schedule()/call()). Evals are triggered by the events that can change
// the verdict -- KV change notifications routed through each junction's
// statically-analyzed wake set (JunctionDesc::wake_plan), schedule requests,
// instance lifecycle transitions -- so idle junctions cost zero CPU. Guards
// the analysis cannot see through are re-polled by a timer wheel instead.
// Bodies that block for long stretches (the fail-over pattern's reactivate
// watchdog sits in `wait` for its whole inactivity window) announce it via
// support/blocking.hpp and the pool grows a spare so siblings never starve.
// (The legacy thread-per-junction polling mode was an ablation; it is gone,
// and bench/sched_scale.cpp now ablates against the wildcard+timer fallback
// instead.)
//
// Remote updates are ack'd: the pushing junction blocks until the target
// applied the update (or a deadline/crash intervenes), which is what lets
// the DSL's `otherwise[t]` observe remote failure. Fire-and-forget mode
// exists for the ablation bench.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "compart/detector.hpp"
#include "compart/link.hpp"
#include "compart/message.hpp"
#include "compart/router.hpp"
#include "compart/sched.hpp"
#include "compart/consistency.hpp"
#include "compart/tcp_options.hpp"
#include "kv/table.hpp"
#include "obs/expose.hpp"
#include "obs/hlc.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/result.hpp"

namespace csaw {

namespace obs {
class Profiler;     // obs/profile.hpp
struct TableCost;   // per-instance KV cost row
struct LinkCost;    // per-peer transport cost row
}  // namespace obs

class Runtime;
class JunctionEnv;

// Read-only view of runtime-wide state available to guards and `verify`:
// liveness of instances (the paper's S(i) predicate) and -- for `verify`'s
// ternary-logic f@P checks only -- remote proposition reads.
class RuntimeView {
 public:
  [[nodiscard]] bool instance_running(Symbol instance) const;
  // Error (kUnreachable) if the instance is not running, per the paper:
  // "verify will return an error if it needs to evaluate f@P and f is not
  // running".
  Result<bool> remote_prop(const JunctionAddr& at, Symbol prop) const;

 private:
  friend class Runtime;
  explicit RuntimeView(const Runtime* rt) : rt_(rt) {}
  const Runtime* rt_;
};

// Guards read their own table through brief per-key locked reads (not a held
// table lock) so that guards containing remote reads (@-formulas, S(i))
// cannot deadlock two instances that guard on each other.
using GuardFn = std::function<bool(const KvTable&, const RuntimeView&)>;
using BodyFn = std::function<void(JunctionEnv&)>;

struct JunctionDesc {
  Symbol name;
  KvTable::Spec table_spec;
  GuardFn guard;  // null = always schedulable
  BodyFn body;
  // Auto junctions run whenever their guard holds (back-ends driven purely
  // by KV state); manual junctions run when host logic schedule()s them
  // (front-ends driven by client requests).
  bool auto_schedule = false;
  // What `guard` observes, from static analysis of its compiled formula
  // (core/deps.hpp); the event-driven scheduler wakes the junction only on
  // changes this plan names. Leave default-initialized (analyzed = false)
  // for hand-written GuardFns: the runtime then assumes any change matters
  // and timer-polls the guard. Ignored when guard is null.
  WakePlan wake_plan{};
};

struct InstanceDesc {
  Symbol name;
  Symbol type;
  std::vector<JunctionDesc> junctions;
};

// How strictly the DSL engine treats csaw-lint diagnostics at launch time
// (RuntimeOptions::validate).
enum class ValidateMode {
  kOff,     // no pre-launch analysis
  kWarn,    // analyze, report to stderr, launch anyway
  kStrict,  // refuse to launch a program with error-severity diagnostics
};

enum class Transport {
  kInProcess,    // router delivers via direct calls (default)
  kTcpLoopback,  // every envelope crosses a real 127.0.0.1 TCP connection
  kTcpMesh,      // multi-process: remote instances reached via per-peer TCP
                 // connections configured by RuntimeOptions::tcp
};

struct RuntimeOptions {
  LinkModel default_link = LinkModel::in_process();
  Transport transport = Transport::kInProcess;
  // TCP transport configuration (both kTcpLoopback and kTcpMesh): listener
  // address, peer map, instance placement, frame/queue bounds, reconnect
  // backoff (see compart/tcp_options.hpp). In kTcpMesh mode, envelopes for
  // instances not hosted by this runtime are sent to the peer named in
  // tcp.remote_instances; unroutable envelopes fall back to local delivery,
  // which nacks them as unknown.
  TcpOptions tcp{};
  // If true, a push to a stopped/crashed instance nacks at delivery time;
  // if false it vanishes and the sender discovers failure by timeout (the
  // distributed-faithful mode used by the fail-over benches).
  bool nack_when_down = true;
  // Fire-and-forget pushes (ablation; breaks otherwise-failure detection).
  bool acks_enabled = true;
  // Event-driven worker pool sizing, timer-wheel resolution, and the
  // wildcard-repoll anomaly threshold (compart/sched.hpp).
  SchedulerOptions scheduler{};
  // Static validation (core/analyze) of DSL programs before launch. The
  // runtime itself only sees opaque callables, so enforcement lives in the
  // DSL engine (core/interp): kWarn prints the analyzer's report to stderr
  // and launches anyway; kStrict refuses (kInvalidProgram) to launch a
  // program carrying any error-severity diagnostic. Hand-assembled
  // InstanceDescs are unaffected.
  ValidateMode validate = ValidateMode::kOff;
  std::uint64_t seed = 1;
  // Observability (src/obs). Both pointers are borrowed, may be null, and
  // must outlive the Runtime; null disables the corresponding hooks (each
  // hook is a single predictable branch, so disabled runs pay nothing
  // measurable). `metrics` receives the counters/histograms listed in
  // DESIGN.md ("Observability"); `trace_sink` receives every TraceEvent.
  obs::TraceSink* trace_sink = nullptr;
  obs::Metrics* metrics = nullptr;
  // HTTP exposition of `metrics` (and tracer buffer gauges) on
  // 127.0.0.1:<port>, serving /metrics in Prometheus text format and
  // /healthz. -1 disables; 0 binds an ephemeral port (read it back with
  // Runtime::metrics_http_port()). Requires `metrics` to be set.
  int metrics_http_port = -1;
  // Continuous cost profiling (obs/profile.hpp). `profiler` is borrowed,
  // may be null, and must outlive the Runtime. When set, the scheduler and
  // transport record per-junction CPU/queue-delay and per-link RTT/queue-
  // depth into it, and the /metrics listener (if any) also serves the live
  // CostProfile at /profile. When `profiler` is null but `profile_out`
  // names a file, the runtime owns a private profiler and writes the final
  // CostProfile JSON there at destruction (the common single-runtime case;
  // pass an external profiler to span several runtimes in one artifact).
  obs::Profiler* profiler = nullptr;
  std::string profile_out;
  // Crash recovery (kv/wal.hpp). When non-empty, every junction table is
  // backed by a write-ahead log + snapshots under this directory:
  // `start(i)` recovers each table's acknowledged state (applied values AND
  // acked-but-pending updates) from disk instead of re-initializing from
  // the declarations, and the runtime's authority epoch persists in
  // <dir>/epoch. One directory per OS process -- two live runtimes sharing
  // it would interleave logs.
  std::string durability_dir;
  // fsync the WAL on every state transition (the ack-implies-durable
  // guarantee). false trades the unsynced suffix on power loss for
  // throughput; kill -9 alone loses nothing either way.
  bool wal_sync = true;
  // Per-table compaction threshold (snapshot + truncate once the log
  // exceeds this many bytes; 0 = never compact).
  std::size_t wal_compact_bytes = std::size_t{1} << 20;
  // Default consistency level for replicated tables hosted on this runtime
  // (core/consistency.hpp). The runtime itself only moves updates; the
  // replication services (apps/miniredis ReplicatedService) read this as
  // the table-level default and allow per-session overrides on top.
  Consistency default_consistency = Consistency::kEventual;
};

// One ack'd update push, with named fields (replaces the old positional
// `push(to, update, deadline, from, abort)` signature). Designated
// initializers keep call sites self-describing:
//   rt.push({.to = addr("g", "j"), .update = Update::assert_prop(kWork),
//            .deadline = Deadline::after(1s), .from = Symbol("host")});
struct PushRequest {
  JunctionAddr to;
  Update update;
  // Blocks until ack or this deadline; infinite by default.
  Deadline deadline = {};
  // Sending instance: used for link selection/partitions and ack routing.
  Symbol from;
  // Optional sender abort flag (a crashing sender bails out of the wait).
  const std::atomic<bool>* abort = nullptr;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Registration. Thread-safe: the registry lock is held across the whole
  // operation (duplicate check, scheduler entity creation, and -- when the
  // pool already started -- incremental wake-plan resolution), so
  // concurrent add_instance calls and post-start registration are safe.
  // Registering a duplicate name is a fatal CSAW_CHECK.
  void add_instance(InstanceDesc desc);

  // --- lifecycle ----------------------------------------------------------
  // Starting an already-started instance or stopping a stopped one is a
  // kLifecycle error (paper S6 "Start and stop"). Restarting a stopped or
  // crashed instance re-initializes its KV tables from the declarations.
  Status start(Symbol instance);
  Status stop(Symbol instance);
  // Fault injection: the instance aborts mid-body and drops all state.
  void crash(Symbol instance);
  [[nodiscard]] bool is_running(Symbol instance) const;
  // Stops every running instance (also done by the destructor).
  void shutdown();

  // --- messaging -----------------------------------------------------------
  // Pushes `req.update` to the junction at `req.to`, blocking until the
  // target acked or the deadline expired. Returns:
  //   ok            -- the target's table applied (or queued) the update
  //   kUnreachable  -- nacked (target down/unknown), or the sender aborted
  //   kTimeout      -- no ack before `req.deadline` (lost/partitioned/slow)
  //
  // When tracing is enabled, each push is a span of the current distributed
  // trace: pushes made from inside a junction body become children of that
  // run's span, and the context travels to the target in the envelope (over
  // the wire in TCP mode), so one logical request is one trace however many
  // instances it hops through.
  Status push(PushRequest req);

  // --- host-side scheduling & injection --------------------------------------
  // Three entry points with one shared contract -- on success:
  //   inject()    the update is in the junction's table (applied or queued);
  //               nothing has run yet.
  //   schedule()  one future run of the (manual) junction is requested;
  //               returns without waiting for it.
  //   call()      that run has *completed* (schedule + block).
  // All three return kUndefinedName for an unknown instance/junction and
  // kUnreachable when the instance is not running. call() additionally
  // distinguishes why a run never completed before the deadline:
  //   kGuardRejected -- the junction evaluated its guard and the guard said
  //                     no while our schedule request was pending
  //   kTimeout       -- the deadline expired without a guard verdict (the
  //                     junction was busy or the deadline was too tight)
  //   kUnreachable   -- the instance stopped/crashed mid-call.

  // Synchronously injects an update into a junction's table, bypassing the
  // router: models an external client mutating junction state (the paper's
  // "Req is asserted externally to process client request", Fig 13).
  Status inject(const JunctionAddr& to, Update update);
  // Requests one run of a (manual) junction.
  Status schedule(Symbol instance, Symbol junction);
  // schedule() + block until that run completes.
  Status call(Symbol instance, Symbol junction, Deadline deadline = {});

  // --- accessors --------------------------------------------------------------
  // Table access for host logic and tests. The pointer stays valid while
  // the instance is running; a restart swaps in a fresh table.
  KvTable& table(Symbol instance, Symbol junction);
  [[nodiscard]] RuntimeView view() const { return RuntimeView(this); }
  Router& router() { return *router_; }
  // The TCP transport (null unless transport is kTcpLoopback/kTcpMesh):
  // bound listener port, dynamic peer registration, per-peer stats.
  [[nodiscard]] class TcpTransport* tcp_transport() const {
    return tcp_.get();
  }
  // Removes a peer from the cluster: transport routes and queued frames go
  // first (TcpTransport::remove_peer), then the failure detector forgets it
  // so a departed peer neither contributes instance-alive evidence nor keeps
  // flapping detector_* counters as its last frames drain. No-op (returns
  // false) without a TCP transport or when the peer is unknown to both.
  bool remove_peer(const std::string& peer);
  [[nodiscard]] const RuntimeOptions& options() const { return options_; }
  // Observability sinks (null when disabled).
  [[nodiscard]] obs::TraceSink* trace_sink() const {
    return options_.trace_sink;
  }
  [[nodiscard]] obs::Metrics* metrics() const { return options_.metrics; }
  // The cost profiler (borrowed or runtime-owned; null when profiling is
  // off -- neither RuntimeOptions::profiler nor profile_out was set).
  [[nodiscard]] obs::Profiler* profiler() const { return profiler_; }
  // Live CostProfile snapshot as JSON -- this runtime's junction slots plus
  // current table/link rows; empty string when profiling is off. Also what
  // GET /profile serves.
  [[nodiscard]] std::string cost_profile_json() const;
  // Bound /metrics port (-1 when the HTTP listener is disabled).
  [[nodiscard]] int metrics_http_port() const {
    return exposer_ ? exposer_->port() : -1;
  }
  // The runtime's hybrid logical clock (merged on every traced receive).
  [[nodiscard]] obs::HlcClock& hlc() { return hlc_; }

  // --- split-brain prevention ---------------------------------------------
  // The authority epoch: a view number that advances only on explicit
  // takeover (bump_epoch, called by failover logic when a spare assumes
  // authority), never on mere restart. Every outgoing frame carries it;
  // receivers adopt higher epochs from frames and reject updates carrying
  // strictly lower non-zero epochs (counted as `epoch_rejected`, traced,
  // nacked "stale epoch"). A revived primary therefore keeps its persisted
  // pre-takeover epoch and finds its writes refused until it learns the new
  // one. Persisted in <durability_dir>/epoch when durability is on.
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }
  std::uint64_t bump_epoch();

  // The heartbeat failure detector (null unless the TCP transport runs with
  // heartbeat_interval > 0). When present, is_running() consults it for
  // instances not hosted by this runtime, which is what lets watchdog S(i)
  // guards see remote liveness.
  [[nodiscard]] FailureDetector* detector() const { return detector_.get(); }

  // Total completed junction runs (progress metric for benches).
  [[nodiscard]] std::uint64_t runs_completed(Symbol instance,
                                             Symbol junction) const;
  // Total scheduler evaluations of the junction (guard checks + runs).
  // Tests assert wake-set precision with this: an unrelated key write must
  // not move it.
  [[nodiscard]] std::uint64_t junction_evals(Symbol instance,
                                             Symbol junction) const;

  // The calling thread's active trace context: the span of the junction run
  // currently executing on it, or an invalid context elsewhere. Pushes made
  // with an active context become its children.
  [[nodiscard]] static obs::TraceContext current_context();

 private:
  friend class RuntimeView;
  friend class JunctionEnv;

  struct JunctionRt {
    JunctionDesc desc;
    std::unique_ptr<KvTable> table;
    std::unique_ptr<Wal> wal;  // non-null only while durability is on
    std::uint64_t pending_schedules = 0;  // guarded by InstanceRt::mu
    std::uint64_t completed = 0;
    // Guard evaluations that said no while a schedule request was pending
    // (guarded by InstanceRt::mu); call() diffs this to tell guard
    // rejection apart from timeout.
    std::uint64_t guard_rejections = 0;
    // A guard/body evaluation is in flight (guarded by InstanceRt::mu).
    // stop() quiesces on it in event mode; call() uses it at the deadline
    // edge to avoid misreporting a mid-body run as kTimeout.
    bool eval_active = false;
    // Context of the most recently delivered traced update (guarded by
    // InstanceRt::mu); the next body run adopts it as its causal parent.
    obs::TraceContext last_delivered;

    // --- event-driven scheduling ------------------------------------------
    Scheduler::Entity* entity = nullptr;
    // Resolved from desc.wake_plan before this junction's instance first
    // starts (at the first runtime-wide start(), or at add_instance for
    // instances registered after that), immutable once its table listener
    // is installed: which of this junction's own (applied) keys can flip
    // its guard...
    std::unordered_set<Symbol> wake_keys;
    bool wake_wildcard = false;
    // ...and whether the guard also depends on state whose changes the
    // runtime cannot observe (hand GuardFns, non-hosted remote/liveness
    // deps): such guards are re-polled by the scheduler's timer wheel
    // while the junction wants to run.
    bool volatile_guard = false;
    // Junctions whose guards @-read this junction's table (wake on apply).
    // Guarded by sub_mu: a late add_instance may subscribe to a junction
    // whose table listener is concurrently iterating this list.
    struct Subscriber {
      Scheduler::Entity* entity;
      std::unordered_set<Symbol> keys;
    };
    std::mutex sub_mu;
    std::vector<Subscriber> subscribers;
    // Touched only inside this junction's own (serialized) evals.
    bool blocked_traced = false;
    // Consecutive volatile-guard timer re-polls whose guard verdict did not
    // change; crossing SchedulerOptions::wildcard_anomaly_repolls emits one
    // `wildcard_repoll_stuck` trace event. Touched only inside evals.
    std::uint64_t volatile_repolls = 0;
    bool repoll_anomaly_traced = false;
  };

  struct InstanceRt {
    enum class State { kDown, kRunning, kStopping, kCrashed };

    InstanceDesc desc;
    mutable std::mutex mu;
    std::condition_variable cv;
    State state = State::kDown;
    bool started_before = false;  // distinguishes started vs restarted
    std::atomic<bool> abort{false};
    std::vector<std::unique_ptr<JunctionRt>> junctions;
    // Entities whose guards test S(this instance); woken on start/stop.
    // Guarded by mu: wake-plan resolution for a late-added instance may
    // append while this instance is starting or stopping.
    std::vector<Scheduler::Entity*> lifecycle_watchers;
  };

  // Metric handles resolved once at construction (when options_.metrics is
  // set); recording is then atomic-only.
  struct Instruments {
    obs::Counter* push_sent = nullptr;
    obs::Counter* push_acked = nullptr;
    obs::Counter* push_nacked = nullptr;
    obs::Counter* push_timeout = nullptr;
    obs::Counter* junction_runs = nullptr;
    obs::Counter* junction_scheduled = nullptr;
    obs::Counter* guard_rejected = nullptr;
    obs::Counter* kv_applied = nullptr;
    obs::Counter* instances_started = nullptr;
    obs::Counter* instances_stopped = nullptr;
    obs::Counter* instances_crashed = nullptr;
    obs::Counter* instances_restarted = nullptr;
    obs::Counter* epoch_rejected = nullptr;
    obs::Counter* epoch_adopted = nullptr;
    obs::Counter* wal_recoveries = nullptr;
    obs::Counter* wal_replayed_records = nullptr;
    obs::Counter* wal_tail_torn = nullptr;
    obs::Histogram* push_latency_ns = nullptr;
    obs::Histogram* junction_run_ns = nullptr;
    // Heartbeat-echo round trips per peer link (microseconds); fed by
    // handle_heartbeat, mirrored in the cost profile's per-link rtt_ns.
    obs::Histogram* tcp_rtt_us = nullptr;
    // Junctions whose wake plans resolved to wildcard+timer fallback (the
    // runtime twin of csaw-lint's wake-coverage report); set during
    // wake-plan resolution.
    obs::Gauge* sched_wildcard_guards = nullptr;
  };

  // Records one trace event, stamping its HLC from the runtime clock if the
  // caller left it unset (no-op when tracing is disabled).
  void record_event(obs::TraceEvent e);
  // Convenience wrapper for context-free events.
  void trace(obs::TraceEvent::Kind kind, Symbol instance, Symbol junction = {},
             Symbol peer = {}, std::uint64_t seq = 0,
             std::uint64_t value_ns = 0);
  // Fresh process-unique 64-bit id for traces and spans (never zero).
  std::uint64_t new_trace_id();

  // Adopts a higher epoch seen on a frame (persisting it when durable).
  void observe_epoch(std::uint64_t seen);
  void persist_epoch(std::uint64_t value);
  // Builds one kHeartbeat envelope (node name, epoch, running instances,
  // and -- trailing, ignored by older receivers -- an RTT probe: our steady
  // timestamp plus echoes of every peer heartbeat we have seen).
  Envelope make_heartbeat();
  // Feeds a received kHeartbeat to the detector and closes the RTT loop:
  // an echo of our own timestamp, minus the remote hold time, is one
  // round trip measured entirely on our steady clock.
  void handle_heartbeat(const Envelope& env);

  // Cost-profile row assembly (all no-ops / empty when profiler_ is null).
  [[nodiscard]] std::vector<obs::TableCost> live_table_costs() const;
  [[nodiscard]] std::vector<obs::LinkCost> live_link_costs() const;

  InstanceRt* find(Symbol instance) const;
  void deliver_local(Envelope&& env);
  JunctionRt* find_junction(InstanceRt& inst, Symbol junction) const;
  // One event-driven evaluation: apply pending, check the guard, maybe run
  // the body. The scheduler serializes evals per entity.
  EvalResult junction_eval(InstanceRt& inst, JunctionRt& jrt);
  EvalResult junction_eval_inner(InstanceRt& inst, JunctionRt& jrt);
  // One guard-approved body run with tracing/metrics.
  void run_junction_body(InstanceRt& inst, JunctionRt& jrt);
  // KvTable change listener (called with the table mutex held): routes the
  // change through the junction's wake set and its @-subscribers.
  void on_table_change(JunctionRt& jrt, Symbol key, KvTable::Change change);
  // Resolves every junction's WakePlan into wake_keys / subscribers /
  // lifecycle_watchers / volatile_guard, then starts the worker pool.
  // Runs once, at the first start(); instances registered after that are
  // resolved individually by add_instance (deps on instances that arrive
  // even later fall back to volatile polling).
  void ensure_scheduler_started();
  void resolve_wake_plans();
  // Resolves one instance's junctions against the current registry.
  // Caller holds reg_mu_.
  void resolve_wake_plan_locked(InstanceRt& inst);
  void deliver(Envelope&& env);
  void send_ack(const Envelope& original, bool nack, std::string reason);
  Status stop_locked_state(InstanceRt& inst, InstanceRt::State final_state);

  RuntimeOptions options_;
  Instruments ins_;  // all-null when options_.metrics is null
  // Cost profiling. Declared before the scheduler/transport members so the
  // owned profiler (whose slots their hot paths record into) is destroyed
  // after them. profiler_ aliases options_.profiler or owned_profiler_.
  std::unique_ptr<obs::Profiler> owned_profiler_;
  obs::Profiler* profiler_ = nullptr;
  // Last heartbeat seen from each peer node, for the RTT echo: the sender's
  // steady timestamp as received, and our steady clock at receipt (the
  // difference at echo time is the hold we report back).
  struct HbSeen {
    std::uint64_t origin_ts_ns = 0;
    std::uint64_t recv_ns = 0;
  };
  std::mutex hb_mu_;
  std::map<std::string, HbSeen> hb_seen_;
  // Guards the *structure* of instances_ (add_instance vs lookups from the
  // transport thread -- deliver and heartbeat emission start with the TCP
  // event loop, i.e. before registration is done). InstanceRt pointers are
  // stable once inserted (never erased), so holders need no further lock.
  mutable std::mutex reg_mu_;
  std::map<Symbol, std::unique_ptr<InstanceRt>> instances_;
  // Event-driven worker pool. Entities are added during add_instance; the
  // pool starts lazily at the first start().
  std::unique_ptr<Scheduler> sched_;
  std::once_flag sched_start_once_;
  bool wake_plans_resolved_ = false;  // under reg_mu_
  std::unique_ptr<class TcpTransport> tcp_;  // only in TCP transport modes
  std::unique_ptr<Router> router_;
  std::unique_ptr<obs::HttpExposer> exposer_;  // /metrics listener
  std::unique_ptr<FailureDetector> detector_;  // only with heartbeats on

  // Authority epoch (see epoch()); persisted under durability_dir.
  std::atomic<std::uint64_t> epoch_{0};
  std::string node_name_;  // identity in outgoing heartbeats

  // Distributed-trace identity. The id base is drawn from the system RNG at
  // construction so ids from different processes don't collide when their
  // traces are merged.
  obs::HlcClock hlc_;
  std::uint64_t id_base_ = 0;
  std::atomic<std::uint64_t> next_id_{1};

  // Ack correlation. pending_acks_ holds seqs someone is still waiting for;
  // acks for abandoned seqs (timed-out pushes) are dropped on delivery.
  std::mutex ack_mu_;
  std::condition_variable ack_cv_;
  std::map<std::uint64_t, Status> ack_results_;
  std::set<std::uint64_t> pending_acks_;
  std::atomic<std::uint64_t> next_seq_{1};
};

// Handle passed to junction bodies; the interpreter talks to the world only
// through this.
class JunctionEnv {
 public:
  JunctionEnv(Runtime& rt, Symbol instance, Symbol junction, KvTable& table,
              const std::atomic<bool>& abort)
      : rt_(rt), self_{instance, junction}, table_(table), abort_(abort) {}

  [[nodiscard]] KvTable& table() { return table_; }
  [[nodiscard]] const JunctionAddr& self() const { return self_; }
  [[nodiscard]] std::string qualified() const { return self_.qualified(); }
  [[nodiscard]] bool aborted() const {
    return abort_.load(std::memory_order_relaxed);
  }

  // Pushes on behalf of this junction: `from` and `abort` are filled in
  // with the junction's identity and crash flag (caller-set values are
  // overwritten).
  Status push(PushRequest req) {
    req.from = self_.instance;
    req.abort = &abort_;
    return rt_.push(std::move(req));
  }
  Status start_instance(Symbol name) { return rt_.start(name); }
  Status stop_instance(Symbol name) { return rt_.stop(name); }
  [[nodiscard]] RuntimeView runtime_view() const { return rt_.view(); }
  [[nodiscard]] Runtime& runtime() { return rt_; }

  // --- observability ------------------------------------------------------
  // Pattern bodies and app services emit through these without touching
  // Runtime internals; both return null when the corresponding sink is
  // disabled.
  [[nodiscard]] obs::Metrics* metrics() const { return rt_.metrics(); }
  [[nodiscard]] obs::TraceSink* trace_sink() const { return rt_.trace_sink(); }
  // Emits one app-defined `custom` event stamped with this junction's
  // identity and the enclosing run's trace context; no-op when tracing is
  // disabled.
  void trace(Symbol label, std::uint64_t value = 0) {
    if (rt_.trace_sink() == nullptr) return;
    obs::TraceEvent e;
    e.kind = obs::TraceEvent::Kind::kCustom;
    e.instance = self_.instance;
    e.junction = self_.junction;
    e.label = label;
    e.value_ns = value;
    const auto ctx = Runtime::current_context();
    e.trace_id = ctx.trace_id;
    e.span_id = ctx.span_id;
    rt_.record_event(std::move(e));
  }

 private:
  Runtime& rt_;
  JunctionAddr self_;
  KvTable& table_;
  const std::atomic<bool>& abort_;
};

}  // namespace csaw
