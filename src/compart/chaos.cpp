#include "compart/chaos.hpp"

#include <algorithm>
#include <sstream>

#include "compart/runtime.hpp"
#include "compart/tcp.hpp"
#include "support/rng.hpp"

namespace csaw {

namespace {

const char* kind_name(ChaosEvent::Kind k) {
  switch (k) {
    case ChaosEvent::Kind::kCrash:
      return "crash";
    case ChaosEvent::Kind::kRestart:
      return "restart";
    case ChaosEvent::Kind::kPartition:
      return "partition";
    case ChaosEvent::Kind::kHeal:
      return "heal";
    case ChaosEvent::Kind::kDelay:
      return "delay";
    case ChaosEvent::Kind::kDrop:
      return "drop";
    case ChaosEvent::Kind::kKillConn:
      return "kill_conn";
    case ChaosEvent::Kind::kReconnectStorm:
      return "reconnect_storm";
  }
  return "?";
}

}  // namespace

std::string ChaosEvent::describe() const {
  std::ostringstream os;
  os << "@" << step << " " << kind_name(kind) << " " << a.str();
  switch (kind) {
    case Kind::kPartition:
    case Kind::kHeal:
      os << "|" << b.str();
      break;
    case Kind::kDelay:
      os << "<->" << b.str() << " +"
         << std::chrono::duration_cast<std::chrono::microseconds>(delay)
                .count()
         << "us";
      break;
    case Kind::kDrop:
      os << "<->" << b.str() << " p=" << p;
      break;
    default:
      break;
  }
  return os.str();
}

std::string ChaosSchedule::describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i != 0) os << "; ";
    os << events[i].describe();
  }
  return os.str();
}

ChaosSchedule ChaosSchedule::from_seed(std::uint64_t seed,
                                       const std::vector<Symbol>& instances,
                                       const Options& opts) {
  ChaosSchedule out;
  if (instances.empty() || opts.episodes <= 0 || opts.steps == 0) return out;
  Rng rng(seed);
  const double kill_w = opts.peers.empty() ? 0.0 : opts.kill_conn_weight;
  const double total_w = opts.crash_weight + opts.partition_weight +
                         opts.delay_weight + opts.drop_weight + kill_w +
                         opts.storm_weight;
  for (int ep = 0; ep < opts.episodes; ++ep) {
    // Start anywhere in the workload; the hold is clipped so the closing
    // event (restart/heal) still lands inside [0, steps] and finish() has
    // little to do on a full run.
    const std::uint64_t hold = static_cast<std::uint64_t>(rng.range(
        static_cast<std::int64_t>(opts.min_hold),
        static_cast<std::int64_t>(std::max(opts.min_hold, opts.max_hold))));
    const std::uint64_t latest_start =
        opts.steps > hold ? opts.steps - hold : 0;
    const std::uint64_t start = rng.below(latest_start + 1);

    double pick = rng.uniform() * (total_w > 0 ? total_w : 1.0);
    ChaosEvent open;
    ChaosEvent close;
    open.step = start;
    close.step = start + hold;
    open.a = instances[rng.below(instances.size())];
    const bool pairable = instances.size() >= 2;
    if (pairable) {
      // A distinct second endpoint for the link faults.
      Symbol b = open.a;
      while (b == open.a) b = instances[rng.below(instances.size())];
      open.b = b;
    }
    if (pick < opts.crash_weight || !pairable) {
      open.kind = ChaosEvent::Kind::kCrash;
      close.kind = ChaosEvent::Kind::kRestart;
      close.a = open.a;
    } else if ((pick -= opts.crash_weight) < opts.partition_weight) {
      open.kind = ChaosEvent::Kind::kPartition;
      close.kind = ChaosEvent::Kind::kHeal;
      close.a = open.a;
      close.b = open.b;
    } else if ((pick -= opts.partition_weight) < opts.delay_weight) {
      open.kind = ChaosEvent::Kind::kDelay;
      open.delay = opts.delay_latency;
      close.kind = ChaosEvent::Kind::kHeal;
      close.a = open.a;
      close.b = open.b;
    } else if ((pick -= opts.delay_weight) < opts.drop_weight) {
      open.kind = ChaosEvent::Kind::kDrop;
      open.p = opts.drop_prob;
      close.kind = ChaosEvent::Kind::kHeal;
      close.a = open.a;
      close.b = open.b;
    } else if ((pick -= opts.drop_weight) < kill_w) {
      // Single-event episode: the transport's jittered backoff reconnect is
      // the heal. Target is a transport peer NAME, not an instance.
      open.kind = ChaosEvent::Kind::kKillConn;
      open.a = Symbol(opts.peers[rng.below(opts.peers.size())]);
      open.b = Symbol();
      out.events.push_back(open);
      continue;
    } else {
      open.kind = ChaosEvent::Kind::kReconnectStorm;
      open.a = Symbol();
      open.b = Symbol();
      out.events.push_back(open);
      continue;
    }
    out.events.push_back(open);
    out.events.push_back(close);
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const ChaosEvent& x, const ChaosEvent& y) {
                     return x.step < y.step;
                   });
  return out;
}

ChaosHarness::ChaosHarness(Runtime& rt, ChaosSchedule schedule)
    : rt_(rt), schedule_(std::move(schedule)) {
  std::stable_sort(schedule_.events.begin(), schedule_.events.end(),
                   [](const ChaosEvent& x, const ChaosEvent& y) {
                     return x.step < y.step;
                   });
}

void ChaosHarness::on_step(std::uint64_t step) {
  while (next_ < schedule_.events.size() &&
         schedule_.events[next_].step <= step) {
    fire(schedule_.events[next_]);
    ++next_;
  }
}

void ChaosHarness::finish() {
  for (; next_ < schedule_.events.size(); ++next_) {
    const ChaosEvent& e = schedule_.events[next_];
    if (e.kind == ChaosEvent::Kind::kRestart ||
        e.kind == ChaosEvent::Kind::kHeal) {
      fire(e);
    }
  }
}

void ChaosHarness::fire(const ChaosEvent& e) {
  switch (e.kind) {
    case ChaosEvent::Kind::kCrash:
      rt_.crash(e.a);
      break;
    case ChaosEvent::Kind::kRestart:
      // Already-running is fine: a hand-written schedule may restart an
      // instance the workload itself brought back.
      if (!rt_.is_running(e.a)) (void)rt_.start(e.a);
      break;
    case ChaosEvent::Kind::kPartition:
      rt_.router().set_partition(e.a, e.b, true);
      break;
    case ChaosEvent::Kind::kHeal:
      rt_.router().set_partition(e.a, e.b, false);
      rt_.router().clear_link(e.a, e.b);
      rt_.router().clear_link(e.b, e.a);
      break;
    case ChaosEvent::Kind::kDelay: {
      LinkModel m;
      m.latency = e.delay;
      rt_.router().set_link(e.a, e.b, m);
      rt_.router().set_link(e.b, e.a, m);
      break;
    }
    case ChaosEvent::Kind::kDrop: {
      LinkModel m;
      m.drop_prob = e.p;
      rt_.router().set_link(e.a, e.b, m);
      rt_.router().set_link(e.b, e.a, m);
      break;
    }
    case ChaosEvent::Kind::kKillConn:
      // No-op without a TCP transport: the in-proc router has no
      // connections to kill.
      if (auto* tcp = rt_.tcp_transport(); tcp != nullptr) {
        (void)tcp->kill_peer_connection(e.a.str());
      }
      break;
    case ChaosEvent::Kind::kReconnectStorm:
      if (auto* tcp = rt_.tcp_transport(); tcp != nullptr) {
        tcp->kill_all_connections();
      }
      break;
  }
  if (rt_.trace_sink() != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceEvent::Kind::kCustom;
    ev.at = steady_now();
    ev.instance = e.a;
    ev.peer = e.b;
    ev.label = Symbol(std::string("chaos_") + kind_name(e.kind));
    ev.value_ns = e.step;
    ev.hlc = rt_.hlc().tick();
    rt_.trace_sink()->record(ev);
  }
}

}  // namespace csaw
