// TCP leg for the router (libcompart's "channels wrap OS-provided IPC,
// including TCP sockets").
//
// TcpTransport is a real multi-peer transport: a listener accepting inbound
// connections from peers, plus one outbound connection per configured peer,
// all driven by a single poll()-based event loop thread. Outbound
// connections are established eagerly and re-established under exponential
// backoff with jitter when they drop; envelopes queue (bounded) per peer
// while the link is down. Frames are length-prefixed encoded envelopes with
// a hard size bound enforced on both ends.
//
// Two runtime configurations use it:
//   Transport::kTcpLoopback -- one "self" peer connected to our own
//     listener; every envelope crosses the kernel's loopback stack
//     (syscalls, socket buffers, scheduling) instead of a mutex-guarded
//     queue. The realistic-IPC single-process configuration and an
//     ablation axis for the microbenchmarks.
//   Transport::kTcpMesh -- peers are other OS processes; envelopes for
//     instances hosted remotely ride the matching peer connection. The
//     multi-process configuration (examples/two_process_shard,
//     bench/xproc_shard).
//
// Failure semantics (DESIGN.md "Transport"):
//   - the transport is at-most-once: a frame fully written before a
//     connection died may or may not have arrived; the push layer's
//     ack/deadline machinery owns retries.
//   - a frame partially written when the connection dies is retransmitted
//     from its first byte on the next connection (the receiver discarded
//     the partial tail at EOF), so framing never desyncs.
//   - send-queue overflow and oversize frames are nacked back to the local
//     sender; corrupt and oversize inbound frames are counted and traced.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "compart/message.hpp"
#include "compart/tcp_options.hpp"
#include "compart/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/result.hpp"
#include "support/rng.hpp"

namespace csaw::obs {
class Profiler;  // obs/profile.hpp
}  // namespace csaw::obs

namespace csaw {

// Blocking socket I/O helpers shared by the transport's handshake-free
// protocol, the tests' socketpair harness, and the two-process drivers.
// All of them retry EINTR (a stray signal must not kill a reader thread or
// poison a stream) and EAGAIN/EWOULDBLOCK (by polling for readiness, so
// they also work on nonblocking fds), and all writes use send(MSG_NOSIGNAL)
// so a closed peer surfaces as EPIPE instead of a process-killing SIGPIPE.
// Socket fds only (MSG_NOSIGNAL requires a socket).
namespace tcpio {

// Reads exactly n bytes; false on EOF or hard error.
bool read_exact(int fd, void* buf, std::size_t n);
// Writes exactly n bytes; false on hard error (including EPIPE).
bool write_exact(int fd, const void* buf, std::size_t n);

enum class FrameStatus {
  kOk,
  kEof,       // clean end of stream before a new frame began
  kError,     // hard error, or EOF mid-frame (truncated)
  kOversize,  // frame length exceeds max_frame (nothing was allocated/sent)
};

// One length-prefixed frame (4-byte big-endian length + payload), bounded
// by max_frame on both directions. read_frame checks the bound *before*
// allocating the payload buffer.
FrameStatus write_frame(int fd, const Bytes& payload, std::size_t max_frame);
FrameStatus read_frame(int fd, Bytes* payload, std::size_t max_frame);

}  // namespace tcpio

class TcpTransport {
 public:
  using DeliverFn = std::function<void(Envelope&&)>;

  // Binds the listener and starts the event loop; CHECK-fails only if the
  // listener itself cannot be created (the environment cannot provide the
  // transport at all). Peer connections are established asynchronously and
  // retried forever under backoff. When `metrics` is non-null the counters
  // documented in DESIGN.md "Transport" are registered there; when
  // `trace_sink` is non-null, corrupt/oversize/dropped frames emit custom
  // trace events. When `profiler` is non-null, each send samples the peer's
  // queue depth into the cost profile's per-link percentiles. All three are
  // borrowed and must outlive this object.
  TcpTransport(DeliverFn deliver, TcpOptions options,
               obs::Metrics* metrics = nullptr,
               obs::TraceSink* trace_sink = nullptr,
               obs::Profiler* profiler = nullptr);
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  // Bound listener port (0 when the listener is disabled).
  [[nodiscard]] std::uint16_t port() const { return listen_port_; }

  // Installs the heartbeat frame factory (thread-safe). When
  // TcpOptions::heartbeat_interval > 0, the event loop calls it once per
  // interval (without holding transport locks) and sends the returned
  // envelope to every registered peer. Typically set by the Runtime to a
  // kHeartbeat builder; unset means no heartbeats are emitted.
  void set_heartbeat_source(std::function<Envelope()> source);

  // Dynamic peer registration (thread-safe): used when peer addresses are
  // only known after construction (e.g. two ephemeral-port runtimes in one
  // test binding in sequence).
  void add_peer(const std::string& name, TcpPeerAddr addr);
  void map_instance(Symbol instance, const std::string& peer);

  // Dynamic peer removal (thread-safe): the peer leaves the routing maps
  // immediately (send_to/route start failing fast), instance mappings
  // pointing at it are dropped, queued frames are discarded (counted as
  // queue drops; the push layer's ack/deadline machinery surfaces the loss),
  // and the connection fd is closed by the event loop, which owns all peer
  // fds. Returns whether the peer was known. Callers that also run a
  // failure detector must purge it separately (Runtime::remove_peer does
  // both).
  bool remove_peer(const std::string& name);
  // Removes one instance->peer mapping (no-op when absent).
  void unmap_instance(Symbol instance);

  // Fault injection for the chaos harness (thread-safe): drops the peer's
  // current connection without forgetting the peer, so the normal
  // backoff/reconnect machinery runs -- what a mid-handoff network blip
  // looks like at the socket level. Queued frames are kept and go out whole
  // on the next connection. Returns whether the peer was known.
  bool kill_peer_connection(const std::string& name);
  // kill_peer_connection for every registered peer: a reconnect storm, with
  // each peer retrying under its own jittered backoff.
  void kill_all_connections();

  // Queues `env` for `peer`. Returns false only if the peer is unknown;
  // a true return means the transport took responsibility for the envelope
  // -- including dropping it with a synthesized local nack when the queue
  // is full or the frame exceeds max_frame_bytes.
  bool send_to(const std::string& peer, const Envelope& env);

  // Routes by destination instance (remote_instances map; everything goes
  // to "self" in loopback mode). False = no route, caller should deliver
  // locally.
  bool route(const Envelope& env);

  // Whether some peer is configured to host `instance`.
  [[nodiscard]] bool routes_instance(Symbol instance) const;

  struct PeerStats {
    bool connected = false;
    std::size_t queued = 0;
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t queue_drops = 0;
  };
  [[nodiscard]] std::map<std::string, PeerStats> peer_stats() const;

 private:
  struct Peer {
    std::string name;
    TcpPeerAddr addr;
    enum class State { kIdle, kConnecting, kConnected };
    State state = State::kIdle;
    int fd = -1;
    SteadyTime retry_at{};  // earliest next connect attempt while kIdle
    Nanos backoff{0};       // current (pre-jitter) retry delay
    bool ever_connected = false;
    std::deque<Bytes> queue;     // framed (header+payload) buffers, FIFO
    std::size_t write_off = 0;   // bytes of queue.front() already written
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t queue_drops = 0;
    bool kill = false;  // chaos: event loop drops the connection, keeps peer
    // Borrowed per-peer counter handles; null when metrics are disabled.
    obs::Counter* m_frames_sent = nullptr;
    obs::Counter* m_bytes_sent = nullptr;
    obs::Counter* m_reconnects = nullptr;
    obs::Counter* m_queue_drops = nullptr;
    // Cost-profile send-queue-depth histogram; null without a profiler.
    obs::Histogram* prof_depth = nullptr;
  };

  // One accepted inbound connection with its incremental frame parser.
  // Owned exclusively by the event-loop thread (no locking).
  struct InConn {
    int fd = -1;
    std::uint8_t hdr[4] = {0, 0, 0, 0};
    std::size_t hdr_got = 0;
    bool in_payload = false;
    Bytes payload;
    std::size_t payload_got = 0;
  };

  void loop();
  void wake();
  // All *_locked helpers require mu_ held.
  Peer& ensure_peer_locked(const std::string& name, TcpPeerAddr addr);
  void start_connect_locked(Peer& p);
  void on_connected_locked(Peer& p, int fd);
  void schedule_retry_locked(Peer& p);
  void poison_locked(Peer& p, bool count_send_failure);
  void flush_locked(Peer& p);
  void handle_peer_event(const std::string& name, short revents);
  // Returns false when the connection must be closed.
  bool handle_inbound_readable(InConn& c);
  void complete_inbound_frame(InConn& c);
  void nack_back(const Envelope& env, const std::string& reason);
  void trace_anomaly(const char* label, std::uint64_t value);

  DeliverFn deliver_;
  TcpOptions options_;
  obs::TraceSink* trace_sink_ = nullptr;
  obs::Metrics* metrics_ = nullptr;
  obs::Profiler* profiler_ = nullptr;

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  int wake_r_ = -1;
  int wake_w_ = -1;

  mutable std::mutex mu_;  // guards peers_, instance_peers_, stop_,
                           // heartbeat_source_
  std::map<std::string, std::unique_ptr<Peer>> peers_;
  // Peers removed via remove_peer, awaiting their fd close on the event
  // loop thread (which may be polling the fd right now). Guarded by mu_.
  std::vector<std::unique_ptr<Peer>> doomed_;
  std::map<Symbol, std::string> instance_peers_;
  bool stop_ = false;
  std::function<Envelope()> heartbeat_source_;
  Rng jitter_;  // event-loop thread only (after construction)

  std::vector<InConn> conns_;       // event-loop thread only
  SteadyTime next_heartbeat_{};     // event-loop thread only

  // Borrowed aggregate counter handles; all null when metrics are disabled.
  obs::Counter* frames_sent_ = nullptr;
  obs::Counter* bytes_sent_ = nullptr;
  obs::Counter* frames_received_ = nullptr;
  obs::Counter* bytes_received_ = nullptr;
  obs::Counter* frames_corrupt_ = nullptr;
  obs::Counter* frames_oversize_ = nullptr;
  obs::Counter* send_failures_ = nullptr;
  obs::Counter* reconnects_ = nullptr;
  obs::Counter* queue_drops_ = nullptr;

  std::thread thread_;  // started last, joined in destructor
};

}  // namespace csaw
