// Loopback-TCP leg for the router (libcompart's "channels wrap OS-provided
// IPC, including TCP sockets").
//
// When RuntimeOptions::transport == kTcpLoopback, every envelope travels
// through a real 127.0.0.1 TCP connection: the router's delivery thread
// writes length-prefixed encoded envelopes; a reader thread decodes them and
// performs the delivery. Messages thus cross the kernel's network stack
// (syscalls, socket buffers, loopback scheduling) instead of a mutex-guarded
// queue -- the realistic-IPC configuration, and an ablation axis for the
// microbenchmarks.
#pragma once

#include <functional>
#include <mutex>
#include <thread>

#include "compart/message.hpp"
#include "obs/metrics.hpp"
#include "support/result.hpp"

namespace csaw {

class TcpLoop {
 public:
  using DeliverFn = std::function<void(Envelope&&)>;

  // Establishes the loopback connection; CHECK-fails if sockets are
  // unavailable (the environment cannot provide the transport at all).
  // When `metrics` is non-null, frame/byte counters (tcp_frames_sent,
  // tcp_bytes_sent, tcp_frames_received, tcp_bytes_received) are registered
  // there; the registry must outlive this object.
  explicit TcpLoop(DeliverFn deliver, obs::Metrics* metrics = nullptr);
  ~TcpLoop();

  TcpLoop(const TcpLoop&) = delete;
  TcpLoop& operator=(const TcpLoop&) = delete;

  // Writes one envelope to the socket (thread-safe); delivery happens on
  // the reader thread.
  void send(const Envelope& env);

 private:
  void reader_loop();

  DeliverFn deliver_;
  int write_fd_ = -1;
  int read_fd_ = -1;
  std::mutex write_mu_;
  // Borrowed counter handles; all null when metrics are disabled.
  obs::Counter* frames_sent_ = nullptr;
  obs::Counter* bytes_sent_ = nullptr;
  obs::Counter* frames_received_ = nullptr;
  obs::Counter* bytes_received_ = nullptr;
  std::thread reader_;
};

}  // namespace csaw
