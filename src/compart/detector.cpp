#include "compart/detector.hpp"

#include <algorithm>
#include <utility>

namespace csaw {

FailureDetector::FailureDetector(Options options, obs::Metrics* metrics,
                                 obs::TraceSink* trace_sink)
    : suspicion_after_(options.heartbeat_interval *
                       std::max(options.suspect_after_missed, 1)),
      trace_sink_(trace_sink) {
  if (metrics != nullptr) {
    m_heartbeats_ = &metrics->counter("detector_heartbeats");
    m_suspicions_ = &metrics->counter("detector_suspicions");
    m_recoveries_ = &metrics->counter("detector_recoveries");
  }
}

void FailureDetector::observe(Symbol peer, std::uint64_t epoch,
                              std::vector<Symbol> running, SteadyTime now) {
  std::scoped_lock lock(mu_);
  auto& p = peers_[peer];
  // A frame carrying an epoch older than the peer's best-known one is a
  // stale writer (a pre-takeover straggler, or a flapping peer that came
  // back before its old frames drained). It must not refresh last_seen or
  // clear suspicion: otherwise a peer flapping faster than
  // suspect_after_missed keeps wiping its own suspicion with stale frames
  // and `detector_suspected` is never re-emitted. Epoch 0 is unversioned
  // (single-epoch deployments) and always counts.
  if (epoch != 0 && epoch < p.epoch) return;
  if (p.suspected) {
    p.suspected = false;
    if (m_recoveries_ != nullptr) m_recoveries_->add();
    if (trace_sink_ != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::TraceEvent::Kind::kCustom;
      e.label = Symbol("detector_recovered");
      e.peer = peer;
      trace_sink_->record(e);
    }
  }
  p.last_seen = now;
  if (epoch > p.epoch) p.epoch = epoch;
  p.running = std::unordered_set<Symbol>(running.begin(), running.end());
  ++p.heartbeats;
  if (m_heartbeats_ != nullptr) m_heartbeats_->add();
}

bool FailureDetector::forget(Symbol peer) {
  std::scoped_lock lock(mu_);
  return peers_.erase(peer) > 0;
}

void FailureDetector::refresh_locked(Symbol name, PeerState& p,
                                     SteadyTime now) const {
  if (p.suspected || now - p.last_seen <= suspicion_after_) return;
  p.suspected = true;
  if (m_suspicions_ != nullptr) m_suspicions_->add();
  if (trace_sink_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEvent::Kind::kCustom;
    e.label = Symbol("detector_suspected");
    e.peer = name;
    e.value_ns = static_cast<std::uint64_t>((now - p.last_seen).count());
    trace_sink_->record(e);
  }
}

bool FailureDetector::instance_alive(Symbol instance, SteadyTime now) const {
  std::scoped_lock lock(mu_);
  for (auto& [name, p] : peers_) {
    refresh_locked(name, p, now);
    if (!p.suspected && p.running.contains(instance)) return true;
  }
  return false;
}

bool FailureDetector::knows_instance(Symbol instance) const {
  std::scoped_lock lock(mu_);
  for (const auto& [name, p] : peers_) {
    if (p.running.contains(instance)) return true;
  }
  return false;
}

std::vector<FailureDetector::PeerInfo> FailureDetector::peers(
    SteadyTime now) const {
  std::scoped_lock lock(mu_);
  std::vector<PeerInfo> out;
  out.reserve(peers_.size());
  for (auto& [name, p] : peers_) {
    refresh_locked(name, p, now);
    out.push_back(PeerInfo{name, p.epoch, p.suspected, now - p.last_seen,
                           p.heartbeats});
  }
  return out;
}

}  // namespace csaw
