// Heartbeat failure detector.
//
// Each node in a TCP mesh periodically broadcasts a kHeartbeat frame to its
// peers carrying (node name, authority epoch, list of locally running
// instances). The detector on the receiving side keeps, per peer node, the
// time of the last heartbeat and the instance set it advertised, and derives
// suspicion lazily: a peer is suspected once `suspect_after_missed`
// heartbeat intervals elapse with nothing heard (Concerto-D-style
// decentralized liveness knowledge -- every node holds its own verdicts, no
// central observer). Remote instances become alive/dead through the peers
// that claim to run them, which is what lets `Runtime::is_running` -- and
// therefore the watched-failover watchdog's S(i) guards -- answer for
// instances hosted in another process.
//
// Verdicts are computed from timestamps at query time rather than by a
// timer thread: no extra thread, no verdict staler than the query, and
// tests can drive time explicitly.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/clock.hpp"
#include "support/symbol.hpp"

namespace csaw {

class FailureDetector {
 public:
  struct Options {
    // Expected heartbeat period (the sender's TcpOptions::heartbeat_interval).
    Nanos heartbeat_interval = std::chrono::milliseconds(50);
    // Suspect a peer after this many silent intervals. Lower = faster
    // detection, higher = fewer false suspicions under scheduling noise;
    // see DESIGN.md "Failure model & recovery" for tuning guidance.
    int suspect_after_missed = 3;
  };

  // Counters (detector_*) register on `metrics` when non-null; suspicion
  // transitions emit kCustom trace events on `trace_sink` when non-null.
  // Both are borrowed and must outlive the detector.
  explicit FailureDetector(Options options, obs::Metrics* metrics = nullptr,
                           obs::TraceSink* trace_sink = nullptr);

  // Feed one received heartbeat: `peer` is the sending node, `running` the
  // instances it advertises. A suspected peer heard from again recovers.
  void observe(Symbol peer, std::uint64_t epoch, std::vector<Symbol> running,
               SteadyTime now);

  // Drop all state for `peer`. Used when a peer leaves the cluster
  // deliberately (TcpTransport::remove_peer): a departed peer must stop
  // contributing instance-alive evidence and must not keep flapping between
  // suspected/recovered as its final frames drain. Returns whether the peer
  // was known.
  bool forget(Symbol peer);

  // True iff some fresh (un-suspected) peer advertises `instance` as
  // running. Unknown instances are not alive.
  [[nodiscard]] bool instance_alive(Symbol instance, SteadyTime now) const;

  // Whether any peer (fresh or not) has ever advertised `instance`:
  // distinguishes "dead" from "never heard of" for callers that want to
  // fall back to other evidence.
  [[nodiscard]] bool knows_instance(Symbol instance) const;

  struct PeerInfo {
    Symbol peer;
    std::uint64_t epoch = 0;
    bool suspected = false;
    Nanos since_last{0};
    std::uint64_t heartbeats = 0;
  };
  [[nodiscard]] std::vector<PeerInfo> peers(SteadyTime now) const;

  [[nodiscard]] Nanos suspicion_after() const { return suspicion_after_; }

 private:
  struct PeerState {
    SteadyTime last_seen{};
    std::uint64_t epoch = 0;
    std::unordered_set<Symbol> running;
    bool suspected = false;
    std::uint64_t heartbeats = 0;
  };

  // Updates `p.suspected` from `now`, counting/tracing the transition.
  void refresh_locked(Symbol name, PeerState& p, SteadyTime now) const;

  Nanos suspicion_after_;
  mutable std::mutex mu_;
  mutable std::map<Symbol, PeerState> peers_;

  obs::TraceSink* trace_sink_ = nullptr;
  obs::Counter* m_heartbeats_ = nullptr;
  obs::Counter* m_suspicions_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
};

}  // namespace csaw
