#include "compart/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <mutex>

#include "compart/wire.hpp"
#include "support/check.hpp"

namespace csaw {
namespace {

// Reads exactly n bytes; false on EOF/error.
bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const auto got = ::read(fd, p, n);
    if (got <= 0) return false;
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    const auto put = ::write(fd, p, n);
    if (put <= 0) return false;
    p += put;
    n -= static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace

TcpLoop::TcpLoop(DeliverFn deliver, obs::Metrics* metrics)
    : deliver_(std::move(deliver)) {
  if (metrics != nullptr) {
    frames_sent_ = &metrics->counter("tcp_frames_sent");
    bytes_sent_ = &metrics->counter("tcp_bytes_sent");
    frames_received_ = &metrics->counter("tcp_frames_received");
    bytes_received_ = &metrics->counter("tcp_bytes_received");
  }
  // Loopback listener on an ephemeral port; connect to ourselves; accept.
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  CSAW_CHECK(listener >= 0) << "socket() failed";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  CSAW_CHECK(::bind(listener, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0)
      << "bind() failed";
  CSAW_CHECK(::listen(listener, 1) == 0) << "listen() failed";
  socklen_t len = sizeof(addr);
  CSAW_CHECK(::getsockname(listener, reinterpret_cast<sockaddr*>(&addr),
                           &len) == 0)
      << "getsockname() failed";

  write_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  CSAW_CHECK(write_fd_ >= 0) << "socket() failed";
  CSAW_CHECK(::connect(write_fd_, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) == 0)
      << "connect() to loopback failed";
  read_fd_ = ::accept(listener, nullptr, nullptr);
  CSAW_CHECK(read_fd_ >= 0) << "accept() failed";
  ::close(listener);

  // Latency matters more than throughput for control messages.
  int one = 1;
  ::setsockopt(write_fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  reader_ = std::thread([this] { reader_loop(); });
}

TcpLoop::~TcpLoop() {
  // Closing the write side EOFs the reader, which then exits.
  if (write_fd_ >= 0) ::shutdown(write_fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  if (write_fd_ >= 0) ::close(write_fd_);
  if (read_fd_ >= 0) ::close(read_fd_);
}

void TcpLoop::send(const Envelope& env) {
  const Bytes payload = encode_envelope(env);
  std::uint32_t frame_len = htonl(static_cast<std::uint32_t>(payload.size()));
  std::scoped_lock lock(write_mu_);
  if (!write_exact(write_fd_, &frame_len, sizeof(frame_len))) return;
  (void)write_exact(write_fd_, payload.data(), payload.size());
  if (frames_sent_ != nullptr) {
    frames_sent_->add();
    bytes_sent_->add(payload.size() + sizeof(frame_len));
  }
}

void TcpLoop::reader_loop() {
  while (true) {
    std::uint32_t frame_len = 0;
    if (!read_exact(read_fd_, &frame_len, sizeof(frame_len))) return;
    Bytes payload(ntohl(frame_len));
    if (!payload.empty() &&
        !read_exact(read_fd_, payload.data(), payload.size())) {
      return;
    }
    if (frames_received_ != nullptr) {
      frames_received_->add();
      bytes_received_->add(payload.size() + sizeof(frame_len));
    }
    auto env = decode_envelope(payload);
    if (!env.ok()) continue;  // corrupt frame: drop, like a bad packet
    deliver_(std::move(*env));
  }
}

}  // namespace csaw
