#include "compart/tcp.hpp"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <random>

#include "obs/profile.hpp"
#include "support/check.hpp"

namespace csaw {

namespace tcpio {
namespace {

// Blocks until `fd` is ready for `events`, retrying EINTR.
bool wait_ready(int fd, short events) {
  pollfd p{fd, events, 0};
  while (true) {
    const int r = ::poll(&p, 1, -1);
    if (r >= 0) return true;
    if (errno != EINTR) return false;
  }
}

}  // namespace

bool read_exact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  while (n > 0) {
    const auto got = ::read(fd, p, n);
    if (got > 0) {
      p += got;
      n -= static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0) return false;  // EOF
    // A signal landing on the reader thread must not drop the stream.
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!wait_ready(fd, POLLIN)) return false;
      continue;
    }
    return false;
  }
  return true;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  while (n > 0) {
    // MSG_NOSIGNAL: a closed peer yields EPIPE here instead of a SIGPIPE
    // that would kill the whole process.
    const auto put = ::send(fd, p, n, MSG_NOSIGNAL);
    if (put > 0) {
      p += put;
      n -= static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    if (put < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!wait_ready(fd, POLLOUT)) return false;
      continue;
    }
    return false;
  }
  return true;
}

FrameStatus write_frame(int fd, const Bytes& payload, std::size_t max_frame) {
  if (payload.size() > max_frame) return FrameStatus::kOversize;
  std::uint32_t len = htonl(static_cast<std::uint32_t>(payload.size()));
  if (!write_exact(fd, &len, sizeof(len))) return FrameStatus::kError;
  if (!payload.empty() && !write_exact(fd, payload.data(), payload.size())) {
    return FrameStatus::kError;
  }
  return FrameStatus::kOk;
}

FrameStatus read_frame(int fd, Bytes* payload, std::size_t max_frame) {
  std::uint32_t len_be = 0;
  if (!read_exact(fd, &len_be, sizeof(len_be))) return FrameStatus::kEof;
  const std::size_t len = ntohl(len_be);
  // Bound check BEFORE the allocation: a corrupt header must not be able to
  // demand a multi-GiB buffer.
  if (len > max_frame) return FrameStatus::kOversize;
  payload->resize(len);
  if (len > 0 && !read_exact(fd, payload->data(), len)) {
    return FrameStatus::kError;  // truncated mid-frame
  }
  return FrameStatus::kOk;
}

}  // namespace tcpio

namespace {

constexpr int kMaxCoalescedFrames = 64;  // iovecs per sendmsg

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd, bool on) {
  int v = on ? 1 : 0;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &v, sizeof(v));
}

bool make_addr(const std::string& host, std::uint16_t port, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &out->sin_addr) == 1;
}

}  // namespace

TcpTransport::TcpTransport(DeliverFn deliver, TcpOptions options,
                           obs::Metrics* metrics, obs::TraceSink* trace_sink,
                           obs::Profiler* profiler)
    : deliver_(std::move(deliver)),
      options_(std::move(options)),
      trace_sink_(trace_sink),
      metrics_(metrics),
      profiler_(profiler),
      jitter_([] {
        std::random_device rd;
        return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
      }()) {
  if (metrics_ != nullptr) {
    frames_sent_ = &metrics_->counter("tcp_frames_sent");
    bytes_sent_ = &metrics_->counter("tcp_bytes_sent");
    frames_received_ = &metrics_->counter("tcp_frames_received");
    bytes_received_ = &metrics_->counter("tcp_bytes_received");
    frames_corrupt_ = &metrics_->counter("tcp_frames_corrupt");
    frames_oversize_ = &metrics_->counter("tcp_frames_oversize");
    send_failures_ = &metrics_->counter("tcp_send_failures");
    reconnects_ = &metrics_->counter("tcp_reconnects");
    queue_drops_ = &metrics_->counter("tcp_queue_drops");
  }

  if (options_.listen_port >= 0) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    CSAW_CHECK(listen_fd_ >= 0) << "socket() failed";
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    CSAW_CHECK(make_addr(options_.listen_host,
                         static_cast<std::uint16_t>(options_.listen_port),
                         &addr))
        << "bad listen host '" << options_.listen_host << "'";
    CSAW_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0)
        << "bind(" << options_.listen_host << ":" << options_.listen_port
        << ") failed: " << std::strerror(errno);
    CSAW_CHECK(::listen(listen_fd_, 16) == 0) << "listen() failed";
    socklen_t len = sizeof(addr);
    CSAW_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                             &len) == 0)
        << "getsockname() failed";
    listen_port_ = ntohs(addr.sin_port);
    set_nonblocking(listen_fd_);
  }

  int pipefd[2];
  CSAW_CHECK(::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) == 0) << "pipe2() failed";
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];

  {
    std::scoped_lock lock(mu_);
    instance_peers_ = options_.remote_instances;
    for (const auto& [name, addr] : options_.peers) {
      ensure_peer_locked(name, addr);
    }
    if (options_.loopback_self) {
      CSAW_CHECK(listen_fd_ >= 0) << "loopback transport needs a listener";
      ensure_peer_locked("self", TcpPeerAddr{options_.listen_host,
                                             listen_port_});
    }
  }

  thread_ = std::thread([this] { loop(); });
}

TcpTransport::~TcpTransport() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  wake();
  if (thread_.joinable()) thread_.join();
  for (auto& [name, p] : peers_) {
    if (p->fd >= 0) ::close(p->fd);
  }
  for (auto& p : doomed_) {
    if (p->fd >= 0) ::close(p->fd);
  }
  for (auto& c : conns_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
}

void TcpTransport::wake() {
  const std::uint8_t b = 1;
  // Best-effort: a full pipe already guarantees a pending wakeup.
  [[maybe_unused]] auto n = ::write(wake_w_, &b, 1);
}

TcpTransport::Peer& TcpTransport::ensure_peer_locked(const std::string& name,
                                                     TcpPeerAddr addr) {
  auto it = peers_.find(name);
  if (it != peers_.end()) {
    it->second->addr = std::move(addr);
    return *it->second;
  }
  auto p = std::make_unique<Peer>();
  p->name = name;
  p->addr = std::move(addr);
  p->retry_at = steady_now();  // connect eagerly
  if (metrics_ != nullptr) {
    p->m_frames_sent = &metrics_->counter("tcp_peer_" + name + "_frames_sent");
    p->m_bytes_sent = &metrics_->counter("tcp_peer_" + name + "_bytes_sent");
    p->m_reconnects = &metrics_->counter("tcp_peer_" + name + "_reconnects");
    p->m_queue_drops = &metrics_->counter("tcp_peer_" + name + "_queue_drops");
  }
  if (profiler_ != nullptr) {
    p->prof_depth = profiler_->link_queue_depth(name);
  }
  auto& ref = *p;
  peers_.emplace(name, std::move(p));
  return ref;
}

void TcpTransport::set_heartbeat_source(std::function<Envelope()> source) {
  {
    std::scoped_lock lock(mu_);
    heartbeat_source_ = std::move(source);
  }
  wake();
}

void TcpTransport::add_peer(const std::string& name, TcpPeerAddr addr) {
  {
    std::scoped_lock lock(mu_);
    ensure_peer_locked(name, std::move(addr));
  }
  wake();
}

void TcpTransport::map_instance(Symbol instance, const std::string& peer) {
  std::scoped_lock lock(mu_);
  instance_peers_[instance] = peer;
}

bool TcpTransport::remove_peer(const std::string& name) {
  bool known = false;
  std::size_t dropped = 0;
  {
    std::scoped_lock lock(mu_);
    auto it = peers_.find(name);
    if (it != peers_.end()) {
      known = true;
      Peer& p = *it->second;
      dropped = p.queue.size();
      if (dropped > 0) {
        p.queue_drops += dropped;
        if (p.m_queue_drops != nullptr) p.m_queue_drops->add(dropped);
        if (queue_drops_ != nullptr) queue_drops_->add(dropped);
      }
      p.queue.clear();
      p.write_off = 0;
      // The fd stays open until the event loop (its owner) closes it; the
      // peer is unreachable by name from this point on.
      doomed_.push_back(std::move(it->second));
      peers_.erase(it);
    }
    for (auto mit = instance_peers_.begin(); mit != instance_peers_.end();) {
      if (mit->second == name) {
        mit = instance_peers_.erase(mit);
      } else {
        ++mit;
      }
    }
  }
  wake();
  if (known) trace_anomaly("tcp_peer_removed", dropped);
  return known;
}

void TcpTransport::unmap_instance(Symbol instance) {
  std::scoped_lock lock(mu_);
  instance_peers_.erase(instance);
}

bool TcpTransport::kill_peer_connection(const std::string& name) {
  bool known = false;
  {
    std::scoped_lock lock(mu_);
    auto it = peers_.find(name);
    if (it != peers_.end()) {
      known = true;
      it->second->kill = true;
    }
  }
  wake();
  if (known) trace_anomaly("tcp_conn_killed", 0);
  return known;
}

void TcpTransport::kill_all_connections() {
  std::size_t n = 0;
  {
    std::scoped_lock lock(mu_);
    for (auto& [name, p] : peers_) {
      p->kill = true;
      ++n;
    }
  }
  wake();
  trace_anomaly("tcp_reconnect_storm", n);
}

bool TcpTransport::routes_instance(Symbol instance) const {
  std::scoped_lock lock(mu_);
  return instance_peers_.contains(instance);
}

bool TcpTransport::route(const Envelope& env) {
  std::string peer;
  {
    std::scoped_lock lock(mu_);
    if (options_.loopback_self) {
      peer = "self";
    } else {
      auto it = instance_peers_.find(env.to.instance);
      if (it == instance_peers_.end()) return false;
      peer = it->second;
    }
  }
  return send_to(peer, env);
}

bool TcpTransport::send_to(const std::string& peer, const Envelope& env) {
  const Bytes payload = encode_envelope(env);
  const char* drop_reason = nullptr;
  {
    std::scoped_lock lock(mu_);
    auto it = peers_.find(peer);
    if (it == peers_.end()) return false;
    Peer& p = *it->second;
    if (payload.size() > options_.max_frame_bytes) {
      // Encode-side bound: the frame would be rejected (and the connection
      // killed) at the receiver anyway; refuse it here where the sender can
      // still be told.
      if (frames_oversize_ != nullptr) frames_oversize_->add();
      if (send_failures_ != nullptr) send_failures_->add();
      drop_reason = "frame exceeds max_frame_bytes";
    } else if (p.queue.size() >= options_.send_queue_cap) {
      ++p.queue_drops;
      if (p.m_queue_drops != nullptr) p.m_queue_drops->add();
      if (queue_drops_ != nullptr) queue_drops_->add();
      drop_reason = "send queue overflow";
    } else {
      Bytes frame(sizeof(std::uint32_t) + payload.size());
      const std::uint32_t len =
          htonl(static_cast<std::uint32_t>(payload.size()));
      std::memcpy(frame.data(), &len, sizeof(len));
      std::memcpy(frame.data() + sizeof(len), payload.data(), payload.size());
      p.queue.push_back(std::move(frame));
      // Depth *after* the push: the backlog this frame joins.
      if (p.prof_depth != nullptr) p.prof_depth->record(p.queue.size());
    }
  }
  if (drop_reason == nullptr) {
    wake();
    return true;
  }
  trace_anomaly("tcp_frame_dropped", payload.size());
  // Surface the loss to the local sender: failover/watched-failover see a
  // prompt kUnreachable instead of waiting out the push deadline.
  nack_back(env, std::string(drop_reason) + " to peer '" + peer + "'");
  return true;
}

void TcpTransport::nack_back(const Envelope& env, const std::string& reason) {
  if (env.kind != Envelope::Kind::kUpdate || env.seq == 0) return;
  Envelope ack;
  ack.kind = Envelope::Kind::kAck;
  ack.seq = env.seq;
  ack.from_instance = env.to.instance;
  ack.to = JunctionAddr{env.from_instance, Symbol()};
  ack.nack = true;
  ack.nack_reason = "tcp: " + reason;
  deliver_(std::move(ack));
}

void TcpTransport::trace_anomaly(const char* label, std::uint64_t value) {
  if (trace_sink_ == nullptr) return;
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::kCustom;
  e.instance = Symbol("tcp");
  e.label = Symbol(label);
  e.value_ns = value;
  trace_sink_->record(e);
}

void TcpTransport::start_connect_locked(Peer& p) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    schedule_retry_locked(p);
    return;
  }
  sockaddr_in addr{};
  if (!make_addr(p.addr.host, p.addr.port, &addr)) {
    ::close(fd);
    schedule_retry_locked(p);
    return;
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc == 0) {
    on_connected_locked(p, fd);
  } else if (errno == EINPROGRESS) {
    p.fd = fd;
    p.state = Peer::State::kConnecting;
  } else {
    ::close(fd);
    schedule_retry_locked(p);
  }
}

void TcpTransport::on_connected_locked(Peer& p, int fd) {
  p.fd = fd;
  p.state = Peer::State::kConnected;
  p.backoff = Nanos{0};
  p.write_off = 0;  // a partial frame from the old connection restarts whole
  set_nodelay(fd, options_.nodelay);
  if (p.ever_connected) {
    ++p.reconnects;
    if (p.m_reconnects != nullptr) p.m_reconnects->add();
    if (reconnects_ != nullptr) reconnects_->add();
  }
  p.ever_connected = true;
}

void TcpTransport::schedule_retry_locked(Peer& p) {
  if (p.fd >= 0) ::close(p.fd);
  p.fd = -1;
  p.state = Peer::State::kIdle;
  const Nanos initial = options_.backoff_initial;
  const Nanos cap = options_.backoff_max;
  p.backoff = p.backoff.count() == 0
                  ? initial
                  : std::min<Nanos>(p.backoff * 2, cap);
  // Jitter uniformly in [backoff/2, backoff] so a restarted peer is not hit
  // by every sender in lockstep.
  const auto half = static_cast<std::uint64_t>(p.backoff.count() / 2);
  const Nanos delay{half + jitter_.below(half + 1)};
  p.retry_at = steady_now() + delay;
}

void TcpTransport::poison_locked(Peer& p, bool count_send_failure) {
  // A connection dying with frames still queued (or a partially-written
  // front frame) is a send failure however the death was observed (sendmsg
  // error, EOF, POLLERR): sends pending on this connection will never
  // complete on it. An idle connection dropping is just a reconnect.
  if ((count_send_failure || p.write_off > 0 || !p.queue.empty()) &&
      send_failures_ != nullptr) {
    send_failures_->add();
  }
  // Keep the queue: everything unsent (including the partially-written
  // front frame, restarted from byte 0) goes out on the next connection.
  schedule_retry_locked(p);
}

void TcpTransport::flush_locked(Peer& p) {
  while (p.state == Peer::State::kConnected && !p.queue.empty()) {
    iovec iov[kMaxCoalescedFrames];
    int cnt = 0;
    iov[cnt].iov_base = p.queue.front().data() + p.write_off;
    iov[cnt].iov_len = p.queue.front().size() - p.write_off;
    ++cnt;
    if (options_.coalesce) {
      for (std::size_t i = 1;
           i < p.queue.size() && cnt < kMaxCoalescedFrames; ++i, ++cnt) {
        iov[cnt].iov_base = p.queue[i].data();
        iov[cnt].iov_len = p.queue[i].size();
      }
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(cnt);
    ssize_t n;
    do {
      n = ::sendmsg(p.fd, &msg, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // wait for POLLOUT
      // Hard failure (EPIPE, ECONNRESET, ...): this connection is poisoned
      // -- a partial header/payload write on it would desync the framing,
      // so it is never reused. Counted as a send failure, NOT as sent.
      poison_locked(p, /*count_send_failure=*/true);
      return;
    }
    // Success counters only cover frames that went out whole.
    auto remaining = static_cast<std::size_t>(n);
    while (remaining > 0 && !p.queue.empty()) {
      const std::size_t left = p.queue.front().size() - p.write_off;
      if (remaining >= left) {
        remaining -= left;
        const std::size_t frame_bytes = p.queue.front().size();
        ++p.frames_sent;
        p.bytes_sent += frame_bytes;
        if (p.m_frames_sent != nullptr) p.m_frames_sent->add();
        if (p.m_bytes_sent != nullptr) p.m_bytes_sent->add(frame_bytes);
        if (frames_sent_ != nullptr) frames_sent_->add();
        if (bytes_sent_ != nullptr) bytes_sent_->add(frame_bytes);
        p.queue.pop_front();
        p.write_off = 0;
      } else {
        p.write_off += remaining;
        remaining = 0;
      }
    }
  }
}

void TcpTransport::handle_peer_event(const std::string& name, short revents) {
  std::scoped_lock lock(mu_);
  auto it = peers_.find(name);
  if (it == peers_.end()) return;
  Peer& p = *it->second;
  if (p.state == Peer::State::kConnecting) {
    if ((revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
          err != 0) {
        schedule_retry_locked(p);
        return;
      }
      const int fd = p.fd;
      on_connected_locked(p, fd);
      flush_locked(p);
    }
    return;
  }
  if (p.state != Peer::State::kConnected) return;
  if ((revents & POLLIN) != 0) {
    // Peers never send application data on our outbound connections; any
    // readability is either an EOF/RST (connection gone) or stray bytes we
    // discard.
    std::uint8_t scratch[256];
    while (true) {
      const auto got = ::read(p.fd, scratch, sizeof(scratch));
      if (got > 0) continue;
      if (got == 0) {
        poison_locked(p, /*count_send_failure=*/false);
        return;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      poison_locked(p, /*count_send_failure=*/false);
      return;
    }
  }
  if ((revents & (POLLERR | POLLHUP)) != 0) {
    poison_locked(p, /*count_send_failure=*/false);
    return;
  }
  flush_locked(p);
}

void TcpTransport::complete_inbound_frame(InConn& c) {
  if (frames_received_ != nullptr) frames_received_->add();
  if (bytes_received_ != nullptr) {
    bytes_received_->add(c.payload.size() + sizeof(c.hdr));
  }
  auto env = decode_envelope(c.payload);
  if (!env.ok()) {
    // Corrupt frame: the framing itself is intact (the length was valid),
    // so the connection survives -- but the loss must be visible to the
    // collector, not silent.
    if (frames_corrupt_ != nullptr) frames_corrupt_->add();
    trace_anomaly("tcp_frame_corrupt", c.payload.size());
  } else {
    deliver_(std::move(*env));
  }
  c.hdr_got = 0;
  c.in_payload = false;
  c.payload.clear();
  c.payload_got = 0;
}

bool TcpTransport::handle_inbound_readable(InConn& c) {
  while (true) {
    if (!c.in_payload) {
      const auto got = ::read(c.fd, c.hdr + c.hdr_got, sizeof(c.hdr) - c.hdr_got);
      if (got == 0) return false;  // clean close (mid-header = truncated tail)
      if (got < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;
      }
      c.hdr_got += static_cast<std::size_t>(got);
      if (c.hdr_got < sizeof(c.hdr)) continue;
      std::uint32_t len_be;
      std::memcpy(&len_be, c.hdr, sizeof(len_be));
      const std::size_t len = ntohl(len_be);
      if (len > options_.max_frame_bytes) {
        // Oversize header: likely corruption. Reject BEFORE allocating the
        // payload (a bad header must not cost gigabytes) and drop the
        // connection -- after a bogus length the stream can't be resynced.
        if (frames_oversize_ != nullptr) frames_oversize_->add();
        trace_anomaly("tcp_frame_oversize", len);
        return false;
      }
      c.payload.resize(len);
      c.payload_got = 0;
      c.in_payload = true;
      if (len == 0) complete_inbound_frame(c);
      continue;
    }
    const auto got = ::read(c.fd, c.payload.data() + c.payload_got,
                            c.payload.size() - c.payload_got);
    if (got == 0) return false;  // truncated mid-frame
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
    c.payload_got += static_cast<std::size_t>(got);
    if (c.payload_got == c.payload.size()) complete_inbound_frame(c);
  }
}

void TcpTransport::loop() {
  enum class Slot { kWake, kListen, kPeer, kConn };
  struct Meta {
    Slot slot;
    std::string peer;       // kPeer
    std::size_t conn = 0;   // kConn
  };
  std::vector<pollfd> pfds;
  std::vector<Meta> meta;

  const Nanos hb_interval = options_.heartbeat_interval;

  while (true) {
    // Heartbeats: fire outside mu_ -- the source callback reads runtime
    // state whose locks are taken while calling back into send_to (which
    // locks mu_), so holding mu_ here would invert that order.
    if (hb_interval.count() > 0) {
      const SteadyTime now = steady_now();
      if (now >= next_heartbeat_) {
        std::function<Envelope()> source;
        std::vector<std::string> names;
        {
          std::scoped_lock lock(mu_);
          source = heartbeat_source_;
          names.reserve(peers_.size());
          for (const auto& [name, p] : peers_) names.push_back(name);
        }
        if (source) {
          const Envelope hb = source();
          for (const auto& name : names) (void)send_to(name, hb);
        }
        next_heartbeat_ = now + hb_interval;
      }
    }

    pfds.clear();
    meta.clear();
    pfds.push_back({wake_r_, POLLIN, 0});
    meta.push_back({Slot::kWake, {}, 0});
    if (listen_fd_ >= 0) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      meta.push_back({Slot::kListen, {}, 0});
    }

    Nanos timeout{-1};
    if (hb_interval.count() > 0) timeout = next_heartbeat_ - steady_now();
    {
      std::scoped_lock lock(mu_);
      if (stop_) return;
      // Deferred work owned by this thread: close fds of removed peers (no
      // other thread may close an fd this loop could be polling) and drop
      // chaos-killed connections so backoff/reconnect takes over.
      for (auto& p : doomed_) {
        if (p->fd >= 0) ::close(p->fd);
      }
      doomed_.clear();
      for (auto& [name, p] : peers_) {
        if (p->kill) {
          p->kill = false;
          if (p->state != Peer::State::kIdle) {
            poison_locked(*p, /*count_send_failure=*/false);
          }
        }
      }
      const SteadyTime now = steady_now();
      for (auto& [name, p] : peers_) {
        if (p->state == Peer::State::kIdle && now >= p->retry_at) {
          start_connect_locked(*p);
          if (p->state == Peer::State::kConnected) flush_locked(*p);
        }
        switch (p->state) {
          case Peer::State::kIdle: {
            const Nanos until = p->retry_at - now;
            if (timeout.count() < 0 || until < timeout) timeout = until;
            break;
          }
          case Peer::State::kConnecting:
            pfds.push_back({p->fd, POLLOUT, 0});
            meta.push_back({Slot::kPeer, name, 0});
            break;
          case Peer::State::kConnected: {
            short ev = POLLIN;
            if (!p->queue.empty()) ev |= POLLOUT;
            pfds.push_back({p->fd, ev, 0});
            meta.push_back({Slot::kPeer, name, 0});
            break;
          }
        }
      }
    }
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      pfds.push_back({conns_[i].fd, POLLIN, 0});
      meta.push_back({Slot::kConn, {}, i});
    }

    int timeout_ms = -1;
    if (timeout.count() >= 0) {
      timeout_ms = static_cast<int>(
          std::chrono::ceil<Millis>(std::max(timeout, Nanos{0})).count());
      timeout_ms = std::max(timeout_ms, 1);
    }
    const int r = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      return;  // poll itself failed; nothing sane left to do
    }

    bool sweep_conns = false;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      switch (meta[i].slot) {
        case Slot::kWake: {
          std::uint8_t buf[64];
          while (::read(wake_r_, buf, sizeof(buf)) > 0) {
          }
          break;
        }
        case Slot::kListen: {
          while (true) {
            const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                     SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (fd < 0) {
              if (errno == EINTR) continue;
              break;  // EAGAIN or transient accept failure
            }
            InConn c;
            c.fd = fd;
            conns_.push_back(std::move(c));
          }
          break;
        }
        case Slot::kPeer:
          handle_peer_event(meta[i].peer, pfds[i].revents);
          break;
        case Slot::kConn: {
          InConn& c = conns_[meta[i].conn];
          if (!handle_inbound_readable(c)) {
            ::close(c.fd);
            c.fd = -1;
            sweep_conns = true;
          }
          break;
        }
      }
    }
    if (sweep_conns) {
      conns_.erase(std::remove_if(conns_.begin(), conns_.end(),
                                  [](const InConn& c) { return c.fd < 0; }),
                   conns_.end());
    }
  }
}

std::map<std::string, TcpTransport::PeerStats> TcpTransport::peer_stats()
    const {
  std::scoped_lock lock(mu_);
  std::map<std::string, PeerStats> out;
  for (const auto& [name, p] : peers_) {
    PeerStats s;
    s.connected = p->state == Peer::State::kConnected;
    s.queued = p->queue.size();
    s.frames_sent = p->frames_sent;
    s.bytes_sent = p->bytes_sent;
    s.reconnects = p->reconnects;
    s.queue_drops = p->queue_drops;
    out.emplace(name, s);
  }
  return out;
}

}  // namespace csaw
