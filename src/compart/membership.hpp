// Dynamic cluster membership: the replicated bucket routing table.
//
// The runtime's unit of data placement for live resharding is a fixed set of
// hash buckets (vbucket style): every key hashes (djb2, the same hash the
// sharding pattern uses) into one of `buckets()` slots, and a BucketMap
// assigns each slot an owning instance. The map is *versioned by the
// persisted authority epoch* (compart/runtime.hpp "split-brain prevention"),
// so stale routes are fenced exactly like stale writers: a client or peer
// holding version v must be refused by an owner whose table has advanced to
// v' > v, and a RoutingTable only ever adopts a strictly newer map
// (adopt-if-newer), never regresses.
//
// The map is deliberately tiny and value-typed: control planes install a new
// map atomically at ownership flips (the rebalance handoff's last step), and
// replicas/clients refresh by copying the whole thing -- no incremental
// protocol to corrupt mid-crash.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serdes/archive.hpp"
#include "support/result.hpp"
#include "support/symbol.hpp"

namespace csaw {

struct BucketMap {
  // Routing epoch. 0 = never installed; real maps carry the authority epoch
  // at which they were published, so "newer map" and "newer writer" are the
  // same ordering.
  std::uint64_t version = 0;
  // bucket index -> owning instance name. size() is the (fixed) bucket
  // count; resharding reassigns owners, it never changes the bucket count.
  std::vector<std::string> owners;

  [[nodiscard]] std::size_t buckets() const { return owners.size(); }

  // Which bucket `key` lives in (djb2 mod bucket count; 0 when empty).
  [[nodiscard]] std::size_t bucket_of(std::string_view key) const;
  static std::size_t bucket_of(std::string_view key, std::size_t buckets);

  // The owner of `key`'s bucket (empty string when the map is empty).
  [[nodiscard]] const std::string& owner_of(std::string_view key) const;

  // All buckets currently assigned to `owner`.
  [[nodiscard]] std::vector<std::size_t> buckets_of(
      std::string_view owner) const;

  // An even round-robin assignment of `buckets` slots over `owners`.
  static BucketMap even(std::uint64_t version,
                        const std::vector<std::string>& owners,
                        std::size_t buckets);

  // Wire/persistence form (serdes-framed; decode rejects garbage).
  [[nodiscard]] Bytes encode() const;
  static Result<BucketMap> decode(const Bytes& bytes);
};

template <typename Ar>
void serdes_fields(Ar& ar, BucketMap& m) {
  ar.field(m.version);
  ar.field(m.owners);
}

// Thread-safe holder of the locally-known newest BucketMap. Shared by the
// request path (owner_of on every routed command), the control plane
// (install at flips), and refresh paths (adopt from an authority or a
// kWrongOwner nack carrying a newer version).
class RoutingTable {
 public:
  RoutingTable() = default;
  explicit RoutingTable(BucketMap initial) : map_(std::move(initial)) {}

  [[nodiscard]] BucketMap snapshot() const {
    std::scoped_lock lock(mu_);
    return map_;
  }
  [[nodiscard]] std::uint64_t version() const {
    std::scoped_lock lock(mu_);
    return map_.version;
  }
  [[nodiscard]] std::size_t buckets() const {
    std::scoped_lock lock(mu_);
    return map_.buckets();
  }
  [[nodiscard]] std::string owner_of(std::string_view key) const {
    std::scoped_lock lock(mu_);
    return map_.owner_of(key);
  }
  [[nodiscard]] std::string owner_of_bucket(std::size_t bucket) const {
    std::scoped_lock lock(mu_);
    return bucket < map_.owners.size() ? map_.owners[bucket] : std::string();
  }

  // Adopts `map` iff it is strictly newer than what we hold (the stale-route
  // fence). Returns whether it was adopted.
  bool adopt(BucketMap map) {
    std::scoped_lock lock(mu_);
    if (map.version <= map_.version) return false;
    map_ = std::move(map);
    return true;
  }

  // Unconditional install -- the authority's own publish path (its version
  // is the epoch it just bumped, by construction newer than anything seen).
  void install(BucketMap map) {
    std::scoped_lock lock(mu_);
    map_ = std::move(map);
  }

 private:
  mutable std::mutex mu_;
  BucketMap map_;
};

}  // namespace csaw
