#include "compart/wire.hpp"

namespace csaw {
namespace {

void put_symbol(ByteWriter& w, Symbol s) {
  w.str(s.valid() ? s.str() : std::string());
}

Result<Symbol> get_symbol(ByteReader& r) {
  auto s = r.str();
  if (!s) return s.error();
  if (s->empty()) return Symbol();
  return Symbol(*s);
}

}  // namespace

Bytes encode_envelope(const Envelope& env) {
  ByteWriter w;
  switch (env.kind) {
    case Envelope::Kind::kUpdate: w.u8(0); break;
    case Envelope::Kind::kAck: w.u8(1); break;
    case Envelope::Kind::kHeartbeat: w.u8(2); break;
  }
  w.uvarint(env.seq);
  put_symbol(w, env.from_instance);
  put_symbol(w, env.to.instance);
  put_symbol(w, env.to.junction);
  w.u8(static_cast<std::uint8_t>(env.update.kind));
  put_symbol(w, env.update.key);
  put_symbol(w, env.update.value.type);
  w.blob(env.update.value.bytes);
  w.str(env.update.from);
  w.u8(env.nack ? 1 : 0);
  w.str(env.nack_reason);
  // Optional trailer sections, each introduced by a one-byte tag, so that
  // frames from senders without the feature stay byte-identical to the
  // older formats: the section is simply absent. Decoders treat "frame ends
  // here" as "no more sections", which is also what makes old frames decode
  // cleanly. Tags must appear in ascending order (1 = trace context,
  // 2 = authority epoch).
  if (env.ctx.has_value()) {
    w.u8(1);
    w.uvarint(env.ctx->trace_id);
    w.uvarint(env.ctx->span_id);
    w.uvarint(env.ctx->hlc.physical_us);
    w.uvarint(env.ctx->hlc.logical);
  }
  if (env.epoch != 0) {
    w.u8(2);
    w.uvarint(env.epoch);
  }
  return w.take();
}

Result<Envelope> decode_envelope(const Bytes& data) {
  ByteReader r(data);
  Envelope env;
  auto kind = r.u8();
  if (!kind) return kind.error();
  if (*kind > 2) return make_error(Errc::kDecode, "bad envelope kind");
  env.kind = static_cast<Envelope::Kind>(*kind);
  auto seq = r.uvarint();
  if (!seq) return seq.error();
  env.seq = *seq;
  auto from = get_symbol(r);
  if (!from) return from.error();
  env.from_instance = *from;
  auto to_inst = get_symbol(r);
  if (!to_inst) return to_inst.error();
  env.to.instance = *to_inst;
  auto to_junction = get_symbol(r);
  if (!to_junction) return to_junction.error();
  env.to.junction = *to_junction;
  auto ukind = r.u8();
  if (!ukind) return ukind.error();
  if (*ukind > 2) return make_error(Errc::kDecode, "bad update kind");
  env.update.kind = static_cast<Update::Kind>(*ukind);
  auto key = get_symbol(r);
  if (!key) return key.error();
  env.update.key = *key;
  auto vtype = get_symbol(r);
  if (!vtype) return vtype.error();
  env.update.value.type = *vtype;
  auto vbytes = r.blob();
  if (!vbytes) return vbytes.error();
  env.update.value.bytes = std::move(*vbytes);
  auto ufrom = r.str();
  if (!ufrom) return ufrom.error();
  env.update.from = std::move(*ufrom);
  auto nack = r.u8();
  if (!nack) return nack.error();
  env.nack = *nack != 0;
  auto reason = r.str();
  if (!reason) return reason.error();
  env.nack_reason = std::move(*reason);
  // Optional tagged trailer sections: a frame that ends at any point here
  // (old senders, features disabled) decodes with the defaults, not an
  // error. Tags must ascend, so an unknown or out-of-order tag is corrupt.
  std::uint8_t last_tag = 0;
  while (!r.exhausted()) {
    auto marker = r.u8();
    if (!marker) return marker.error();
    if (*marker <= last_tag) {
      return make_error(Errc::kDecode, "bad trailer tag order");
    }
    last_tag = *marker;
    switch (*marker) {
      case 1: {
        obs::TraceContext ctx;
        auto trace_id = r.uvarint();
        if (!trace_id) return trace_id.error();
        ctx.trace_id = *trace_id;
        auto span_id = r.uvarint();
        if (!span_id) return span_id.error();
        ctx.span_id = *span_id;
        auto physical = r.uvarint();
        if (!physical) return physical.error();
        ctx.hlc.physical_us = *physical;
        auto logical = r.uvarint();
        if (!logical) return logical.error();
        ctx.hlc.logical = static_cast<std::uint32_t>(*logical);
        env.ctx = ctx;
        break;
      }
      case 2: {
        auto epoch = r.uvarint();
        if (!epoch) return epoch.error();
        env.epoch = *epoch;
        break;
      }
      default:
        return make_error(Errc::kDecode, "bad trailer tag");
    }
  }
  return env;
}

}  // namespace csaw
