#include "compart/wire.hpp"

namespace csaw {
namespace {

void put_symbol(ByteWriter& w, Symbol s) {
  w.str(s.valid() ? s.str() : std::string());
}

Result<Symbol> get_symbol(ByteReader& r) {
  auto s = r.str();
  if (!s) return s.error();
  if (s->empty()) return Symbol();
  return Symbol(*s);
}

}  // namespace

Bytes encode_envelope(const Envelope& env) {
  ByteWriter w;
  w.u8(env.kind == Envelope::Kind::kUpdate ? 0 : 1);
  w.uvarint(env.seq);
  put_symbol(w, env.from_instance);
  put_symbol(w, env.to.instance);
  put_symbol(w, env.to.junction);
  w.u8(static_cast<std::uint8_t>(env.update.kind));
  put_symbol(w, env.update.key);
  put_symbol(w, env.update.value.type);
  w.blob(env.update.value.bytes);
  w.str(env.update.from);
  w.u8(env.nack ? 1 : 0);
  w.str(env.nack_reason);
  // Trace context travels as an optional trailer so that frames from
  // untraced senders stay byte-identical to the pre-tracing format: the
  // trailer is simply absent. Decoders treat "frame ends here" as "no
  // context", which is also what makes old frames decode cleanly.
  if (env.ctx.has_value()) {
    w.u8(1);
    w.uvarint(env.ctx->trace_id);
    w.uvarint(env.ctx->span_id);
    w.uvarint(env.ctx->hlc.physical_us);
    w.uvarint(env.ctx->hlc.logical);
  }
  return w.take();
}

Result<Envelope> decode_envelope(const Bytes& data) {
  ByteReader r(data);
  Envelope env;
  auto kind = r.u8();
  if (!kind) return kind.error();
  env.kind = *kind == 0 ? Envelope::Kind::kUpdate : Envelope::Kind::kAck;
  auto seq = r.uvarint();
  if (!seq) return seq.error();
  env.seq = *seq;
  auto from = get_symbol(r);
  if (!from) return from.error();
  env.from_instance = *from;
  auto to_inst = get_symbol(r);
  if (!to_inst) return to_inst.error();
  env.to.instance = *to_inst;
  auto to_junction = get_symbol(r);
  if (!to_junction) return to_junction.error();
  env.to.junction = *to_junction;
  auto ukind = r.u8();
  if (!ukind) return ukind.error();
  if (*ukind > 2) return make_error(Errc::kDecode, "bad update kind");
  env.update.kind = static_cast<Update::Kind>(*ukind);
  auto key = get_symbol(r);
  if (!key) return key.error();
  env.update.key = *key;
  auto vtype = get_symbol(r);
  if (!vtype) return vtype.error();
  env.update.value.type = *vtype;
  auto vbytes = r.blob();
  if (!vbytes) return vbytes.error();
  env.update.value.bytes = std::move(*vbytes);
  auto ufrom = r.str();
  if (!ufrom) return ufrom.error();
  env.update.from = std::move(*ufrom);
  auto nack = r.u8();
  if (!nack) return nack.error();
  env.nack = *nack != 0;
  auto reason = r.str();
  if (!reason) return reason.error();
  env.nack_reason = std::move(*reason);
  // Optional trace-context trailer: a frame that ends here (old senders,
  // untraced senders) decodes with a null context, not an error.
  if (!r.exhausted()) {
    auto marker = r.u8();
    if (!marker) return marker.error();
    if (*marker != 1) return make_error(Errc::kDecode, "bad trace-ctx marker");
    obs::TraceContext ctx;
    auto trace_id = r.uvarint();
    if (!trace_id) return trace_id.error();
    ctx.trace_id = *trace_id;
    auto span_id = r.uvarint();
    if (!span_id) return span_id.error();
    ctx.span_id = *span_id;
    auto physical = r.uvarint();
    if (!physical) return physical.error();
    ctx.hlc.physical_us = *physical;
    auto logical = r.uvarint();
    if (!logical) return logical.error();
    ctx.hlc.logical = static_cast<std::uint32_t>(*logical);
    env.ctx = ctx;
  }
  if (!r.exhausted()) return make_error(Errc::kDecode, "trailing bytes");
  return env;
}

}  // namespace csaw
