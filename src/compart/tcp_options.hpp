// Configuration for the TCP transport (compart/tcp.hpp), split out so that
// RuntimeOptions can embed it without pulling socket machinery into every
// runtime user.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "support/clock.hpp"
#include "support/symbol.hpp"

namespace csaw {

// Where a peer process listens. Host is a dotted-quad IPv4 literal (the
// transport does no name resolution; distributed deployments hand it
// addresses, not names).
struct TcpPeerAddr {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct TcpOptions {
  // Listener for inbound peer connections. Port 0 binds an ephemeral port
  // (read it back with TcpTransport::port()); -1 disables the listener
  // (a send-only node).
  std::string listen_host = "127.0.0.1";
  int listen_port = 0;

  // Outbound peers by name. The transport keeps one connection per peer,
  // established eagerly and re-established under exponential backoff with
  // jitter whenever it drops.
  std::map<std::string, TcpPeerAddr> peers;
  // Which peer hosts which remote instance: envelopes addressed to an
  // instance in this map (and not hosted locally) are sent to that peer.
  std::map<Symbol, std::string> remote_instances;

  // Hard bound on one encoded envelope, enforced on both send (refused,
  // counted as tcp_send_failures + tcp_frames_oversize) and receive (frame
  // rejected *before* the payload allocation, connection closed). A corrupt
  // 4-byte length header can therefore cost at most one bounded allocation.
  std::size_t max_frame_bytes = std::size_t{4} << 20;  // 4 MiB

  // Envelopes queued per peer while its connection is down or slow. On
  // overflow the newest envelope is dropped, counted (tcp_queue_drops), and
  // -- for ack-carrying updates -- nacked back to the local sender so
  // failover patterns observe kUnreachable instead of waiting out their
  // deadline.
  std::size_t send_queue_cap = 1024;

  // Reconnect schedule: first retry after backoff_initial, doubling to
  // backoff_max, each delay jittered uniformly in [d/2, d].
  Millis backoff_initial{10};
  Millis backoff_max{2000};

  // Failure detection (compart/detector.hpp). When heartbeat_interval > 0
  // the transport's event loop emits one kHeartbeat frame per interval to
  // every peer; the Runtime supplies the frame (node name, authority epoch,
  // running-instance list) and feeds received heartbeats to its
  // FailureDetector. 0 keeps heartbeats off (the default: single-process
  // and latency-sensitive configurations pay nothing).
  Millis heartbeat_interval{0};
  // Peers are suspected after this many silent intervals.
  int suspect_after_missed = 3;
  // This node's name in outgoing heartbeats; empty derives "node@<port>"
  // from the listener.
  std::string node_name;

  // Write coalescing (bench ablation, EXPERIMENTS.md "xproc_shard"):
  // coalesce=true batches every frame queued at wakeup into one sendmsg;
  // false writes one frame per syscall. nodelay toggles TCP_NODELAY.
  bool coalesce = true;
  bool nodelay = true;

  // Internal: set by Runtime for Transport::kTcpLoopback. The transport
  // adds a single peer ("self") pointed at its own listener and route()
  // sends every envelope through it, so all traffic crosses the kernel's
  // loopback stack exactly as the old single-socket TcpLoop did.
  bool loopback_self = false;
};

}  // namespace csaw
